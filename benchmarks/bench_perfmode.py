"""PERF — performance mode (paper §II-C).

Paper example::

    > easypap --kernel mandel --variant omp_tiled --tile-size 16 \
              --iterations 50 --no-display
    50 iterations completed in 579ms

We reproduce the exact invocation (scaled: dim 256, max_iter 128) through
the real CLI and check the output line + the CSV row it appends.
Absolute milliseconds are cost-model calibration, not a claim; the
*format* and the CSV round-trip are.
"""

import io
from contextlib import redirect_stdout

from _common import report
from repro.cli import main as easypap_main
from repro.expt.csvdb import read_rows


def run_perf(tmp_csv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = easypap_main([
            "--kernel", "mandel", "--variant", "omp_tiled",
            "--tile-size", "16", "--iterations", "50", "--no-display",
            "--size", "256", "--arg", "128", "--nb-threads", "4",
            "--csv", str(tmp_csv),
        ])
    return rc, buf.getvalue()


def test_perfmode(benchmark, tmp_path):
    csv = tmp_path / "perf.csv"
    rc, output = benchmark.pedantic(run_perf, args=(csv,), rounds=1, iterations=1)
    rows = read_rows(csv)
    text = (
        "command: easypap --kernel mandel --variant omp_tiled --tile-size 16 "
        "--iterations 50 --no-display (dim 256, max_iter 128)\n"
        f"output: {output.strip()}\n"
        f"CSV row: {rows[-1]}\n"
        'paper: "50 iterations completed in 579ms" — same format, '
        "virtual-time magnitude depends on cost-model calibration."
    )
    report("perfmode", text)
    assert rc == 0
    assert "50 iterations completed in" in output
    assert rows[-1]["kernel"] == "mandel" and rows[-1]["time_us"] > 0
