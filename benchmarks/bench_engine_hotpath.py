"""Perf-regression harness for the whole-frame fast path.

Measures wall-clock frames/sec of the perf-mode engine with the
vectorized fast path on (``fastpath="auto"``) and off
(``fastpath="off"``, the per-tile reference) over a fixed
kernel x schedule x ncpus grid, and compares the *speedup ratios*
against the committed baseline ``BENCH_engine.json``.

Speedup (ref_time / fast_time) is a same-machine ratio, so it transfers
across hosts far better than absolute fps — the CI gate therefore
checks ratios, with absolute fps recorded for human inspection only.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py            # measure
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --quick --check BENCH_engine.json

``--check`` exits non-zero when

* any config's measured speedup falls below ``(1 - tolerance)`` x its
  baseline speedup (default tolerance 30%), or
* the acceptance config (mandel 512^2, static, 8 CPUs, 32x32 tiles)
  drops below 5x — the fast path's reason to exist.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_engine.json"

#: the acceptance gate: this config must stay >= GATE_SPEEDUP
GATE_ID = "mandel-512-static-8"
GATE_SPEEDUP = 5.0

#: id -> RunConfig kwargs (fastpath is toggled by the harness)
CONFIGS: dict[str, dict] = {
    "mandel-512-static-8": dict(
        kernel="mandel", variant="omp_tiled", dim=512, tile_w=32, tile_h=32,
        iterations=2, nthreads=8, schedule="static",
    ),
    "mandel-512-dynamic4-8": dict(
        kernel="mandel", variant="omp_tiled", dim=512, tile_w=32, tile_h=32,
        iterations=2, nthreads=8, schedule="dynamic,4",
    ),
    "mandel-512-guided-8": dict(
        kernel="mandel", variant="omp_tiled", dim=512, tile_w=32, tile_h=32,
        iterations=2, nthreads=8, schedule="guided",
    ),
    "mandel-512-static-4": dict(
        kernel="mandel", variant="omp_tiled", dim=512, tile_w=32, tile_h=32,
        iterations=2, nthreads=4, schedule="static",
    ),
    "blur-256-static-8": dict(
        kernel="blur", variant="omp_tiled", dim=256, tile_w=32, tile_h=32,
        iterations=5, nthreads=8, schedule="static",
    ),
    "life-256-static-8": dict(
        kernel="life", variant="omp_tiled", dim=256, tile_w=32, tile_h=32,
        iterations=5, nthreads=8, schedule="static", arg="random",
    ),
    "heat-256-static-8": dict(
        kernel="heat", variant="omp_tiled", dim=256, tile_w=32, tile_h=32,
        iterations=5, nthreads=8, schedule="static",
    ),
    "sandpile-256-static-8": dict(
        kernel="sandpile", variant="omp_tiled", dim=256, tile_w=32, tile_h=32,
        iterations=5, nthreads=8, schedule="static",
    ),
}


def _timed(cfg_kwargs: dict, fastpath: str) -> tuple[float, int]:
    t0 = time.perf_counter()
    res = run(RunConfig(fastpath=fastpath, **cfg_kwargs))
    return time.perf_counter() - t0, res.fastpath_regions


def _bench_pair(cfg_kwargs: dict, reps: int) -> dict:
    """Interleaved fast/ref timings; speedup = median of paired ratios.

    The two paths are timed back to back inside each rep so transient
    machine load slows both sides of a ratio together — a median of
    paired ratios is far more stable on shared CI runners than the
    ratio of two independently-taken minima.  One untimed warmup per
    path absorbs first-call costs (allocator growth, ufunc loop
    selection) that would otherwise dominate ``--quick``'s single rep.
    """
    _, fast_regions = _timed(cfg_kwargs, "auto")
    _, ref_regions = _timed(cfg_kwargs, "off")
    fast_ts, ref_ts = [], []
    for _ in range(reps):
        t, _ = _timed(cfg_kwargs, "auto")
        fast_ts.append(t)
        t, _ = _timed(cfg_kwargs, "off")
        ref_ts.append(t)
    ratios = sorted(r / f for f, r in zip(fast_ts, ref_ts))
    frames = cfg_kwargs["iterations"]
    return {
        "fps_fast": round(frames / min(fast_ts), 3),
        "fps_ref": round(frames / min(ref_ts), 3),
        # median paired ratio: the stable regression statistic
        "speedup": round(ratios[len(ratios) // 2], 3),
        # best paired ratio: what the machine is capable of; the
        # absolute >=5x gate uses this (best-of-N convention) so a
        # noisy co-tenant cannot flake an acceptance that holds
        "speedup_best": round(ratios[-1], 3),
        "_fast_regions": fast_regions,
        "_ref_regions": ref_regions,
    }


def measure(reps: int) -> dict:
    """Measure every config; returns the BENCH_engine.json payload."""
    results = {}
    for cid, kwargs in CONFIGS.items():
        if cid == GATE_ID:
            # the gate config carries a hard >=5x floor; never time it
            # with fewer than 5 reps or noise can flake the CI check
            r = max(reps, 5)
        elif kwargs["dim"] <= 256:
            # sub-10ms runs: a single OS hiccup halves one paired ratio,
            # and reps are nearly free at this size — median of >=7
            r = max(reps, 7)
        else:
            r = reps
        entry = _bench_pair(kwargs, r)
        if entry.pop("_fast_regions") == 0:
            raise SystemExit(f"{cid}: fast path did not engage — gating bug?")
        if entry.pop("_ref_regions") != 0:
            raise SystemExit(f"{cid}: reference run used the fast path")
        results[cid] = entry
    return {"schema": 1, "gate": {"id": GATE_ID, "min_speedup": GATE_SPEEDUP},
            "configs": results}


def render(payload: dict) -> str:
    rows = [[cid, r["fps_fast"], r["fps_ref"], f"{r['speedup']:.2f}x",
             f"{r['speedup_best']:.2f}x"]
            for cid, r in payload["configs"].items()]
    return fmt_table(["config", "fps fast", "fps ref", "speedup", "best"], rows)


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for cid, base in baseline["configs"].items():
        got = measured["configs"].get(cid)
        if got is None:
            failures.append(f"{cid}: present in baseline but not measured")
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if got["speedup"] < floor:
            failures.append(
                f"{cid}: speedup {got['speedup']:.2f}x regressed more than "
                f"{tolerance:.0%} below baseline {base['speedup']:.2f}x"
            )
    gate = measured["configs"].get(GATE_ID)
    if gate is None:
        failures.append(f"gate config {GATE_ID} was not measured")
    elif gate["speedup_best"] < GATE_SPEEDUP:
        failures.append(
            f"{GATE_ID}: best speedup {gate['speedup_best']:.2f}x below "
            f"the {GATE_SPEEDUP:.0f}x acceptance floor"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer reps per config (CI smoke)")
    ap.add_argument("--reps", type=int, default=None,
                    help="paired reps per config; default 5, 3 with --quick")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional speedup regression (default 0.30)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 5)
    payload = measure(reps)
    report("engine_hotpath", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"perf check OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%}, gate >= {GATE_SPEEDUP:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
