"""FIG3 — monitoring windows: load imbalance of static mandel (paper Fig. 3).

Paper claim: with ``omp_tiled`` mandel under ``schedule(static)``, the
Activity Monitor shows a clear load imbalance between CPUs (the black
in-set area concentrates work on a few threads), and the idleness
history grows; the Tiling window shows contiguous per-thread blocks.
"""


from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.view.ascii import render_activity, render_idleness_history, render_tiling

CFG = dict(kernel="mandel", variant="omp_tiled", dim=256, tile_w=16,
           tile_h=16, iterations=4, nthreads=4, monitoring=True, arg="128")


def run_fig3():
    static = run(RunConfig(schedule="static", **CFG))
    dynamic = run(RunConfig(schedule="dynamic", **CFG))
    return static, dynamic


def test_fig03_monitoring(benchmark):
    static, dynamic = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    rows = []
    for label, res in [("static", static), ("dynamic", dynamic)]:
        rec = res.monitor.records[-1]
        loads = rec.load_percent()
        rows.append([
            label,
            f"{min(loads):.1f}%",
            f"{max(loads):.1f}%",
            f"{res.monitor.load_imbalance():.2f}",
            f"{res.monitor.cumulated_idleness * 1e3:.2f} ms",
            f"{res.virtual_time * 1e3:.2f} ms",
        ])
    table = fmt_table(
        ["schedule", "min load", "max load", "imbalance", "cum. idleness", "time"],
        rows,
    )
    rec = static.monitor.records[-1]
    text = (
        table
        + "\n\nTiling window (static, last iteration):\n"
        + render_tiling(rec.tiling)
        + "\n\nActivity monitor (static):\n"
        + render_activity(rec)
        + "\n"
        + render_idleness_history(static.monitor.idleness_history)
        + "\n\npaper claim: static distribution is inappropriate for mandel "
        "(load imbalance); measured above."
    )
    report("fig03_monitoring", text)

    # shape assertions (the claim itself)
    assert static.monitor.load_imbalance() > 1.4
    assert dynamic.monitor.load_imbalance() < 1.15
    assert static.monitor.cumulated_idleness > 3 * dynamic.monitor.cumulated_idleness
