"""Wavefront-domain scheduling benchmark (the WorkDomain acceptance story).

Runs the blocked-LU wavefront kernel under the schedule families and
reports the *virtual* makespan of each — the simulator's deterministic
clock, so the numbers are bit-stable across hosts and the committed
baseline can be compared tightly.  The headline claim: on a
dependency-carrying domain, ``static`` scheduling idles on unmet
dependencies while ``dynamic`` keeps pulling ready tasks, so dynamic
must beat static by a wide margin (the gate below).

A second table runs one dependency-free kernel under the other domain
kinds (grid / wavefront / slab3d) as an end-to-end smoke of the domain
plumbing: same pixels, different decompositions.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_wavefront.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_wavefront.py \
        --out BENCH_domains.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_wavefront.py \
        --quick --check BENCH_domains.json

``--check`` exits non-zero when the dynamic-over-static speedup falls
below the gate or drifts more than ``--tolerance`` from the committed
baseline (virtual clocks are deterministic, so real drift means the
scheduler semantics changed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_domains.json"

#: acceptance gate: dynamic dispatch must beat the static assignment on
#: the wavefront DAG by at least this factor (virtual makespan ratio)
GATE_SPEEDUP = 1.5

SCHEDULES = ("static", "dynamic", "nonmonotonic:dynamic")

LU_CONFIG = dict(
    kernel="lu_wavefront", variant="omp_tiled", dim=128, tile_w=16, tile_h=16,
    iterations=1, nthreads=4,
)

#: domain-plumbing smoke: one plain kernel under three decompositions
DOMAIN_CONFIG = dict(
    kernel="mandel", variant="omp_tiled", dim=64, tile_w=16, tile_h=16,
    iterations=1, nthreads=4, schedule="dynamic",
)
DOMAIN_KINDS = ("grid", "wavefront", "slab3d")


def measure() -> dict:
    lu = {}
    for schedule in SCHEDULES:
        r = run(RunConfig(schedule=schedule, **LU_CONFIG))
        lu[schedule] = r.virtual_time
    domains = {}
    for kind in DOMAIN_KINDS:
        r = run(RunConfig(domain=kind, **DOMAIN_CONFIG))
        domains[kind] = r.virtual_time
    speedup = lu["static"] / lu["dynamic"] if lu["dynamic"] else 0.0
    return {
        "schema": 1,
        "cpu_count": os.cpu_count() or 1,
        "gate": {"min_dynamic_speedup": GATE_SPEEDUP},
        "results": {
            "lu_makespan_s": {k: round(v, 9) for k, v in lu.items()},
            "dynamic_speedup": round(speedup, 3),
            "domain_makespan_s": {k: round(v, 9) for k, v in domains.items()},
        },
    }


def render(payload: dict) -> str:
    r = payload["results"]
    lu_rows = [
        [f"lu_wavefront-{LU_CONFIG['dim']}-{LU_CONFIG['nthreads']}t", s,
         f"{r['lu_makespan_s'][s] * 1e3:.3f} ms"]
        for s in SCHEDULES
    ]
    dom_rows = [
        [f"{DOMAIN_CONFIG['kernel']}-{DOMAIN_CONFIG['dim']}", k,
         f"{r['domain_makespan_s'][k] * 1e3:.3f} ms"]
        for k in DOMAIN_KINDS
    ]
    return "\n".join([
        fmt_table(["config", "schedule", "virtual makespan"], lu_rows),
        f"\ndynamic speedup over static: {r['dynamic_speedup']:.2f}x "
        f"(gate >= {GATE_SPEEDUP:.1f}x)\n",
        fmt_table(["config", "domain", "virtual makespan"], dom_rows),
    ])


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    failures = []
    got = measured["results"]
    if got["dynamic_speedup"] < GATE_SPEEDUP:
        failures.append(
            f"dynamic speedup {got['dynamic_speedup']:.2f}x over static is "
            f"below the {GATE_SPEEDUP:.1f}x floor — static no longer idles "
            "on dependencies, or dynamic lost its edge"
        )
    baseline = json.loads(baseline_path.read_text())
    base = baseline["results"]
    lo = base["dynamic_speedup"] * (1.0 - tolerance)
    hi = base["dynamic_speedup"] * (1.0 + tolerance)
    if not (lo <= got["dynamic_speedup"] <= hi):
        failures.append(
            f"dynamic speedup {got['dynamic_speedup']:.2f}x drifted from the "
            f"baseline {base['dynamic_speedup']:.2f}x by more than "
            f"{tolerance:.0%} — virtual clocks are deterministic, so the "
            "scheduler semantics changed"
        )
    for kind, v in base["domain_makespan_s"].items():
        if kind not in got["domain_makespan_s"]:
            failures.append(f"domain {kind!r} missing from the measured run")
            continue
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="accepted for CI symmetry; the virtual-clock "
                    "measurement is already a single deterministic pass")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on drift")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional speedup drift (default 0.05)")
    args = ap.parse_args(argv)

    payload = measure()
    report("wavefront_domains", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"wavefront domain check OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
