"""FIG9 — heat-map mode of the tiling window (paper Fig. 9).

Paper claims: with brightness proportional to task duration,
  (a) mandel: the shape of the Mandelbrot set appears in the heat map;
  (b) blur (optimized): border tiles are brighter (slower) than inner
      tiles.
"""

import numpy as np

from _common import OUT_DIR, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.view.ascii import render_heatmap
from repro.view.ppm import save_ppm
from repro.view.thumbnail import heat_tile_image


def run_fig9():
    mandel = run(RunConfig(kernel="mandel", variant="omp_tiled", dim=256,
                           tile_w=16, tile_h=16, iterations=1, nthreads=4,
                           monitoring=True, arg="128"))
    blur = run(RunConfig(kernel="blur", variant="omp_tiled_opt", dim=256,
                         tile_w=16, tile_h=16, iterations=1, nthreads=4,
                         monitoring=True))
    return mandel, blur


def test_fig09_heatmap(benchmark):
    mandel, blur = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    mheat = mandel.monitor.records[0].heat
    bheat = blur.monitor.records[0].heat

    # (a) heat correlates with in-set pixel density per tile
    dark = (mandel.image >> 8) == 0
    rows, cols = mheat.shape
    frac = dark.reshape(rows, 256 // rows, cols, 256 // cols).mean(axis=(1, 3))
    corr = float(np.corrcoef(frac.ravel(), mheat.ravel())[0, 1])

    # (b) border vs inner brightness
    border = np.concatenate([bheat[0], bheat[-1], bheat[1:-1, 0], bheat[1:-1, -1]])
    inner = bheat[1:-1, 1:-1].ravel()
    ratio = float(border.mean() / inner.mean())

    save_ppm(heat_tile_image(mheat), OUT_DIR / "fig09a_mandel_heat.ppm")
    save_ppm(heat_tile_image(bheat), OUT_DIR / "fig09b_blur_heat.ppm")

    text = (
        "(a) mandel heat map (brightness = task duration):\n"
        + render_heatmap(mheat)
        + f"\n    correlation(in-set density, tile duration) = {corr:.3f}"
        + "\n\n(b) blur (optimized) heat map:\n"
        + render_heatmap(bheat)
        + f"\n    border/inner mean duration ratio = {ratio:.2f} "
        + "(work model: 8x vectorization on inner tiles)"
        + f"\n\nPPM images: {OUT_DIR}/fig09a_mandel_heat.ppm, fig09b_blur_heat.ppm"
    )
    report("fig09_heatmap", text)

    assert corr > 0.6, "Mandelbrot shape not visible in heat map"
    assert ratio > 4.0, "border tiles not distinctly slower than inner tiles"
