"""FIG5 — the expTools experiment-automation script (paper Fig. 5).

The paper's script, verbatim in structure::

    easypap_options["--kernel "]     = ["mandel"]
    easypap_options["--iterations "] = [10]
    easypap_options["--variant "]    = ["omp_tiled"]
    easypap_options["--grain "]      = [16, 32]
    omp_icv["OMP_NUM_THREADS="]      = list(range(2, 13, 2))
    omp_icv["OMP_SCHEDULE="]         = ["static", "guided", "dynamic,2",
                                        "nonmonotonic:dynamic"]
    execute('easypap', omp_icv, easypap_options, runs=10)

Scaled here to dim 256 / max_iter 128 / runs=3, with work-profile reuse
(replayed results are bit-identical to full runs — see tests/test_replay.py).
"""

from _common import fmt_table, report
from repro.expt.csvdb import read_rows, unique_values
from repro.expt.exptools import execute


def run_sweep(csv_path):
    easypap_options = {}
    omp_icv = {}
    easypap_options["--kernel "] = ["mandel"]
    easypap_options["--iterations "] = [10]
    easypap_options["--variant "] = ["omp_tiled"]
    easypap_options["--grain "] = [16, 32]
    easypap_options["--size "] = [256]
    easypap_options["--arg "] = [128]
    omp_icv["OMP_NUM_THREADS="] = list(range(2, 13, 2))
    omp_icv["OMP_SCHEDULE="] = ["static", "guided", "dynamic,2",
                                "nonmonotonic:dynamic"]
    return execute("easypap", omp_icv, easypap_options, runs=3,
                   csv_path=csv_path, reuse_work=True)


def test_fig05_exptools(benchmark, tmp_path):
    csv = tmp_path / "perf_data.csv"
    rows = benchmark.pedantic(run_sweep, args=(csv,), rounds=1, iterations=1)

    stored = read_rows(csv)
    expected = 2 * 6 * 4 * 3  # grains x threads x schedules x runs
    sample = fmt_table(
        list(stored[0].keys()),
        [list(r.values()) for r in stored[:4]],
    )
    text = (
        f"sweep produced {len(rows)} rows (expected {expected}): "
        f"grains={unique_values(stored, 'tile_w')}, "
        f"threads={unique_values(stored, 'threads')}, "
        f"schedules={unique_values(stored, 'schedule')}\n\n"
        "first rows of perf_data.csv:\n" + sample
    )
    report("fig05_exptools", text)
    assert len(rows) == expected
    assert unique_values(stored, "threads") == [2, 4, 6, 8, 10, 12]
    assert len(unique_values(stored, "schedule")) == 4
