"""EXT2 — extension: OpenCL-style device execution with profiling.

Paper §V: "Currently, EASYPAP only partially supports OpenCL: users can
observe animated output of kernels, but monitoring and trace exploration
are not yet implemented.  These features will soon be developed by
leveraging OpenCL profiling events."

Our SIMT device simulator provides exactly that: the mandel ``ocl``
variant runs one work-group per tile in lockstep and produces the same
timelines/traces as CPU variants.  This bench measures the divergence
penalty (boundary tiles stall on their slowest lane) as a function of
work-group size.
"""

import numpy as np

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.gpu.device import DeviceSpec, GpuDevice
from repro.kernels.mandel import mandel_counts


def run_ext2():
    # per-pixel costs of one mandel frame
    dim = 256
    xs = np.linspace(-2.5, 1.5, dim)[np.newaxis, :]
    ys = np.linspace(1.5, -2.5, dim)[:, np.newaxis]
    counts, _ = mandel_counts(xs, ys, 128)
    lane = counts.astype(np.float64)
    rows = []
    for g in (4, 8, 16, 32):
        device = GpuDevice(DeviceSpec(num_cus=8))
        launch = device.launch(lane, group_w=g, group_h=g)
        rows.append((g, launch.divergence_penalty, launch.makespan))
    # the ocl kernel variant end-to-end, with trace
    res = run(RunConfig(kernel="mandel", variant="ocl", dim=128, tile_w=16,
                        tile_h=16, iterations=2, nthreads=8, trace=True,
                        arg="128"))
    # transfer-bound vs compute-bound (the host<->device bus model)
    tcfg = dict(dim=256, tile_w=16, tile_h=16, iterations=1, nthreads=8)
    blur_frac = run(RunConfig(kernel="blur", variant="ocl", **tcfg)
                    ).context.data["transfer_fraction"]
    mandel_frac = run(RunConfig(kernel="mandel", variant="ocl", arg="1024",
                                **tcfg)).context.data["transfer_fraction"]
    return rows, res, blur_frac, mandel_frac


def test_ext_gpu(benchmark):
    rows, res, blur_frac, mandel_frac = benchmark.pedantic(
        run_ext2, rounds=1, iterations=1
    )
    table = fmt_table(
        ["group size", "divergence penalty", "makespan (ms)"],
        [[g, f"{d:.2f}", f"{m * 1e3:.3f}"] for g, d, m in rows],
    )
    kinds = {e.kind for e in res.trace.events}
    text = (
        table
        + f"\n\nmandel ocl variant: {len(res.trace)} profiling events "
        + f"(kinds {sorted(kinds)}), divergence {res.context.data['divergence']:.2f}"
        + f"\n\nhost<->device transfer fraction at dim 256: blur "
        + f"{blur_frac * 100:.1f}% (transfer-bound stencil) vs mandel "
        + f"{mandel_frac * 100:.1f}% (compute amortizes the bus)"
        + "\n\nexpected: larger work-groups -> more divergence (the set "
        "boundary crosses more groups' lanes); trace integration is the "
        "paper's stated future work, demonstrated here."
    )
    report("ext_gpu", text)

    penalties = [d for _, d, _ in rows]
    assert all(b >= a - 0.05 for a, b in zip(penalties, penalties[1:])), \
        "divergence should grow (weakly) with group size"
    assert penalties[-1] > penalties[0]
    assert kinds == {"ocl"}
    assert len(res.trace) == 2 * 64  # 2 iterations x 8x8 groups
    assert blur_frac > 0.5  # the stencil mostly pays the bus
    assert mandel_frac < blur_frac / 1.5  # compute amortizes it
