"""FIG10 + XBLUR — trace comparison of the two blur versions (paper Fig. 10).

Paper claims (§III-B, Fig. 10):
  * removing conditional code from inner tiles makes the kernel ~3x
    faster overall ("iteration 3 with the basic version is as long as
    iterations [7..9] with the optimized version");
  * many tasks are ~10x faster — inner tiles, thanks to compiler
    auto-vectorization (x8 on AVX2);
  * both versions compute identical images.

Our inner tiles charge VECTOR_PIXEL_WORK (x8 cheaper) in the simulator;
the benchmark additionally measures the *real* Python scalar-vs-
vectorized gap that motivates those constants.
"""

import time

import numpy as np

from _common import OUT_DIR, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.kernels.blur import blur_rect_scalar, blur_rect_vectorized
from repro.trace.compare import TraceComparison

CFG = dict(kernel="blur", dim=512, tile_w=32, tile_h=32, iterations=3,
           nthreads=4, trace=True, seed=11)


def run_fig10():
    basic = run(RunConfig(variant="omp_tiled", **CFG))
    opt = run(RunConfig(variant="omp_tiled_opt", **CFG))
    return basic, opt


def test_fig10_blur_compare(benchmark):
    basic, opt = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    assert np.array_equal(basic.image, opt.image)

    cmp_ = TraceComparison(basic.trace, opt.trace)
    overall = cmp_.overall_factor()
    med, p90 = cmp_.speedup_quantiles()
    frac8 = cmp_.faster_tile_fraction(7.5)
    svg_path = cmp_.to_svg().save(OUT_DIR / "fig10_compare.svg")

    # the real mechanism: scalar Python vs vectorized NumPy on one tile
    rng = np.random.default_rng(0)
    src = rng.integers(0, 2**32, (64, 64), dtype=np.uint32)
    dst = np.zeros_like(src)
    t0 = time.perf_counter()
    blur_rect_scalar(src, dst, 16, 16, 32, 32)
    scalar_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(20):
        blur_rect_vectorized(src, dst, 16, 16, 32, 32)
    vec_t = (time.perf_counter() - t0) / 20
    real_gap = scalar_t / vec_t

    text = (
        cmp_.report()
        + f"\n\nmeasured: overall x{overall:.2f} (paper: ~3x); "
        + f"median tile speedup x{med:.2f}, p90 x{p90:.2f} (paper: ~10x on "
        + f"inner tiles); {frac8 * 100:.1f}% of tiles >= 7.5x faster "
        + "(inner fraction of a 16x16 grid: 76.6%)"
        + f"\n\nreal scalar-vs-vectorized gap on one 32x32 tile: x{real_gap:.1f}"
        + " (the auto-vectorization mechanism, measured in Python)"
        + f"\n\nstacked-Gantt SVG: {svg_path}"
    )
    report("fig10_blur_compare", text)

    assert 2.0 < overall < 4.5
    assert p90 >= 7.5
    assert abs(frac8 - 196 / 256) < 0.1
    assert real_gap > 5.0
