"""FIG8 — dynamic scheduling patterns in the tiling window (paper Fig. 8).

Paper claims, for mandel under OpenMP dynamic scheduling of small tiles:

  Pattern 1 — horizontal stripes of one color (plus some two-color
  alternations): one or two threads compute runs of cheap tiles while
  the others are stuck on heavy in-set tiles.

  Pattern 2 — quasi-perfect cyclic color distribution where all tiles
  cost the same.
"""

import numpy as np

from _common import report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.view.ascii import render_tiling

CFG = RunConfig(kernel="mandel", variant="omp_tiled", dim=256, tile_w=8,
                tile_h=8, iterations=2, nthreads=4, schedule="dynamic",
                monitoring=True, arg="128")


def run_fig8():
    return run(CFG)


def longest_run(row) -> int:
    best = run_ = 1
    for a, b in zip(row, row[1:]):
        run_ = run_ + 1 if a == b else 1
        best = max(best, run_)
    return best


def test_fig08_patterns(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rec = result.monitor.records[-1]
    tiling, heat = rec.tiling, rec.heat

    stripe_len = max(longest_run(row.tolist()) for row in tiling)
    ratios = heat.max(axis=1) / np.maximum(heat.min(axis=1), 1e-300)
    uniform_row = int(ratios.argmin())
    owners = tiling[uniform_row].tolist()
    changes = sum(1 for a, b in zip(owners, owners[1:]) if a != b)

    text = (
        "tiling window (dynamic, 8x8 tiles, last iteration):\n"
        + render_tiling(tiling)
        + f"\n\nPattern 1 (stripes): longest same-color run = {stripe_len} tiles"
        + f"\nPattern 2 (cyclic): most uniform-cost row = {uniform_row}, "
        + f"owners {owners}, {changes}/{len(owners) - 1} ownership changes"
        + "\n\npaper: stripes where tiles are cheap (others busy in the set);"
        + " cyclic distribution where costs are uniform."
    )
    report("fig08_patterns", text)

    assert stripe_len >= 5, "Pattern 1 stripes not observed"
    assert changes >= len(owners) - 2, "Pattern 2 cyclic distribution not observed"
