"""FIG6 — speedup graphs (paper Fig. 6).

Paper: mandel omp_tiled, dim 1024, 10 iterations, grain 16 and 32,
threads 2..12 step 2, OMP_SCHEDULE in {static, guided, dynamic,2,
nonmonotonic:dynamic}; speedups against the sequential reference time.

Shape claims reproduced:
  * static is the worst curve and plateaus well below linear;
  * guided / dynamic,2 / nonmonotonic:dynamic scale close to linearly
    and stay within a tight band of each other;
  * the ordering is the same at grain 16 and grain 32.

Scaled to dim 512 / max_iter 128 / 5 iterations; the sweep itself runs
through the expTools + easyplot pipeline (work-profile replay) exactly
as a student would drive it.

``pytest benchmarks/bench_fig06_speedup.py --backend procs`` reruns the
same sweep on a real backend (wall-clock times, no work-profile reuse);
the shape assertions then need actual cores to hold, so that mode is
for hardware runs, not CI.
"""

from _common import OUT_DIR, report
from repro.cli import config_from_args, parse_args
from repro.core.engine import run
from repro.expt.easyplot import build_plot
from repro.expt.exptools import execute
from repro.expt.plotting import render_svg, render_text

SCHEDULES = ["static", "guided", "dynamic,2", "nonmonotonic:dynamic"]
THREADS = list(range(2, 13, 2))


def run_sweep(csv_path, backend="sim"):
    # sequential reference (refTime in the paper's figure header)
    seq_cfg = config_from_args(parse_args(
        ["--kernel", "mandel", "--variant", "seq", "--size", "512",
         "--iterations", "5", "--arg", "128", "--nb-threads", "1",
         "--backend", backend]), env={})
    ref = run(seq_cfg)
    execute(
        "easypap",
        {"OMP_NUM_THREADS=": THREADS, "OMP_SCHEDULE=": SCHEDULES},
        {"--kernel ": ["mandel"], "--variant ": ["omp_tiled"],
         "--size ": [512], "--grain ": [16, 32], "--iterations ": [5],
         "--arg ": [128], "--backend ": [backend]},
        runs=1,
        csv_path=csv_path,
        # work-profile replay only makes sense on the virtual clock;
        # real backends must execute every point for the times to mean
        # anything
        reuse_work=(backend == "sim"),
    )
    return ref.elapsed * 1e6


def test_fig06_speedup(benchmark, tmp_path, bench_backend):
    csv = tmp_path / "perf_data.csv"
    ref_us = benchmark.pedantic(
        run_sweep, args=(csv, bench_backend), rounds=1, iterations=1)

    from repro.expt.csvdb import read_rows

    rows = read_rows(csv)
    spec = build_plot(rows, x="threads", col="tile_w", speedup=True,
                      ref_time_us=ref_us, kernel="mandel")
    svg_path = OUT_DIR / "fig06_speedup.svg"
    render_svg(spec).save(svg_path)
    text = render_text(spec) + f"\n\nSVG figure: {svg_path}"

    # extract the curves for shape checks
    speedup = {}
    for facet in spec.facets:
        grain = int(facet.title.split("=")[1])
        for s in facet.series:
            sched = s.label.split("=", 1)[1]
            speedup[(grain, sched)] = dict(zip(s.xs, s.ys))

    checks = []
    for grain in (16, 32):
        for t in (8, 12):
            stat = speedup[(grain, "static")][t]
            for sched in ("guided", "dynamic,2", "nonmonotonic:dynamic"):
                dyn = speedup[(grain, sched)][t]
                checks.append((grain, t, sched, round(dyn, 2), round(stat, 2)))
    text += "\n\nwho-wins checks (dynamic-family vs static speedup):\n"
    text += "\n".join(
        f"  grain={g} threads={t} {s}: {d}x vs static {st}x" for g, t, s, d, st in checks
    )
    text += (
        "\n\npaper claims: static worst and plateauing; dynamic-family "
        "near-linear and clustered; same ordering for both grains."
    )
    report("fig06_speedup", text)

    for g, t, s, dyn, stat in checks:
        assert dyn > stat, f"{s} should beat static at grain={g}, threads={t}"
    for grain in (16, 32):
        assert speedup[(grain, "dynamic,2")][12] > 8.0   # near-linear
        assert speedup[(grain, "static")][12] < 6.0      # plateau
        # dynamic,2 and nonmonotonic:dynamic stay clustered; guided sits
        # between them and static (its decreasing-but-large chunks pay a
        # balance penalty on irregular work)
        d, nm = speedup[(grain, "dynamic,2")][12], speedup[(grain, "nonmonotonic:dynamic")][12]
        assert max(d, nm) / min(d, nm) < 1.25
        assert speedup[(grain, "guided")][12] > 1.25 * speedup[(grain, "static")][12]
