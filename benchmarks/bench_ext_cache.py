"""EXT1 — extension: per-task cache counters (paper §V future work).

The paper plans to "integrate per-task cache usage information using the
PAPI library" into EASYVIEW.  Our LRU model replays each task's memory
accesses; this bench explores two textbook effects:

  * blur: neighbouring tiles share halo rows, so a warm cache serves
    part of every task's reads — hit rate grows with cache size;
  * transpose: writes are strided; smaller tiles issue more (and more
    scattered) write ranges per pixel, so the per-pixel miss cost rises
    as tiles shrink.
"""

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.monitor.cache import (
    CacheSpec,
    simulate_trace_cache,
    stencil_access_pattern,
    transpose_access_pattern,
)

DIM = 128


def run_ext1():
    out = {"blur": {}, "transpose": {}}
    blur = run(RunConfig(kernel="blur", variant="omp_tiled", dim=DIM,
                         tile_w=16, tile_h=16, iterations=2, nthreads=2,
                         trace=True))
    for size_kb in (4, 32, 256):
        res = simulate_trace_cache(blur.trace, DIM, stencil_access_pattern,
                                   CacheSpec(size_bytes=size_kb * 1024))
        hits = sum(c.hits for _, c in res)
        total = sum(c.accesses for _, c in res)
        out["blur"][size_kb] = hits / total
    for grain in (4, 8, 16, 32):
        tr = run(RunConfig(kernel="transpose", variant="omp_tiled", dim=DIM,
                           tile_w=grain, tile_h=grain, iterations=1,
                           nthreads=2, trace=True))
        res = simulate_trace_cache(tr.trace, DIM, transpose_access_pattern,
                                   CacheSpec(size_bytes=32 * 1024))
        misses = sum(c.misses for _, c in res)
        out["transpose"][grain] = misses / (DIM * DIM)
    return out


def test_ext_cache(benchmark):
    out = benchmark.pedantic(run_ext1, rounds=1, iterations=1)
    blur_rows = [[f"{kb} KiB", f"{hr * 100:.1f}%"] for kb, hr in out["blur"].items()]
    tr_rows = [[g, f"{m:.3f}"] for g, m in out["transpose"].items()]
    text = (
        "blur (16x16 tiles): cache hit rate vs cache size\n"
        + fmt_table(["cache", "hit rate"], blur_rows)
        + "\n\ntranspose (32 KiB cache): line misses per pixel vs tile size\n"
        + fmt_table(["grain", "misses/pixel"], tr_rows)
        + "\n\nper-task counters are attached to every trace event "
        "(event.extra['cache']), ready for EASYVIEW display."
    )
    report("ext_cache", text)

    hr = out["blur"]
    assert hr[256] >= hr[32] >= hr[4]
    assert hr[256] > 0.2  # halo reuse is visible
    mt = out["transpose"]
    assert mt[4] > mt[16]  # tiny tiles waste write lines
