"""FIG7 — EASYVIEW interactive trace exploration (paper Fig. 7).

Paper: the Gantt chart shows per-CPU task sequences for a selectable
iteration range; hovering a task shows its duration; tasks under the
mouse's x position get their tile highlighted on the image thumbnail
(linking computations to data); horizontal mode selects a CPU.

We regenerate the artifact: record a mandel trace, build the Gantt,
exercise the two mouse-query modes, and emit the SVG with hover
tooltips.
"""

from _common import OUT_DIR, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.trace.gantt import GanttChart
from repro.view.thumbnail import thumbnail

CFG = RunConfig(kernel="mandel", variant="omp_tiled", dim=256, tile_w=32,
                tile_h=32, iterations=10, nthreads=4, schedule="dynamic",
                trace=True, arg="128")


def run_fig7():
    return run(CFG)


def test_fig07_easyview(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    trace = result.trace

    # iteration-range selection (the paper screenshots show ranges [7..9])
    chart = GanttChart(trace, 7, 9)
    mid = (chart.t0 + chart.t1) / 2

    # vertical mouse mode: tasks at time -> highlighted tiles
    tiles = chart.tiles_at_time(mid)
    # horizontal mouse mode: one CPU's tasks + the pop-up duration bubble
    cpu0 = chart.cpu_tasks(0)
    bubble = chart.task_at(0, mid)

    svg_path = chart.to_svg().save(OUT_DIR / "fig07_gantt.svg")
    thumb = thumbnail(result.image, 64)

    text = (
        f"trace: {len(trace)} events, iterations {trace.iterations[0]}..."
        f"{trace.iterations[-1]}\n"
        f"selected range [7..9]: {len(chart.events)} tasks, span "
        f"{chart.span * 1e3:.3f} ms\n"
        f"vertical mouse @ t={mid * 1e3:.3f} ms -> {len(tiles)} highlighted "
        f"tiles: {tiles}\n"
        f"horizontal mouse on CPU 0 -> {len(cpu0)} tasks; bubble: "
        + (f"{bubble.duration * 1e6:.1f} us tile(x={bubble.x}, y={bubble.y})"
           if bubble else "(idle)")
        + f"\nthumbnail: {thumb.shape[0]}x{thumb.shape[1]} reduced surface\n"
        + f"SVG Gantt (hover = duration bubble): {svg_path}\n\n"
        + chart.to_ascii(width=80)
    )
    report("fig07_easyview", text)

    assert len(chart.events) == 3 * 64  # 3 iterations x 8x8 tiles
    assert 1 <= len(tiles) <= CFG.nthreads  # one task per busy CPU at mid
    assert len(cpu0) > 0
    svg = svg_path.read_text()
    assert "<title>" in svg and "tile(" in svg
