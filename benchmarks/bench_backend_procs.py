"""Perf-regression harness for the true-parallel ``procs`` backend.

Times a GIL-bound pure-Python kernel (``pymandel``, see
``kernels_purepy.py``) under three executions — sequential wall-clock
reference (1 thread), ``backend="threads"`` and ``backend="procs"`` —
and reports the procs speedups as medians of *paired* ratios, the same
same-machine statistic ``bench_engine_hotpath.py`` uses.

On a GIL-bound workload the threads backend cannot beat sequential no
matter how many cores the host has; the procs pool can, because its
workers are real processes writing the frame through shared memory.
That contrast is the backend's acceptance story.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_backend_procs.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_backend_procs.py \
        --out BENCH_procs.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_backend_procs.py \
        --quick --check BENCH_procs.json

``--check`` exits non-zero when, *on a multicore host*, the procs
speedup over sequential falls below the gate (>= 1.5x with 2 workers)
or regresses more than ``--tolerance`` below the committed baseline.
Hosts with a single CPU cannot exhibit real parallelism, so there the
check only validates that the benchmark runs and records numbers; the
JSON carries ``cpu_count`` so a single-core baseline is never used to
gate a multicore run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from _common import fmt_table, gate_skip_reason, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.core.kernel import load_kernel_module
from repro.omp.procs import shutdown_pools

REPO_ROOT = Path(__file__).resolve().parent.parent
KERNEL_FILE = Path(__file__).resolve().parent / "kernels_purepy.py"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_procs.json"

#: acceptance gate (multicore hosts only): procs with 2 workers must
#: beat the sequential wall-clock reference by at least this factor
WORKERS = 2
GATE_SPEEDUP = 1.5

CONFIG = dict(
    kernel="pymandel", variant="omp_tiled", dim=128, tile_w=32, tile_h=32,
    iterations=2, schedule="dynamic,1",
)


def _timed(backend: str, nthreads: int) -> float:
    cfg = RunConfig(backend=backend, nthreads=nthreads, **CONFIG)
    t0 = time.perf_counter()
    run(cfg)
    return time.perf_counter() - t0


def measure(reps: int) -> dict:
    load_kernel_module(str(KERNEL_FILE))
    # one untimed warmup per execution absorbs first-call costs; the
    # procs warmup also spawns the worker pool, so the timed reps see
    # the persistent-pool steady state the backend is designed around
    for backend, nthreads in (("threads", 1), ("threads", WORKERS), ("procs", WORKERS)):
        _timed(backend, nthreads)
    seq_ts, thr_ts, procs_ts = [], [], []
    for _ in range(reps):
        seq_ts.append(_timed("threads", 1))  # serial wall-clock reference
        thr_ts.append(_timed("threads", WORKERS))
        procs_ts.append(_timed("procs", WORKERS))
    vs_seq = sorted(s / p for s, p in zip(seq_ts, procs_ts))
    vs_thr = sorted(t / p for t, p in zip(thr_ts, procs_ts))
    frames = CONFIG["iterations"]
    return {
        "schema": 1,
        "cpu_count": os.cpu_count() or 1,
        "workers": WORKERS,
        "gate": {"min_speedup_vs_seq": GATE_SPEEDUP, "needs_cpus": 2},
        "results": {
            "fps_seq": round(frames / min(seq_ts), 3),
            "fps_threads": round(frames / min(thr_ts), 3),
            "fps_procs": round(frames / min(procs_ts), 3),
            # median paired ratio: the stable regression statistic
            "speedup_vs_seq": round(vs_seq[len(vs_seq) // 2], 3),
            "speedup_vs_threads": round(vs_thr[len(vs_thr) // 2], 3),
            # best paired ratio: what the machine is capable of (the
            # absolute gate uses this, best-of-N convention)
            "speedup_vs_seq_best": round(vs_seq[-1], 3),
        },
    }


def render(payload: dict) -> str:
    r = payload["results"]
    rows = [[
        f"pymandel-{CONFIG['dim']}-{WORKERS}w", payload["cpu_count"],
        r["fps_seq"], r["fps_threads"], r["fps_procs"],
        f"{r['speedup_vs_seq']:.2f}x", f"{r['speedup_vs_threads']:.2f}x",
    ]]
    return fmt_table(
        ["config", "cpus", "fps seq", "fps thr", "fps procs",
         "procs/seq", "procs/thr"],
        rows,
    )


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    skip = gate_skip_reason(measured, needs_cpus=2)
    if skip is not None:
        print(f"procs perf gate skipped: {skip} "
              "(no real parallelism to measure)")
        return []
    failures = []
    got = measured["results"]
    if got["speedup_vs_seq_best"] < GATE_SPEEDUP:
        failures.append(
            f"procs best speedup {got['speedup_vs_seq_best']:.2f}x over "
            f"sequential is below the {GATE_SPEEDUP:.1f}x floor "
            f"({WORKERS} workers, {measured['cpu_count']} CPUs)"
        )
    baseline = json.loads(baseline_path.read_text())
    base_skip = gate_skip_reason(baseline, needs_cpus=2)
    if base_skip is not None:
        print(f"baseline {baseline_path}: {base_skip}; "
              "ratio comparison skipped")
        return failures
    base = baseline["results"]
    floor = base["speedup_vs_seq"] * (1.0 - tolerance)
    if got["speedup_vs_seq"] < floor:
        failures.append(
            f"procs/seq speedup {got['speedup_vs_seq']:.2f}x regressed more "
            f"than {tolerance:.0%} below baseline {base['speedup_vs_seq']:.2f}x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer reps (CI smoke)")
    ap.add_argument("--reps", type=int, default=None,
                    help="paired reps; default 7, 3 with --quick")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional speedup regression (default 0.30)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    try:
        payload = measure(reps)
    finally:
        shutdown_pools()
    report("backend_procs", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"procs perf check OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
