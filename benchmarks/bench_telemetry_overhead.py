"""Perf-regression harness for the telemetry bus (ISSUE-5 gate).

The unified telemetry pipeline must be effectively free: a traced run
may cost at most 5% more wall-clock than the identical uninstrumented
run.  This harness times the GIL-bound ``pymandel`` kernel (see
``kernels_purepy.py``) plain vs ``trace=True`` on both the ``sim``
channel (in-process bus dispatch into the TraceRecorder) and the
``procs`` channel (worker-side ring emission + master drain), and
reports the overhead as medians of *paired* ratios — the same
same-machine statistic the other perf harnesses use.  The footprint
path (``--check-races``-grade collection over the ring) is measured
and reported too, but not gated: footprints intercept every buffer
access, which is honest observability work, not bus overhead.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_telemetry_overhead.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_telemetry_overhead.py \
        --out BENCH_telemetry.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_telemetry_overhead.py \
        --quick --check BENCH_telemetry.json

``--check`` exits non-zero when a gated overhead ratio exceeds the
1.05x ceiling or regresses more than ``--tolerance`` (additive) above
the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.core.kernel import load_kernel_module
from repro.omp.procs import shutdown_pools

REPO_ROOT = Path(__file__).resolve().parent.parent
KERNEL_FILE = Path(__file__).resolve().parent / "kernels_purepy.py"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_telemetry.json"

#: instrumentation-overhead ceiling: traced / plain, median paired ratio
GATE_RATIO = 1.05
WORKERS = 2

CONFIG = dict(
    kernel="pymandel", variant="omp_tiled", dim=128, tile_w=32, tile_h=32,
    iterations=2, schedule="dynamic,1",
)

#: (name, gated) — each case is timed plain vs instrumented
CASES = [
    ("sim_trace", True, dict(backend="sim"), dict(trace=True)),
    ("procs_trace", True, dict(backend="procs", nthreads=WORKERS), dict(trace=True)),
    ("procs_footprints", False, dict(backend="procs", nthreads=WORKERS),
     dict(trace=True, footprints=True)),
]


def _timed(extra: dict) -> float:
    cfg = RunConfig(**CONFIG, **extra)
    t0 = time.perf_counter()
    run(cfg)
    return time.perf_counter() - t0


def measure(reps: int) -> dict:
    load_kernel_module(str(KERNEL_FILE))
    results = {}
    for name, gated, base_kw, instr_kw in CASES:
        plain_kw = dict(base_kw)
        traced_kw = {**base_kw, **instr_kw}
        _timed(plain_kw)  # warmup (spawns the procs pool where relevant)
        _timed(traced_kw)
        ratios = []
        plain_ts, traced_ts = [], []
        for _ in range(reps):
            p = _timed(plain_kw)
            t = _timed(traced_kw)
            plain_ts.append(p)
            traced_ts.append(t)
            ratios.append(t / p)
        ratios.sort()
        results[name] = {
            "gated": gated,
            "plain_s": round(min(plain_ts), 4),
            "instrumented_s": round(min(traced_ts), 4),
            # median paired ratio: the stable regression statistic
            "overhead_ratio": round(ratios[len(ratios) // 2], 4),
            "overhead_ratio_best": round(ratios[0], 4),
        }
    return {
        "schema": 1,
        "cpu_count": os.cpu_count() or 1,
        "workers": WORKERS,
        "gate": {"max_overhead_ratio": GATE_RATIO},
        "results": results,
    }


def render(payload: dict) -> str:
    rows = []
    for name, r in payload["results"].items():
        rows.append([
            name, "yes" if r["gated"] else "no",
            f"{r['plain_s']:.4f}", f"{r['instrumented_s']:.4f}",
            f"{r['overhead_ratio']:.3f}x",
            f"{(r['overhead_ratio'] - 1.0) * 100:+.1f}%",
        ])
    return fmt_table(
        ["case", "gated", "plain s", "instr s", "ratio", "overhead"], rows
    )


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    failures = []
    for name, r in measured["results"].items():
        if not r["gated"]:
            continue
        # absolute ceiling on the best paired ratio (best-of-N, same
        # convention as bench_backend_procs): what the machine is capable
        # of must be within 5%, whatever the noise on individual reps
        if r["overhead_ratio_best"] > GATE_RATIO:
            failures.append(
                f"{name}: instrumentation overhead {r['overhead_ratio_best']:.3f}x "
                f"(best of N) exceeds the {GATE_RATIO:.2f}x ceiling"
            )
    baseline = json.loads(baseline_path.read_text())
    for name, r in measured["results"].items():
        base = baseline["results"].get(name)
        if base is None or not r["gated"]:
            continue
        # a sub-1.0 baseline ratio is measurement luck, not a bar to hold
        # future runs to; the comparison floor is "no overhead at all"
        ceiling = max(base["overhead_ratio"], 1.0) + tolerance
        if r["overhead_ratio"] > ceiling:
            failures.append(
                f"{name}: overhead {r['overhead_ratio']:.3f}x regressed more "
                f"than +{tolerance:.2f} above baseline {base['overhead_ratio']:.3f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer reps (CI smoke)")
    ap.add_argument("--reps", type=int, default=None,
                    help="paired reps; default 7, 3 with --quick")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed additive ratio regression above baseline "
                         "(default 0.05)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    try:
        payload = measure(reps)
    finally:
        shutdown_pools()
    report("telemetry_overhead", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"telemetry overhead check OK vs {args.check} "
              f"(ceiling {GATE_RATIO:.2f}x, tolerance +{args.tolerance:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
