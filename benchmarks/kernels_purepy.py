"""A deliberately GIL-bound kernel (``--load``-style extension file).

``pymandel`` computes the Mandelbrot escape loop pixel by pixel in pure
Python — no NumPy vectorization, so the interpreter holds the GIL for
the whole tile.  This is the workload where ``backend="threads"``
cannot speed anything up and ``backend="procs"`` shows its reason to
exist; the procs benchmark (and its CI gate) is built on it.

Loaded via :func:`repro.core.kernel.load_kernel_module`, which also
makes pool workers replay this file so they can resolve the kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile

MAX_ITER = 32


@register_kernel
class PyMandelKernel(Kernel):
    """Kernel ``pymandel``: scalar-Python Mandelbrot, one pixel at a time."""

    name = "pymandel"

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        dim = ctx.dim
        view = ctx.img.cur_view(y, x, h, w, mode="w")
        for j in range(h):
            ci = -1.25 + 2.5 * (y + j) / dim
            for i in range(w):
                cr = -2.0 + 2.5 * (x + i) / dim
                zr = zi = 0.0
                it = 0
                while it < MAX_ITER and zr * zr + zi * zi < 4.0:
                    zr, zi = zr * zr - zi * zi + cr, 2.0 * zr * zi + ci
                    it += 1
                shade = (255 * it) // MAX_ITER
                view[j, i] = np.uint32((shade << 24) | (shade << 16) | (shade << 8) | 0xFF)
        return float(tile.area * MAX_ITER)

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile))
        return 0
