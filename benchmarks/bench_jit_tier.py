"""Perf-regression harness for the compiled (numba) tile-body tier.

Times the ``mandel`` kernel at 512x512 with the per-tile fastpath
disabled (``fastpath="off"``), so every tile goes through ``do_tile``
and the difference between the two executions is exactly the tile
body: ``jit="auto"`` (the compiled core, where numba is importable)
versus ``jit="off"`` (the numpy reference body).  Speedups are medians
of *paired* ratios, the same same-machine statistic the other gated
benchmarks use.

The tiers are bit-identical by construction (differential tests assert
it); this benchmark answers the perf question only: is the compiled
tier actually worth selecting?

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_jit_tier.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_jit_tier.py \
        --out BENCH_jit.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_jit_tier.py \
        --quick --check BENCH_jit.json

``--check`` exits non-zero when, *on a host where numba imports*, the
compiled tier's best speedup over the numpy reference falls below the
gate (>= 3x) or the median regresses more than ``--tolerance`` below
the committed baseline.  Hosts without numba run the fallback twice —
there is nothing to gate, only to record: the JSON carries a ``numba``
capability flag (mirrored from :func:`repro.core.jit.probe`) so a
no-numba baseline never gates a host that can compile, and vice versa.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from _common import fmt_table, gate_skip_reason, report
from repro.core import jit
from repro.core.config import RunConfig
from repro.core.engine import run

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_jit.json"

#: acceptance gate (numba hosts only): the compiled mandel tile body
#: must beat the numpy reference body by at least this factor
GATE_SPEEDUP = 3.0

CONFIG = dict(
    kernel="mandel", variant="omp_tiled", dim=512, tile_w=64, tile_h=64,
    iterations=1, nthreads=1, schedule="dynamic", backend="sim",
    # the whole point: force the per-tile path so the tile *body* is
    # what gets measured, not the whole-frame fastpath
    fastpath="off",
)


def _timed(jit_mode: str) -> tuple[float, str]:
    cfg = RunConfig(jit=jit_mode, **CONFIG)
    t0 = time.perf_counter()
    result = run(cfg)
    return time.perf_counter() - t0, result.jit_tier


def measure(reps: int) -> dict:
    cap = jit.probe()
    # one untimed warmup per tier absorbs first-call costs — for the
    # compiled tier that is the njit compilation itself (cache=True
    # persists it, but a cold CI runner pays it here, not in the reps)
    _, tier_auto = _timed("auto")
    _, tier_off = _timed("off")
    jit_ts, ref_ts = [], []
    for _ in range(reps):
        t, _ = _timed("auto")
        jit_ts.append(t)
        t, _ = _timed("off")
        ref_ts.append(t)
    ratios = sorted(r / j for r, j in zip(ref_ts, jit_ts))
    return {
        "schema": 1,
        "cpu_count": os.cpu_count() or 1,
        "numba": cap.available,
        "numba_version": cap.version,
        "probe_reason": cap.reason,
        "tier_auto": tier_auto,
        "tier_off": tier_off,
        "gate": {
            "min_speedup_jit_vs_numpy": GATE_SPEEDUP,
            "needs_cpus": 1,
            "capability": "numba",
        },
        "results": {
            "time_jit_s": round(min(jit_ts), 4),
            "time_numpy_s": round(min(ref_ts), 4),
            # median paired ratio: the stable regression statistic
            "speedup_jit_vs_numpy": round(ratios[len(ratios) // 2], 3),
            # best paired ratio: what the machine is capable of (the
            # absolute gate uses this, best-of-N convention)
            "speedup_jit_vs_numpy_best": round(ratios[-1], 3),
        },
    }


def render(payload: dict) -> str:
    r = payload["results"]
    rows = [[
        f"mandel-{CONFIG['dim']}",
        payload["tier_auto"],
        "yes" if payload["numba"] else "no",
        r["time_jit_s"], r["time_numpy_s"],
        f"{r['speedup_jit_vs_numpy']:.2f}x",
        f"{r['speedup_jit_vs_numpy_best']:.2f}x",
    ]]
    return fmt_table(
        ["config", "tier", "numba", "t jit", "t numpy",
         "jit/numpy", "best"],
        rows,
    )


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    skip = gate_skip_reason(measured, needs_cpus=1, capability="numba")
    if skip is not None:
        print(f"jit perf gate skipped: {skip} "
              f"(probe: {measured['probe_reason']}) — fallback tier "
              f"{measured['tier_auto']!r} measured, nothing to gate")
        return []
    failures = []
    got = measured["results"]
    if measured["tier_auto"] != "jit":
        failures.append(
            "numba is importable but the jit='auto' run resolved to "
            f"tier {measured['tier_auto']!r} (probe: "
            f"{measured['probe_reason']})"
        )
    if got["speedup_jit_vs_numpy_best"] < GATE_SPEEDUP:
        failures.append(
            f"compiled tier best speedup {got['speedup_jit_vs_numpy_best']:.2f}x "
            f"over the numpy body is below the {GATE_SPEEDUP:.1f}x floor"
        )
    baseline = json.loads(baseline_path.read_text())
    base_skip = gate_skip_reason(baseline, needs_cpus=1, capability="numba")
    if base_skip is not None:
        print(f"baseline {baseline_path}: {base_skip}; "
              "ratio comparison skipped")
        return failures
    base = baseline["results"]
    floor = base["speedup_jit_vs_numpy"] * (1.0 - tolerance)
    if got["speedup_jit_vs_numpy"] < floor:
        failures.append(
            f"jit/numpy speedup {got['speedup_jit_vs_numpy']:.2f}x regressed "
            f"more than {tolerance:.0%} below baseline "
            f"{base['speedup_jit_vs_numpy']:.2f}x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer reps (CI smoke)")
    ap.add_argument("--reps", type=int, default=None,
                    help="paired reps; default 7, 3 with --quick")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional speedup regression (default 0.30)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    payload = measure(reps)
    report("jit_tier", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"jit perf check OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
