"""SWEEP — parallel sweep-runner throughput (Fig. 6-style grid).

The acceptance target of the parallel expTools runner: a Fig. 6-style
sweep with ``workers=4`` completes markedly faster than the serial
driver on the same machine and yields the identical row set (the
simulator is deterministic, so only wall-clock — never results — may
differ).  Also measures the resume fast-path: re-invoking a completed
sweep must cost (almost) nothing.
"""

import os
import time

from _common import fmt_table, report
from repro.expt.csvdb import read_rows
from repro.expt.exptools import execute

ICVS = {"OMP_NUM_THREADS=": [2, 4, 6], "OMP_SCHEDULE=": ["static", "dynamic,2"]}
OPTS = {
    "--kernel ": ["mandel"],
    "--variant ": ["omp_tiled"],
    "--size ": [256],
    "--grain ": [16],
    "--iterations ": [4],
    "--arg ": [128],
}
RUNS = 2  # 3 threads x 2 schedules x 2 runs = 12 points


def canon(row):
    return tuple(sorted((k, str(v)) for k, v in row.items()))


def test_sweep_throughput(benchmark, tmp_path):
    t0 = time.perf_counter()
    serial = execute("easypap", ICVS, OPTS, runs=RUNS,
                     csv_path=tmp_path / "serial.csv")
    t_serial = time.perf_counter() - t0

    def parallel_sweep():
        csv = tmp_path / f"par-{time.monotonic_ns()}.csv"
        rows = execute("easypap", ICVS, OPTS, runs=RUNS, csv_path=csv,
                       workers=4)
        return rows, csv

    t0 = time.perf_counter()
    (par_rows, par_csv) = benchmark.pedantic(parallel_sweep, rounds=1,
                                             iterations=1)
    t_parallel = time.perf_counter() - t0

    t0 = time.perf_counter()
    resumed = execute("easypap", ICVS, OPTS, runs=RUNS, csv_path=par_csv,
                      resume=True, workers=4)
    t_resume = time.perf_counter() - t0

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    table = fmt_table(
        ["mode", "points", "wall s", "speedup"],
        [
            ["serial", len(serial), f"{t_serial:.2f}", "1.00"],
            ["workers=4", len(par_rows), f"{t_parallel:.2f}", f"{speedup:.2f}"],
            ["resume (complete)", len(resumed), f"{t_resume:.2f}", "-"],
        ],
    )
    identical = sorted(map(canon, serial)) == sorted(map(canon, par_rows))
    ncores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    text = (
        f"Fig. 6-style grid: {len(serial)} points "
        f"(threads x schedule x {RUNS} runs), mandel 256^2, "
        f"{ncores} core(s) available\n\n" + table +
        f"\n\nparallel row set identical to serial: {identical}\n"
        f"resume after completion reran {len(resumed)} points"
    )
    report("sweep_throughput", text)

    assert identical
    assert resumed == []
    assert sorted(map(canon, read_rows(par_csv))) == sorted(map(canon, serial))
    # wall-clock: the expectation depends on the silicon actually
    # granted to this process — 4 workers need 4 cores for the 2.5x
    # acceptance target; on fewer cores the run only checks correctness
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    default_target = 2.5 if cores >= 4 else (1.2 if cores >= 2 else 0.0)
    min_speedup = float(os.environ.get("SWEEP_MIN_SPEEDUP", default_target))
    assert speedup >= min_speedup, (
        f"parallel speedup {speedup:.2f} < {min_speedup} on {cores} cores"
    )
