"""FIG13 — MPI+OpenMP lazy Game of Life in debug mode (paper Fig. 13).

Paper claims, for
``easypap --kernel life --variant mpi_omp --mpirun "-np 2" --monitoring --debug M``
on the sparse diagonal-planers dataset:
  * every MPI process pops its own monitoring windows (debug M);
  * each process contains 4 threads and works on half of the image;
  * only tiles located near the diagonals are computed (lazy evaluation).
"""

import numpy as np

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.view.ascii import render_tiling

CFG = RunConfig(kernel="life", variant="mpi_omp", dim=256, tile_w=16,
                tile_h=16, iterations=8, nthreads=4, arg="diag", mpi_np=2,
                monitoring=True, debug="M")


def run_fig13():
    return run(CFG)


def test_fig13_mpi_life(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)

    # correctness first: distributed == sequential
    ref = run(RunConfig(kernel="life", variant="seq", dim=256, tile_w=16,
                        tile_h=16, iterations=8, arg="diag"))
    assert np.array_equal(result.image, ref.image)

    rows = []
    tilings = []
    half = 256 // 16 // 2
    for rank, rr in enumerate(result.rank_results):
        rec = rr.monitor.records[-1]
        computed = np.argwhere(rec.tiling >= 0)
        threads = len(set(np.unique(rec.tiling[rec.tiling >= 0]).tolist()))
        comm = rr.context.mpi.comm.stats
        rows.append([
            rank,
            threads,
            f"rows {computed[:, 0].min()}..{computed[:, 0].max()}",
            f"{rec.computed_fraction() * 100:.1f}%",
            comm.messages_sent,
            comm.bytes_sent,
        ])
        tilings.append((rank, rec))
    table = fmt_table(
        ["rank", "threads seen", "tile rows computed", "tiles computed",
         "msgs sent", "bytes sent"],
        rows,
    )
    maps = "\n\n".join(
        f"rank {rank} tiling window ('.' = skipped by lazy evaluation):\n"
        + render_tiling(rec.tiling)
        for rank, rec in tilings
    )
    text = (
        table + "\n\n" + maps
        + "\n\npaper: each process has 4 threads, works on half the image, "
        "and only diagonal tiles are computed."
    )
    report("fig13_mpi_life", text)

    for rank, rr in enumerate(result.rank_results):
        rec = rr.monitor.records[-1]
        computed_rows = np.argwhere(rec.tiling >= 0)[:, 0]
        if rank == 0:
            assert computed_rows.max() < half
        else:
            assert computed_rows.min() >= half
        assert rec.computed_fraction() < 0.5  # sparse: diagonals only
        threads = set(np.unique(rec.tiling[rec.tiling >= 0]).tolist())
        assert len(threads) == 4
