"""FIG13 — MPI+OpenMP lazy Game of Life in debug mode (paper Fig. 13).

Paper claims, for
``easypap --kernel life --variant mpi_omp --mpirun "-np 2" --monitoring --debug M``
on the sparse diagonal-planers dataset:
  * every MPI process pops its own monitoring windows (debug M);
  * each process contains 4 threads and works on half of the image;
  * only tiles located near the diagonals are computed (lazy evaluation).

Run as a script, this file is also the perf gate for the real-process
MPI substrate: it times the same kernel at ``-np 2`` against ``-np 1``
(both on ``mpi_backend="procs"``) and reports the speedup as a median
of paired ratios.  Ranks are real processes, so on a multicore host
two ranks must beat one; a single-CPU host cannot show real
parallelism, so there the check only validates that the numbers get
recorded (the JSON carries ``cpu_count`` so a single-core baseline
never gates a multicore run).

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_fig13_mpi_life.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_fig13_mpi_life.py \
        --out BENCH_mpi.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_fig13_mpi_life.py \
        --quick --check BENCH_mpi.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.mpi.substrate import shutdown_mpi_pools
from repro.view.ascii import render_tiling

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_mpi.json"

#: acceptance gate (multicore hosts only): two rank processes must beat
#: one on wall-clock by at least this factor (best paired ratio)
GATE_SPEEDUP = 1.1

#: the timed workload is the *dense* dataset: every tile dirty, so the
#: band split halves each rank's compute and the ratio measures the
#: substrate, not the dataset's sparsity pattern
TIMED = dict(kernel="life", variant="mpi_omp", dim=512, tile_w=32, tile_h=32,
             iterations=8, nthreads=4, arg="random", seed=42,
             mpi_backend="procs")

CFG = RunConfig(kernel="life", variant="mpi_omp", dim=256, tile_w=16,
                tile_h=16, iterations=8, nthreads=4, arg="diag", mpi_np=2,
                monitoring=True, debug="M")


def run_fig13():
    return run(CFG)


def test_fig13_mpi_life(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)

    # correctness first: distributed == sequential
    ref = run(RunConfig(kernel="life", variant="seq", dim=256, tile_w=16,
                        tile_h=16, iterations=8, arg="diag"))
    assert np.array_equal(result.image, ref.image)

    rows = []
    tilings = []
    half = 256 // 16 // 2
    for rank, rr in enumerate(result.rank_results):
        rec = rr.monitor.records[-1]
        computed = np.argwhere(rec.tiling >= 0)
        threads = len(set(np.unique(rec.tiling[rec.tiling >= 0]).tolist()))
        comm = rr.context.mpi.comm.stats
        rows.append([
            rank,
            threads,
            f"rows {computed[:, 0].min()}..{computed[:, 0].max()}",
            f"{rec.computed_fraction() * 100:.1f}%",
            comm.messages_sent,
            comm.bytes_sent,
        ])
        tilings.append((rank, rec))
    table = fmt_table(
        ["rank", "threads seen", "tile rows computed", "tiles computed",
         "msgs sent", "bytes sent"],
        rows,
    )
    maps = "\n\n".join(
        f"rank {rank} tiling window ('.' = skipped by lazy evaluation):\n"
        + render_tiling(rec.tiling)
        for rank, rec in tilings
    )
    text = (
        table + "\n\n" + maps
        + "\n\npaper: each process has 4 threads, works on half the image, "
        "and only diagonal tiles are computed."
    )
    report("fig13_mpi_life", text)

    for rank, rr in enumerate(result.rank_results):
        rec = rr.monitor.records[-1]
        computed_rows = np.argwhere(rec.tiling >= 0)[:, 0]
        if rank == 0:
            assert computed_rows.max() < half
        else:
            assert computed_rows.min() >= half
        assert rec.computed_fraction() < 0.5  # sparse: diagonals only
        threads = set(np.unique(rec.tiling[rec.tiling >= 0]).tolist())
        assert len(threads) == 4


# --------------------------------------------------------------------------
# perf gate: -np 2 vs -np 1 on the process substrate
# --------------------------------------------------------------------------


def _timed(np_: int) -> float:
    cfg = RunConfig(mpi_np=np_, **TIMED)
    t0 = time.perf_counter()
    run(cfg)
    return time.perf_counter() - t0


def measure(reps: int) -> dict:
    # warmups spawn both persistent rank pools, so the timed reps see
    # the steady state the substrate is designed around
    _timed(1)
    _timed(2)
    np1_ts, np2_ts = [], []
    for _ in range(reps):
        np1_ts.append(_timed(1))
        np2_ts.append(_timed(2))
    ratios = sorted(a / b for a, b in zip(np1_ts, np2_ts))
    frames = TIMED["iterations"]
    return {
        "schema": 1,
        "cpu_count": os.cpu_count() or 1,
        "gate": {"min_speedup_np2": GATE_SPEEDUP, "needs_cpus": 2},
        "results": {
            "fps_np1": round(frames / min(np1_ts), 3),
            "fps_np2": round(frames / min(np2_ts), 3),
            # median paired ratio: the stable regression statistic
            "speedup_np2": round(ratios[len(ratios) // 2], 3),
            # best paired ratio: what the machine is capable of (the
            # absolute gate uses this, best-of-N convention)
            "speedup_np2_best": round(ratios[-1], 3),
        },
    }


def render(payload: dict) -> str:
    r = payload["results"]
    rows = [[
        f"life-{TIMED['dim']}-random", payload["cpu_count"],
        r["fps_np1"], r["fps_np2"], f"{r['speedup_np2']:.2f}x",
    ]]
    return fmt_table(
        ["config", "cpus", "fps np1", "fps np2", "np2/np1"], rows,
    )


def check(measured: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failures (empty == pass)."""
    if measured["cpu_count"] < 2:
        print("mpi perf gate skipped: host has a single CPU "
              "(no real parallelism to measure)")
        return []
    failures = []
    got = measured["results"]
    if got["speedup_np2_best"] < GATE_SPEEDUP:
        failures.append(
            f"np2 best speedup {got['speedup_np2_best']:.2f}x over np1 is "
            f"below the {GATE_SPEEDUP:.1f}x floor "
            f"({measured['cpu_count']} CPUs)"
        )
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("cpu_count", 1) < 2:
        print(f"baseline {baseline_path} was measured on a single-CPU host; "
              "ratio comparison skipped")
        return failures
    base = baseline["results"]
    floor = base["speedup_np2"] * (1.0 - tolerance)
    if got["speedup_np2"] < floor:
        failures.append(
            f"np2/np1 speedup {got['speedup_np2']:.2f}x regressed more "
            f"than {tolerance:.0%} below baseline {base['speedup_np2']:.2f}x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="perf gate: MPI life at -np 2 vs -np 1 (procs substrate)")
    ap.add_argument("--quick", action="store_true",
                    help="fewer reps (CI smoke)")
    ap.add_argument("--reps", type=int, default=None,
                    help="paired reps; default 7, 3 with --quick")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured baseline JSON here")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional speedup regression (default 0.30)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    try:
        payload = measure(reps)
    finally:
        shutdown_mpi_pools()
    report("fig13_mpi_perf", render(payload))

    if args.out:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.out}")
    if args.check:
        failures = check(payload, args.check, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"mpi perf check OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
