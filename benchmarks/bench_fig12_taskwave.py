"""FIG11/12 — task dependencies and the wave of tasks (paper Figs. 11–12).

Paper claims:
  * the down-right phase of connected components runs as OpenMP tasks
    with ``depend(in: tile[i-1][j], tile[i][j-1]) depend(inout: tile[i][j])``;
  * EASYVIEW visualizes a *wave of tasks moving forward* (anti-diagonal
    wavefront, Fig. 12);
  * over-constraining dependencies (the common student bug) serializes
    execution — visible immediately in the Gantt chart.
"""


from _common import OUT_DIR, fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.sched.costmodel import CostModel
from repro.sched.dag_sim import simulate_dag
from repro.sched.taskgraph import TaskGraph
from repro.trace.gantt import GanttChart

CFG = RunConfig(kernel="cc", variant="omp_task", dim=256, tile_w=32,
                tile_h=32, iterations=8, nthreads=8, trace=True, seed=4)


def run_fig12():
    return run(CFG)


def test_fig12_taskwave(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    trace = result.trace
    events = [e for e in trace.events if e.kind == "task_dr" and e.iteration == 1]

    # group tasks by anti-diagonal; report each wave's start window
    waves: dict[int, list[float]] = {}
    for e in events:
        waves.setdefault(e.y // 32 + e.x // 32, []).append(e.start)
    rows = []
    prev_min = -1.0
    monotone = True
    for d in sorted(waves):
        lo, hi = min(waves[d]), max(waves[d])
        rows.append([d, len(waves[d]), f"{lo * 1e6:.1f}", f"{hi * 1e6:.1f}"])
        if lo < prev_min:
            monotone = False
        prev_min = lo
    table = fmt_table(["anti-diagonal", "tasks", "first start (us)",
                       "last start (us)"], rows)

    # the student bug: chain every task after the previous submission
    zero = CostModel(1.0, 0.0, 0.0, 0.0)
    g = TaskGraph()
    prev = None
    for i in range(64):
        prev = g.add_task(i, cost=1.0,
                          depends_on=[] if prev is None else [prev])
    serial = simulate_dag(g, 8, model=zero).makespan

    svg = GanttChart(trace, 1, 1).to_svg().save(OUT_DIR / "fig12_wave.svg")
    text = (
        "down-right phase, iteration 1 (8x8 tile grid, 8 CPUs):\n"
        + table
        + f"\n\nwave fronts monotone: {monotone}"
        + f"\nover-constrained version (student bug): 64 unit tasks on 8 "
        + f"CPUs -> makespan {serial:.0f} units (fully serialized)"
        + f"\nGantt SVG of the wave: {svg}"
    )
    report("fig12_taskwave", text)

    assert monotone, "wave fronts must start in anti-diagonal order"
    assert len(waves) == 15  # 2*8 - 1 anti-diagonals
    assert serial == 64.0
