"""ABL1 — ablation: dispatch overhead vs tile granularity.

Design-choice study (DESIGN.md): the cost model charges a per-chunk
dispatch overhead, which is what makes the grain trade-off of the
Mandelbrot assignment real — tiny tiles balance load perfectly but pay
scheduler overhead; huge tiles starve the team (paper §III-A: "the size
of tiles depends on the dimension of the image as well as on the
underlying hardware").

Expected shape: U-curve of completion time over tile size for mandel;
monotone increase (pure overhead) for the no-op ``none`` kernel; and a
zero-overhead counterfactual in which the smallest tiles always win.
"""

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.expt.replay import capture_log, replay_log

GRAINS = [4, 8, 16, 32, 64, 128]


def run_abl1():
    results = {}
    for grain in GRAINS:
        cfg = RunConfig(kernel="mandel", variant="omp_tiled", dim=256,
                        tile_w=grain, tile_h=grain, iterations=2, nthreads=4,
                        schedule="dynamic", arg="128")
        log, model = capture_log(cfg)
        with_ovh = replay_log(log, nthreads=4, policy=cfg.policy(), model=model)
        no_ovh = replay_log(log, nthreads=4, policy=cfg.policy(),
                            model=model.zero_overhead())
        none_cfg = cfg.with_(kernel="none")
        none_time = run(none_cfg).virtual_time
        results[grain] = (with_ovh, no_ovh, none_time)
    return results


def test_abl_overhead(benchmark):
    results = benchmark.pedantic(run_abl1, rounds=1, iterations=1)
    rows = [
        [g, f"{w * 1e3:.3f}", f"{n * 1e3:.3f}", f"{(w - n) * 1e3:.3f}",
         f"{o * 1e6:.1f}"]
        for g, (w, n, o) in results.items()
    ]
    table = fmt_table(
        ["grain", "mandel time (ms)", "no-overhead time (ms)",
         "overhead cost (ms)", "none-kernel time (us)"],
        rows,
    )
    with_t = {g: w for g, (w, _, _) in results.items()}
    none_t = {g: o for g, (_, _, o) in results.items()}
    best = min(with_t, key=with_t.get)
    text = (
        table
        + f"\n\nbest grain with overhead model: {best} "
        + "(U-curve: balance vs dispatch cost)"
        + "\nwithout overheads, finer tiles monotonically win "
        + "(counterfactual shows the model is what creates the trade-off)."
    )
    report("abl_overhead", text)

    # U-curve: the optimum is strictly inside the sweep
    assert best not in (GRAINS[0], GRAINS[-1])
    # pure-overhead probe: finer tiles strictly more expensive
    assert none_t[4] > none_t[16] > none_t[128]
    # counterfactual: without overheads, 4 <= 8 <= ... (no U-curve)
    no_t = {g: n for g, (_, n, _) in results.items()}
    assert no_t[4] <= no_t[64] and no_t[8] <= no_t[128]
