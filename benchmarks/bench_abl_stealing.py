"""ABL2 — ablation: stealing granularity in nonmonotonic:dynamic.

Design-choice study (DESIGN.md): a thief can take one chunk from the
victim's tail (default, LLVM-like) or half the victim's remaining block
(``steal_half``).  Expected shape: steal-half performs comparably on
imbalanced work while issuing far fewer (more expensive) steal
operations; on balanced work neither steals at all.
"""

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.expt.replay import capture_log
from repro.sched.policies import NonMonotonicDynamic
from repro.sched.simulator import simulate


def run_abl2():
    cfg = RunConfig(kernel="mandel", variant="omp_tiled", dim=256, tile_w=8,
                    tile_h=8, iterations=1, nthreads=4, arg="128")
    log, model = capture_log(cfg)
    works = next(e[1] for e in log if e[0] == "par")
    costs = model.times_of(works)
    out = {}
    for label, policy in [
        ("steal-one", NonMonotonicDynamic(1)),
        ("steal-half", NonMonotonicDynamic(1, steal_half=True)),
    ]:
        res = simulate(costs, policy, 4, model=model)
        out[label] = (res.makespan, res.steals)
    # balanced workload control
    uniform = [costs[0]] * len(costs)
    for label, policy in [
        ("steal-one (uniform)", NonMonotonicDynamic(1)),
        ("steal-half (uniform)", NonMonotonicDynamic(1, steal_half=True)),
    ]:
        res = simulate(uniform, policy, 4, model=model)
        out[label] = (res.makespan, res.steals)
    return out


def test_abl_stealing(benchmark):
    out = benchmark.pedantic(run_abl2, rounds=1, iterations=1)
    rows = [[k, f"{ms * 1e3:.3f}", st] for k, (ms, st) in out.items()]
    table = fmt_table(["configuration", "makespan (ms)", "steals"], rows)
    report(
        "abl_stealing",
        table + "\n\nfinding: steal-half issues far fewer steal operations "
        "but loses makespan on mandel — a stolen half-block executes "
        "atomically (it cannot be re-stolen), so a thief that grabs a "
        "heavy half becomes the tail bottleneck.  Steal-one keeps the "
        "tail fine-grained, which is why LLVM-style runtimes steal small."
        "\nOn uniform work neither configuration steals at all.",
    )

    one_ms, one_steals = out["steal-one"]
    half_ms, half_steals = out["steal-half"]
    assert half_steals < one_steals / 2
    # the trade-off is real but bounded: no catastrophic regression
    assert half_ms < 2.0 * one_ms
    assert half_ms > one_ms  # fine-grained stealing wins on irregular work
    assert out["steal-one (uniform)"][1] == 0
    assert out["steal-half (uniform)"][1] == 0
