"""Pytest options shared by the figure-reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.core.config import BACKENDS


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="sim",
        choices=list(BACKENDS),
        help="execution backend for the benchmark sweeps: 'sim' (default) "
        "replays work profiles on the virtual clock, so the figures are "
        "machine-independent; 'threads' and 'procs' measure wall-clock "
        "and need real cores for the paper's shape claims to hold",
    )


@pytest.fixture
def bench_backend(request) -> str:
    return request.config.getoption("--backend")
