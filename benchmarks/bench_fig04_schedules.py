"""FIG4 — tiling windows under the four loop-scheduling policies.

Paper claims (Fig. 4):
  (a) static          — tiles evenly distributed in contiguous chunks;
  (b) dynamic,2       — opportunistic, interleaved assignment;
  (c) nonmonotonic:dynamic — static distribution first, work stealing
                        eventually corrects imbalance;
  (d) guided          — chunk sizes decrease over time.
"""

import numpy as np

from _common import fmt_table, report
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.sched.costmodel import DEFAULT_COST_MODEL
from repro.sched.policies import parse_schedule
from repro.sched.simulator import simulate
from repro.view.ascii import render_tiling

CFG = dict(kernel="mandel", variant="omp_tiled", dim=256, tile_w=32,
           tile_h=32, iterations=1, nthreads=4, monitoring=True, arg="128")

SCHEDULES = ["static", "dynamic,2", "nonmonotonic:dynamic", "guided"]


def run_fig4():
    return {s: run(RunConfig(schedule=s, **CFG))for s in SCHEDULES}


def _ownership_changes(tiling: np.ndarray) -> int:
    flat = tiling.ravel()
    return int((np.diff(flat) != 0).sum())


def test_fig04_schedules(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    sections = []
    rows = []
    for s in SCHEDULES:
        rec = results[s].monitor.records[0]
        rows.append([
            s,
            _ownership_changes(rec.tiling),
            int(rec.stolen.sum()),
            f"{results[s].virtual_time * 1e3:.2f} ms",
        ])
        sections.append(f"-- {s} --\n" + render_tiling(rec.tiling, rec.stolen))
    table = fmt_table(["schedule", "ownership changes", "stolen tiles", "time"], rows)

    # (d) guided chunk-size decay, straight from the simulator
    res = simulate([1e-4] * 64, parse_schedule("guided"), 4, model=DEFAULT_COST_MODEL)
    sizes = res.chunk_sizes()
    text = (
        table
        + "\n\n"
        + "\n\n".join(sections)
        + "\n\nguided chunk sizes in grab order: "
        + " ".join(map(str, sizes))
        + "\n\npaper claims: (a) static = contiguous blocks, (b) dynamic "
        "interleaves, (c) nonmonotonic = static + steals, (d) guided sizes "
        "decrease."
    )
    report("fig04_schedules", text)

    recs = {s: results[s].monitor.records[0] for s in SCHEDULES}
    assert _ownership_changes(recs["static"].tiling) == CFG["nthreads"] - 1
    assert _ownership_changes(recs["dynamic,2"].tiling) > 8
    assert recs["nonmonotonic:dynamic"].stolen.sum() > 0
    assert not recs["static"].stolen.any()
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert sizes[0] == 8  # ceil(64 / (2 * 4 cpus))
