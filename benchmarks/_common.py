"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark prints the rows/series of the paper artifact it
regenerates and also writes them to ``benchmarks/out/<name>.txt`` so the
results survive pytest's output capture; EXPERIMENTS.md records the
paper-claim vs measured comparison based on these outputs.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def report(name: str, text: str) -> Path:
    """Print a benchmark report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)
    return path


def gate_skip_reason(
    measured: dict, needs_cpus: int = 2, capability: str | None = None
) -> str | None:
    """Hardware/capability guard shared by the perf-gate benchmarks.

    Returns ``None`` when the absolute gate should be enforced on this
    measurement, else a human-readable reason it cannot be: the payload
    was recorded on a host with fewer than ``needs_cpus`` CPUs (its
    ``cpu_count`` field), or an optional ``capability`` flag recorded in
    the payload (e.g. ``"numba"``) is false/absent.  Callers apply this
    to the measured payload (skip the absolute gate) *and* to the
    committed baseline (skip the regression-ratio comparison — a
    baseline that could not exhibit the gated behaviour must never gate
    a host that can).
    """
    cpus = int(measured.get("cpu_count", 1))
    if cpus < needs_cpus:
        return f"host has {cpus} CPU(s); the gate needs >= {needs_cpus}"
    if capability is not None and not measured.get(capability):
        return f"optional capability {capability!r} is unavailable"
    return None


def fmt_table(headers: list[str], rows: list[list]) -> str:
    """Minimal fixed-width table formatter."""
    cols = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)]
    def line(cells):
        return " | ".join(f"{str(c):>{w}}" for c, w in zip(cells, cols))
    sep = "-+-".join("-" * w for w in cols)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])
