"""Bounded shared-memory ring buffers for cross-process telemetry.

Each procs worker owns one single-producer/single-consumer ring lane:
a monotonic ``write_count`` cell in a shared int64 header plus ``cap``
fixed-width float64 record slots.  A writer *never blocks and never
waits*: it overwrites slot ``count % cap`` and bumps its count, so a
full ring silently recycles its oldest slot.  The master drains lanes
only at quiescent points (between regions, at iteration boundaries),
reconstructs each record's sequence number from the count arithmetic,
and reports everything that was overwritten as *dropped events* —
loss is bounded, observable, and never a deadlock.

The functions here operate on plain numpy arrays; the procs pool maps
them onto POSIX shared memory, and the in-process tests map them onto
ordinary arrays.  Record layout (10 float64 lanes)::

    [kind, seq, f0, f1, f2, f3, f4, f5, f6, f7]

    kind EXEC      f0=pos   f1=start  f2=end     (wall-clock, region-relative)
    kind FP_READ   f0=pos   f1=buf_id f2=x f3=y f4=w f5=h f6=z f7=d
    kind FP_WRITE  f0=pos   f1=buf_id f2=x f3=y f4=w f5=h f6=z f7=d
    kind COUNTER   f0=counter_id  f1=delta       (bus CounterEvent deltas)

``(z, d)`` is the optional depth extent of 3D footprint regions (see
:mod:`repro.core.access`); 2D regions ship the ``(0, 1)`` default.

``pos`` is the per-region task index; ``buf_id`` indexes a per-worker
string-interning table shipped back over the worker's result pipe
(strings cannot cross a numeric ring).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "RECORD_WIDTH",
    "KIND_EXEC",
    "KIND_FP_READ",
    "KIND_FP_WRITE",
    "KIND_COUNTER",
    "RING_CAP_ENV",
    "RING_MAX",
    "ring_capacity",
    "RingWriter",
    "drain_lane",
]

RECORD_WIDTH = 10
KIND_EXEC = 1
KIND_FP_READ = 2
KIND_FP_WRITE = 3
KIND_COUNTER = 4  # e.g. per-rank MPI comm-volume deltas (repro.mpi.substrate)

#: env override for the per-worker ring capacity (records); tests use a
#: tiny value to force overflow deterministically
RING_CAP_ENV = "REPRO_TELEMETRY_RING_CAP"
#: hard upper bound on the auto-sized per-worker capacity
RING_MAX = 1 << 16


def ring_capacity(n_items: int, footprints: bool) -> int:
    """Per-worker slot count for a region of ``n_items`` tasks.

    Sized so a region's worth of events fits without wrapping in the
    common case (footprints multiply the record count by the number of
    declared accesses, bounded here at a generous per-task estimate);
    ``REPRO_TELEMETRY_RING_CAP`` overrides for backpressure testing.
    """
    env = os.environ.get(RING_CAP_ENV)
    if env:
        return max(1, int(env))
    per_task = 65 if footprints else 1
    return max(1024, min(n_items * per_task, RING_MAX))


class RingWriter:
    """Single-producer view of one worker's lane. Never blocks."""

    __slots__ = ("_header", "_payload", "_worker", "_cap", "_count")

    def __init__(self, header: np.ndarray, payload: np.ndarray, worker: int) -> None:
        self._header = header
        self._payload = payload[worker]
        self._worker = worker
        self._cap = payload.shape[1]
        self._count = int(header[worker])

    def emit(
        self,
        kind: int,
        f0: float = 0.0,
        f1: float = 0.0,
        f2: float = 0.0,
        f3: float = 0.0,
        f4: float = 0.0,
        f5: float = 0.0,
        f6: float = 0.0,
        f7: float = 0.0,
    ) -> None:
        count = self._count
        slot = self._payload[count % self._cap]
        slot[0] = kind
        slot[1] = count
        slot[2] = f0
        slot[3] = f1
        slot[4] = f2
        slot[5] = f3
        slot[6] = f4
        slot[7] = f5
        slot[8] = f6
        slot[9] = f7
        self._count = count + 1
        self._header[self._worker] = self._count  # publish after the payload


def drain_lane(
    header: np.ndarray, payload: np.ndarray, worker: int, consumed: int
) -> tuple[np.ndarray, int, int]:
    """Drain one worker's lane from sequence ``consumed`` onwards.

    Returns ``(records, new_consumed, dropped)`` where ``records`` is an
    ``(n, RECORD_WIDTH)`` copy in sequence order, ``new_consumed`` the
    next sequence number to resume from, and ``dropped`` how many events
    were overwritten before this drain could observe them.

    Must only be called at quiescent points (the lane's producer is not
    concurrently writing) — the procs master drains between regions and
    at iteration boundaries, which guarantees this.
    """
    total = int(header[worker])
    avail = total - consumed
    if avail <= 0:
        return np.empty((0, RECORD_WIDTH)), total, 0
    cap = payload.shape[1]
    dropped = max(0, avail - cap)
    start = total - min(avail, cap)
    seqs = np.arange(start, total)
    records = payload[worker, seqs % cap].copy()
    return records, total, dropped
