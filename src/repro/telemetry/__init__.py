"""Unified telemetry: one backend-agnostic instrumentation pipeline.

See :mod:`repro.telemetry.events` for the event protocol,
:mod:`repro.telemetry.bus` for the in-process channel and consumer
API, :mod:`repro.telemetry.ring` for the shared-memory channel procs
workers write, and ``docs/observability.md`` for the full picture.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import (
    MASTER_PRODUCER,
    AnnotationEvent,
    CounterEvent,
    FootprintEvent,
    IterationMarkEvent,
    TelemetryEvent,
    TileExecEvent,
)

__all__ = [
    "TelemetryBus",
    "MASTER_PRODUCER",
    "TelemetryEvent",
    "TileExecEvent",
    "FootprintEvent",
    "CounterEvent",
    "IterationMarkEvent",
    "AnnotationEvent",
]
