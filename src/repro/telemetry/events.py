"""The telemetry event protocol.

Every observable fact a run produces — a tile execution, a memory
footprint, a counter bump, an iteration boundary, a metadata
annotation — is one structured event.  Producers (the scheduling
simulator, the threads team, procs pool workers) emit events; the
:class:`~repro.telemetry.bus.TelemetryBus` stamps each one with its
producer id and a per-producer sequence number and fans it out to the
attached consumers (trace recorder, monitor, analyzer, expTools
metrics).

The protocol is transport-agnostic: in-process producers publish the
dataclasses below directly, while procs workers serialize the same
facts as fixed-width numeric records through the shared-memory ring
(:mod:`repro.telemetry.ring`) and the master re-publishes them on
drain.  Sequence numbers make loss observable: a gap between
consecutive events of one producer is a dropped event, never silent
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.access import Footprint
from repro.sched.timeline import TaskExec

__all__ = [
    "MASTER_PRODUCER",
    "TelemetryEvent",
    "TileExecEvent",
    "FootprintEvent",
    "CounterEvent",
    "IterationMarkEvent",
    "AnnotationEvent",
]

#: producer id of the master process / main thread (pool workers use
#: their worker rank, MPI ranks their rank offset by the team size)
MASTER_PRODUCER = -1


@dataclass
class TelemetryEvent:
    """Base event: producer identity + per-producer sequence number.

    Both fields are stamped by the bus (or the ring writer) at publish
    time; constructors of concrete events never set them.
    """

    producer: int = field(default=MASTER_PRODUCER, init=False)
    seq: int = field(default=-1, init=False)


@dataclass
class TileExecEvent(TelemetryEvent):
    """One task execution (a tile body, a task, an instrumented section).

    ``exec`` carries the scheduled item, the (virtual) CPU and the
    start/end times; ``footprint`` the read/write regions recorded
    while the body ran, when footprint collection was active.
    """

    exec: TaskExec = None  # type: ignore[assignment]
    footprint: Footprint | None = None


@dataclass
class FootprintEvent(TelemetryEvent):
    """A task footprint travelling separately from its execution event
    (the ring channel ships footprints region by region)."""

    index: int = -1
    footprint: Footprint = None  # type: ignore[assignment]


@dataclass
class CounterEvent(TelemetryEvent):
    """A monotonic counter increment (steals, regions, dropped events)."""

    name: str = ""
    value: float = 1


@dataclass
class IterationMarkEvent(TelemetryEvent):
    """An iteration boundary: the monitor closes its per-iteration
    snapshot when this arrives."""

    iteration: int = 0
    now: float = 0.0


@dataclass
class AnnotationEvent(TelemetryEvent):
    """Free-form run metadata (``clock="wall"``, dropped-event totals);
    the trace consumer folds it into ``meta.extra``."""

    data: dict[str, Any] = field(default_factory=dict)
