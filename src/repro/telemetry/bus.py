"""The telemetry bus: one stream, many consumers.

The bus is the single attachment point between whatever executes work
(sim scheduler, threads team, procs pool, task DAGs, MPI ranks) and
whatever observes it (trace recorder, activity monitor, race analyzer,
expTools metrics).  Producers call :meth:`TelemetryBus.publish_region`
/ :meth:`counter` / :meth:`iteration_mark` / :meth:`annotate`; each
event is stamped with its producer id and a per-producer sequence
number and dispatched synchronously, in publish order, to every
attached consumer.

A consumer is any object implementing a subset of:

``on_tile_exec(event)``
    one :class:`~repro.telemetry.events.TileExecEvent` per executed
    task, in region order;
``on_region_end(timeline)``
    the full region :class:`~repro.sched.timeline.Timeline` after its
    tile events were dispatched (the monitor's heatmaps want whole
    regions);
``on_iteration_mark(event)``
    iteration boundaries;
``on_annotation(event)``
    run metadata;
``on_counter(event)``
    counter increments (the bus also aggregates these itself — see
    :attr:`TelemetryBus.counters` — so most consumers skip this).

Dispatch is synchronous and allocation-light on purpose: with no
consumers attached, ``publish_region`` is a counter bump and an early
return, which is what keeps the perf-mode fastpath viable.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.access import Footprint
from repro.sched.timeline import Timeline
from repro.telemetry.events import (
    MASTER_PRODUCER,
    AnnotationEvent,
    CounterEvent,
    IterationMarkEvent,
    TelemetryEvent,
    TileExecEvent,
)

__all__ = ["TelemetryBus"]


class TelemetryBus:
    """Synchronous in-process telemetry channel.

    Remote producers (procs workers) do not hold a bus: they write
    fixed-width records into a shared-memory ring
    (:mod:`repro.telemetry.ring`) which the master decodes and
    re-publishes here, so consumers see one uniform stream regardless
    of where the work ran.
    """

    def __init__(self) -> None:
        self._consumers: list[Any] = []
        self._seq: dict[int, int] = {}
        #: aggregated counters; always maintained, even with no consumers
        self.counters: dict[str, float] = {}

    # -- consumer management ----------------------------------------------

    def attach(self, consumer: Any) -> Any:
        if consumer not in self._consumers:
            self._consumers.append(consumer)
        return consumer

    def detach(self, consumer: Any) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    @property
    def consumers(self) -> Sequence[Any]:
        return tuple(self._consumers)

    @property
    def wants_timelines(self) -> bool:
        """True when at least one attached consumer observes executions.

        This is *the* fastpath-eligibility question: a region may skip
        per-tile execution (and therefore per-tile events) only when
        nobody is listening.
        """
        return any(
            hasattr(c, "on_tile_exec") or hasattr(c, "on_region_end")
            for c in self._consumers
        )

    # -- stamping & dispatch ----------------------------------------------

    def _stamp(self, event: TelemetryEvent, producer: int) -> TelemetryEvent:
        seq = self._seq.get(producer, 0)
        event.producer = producer
        event.seq = seq
        self._seq[producer] = seq + 1
        return event

    def publish(self, event: TelemetryEvent, producer: int = MASTER_PRODUCER) -> None:
        """Stamp one event and dispatch it to every attached consumer."""
        self._stamp(event, producer)
        if isinstance(event, TileExecEvent):
            hook = "on_tile_exec"
        elif isinstance(event, IterationMarkEvent):
            hook = "on_iteration_mark"
        elif isinstance(event, AnnotationEvent):
            hook = "on_annotation"
        elif isinstance(event, CounterEvent):
            self.counters[event.name] = self.counters.get(event.name, 0) + event.value
            hook = "on_counter"
        else:  # pragma: no cover - protocol extension point
            hook = "on_event"
        for c in self._consumers:
            fn = getattr(c, hook, None)
            if fn is not None:
                fn(event)

    # -- producer-facing conveniences --------------------------------------

    def publish_region(
        self,
        timeline: Timeline | Iterable,
        footprints: Sequence[Footprint | None] | None = None,
        producer: int = MASTER_PRODUCER,
    ) -> None:
        """Publish one executed region: a TileExecEvent per task, then
        the whole timeline to ``on_region_end`` consumers.

        ``footprints``, when given, is indexed by each event's
        ``meta["index"]`` (the per-region task index), matching how the
        schedulers number tasks.  Events without an index fall back to
        a footprint already carried in their meta (task-DAG regions
        attach it inline).
        """
        self.counters["regions"] = self.counters.get("regions", 0) + 1
        if not self._consumers:
            return
        for e in timeline:
            fp = None
            if footprints is not None:
                idx = e.meta.get("index")
                if idx is not None and idx < len(footprints):
                    fp = footprints[idx]
            if fp is None:
                fp = e.meta.get("footprint")
            ev = TileExecEvent(exec=e, footprint=fp)
            self._stamp(ev, producer)
            for c in self._consumers:
                fn = getattr(c, "on_tile_exec", None)
                if fn is not None:
                    fn(ev)
        for c in self._consumers:
            fn = getattr(c, "on_region_end", None)
            if fn is not None:
                fn(timeline)

    def counter(self, name: str, value: float = 1, producer: int = MASTER_PRODUCER) -> None:
        self.publish(CounterEvent(name=name, value=value), producer)

    def iteration_mark(self, iteration: int, now: float) -> None:
        self.publish(IterationMarkEvent(iteration=iteration, now=now))

    def annotate(self, **data: Any) -> None:
        self.publish(AnnotationEvent(data=data))

    # -- loss accounting ----------------------------------------------------

    @property
    def dropped_events(self) -> int:
        return int(self.counters.get("dropped_events", 0))

    def record_dropped(self, count: int, producer: int = MASTER_PRODUCER) -> None:
        if count:
            self.counter("dropped_events", count, producer)
