"""The ``easypap`` command-line interface.

Mirrors the paper's invocations::

    easypap --kernel mandel --variant seq --size 2048
    easypap --kernel mandel --variant omp_tiled --tile-size 16 --monitoring
    easypap --kernel mandel --variant omp_tiled --tile-size 16 \
            --iterations 50 --no-display
    easypap --kernel life --variant mpi_omp --mpirun "-np 2" \
            --monitoring --debug M

Performance mode prints ``N iterations completed in X ms`` and can
append the run (with its full configuration) to a CSV consumed by
``easyplot`` — the workflow of paper Figs. 5–6.

Display being file-based here, ``--display`` dumps a PPM frame per
iteration into ``--output-dir``; ``--monitoring`` additionally prints
the terminal versions of the Tiling and Activity windows.
"""

from __future__ import annotations

import argparse
import io
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

from repro.core.config import BACKENDS, DOMAINS, MPI_BACKENDS, RunConfig
from repro.core.engine import run
from repro.core.kernel import get_kernel, list_kernels, load_kernel_module
from repro.errors import ConfigError, EasypapError
from repro.mpi.launcher import parse_mpirun_args
from repro.omp.icv import resolve_icvs
from repro.telemetry.ring import RING_CAP_ENV

__all__ = ["build_parser", "parse_args", "parse_args_strict", "config_from_args", "main"]

#: options whose value legitimately starts with a dash (argparse would
#: otherwise mistake "-np 2" for an option)
_DASH_VALUE_FLAGS = ("--mpirun",)


def _preprocess_argv(argv: list[str]) -> list[str]:
    """Fold ``--mpirun -np 2`` into ``--mpirun=-np 2`` so argparse accepts
    the paper's invocation style."""
    out: list[str] = []
    i = 0
    while i < len(argv):
        a = argv[i]
        if a in _DASH_VALUE_FLAGS and i + 1 < len(argv):
            out.append(f"{a}={argv[i + 1]}")
            i += 2
        else:
            out.append(a)
            i += 1
    return out


def parse_args(argv: list[str] | None = None):
    """Parse an easypap command line (with dash-value folding)."""
    if argv is None:
        argv = sys.argv[1:]
    argv = _preprocess_argv(list(argv))
    return build_parser().parse_args(argv)


def parse_args_strict(
    argv: list[str], parser: argparse.ArgumentParser | None = None
) -> argparse.Namespace:
    """Parse an easypap command line without ever exiting the process.

    ``argparse`` reports errors by printing usage and raising
    ``SystemExit`` — fatal for library callers (an option typo in a
    student's expTools script would kill the interpreter mid-sweep).
    This wrapper converts any parser exit into a :class:`ConfigError`
    carrying argparse's own message.
    """
    parser = parser if parser is not None else build_parser()
    buf = io.StringIO()
    try:
        with redirect_stderr(buf), redirect_stdout(buf):
            return parser.parse_args(_preprocess_argv(list(argv)))
    except SystemExit:
        lines = [ln for ln in buf.getvalue().strip().splitlines() if ln]
        detail = lines[-1] if lines else "invalid arguments"
        raise ConfigError(f"bad easypap arguments {argv!r}: {detail}") from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="easypap",
        description="EASYPAP (Python reproduction): run 2D kernels under "
        "interchangeable parallel variants with monitoring and tracing.",
    )
    p.add_argument("-k", "--kernel", default="none", help="kernel name (see --list-kernels)")
    p.add_argument("-v", "--variant", default="seq", help="variant name (see --list-variants)")
    p.add_argument("-s", "--size", type=int, default=None, metavar="DIM", help="image side length")
    p.add_argument("-sy", "--size-y", type=int, default=None, metavar="DIM",
                   help="image height (defaults to --size: square)")
    p.add_argument("--depth", type=int, default=None, metavar="DIM",
                   help="volume depth (domain slab3d; defaults to --size)")
    p.add_argument("--domain", choices=DOMAINS, default=None,
                   help="work domain: grid (default), wavefront (task DAG), "
                   "quadtree (adaptive tiling), slab3d (3D slabs)")
    p.add_argument("-ts", "--tile-size", type=int, default=None, help="square tile side")
    p.add_argument("-g", "--grain", type=int, default=None, help="alias for --tile-size")
    p.add_argument("-tw", "--tile-width", type=int, default=None)
    p.add_argument("-th", "--tile-height", type=int, default=None)
    p.add_argument("-i", "--iterations", type=int, default=1)
    p.add_argument("-a", "--arg", default=None, help="kernel-specific parameter")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("-n", "--no-display", action="store_true", help="performance mode (default)")
    p.add_argument("--display", action="store_true", help="dump one PPM frame per iteration")
    p.add_argument("-m", "--monitoring", action="store_true",
                   help="record + print monitoring windows")
    p.add_argument("-t", "--trace", action="store_true", help="record an execution trace (.evt)")
    p.add_argument("--trace-file", default=None, help="trace output path")
    p.add_argument("--mpirun", default=None, metavar="ARGS", help='e.g. "-np 2"')
    p.add_argument("--mpi-backend", choices=MPI_BACKENDS, default="procs",
                   help="MPI rank substrate: procs = real processes over "
                   "shared-memory lanes (GIL-free, wall-clock honest); "
                   "inproc = threads in one interpreter (deterministic)")
    p.add_argument("-d", "--debug", default="", help="debug flag letters (M: monitor all ranks)")
    p.add_argument("--nb-threads", type=int, default=None, help="overrides OMP_NUM_THREADS")
    p.add_argument("--schedule", default=None, help="overrides OMP_SCHEDULE")
    p.add_argument("--backend", choices=BACKENDS, default="sim",
                   help="sim: virtual time; threads: real threads (wall clock); "
                   "procs: shared-memory process pool (wall clock, true "
                   "parallelism for pure-Python tile bodies)")
    p.add_argument("--time-scale", type=float, default=1.0, help="cost-model scaling factor")
    p.add_argument("--jitter", type=float, default=0.0,
                   help="relative sigma of simulated system noise (0 = deterministic)")
    p.add_argument("--run-index", type=int, default=0,
                   help="repetition number (seeds the noise stream)")
    p.add_argument("--no-fastpath", action="store_true",
                   help="force the per-tile reference path even in perf mode "
                   "(the whole-frame fast path is bit-identical; this flag "
                   "exists for benchmarking and differential testing)")
    p.add_argument("--no-jit", action="store_true",
                   help="disable the compiled (numba) tile-body tier and run "
                   "the numpy/pure-python reference bodies (bit-identical; "
                   "also controlled by $REPRO_NO_JIT)")
    p.add_argument("--csv", default=None, metavar="PATH", help="append the perf row to a CSV")
    p.add_argument("--machine", default="virtual", help="machine label for CSV rows")
    p.add_argument("--dump", action="store_true", help="save the final image as PPM")
    p.add_argument("--check", action="store_true",
                   help="run the seq variant too and compare final images")
    p.add_argument("--dashboard", default=None, metavar="SVG",
                   help="write the monitoring dashboard (needs --monitoring)")
    p.add_argument("--anim", default=None, metavar="SVG",
                   help="write the animated tiling window (needs --monitoring)")
    p.add_argument("-o", "--output-dir", default="dump", help="directory for dumps/frames")
    p.add_argument("-lk", "--list-kernels", action="store_true")
    p.add_argument("-lv", "--list-variants", action="store_true")
    p.add_argument("--label", default="cur", help="trace label (cur/prev, Fig. 10 comparisons)")
    p.add_argument("--load", action="append", default=[], metavar="FILE",
                   help="Python file registering extra kernels (repeatable)")
    p.add_argument("--check-races", action="store_true",
                   help="record footprints and run the happens-before race "
                   "detector on the run (exit 1 if races are found)")
    p.add_argument("--lint", action="store_true",
                   help="full parallel-correctness lint: races + tile "
                   "partition + double-buffer + shared-accumulator checks")
    p.add_argument("--static-check", action="store_true",
                   help="AST-based static analysis of the selected variant "
                   "(race proof, backend eligibility, inferred halos) "
                   "without executing it; alone, exits after the report "
                   "(1 on a race verdict) — with --check-races, a race "
                   "fails fast and a clean verdict skips dynamic footprint "
                   "recording")
    p.add_argument("--strict-races", action="store_true",
                   help="fail (exit 1) when the race verdict is based on a "
                   "lossy ring (telemetry events were dropped); implies "
                   "--check-races")
    return p


def config_from_args(args: argparse.Namespace, env: dict | None = None) -> RunConfig:
    """Build a :class:`RunConfig` from parsed arguments + ICVs.

    ``env`` substitutes the process environment (hermetic use by
    expTools and tests).
    """
    icvs = resolve_icvs(env, num_threads=args.nb_threads, schedule=args.schedule)
    dim = args.size if args.size is not None else RunConfig.dim
    tile = args.tile_size if args.tile_size is not None else args.grain
    tile_w = args.tile_width if args.tile_width is not None else tile
    tile_h = args.tile_height if args.tile_height is not None else tile
    # EASYPAP default: 32x32 tiles, clipped to the image
    if tile_w is None:
        tile_w = min(RunConfig.tile_w, dim)
    if tile_h is None:
        tile_h = min(RunConfig.tile_h, dim)
    mpi_np = parse_mpirun_args(args.mpirun) if args.mpirun else 0
    domain = getattr(args, "domain", None)
    if domain is None:
        # resolve the kernel's declared domain *before* validation, so
        # geometry knobs (--depth, square wavefront blocks) are checked
        # against the domain the run will actually use
        try:
            domain = get_kernel(args.kernel).domain_for(args.variant)
        except EasypapError:
            domain = "grid"  # unknown kernel: let the run path report it
    return RunConfig(
        kernel=args.kernel,
        variant=args.variant,
        dim=dim,
        tile_w=tile_w,
        tile_h=tile_h,
        iterations=args.iterations,
        nthreads=icvs.num_threads,
        schedule=icvs.schedule.spec(),
        backend=args.backend,
        monitoring=args.monitoring,
        trace=args.trace,
        trace_label=args.label,
        display=args.display and not args.no_display,
        arg=args.arg,
        seed=args.seed,
        mpi_np=mpi_np,
        mpi_backend=getattr(args, "mpi_backend", "procs"),
        debug=args.debug,
        time_scale=args.time_scale,
        jitter=args.jitter,
        run_index=args.run_index,
        fastpath="off" if getattr(args, "no_fastpath", False) else "auto",
        jit="off" if getattr(args, "no_jit", False) else "auto",
        domain=domain,
        dim_y=getattr(args, "size_y", None) or 0,
        dim_z=getattr(args, "depth", None) or 0,
    )


def _run_analysis(args, config, result, static_clean: bool = False) -> int:
    """The ``--check-races`` / ``--lint`` report over a finished run."""
    from repro.analyze import check_races, lint_results

    kernel = get_kernel(config.kernel)
    results = [
        r for r in (result.rank_results or [result]) if r.trace is not None
    ]
    status = 0
    if args.lint:
        lr = lint_results(kernel, config.variant, results, mpi_np=config.mpi_np)
        print(lr.describe())
        if lr.errors:
            status = 1
    elif static_clean:
        print("race check: statically proven clean — dynamic footprint "
              "recording was skipped (static envelope trusted)")
    else:
        for r in results:
            if r.dropped_events:
                print(
                    f"easypap: warning: {r.dropped_events} telemetry event(s) "
                    "dropped by the ring buffer — the race verdict may be "
                    f"incomplete (raise ${RING_CAP_ENV})",
                    file=sys.stderr,
                )
            rr = check_races(r.trace)
            prefix = f"[{r.trace.meta.label}] " if config.mpi_np else ""
            print(prefix + rr.describe())
            if not rr.clean:
                status = 1
    if args.strict_races and any(r.dropped_events for r in results):
        print(
            "easypap: --strict-races: refusing the verdict — the telemetry "
            "ring dropped events, so the happens-before analysis is "
            f"incomplete (raise ${RING_CAP_ENV})",
            file=sys.stderr,
        )
        status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    try:
        for path in args.load:
            load_kernel_module(path)
    except EasypapError as exc:
        print(f"easypap: {exc}", file=sys.stderr)
        return 2
    if args.list_kernels:
        print("\n".join(list_kernels()))
        return 0
    if args.list_variants:
        kernel = get_kernel(args.kernel)
        print("\n".join(kernel.variant_names()))
        return 0
    try:
        config = config_from_args(args)
    except EasypapError as exc:
        print(f"easypap: {exc}", file=sys.stderr)
        return 2
    if args.strict_races:
        args.check_races = True

    static_report = None
    if args.static_check:
        from repro.staticcheck import check_variant

        try:
            static_report = check_variant(get_kernel(config.kernel), config.variant)
        except EasypapError as exc:
            print(f"easypap: {exc}", file=sys.stderr)
            return 2
        print(static_report.describe())
        for line in static_report.footprint_lines():
            print(f"  {line}")
        if static_report.verdict == "race":
            print(
                "easypap: static race verdict — the kernel was not executed",
                file=sys.stderr,
            )
            return 1
        if not (args.check_races or args.lint):
            return 0  # static-only mode: report and stop, no execution

    # a clean static verdict is a trusted input to the dynamic analysis:
    # the race detector can skip footprint recording entirely (the
    # static envelope already proved the accesses disjoint); ``unknown``
    # falls through to the full dynamic path
    static_clean = (
        static_report is not None
        and static_report.verdict == "clean"
        and not args.lint
    )
    if args.check_races or args.lint:
        # the analyses need every rank traced with footprints attached
        debug = config.debug
        if config.mpi_np and "M" not in debug:
            debug += "M"
        try:
            config = config.with_(
                trace=True, footprints=not static_clean, debug=debug
            )
        except EasypapError as exc:
            print(f"easypap: {exc}", file=sys.stderr)
            return 2

    frame_hook = None
    if config.display:
        outdir = Path(args.output_dir)

        def frame_hook(ctx, iteration):  # noqa: F811 - deliberate rebind
            from repro.view.ppm import save_ppm

            # kernels with internal state must refresh the image first
            get_kernel(config.kernel).refresh_img(ctx)
            save_ppm(ctx.img.cur, outdir / f"{config.kernel}-{iteration:04d}.ppm")

    try:
        result = run(config, frame_hook=frame_hook)
    except EasypapError as exc:
        print(f"easypap: {exc}", file=sys.stderr)
        return 1

    print(result.summary())
    if result.early_stop:
        print(f"stabilized at iteration {result.early_stop}")

    if static_report is not None:
        result.counters["staticcheck_ms"] = round(static_report.elapsed_ms, 3)

    # races make the run fail (exit 1) but only after the remaining
    # outputs (trace, dumps, CSV) are produced — the trace is what
    # easyview --races replays
    analysis_status = 0
    if args.check_races or args.lint:
        analysis_status = _run_analysis(args, config, result, static_clean)

    if args.check and config.variant != "seq":
        # students' safety net: replay the run with the reference variant
        # and diff the pixels
        import numpy as np

        ref_cfg = config.with_(variant="seq", mpi_np=0, monitoring=False,
                               trace=False)
        ref = run(ref_cfg)
        if np.array_equal(ref.image, result.image):
            print("check: OK (identical to the seq variant)")
        else:
            bad = int((ref.image != result.image).sum())
            print(f"check: FAILED ({bad} differing pixels vs the seq variant)",
                  file=sys.stderr)
            return 1

    if args.monitoring and result.monitor and result.monitor.records:
        from repro.view.ascii import render_activity, render_idleness_history, render_tiling

        rec = result.monitor.records[-1]
        print("\n-- Tiling window (last iteration) --")
        print(render_tiling(rec.tiling, rec.stolen))
        print("\n-- Activity Monitor --")
        print(render_activity(rec))
        print(render_idleness_history(result.monitor.idleness_history))

    if args.dashboard and result.monitor and result.monitor.records:
        from repro.view.dashboard import dashboard_svg

        path = dashboard_svg(result.monitor).save(args.dashboard)
        print(f"dashboard written to {path}")
    if args.anim and result.monitor and result.monitor.records:
        from repro.view.dashboard import animated_tiling_svg

        path = animated_tiling_svg(result.monitor).save(args.anim)
        print(f"animated tiling window written to {path}")

    if args.trace and result.trace is not None:
        from repro.trace.format import default_trace_path, save_trace

        path = Path(args.trace_file) if args.trace_file else default_trace_path(
            label=args.label
        )
        save_trace(result.trace, path)
        print(f"trace written to {path}")

    if args.dump:
        from repro.view.ppm import save_ppm

        path = save_ppm(result.image, Path(args.output_dir) / f"{config.kernel}.ppm")
        print(f"image dumped to {path}")

    if args.csv:
        from repro.expt.csvdb import append_rows

        row = dict(config.csv_row())
        row["machine"] = args.machine
        row["time_us"] = round(result.elapsed * 1e6, 3)
        row["run"] = 0
        append_rows(args.csv, [row])
    return analysis_status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
