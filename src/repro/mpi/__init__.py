"""Message-passing substrate: communicators, decomposition, launcher.

Two rank substrates share one :class:`~repro.mpi.comm.CommBase` API:
the threaded in-process world (:mod:`repro.mpi.comm`) and the
real-process shared-memory world (:mod:`repro.mpi.substrate`).
"""

from repro.mpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    CommBase,
    CommStats,
    MpiWorld,
    Request,
    run_world,
)
from repro.mpi.decomposition import band_of, bands, block_of, grid_shape
from repro.mpi.launcher import mpi_run, parse_mpirun_args
from repro.mpi.proc import MpiProcessContext, RankContextSnapshot, StatsOnlyComm
from repro.mpi.substrate import (
    MpiPool,
    ProcComm,
    get_mpi_pool,
    live_mpi_blocks,
    run_world_procs,
    shutdown_mpi_pools,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommBase",
    "CommStats",
    "MpiWorld",
    "Request",
    "run_world",
    "band_of",
    "bands",
    "block_of",
    "grid_shape",
    "mpi_run",
    "parse_mpirun_args",
    "MpiProcessContext",
    "RankContextSnapshot",
    "StatsOnlyComm",
    "MpiPool",
    "ProcComm",
    "get_mpi_pool",
    "live_mpi_blocks",
    "run_world_procs",
    "shutdown_mpi_pools",
]
