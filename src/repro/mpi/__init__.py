"""Message-passing substrate: communicators, decomposition, launcher."""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, MpiWorld, Request, run_world
from repro.mpi.decomposition import band_of, bands, block_of, grid_shape
from repro.mpi.launcher import mpi_run, parse_mpirun_args
from repro.mpi.proc import MpiProcessContext

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "MpiWorld",
    "Request",
    "run_world",
    "band_of",
    "bands",
    "block_of",
    "grid_shape",
    "mpi_run",
    "parse_mpirun_args",
    "MpiProcessContext",
]
