"""The ``mpirun`` launcher.

EASYPAP integrates the mpirun process launcher (``--mpirun "-np 2"``)
and, in debugging mode (``--debug M``), displays the monitoring windows
of *every* process (Fig. 13).  Two substrates carry the ranks:

* ``mpi_backend="procs"`` (default): real processes from the persistent
  rank pool (:mod:`repro.mpi.substrate`) — CPU-bound ranks genuinely
  run in parallel, which is what Fig. 13 claims to measure;
* ``mpi_backend="inproc"``: threads over the in-process world —
  deterministic and cheap, what the test suite pins itself to.

Rank 0's result is returned, with all per-rank results (including each
rank's monitor, trace and ``mpi_*`` comm counters) attached.  Under the
process substrate a rank's ``RunResult.context`` is a picklable
:class:`~repro.mpi.proc.RankContextSnapshot` carrying ``.data`` and
``.mpi`` (the execution context itself cannot cross the process
boundary).  A ``frame_hook`` (interactive display) forces the inproc
substrate: hooks cannot reach into rank processes.
"""

from __future__ import annotations

import functools
import re
from typing import Callable

from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.kernel import get_kernel
from repro.errors import ConfigError
from repro.mpi.comm import CommBase, CommStats, run_world
from repro.mpi.proc import MpiProcessContext, RankContextSnapshot, StatsOnlyComm
from repro.sched.costmodel import CostModel
from repro.util.timing import Stopwatch

__all__ = ["mpi_run", "parse_mpirun_args"]

#: mpirun flags whose value token must not be mistaken for junk
_VALUED_FLAGS = {"-np", "-n"}


def parse_mpirun_args(spec: str) -> int:
    """Extract the process count from an mpirun argument string.

    >>> parse_mpirun_args("-np 2")
    2

    Other mpirun *flags* (``--oversubscribe`` ...) are tolerated, but a
    bare token that is neither a flag nor the ``-np`` value is rejected
    — silently ignoring it would launch a different world than asked.
    """
    if not re.search(r"(?:^|\s)-(?:np|n)\s+(\d+)", spec.strip()):
        raise ConfigError(f"cannot find -np in mpirun arguments {spec!r}")
    np_ = None
    tokens = spec.split()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok in _VALUED_FLAGS:
            if i + 1 >= len(tokens) or not tokens[i + 1].isdigit():
                raise ConfigError(
                    f"{tok} needs an integer value in mpirun arguments {spec!r}"
                )
            np_ = int(tokens[i + 1])
            i += 2
            continue
        if not tok.startswith("-"):
            raise ConfigError(
                f"unparsed token {tok!r} in mpirun arguments {spec!r}"
            )
        i += 1
    if np_ is None or np_ < 1:
        raise ConfigError(f"-np must be >= 1, got {np_}")
    return np_


def _rank_config(config: RunConfig, rank: int, debug_all: bool) -> RunConfig:
    base = config.trace_label or "mpi"
    return config.with_(
        mpi_np=0,  # the per-rank engine must not re-enter the launcher
        monitoring=config.monitoring and (debug_all or rank == 0),
        trace=config.trace and (debug_all or rank == 0),
        trace_label=f"{base}.{rank}",
    )


def _publish_comm_counters(ctx: ExecutionContext, stats: CommStats) -> None:
    """Surface the rank's comm volume as telemetry counters, so they
    land in ``RunResult.counters`` on both substrates."""
    bus = ctx.bus
    bus.counter("mpi_msgs_sent", stats.messages_sent)
    bus.counter("mpi_bytes_sent", stats.bytes_sent)
    bus.counter("mpi_msgs_recv", stats.messages_received)
    bus.counter("mpi_collectives", stats.collectives)


def _run_rank(
    config: RunConfig,
    comm: CommBase,
    rank: int,
    debug_all: bool,
    model: CostModel | None,
    frame_hook: Callable | None,
) -> dict:
    """One rank's kernel lifecycle; returns a picklable result payload."""
    rank_cfg = _rank_config(config, rank, debug_all)
    kernel = get_kernel(config.kernel)
    compute = kernel.compute_fn(config.variant)
    ctx = ExecutionContext(rank_cfg, model=model)
    ctx.mpi = MpiProcessContext(rank=rank, size=config.mpi_np, comm=comm)
    if rank == 0 and frame_hook is not None:
        ctx.frame_hook = frame_hook
    kernel.init(ctx)
    kernel.draw(ctx)
    sw = Stopwatch().start()
    early = int(compute(ctx, config.iterations) or 0)
    wall = sw.stop()
    kernel.refresh_img(ctx)
    kernel.finalize(ctx)
    comm.barrier()
    _publish_comm_counters(ctx, comm.stats)
    return {
        "config": rank_cfg,
        "rank": rank,
        "size": config.mpi_np,
        "completed_iterations": ctx.completed_iterations,
        "virtual_time": ctx.vclock,
        "wall_time": wall,
        "image": ctx.img.copy_cur(),
        "monitor": ctx.monitor,
        "trace": ctx.tracer.to_trace() if ctx.tracer else None,
        "early_stop": early,
        "counters": dict(ctx.bus.counters),
        "dropped_events": ctx.bus.dropped_events,
        "data": dict(ctx.data),
        "stats": comm.stats,
        "ctx": ctx,  # stripped before crossing a process boundary
    }


def _kernel_rank_main(job: dict, comm: CommBase, rank: int) -> dict:
    """Entry point executed inside a rank *process* (must be picklable)."""
    from repro.core.kernel import load_kernel_module

    for path in job["kernel_files"]:
        load_kernel_module(path)
    payload = _run_rank(job["config"], comm, rank, job["debug_all"],
                        model=None, frame_hook=None)
    payload.pop("ctx")  # ExecutionContext cannot cross the pipe
    return payload


def _to_result(payload: dict, *, remote: bool):
    from repro.core.engine import RunResult  # local import: avoids a cycle

    ctx = payload.get("ctx")
    if remote or ctx is None:
        mpi_meta = MpiProcessContext(
            rank=payload["rank"],
            size=payload["size"],
            comm=StatsOnlyComm(stats=payload["stats"]),
        )
        context = RankContextSnapshot(data=payload.get("data", {}), mpi=mpi_meta)
    else:
        context = ctx
    return RunResult(
        config=payload["config"],
        completed_iterations=payload["completed_iterations"],
        virtual_time=payload["virtual_time"],
        wall_time=payload["wall_time"],
        image=payload["image"],
        monitor=payload["monitor"],
        trace=payload["trace"],
        early_stop=payload["early_stop"],
        context=context,
        counters=payload["counters"],
        dropped_events=payload["dropped_events"],
    )


def mpi_run(
    config: RunConfig,
    *,
    model: CostModel | None = None,
    frame_hook: Callable | None = None,
):
    """Run ``config`` on ``config.mpi_np`` ranks; returns rank 0's
    :class:`~repro.core.engine.RunResult` with ``rank_results`` filled.

    Monitoring policy mirrors EASYPAP: with ``--monitoring`` alone only
    the master rank records; with ``--debug M`` every rank does.  The
    master result reports the *laggard's* wall and virtual times — the
    ranks run synchronized by ghost exchanges, so the slowest one
    defines the world's clock.
    """
    if config.mpi_np < 1:
        raise ConfigError("mpi_run requires mpi_np >= 1")
    debug_all = "M" in (config.debug or "")

    substrate = config.mpi_backend
    if frame_hook is not None:
        # interactive hooks cannot cross a process boundary; the
        # threaded world shares the interpreter and can host them
        substrate = "inproc"

    if substrate == "procs":
        results, world_counters = _mpi_run_procs(config, debug_all)
    else:
        def rank_main(comm, rank: int) -> dict:
            return _run_rank(config, comm, rank, debug_all, model, frame_hook)

        payloads = run_world(config.mpi_np, rank_main)
        results = [_to_result(p, remote=False) for p in payloads]
        world_counters = _world_totals(p["stats"] for p in payloads)

    master = results[0]
    master.rank_results = results
    # report the slowest rank's clocks: ranks run synchronized by ghost
    # exchanges, so the laggard defines both the virtual and the wall time
    master.virtual_time = max(r.virtual_time for r in results)
    master.wall_time = max(r.wall_time for r in results)
    master.config = config
    master.counters = {**master.counters, **world_counters}
    return master


def _world_totals(all_stats) -> dict:
    totals = {"mpi_msgs_sent_world": 0, "mpi_bytes_sent_world": 0,
              "mpi_msgs_recv_world": 0, "mpi_collectives_world": 0}
    for st in all_stats:
        totals["mpi_msgs_sent_world"] += st.messages_sent
        totals["mpi_bytes_sent_world"] += st.bytes_sent
        totals["mpi_msgs_recv_world"] += st.messages_received
        totals["mpi_collectives_world"] += st.collectives
    return totals


def _mpi_run_procs(config: RunConfig, debug_all: bool):
    """Dispatch the kernel to the process substrate's rank pool."""
    from repro.core.kernel import loaded_kernel_files
    from repro.mpi.substrate import MPI_COUNTERS, run_world_procs
    from repro.telemetry.bus import TelemetryBus

    job = {
        "config": config,
        "kernel_files": loaded_kernel_files(),
        "debug_all": debug_all,
    }
    # the master drains each rank's comm-volume ring lane into this bus
    # while the world runs — the same live pipeline procs tile events use
    bus = TelemetryBus()
    payloads = run_world_procs(
        config.mpi_np, functools.partial(_kernel_rank_main, job), bus=bus
    )
    results = [_to_result(p, remote=True) for p in payloads]
    # reconcile: ring lanes drop oldest under pressure, the per-rank
    # CommStats are authoritative — publish any missing remainder so the
    # bus totals match exactly, then expose them as world counters
    totals = _world_totals(p["stats"] for p in payloads)
    for name in MPI_COUNTERS:
        missing = totals[f"{name}_world"] - bus.counters.get(name, 0)
        if missing > 0:
            bus.counter(name, missing)
    return results, totals
