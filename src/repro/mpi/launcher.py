"""The ``mpirun`` launcher.

EASYPAP integrates the mpirun process launcher (``--mpirun "-np 2"``)
and, in debugging mode (``--debug M``), displays the monitoring windows
of *every* process (Fig. 13).  Here each rank runs the kernel in its own
thread over the in-process world; rank 0's result is returned, with all
per-rank results (including each rank's monitor) attached.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.kernel import get_kernel
from repro.errors import ConfigError
from repro.mpi.comm import Comm, run_world
from repro.mpi.proc import MpiProcessContext
from repro.sched.costmodel import CostModel
from repro.util.timing import Stopwatch

__all__ = ["mpi_run", "parse_mpirun_args"]


def parse_mpirun_args(spec: str) -> int:
    """Extract the process count from an mpirun argument string.

    >>> parse_mpirun_args("-np 2")
    2
    """
    m = re.search(r"(?:^|\s)-(?:np|n)\s+(\d+)", spec.strip())
    if not m:
        raise ConfigError(f"cannot find -np in mpirun arguments {spec!r}")
    np_ = int(m.group(1))
    if np_ < 1:
        raise ConfigError(f"-np must be >= 1, got {np_}")
    return np_


def mpi_run(
    config: RunConfig,
    *,
    model: CostModel | None = None,
    frame_hook: Callable | None = None,
):
    """Run ``config`` on ``config.mpi_np`` ranks; returns rank 0's
    :class:`~repro.core.engine.RunResult` with ``rank_results`` filled.

    Monitoring policy mirrors EASYPAP: with ``--monitoring`` alone only
    the master rank records; with ``--debug M`` every rank does.
    """
    from repro.core.engine import RunResult  # local import: avoids a cycle

    if config.mpi_np < 1:
        raise ConfigError("mpi_run requires mpi_np >= 1")
    debug_all = "M" in (config.debug or "")

    def rank_main(comm: Comm, rank: int) -> RunResult:
        rank_cfg = config.with_(
            mpi_np=0,  # the per-rank engine must not re-enter the launcher
            monitoring=config.monitoring and (debug_all or rank == 0),
            trace=config.trace and (debug_all or rank == 0),
            trace_label=f"{config.trace_label}.{rank}",
        )
        kernel = get_kernel(config.kernel)
        compute = kernel.compute_fn(config.variant)
        ctx = ExecutionContext(rank_cfg, model=model)
        ctx.mpi = MpiProcessContext(rank=rank, size=config.mpi_np, comm=comm)
        if rank == 0:
            ctx.frame_hook = frame_hook
        kernel.init(ctx)
        kernel.draw(ctx)
        sw = Stopwatch().start()
        early = int(compute(ctx, config.iterations) or 0)
        wall = sw.stop()
        kernel.refresh_img(ctx)
        kernel.finalize(ctx)
        comm.barrier()
        return RunResult(
            config=rank_cfg,
            completed_iterations=ctx.completed_iterations,
            virtual_time=ctx.vclock,
            wall_time=wall,
            image=ctx.img.copy_cur(),
            monitor=ctx.monitor,
            trace=ctx.tracer.to_trace() if ctx.tracer else None,
            early_stop=early,
            context=ctx,
        )

    results = run_world(config.mpi_np, rank_main)
    master = results[0]
    master.rank_results = results
    # report the slowest rank's virtual time: ranks run synchronized by
    # ghost exchanges, so the laggard defines the wall clock
    master.virtual_time = max(r.virtual_time for r in results)
    master.config = config
    return master
