"""Domain decomposition helpers for MPI kernels.

EASYPAP's MPI assignments split the image into horizontal bands (one
per rank, Fig. 13); 2D block decomposition is provided for more
advanced layouts.
"""

from __future__ import annotations

from repro.errors import MpiError

__all__ = ["band_of", "bands", "block_of", "grid_shape"]


def band_of(rank: int, size: int, dim: int) -> tuple[int, int]:
    """Row band of ``rank``: returns ``(y0, height)``.

    The first ``dim % size`` ranks get one extra row, so bands differ by
    at most one row and cover the image exactly.
    """
    if size < 1 or not (0 <= rank < size):
        raise MpiError(f"bad rank/size: {rank}/{size}")
    if dim < size:
        raise MpiError(f"cannot split {dim} rows over {size} ranks")
    base, extra = divmod(dim, size)
    y0 = rank * base + min(rank, extra)
    h = base + (1 if rank < extra else 0)
    return y0, h


def bands(size: int, dim: int) -> list[tuple[int, int]]:
    """All bands in rank order (they partition ``[0, dim)``)."""
    return [band_of(r, size, dim) for r in range(size)]


def grid_shape(size: int) -> tuple[int, int]:
    """Most-square (rows, cols) process grid with ``rows * cols == size``."""
    if size < 1:
        raise MpiError(f"world size must be >= 1, got {size}")
    best = (size, 1)
    r = 1
    while r * r <= size:
        if size % r == 0:
            best = (size // r, r)
        r += 1
    return best


def block_of(rank: int, size: int, dim: int) -> tuple[int, int, int, int]:
    """2D block of ``rank``: returns ``(y0, x0, height, width)``."""
    if size < 1 or not (0 <= rank < size):
        raise MpiError(f"bad rank/size: {rank}/{size}")
    rows, cols = grid_shape(size)
    pr, pc = divmod(rank, cols)
    y0, h = band_of(pr, rows, dim)
    x0, w = band_of(pc, cols, dim)
    return y0, x0, h, w
