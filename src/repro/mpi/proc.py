"""Per-rank MPI context attached to the execution context."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpi.comm import CommBase, CommStats

__all__ = ["MpiProcessContext", "RankContextSnapshot", "StatsOnlyComm"]


@dataclass
class MpiProcessContext:
    """What a kernel sees through ``ctx.mpi`` when launched under
    ``--mpirun``: its rank, the world size and the communicator."""

    rank: int
    size: int
    comm: CommBase

    @property
    def is_master(self) -> bool:
        return self.rank == 0


@dataclass
class StatsOnlyComm:
    """Picklable stand-in for a remote rank's communicator: carries the
    final traffic statistics, no transport (the lanes died with the
    world epoch)."""

    stats: CommStats


@dataclass
class RankContextSnapshot:
    """Picklable stand-in for a remote rank's ExecutionContext.

    Process-substrate ranks cannot ship their real context across the
    result pipe (locks, shared-memory views, open consumers); this
    snapshot preserves what callers inspect after the run: the kernel's
    ``ctx.data`` dictionary and ``ctx.mpi`` with the comm statistics.
    """

    data: dict = field(default_factory=dict)
    mpi: MpiProcessContext | None = None
