"""Per-rank MPI context attached to the execution context."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.comm import Comm

__all__ = ["MpiProcessContext"]


@dataclass
class MpiProcessContext:
    """What a kernel sees through ``ctx.mpi`` when launched under
    ``--mpirun``: its rank, the world size and the communicator."""

    rank: int
    size: int
    comm: Comm

    @property
    def is_master(self) -> bool:
        return self.rank == 0
