"""Message-passing API and the in-process (threaded) substrate.

The mpi4py-style lowercase interface — ``send/recv/sendrecv/bcast/
scatter/gather/allgather/reduce/allreduce/barrier`` — is implemented
once, in :class:`CommBase`, over three transport primitives
(``_put/_get/_try_get`` on pickled payloads).  Two substrates plug in:

* **inproc** (this module): each rank is a Python thread; messages are
  pickled (ranks never share mutable state, exactly like real MPI
  address spaces) and delivered through per-rank mailboxes with
  MPI-style (source, tag) matching.  Deterministic and cheap — what
  the test suite pins itself to.
* **procs** (:mod:`repro.mpi.substrate`): each rank is a real process
  from the persistent worker pool; messages travel over shared-memory
  byte lanes, so CPU-bound ranks genuinely run in parallel.

Collectives are built over point-to-point with an internal tag space
(high bit set + a per-communicator collective sequence number), so they
never collide with user tags and stay correct even when ranks interleave
collectives with pt2pt traffic.

Per-rank traffic statistics (message and byte counts) are kept so
kernels' communication volume can be analyzed — our substitute for
watching real interconnect behaviour.  The blocked-recv backstop is
``REPRO_MPI_RECV_TIMEOUT`` seconds (default 60); expiry raises
:class:`~repro.errors.DeadlockError` carrying the pending (source, tag)
mailbox state.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import DeadlockError, MpiError

__all__ = [
    "MpiWorld",
    "CommBase",
    "Comm",
    "CommStats",
    "Request",
    "RecvTimeout",
    "ANY_SOURCE",
    "ANY_TAG",
    "RECV_TIMEOUT_ENV",
    "default_recv_timeout",
    "run_world",
]

ANY_SOURCE = -1
ANY_TAG = -1

_COLL_BIT = 1 << 30  # internal tags: _COLL_BIT | (seq << 4) | coll_id
_POLL_INTERVAL = 0.05  # seconds between deadlock-analysis polls

#: env override for the blocked-recv hard backstop (seconds)
RECV_TIMEOUT_ENV = "REPRO_MPI_RECV_TIMEOUT"
_RECV_TIMEOUT = 60.0


def default_recv_timeout() -> float:
    """The recv backstop: ``REPRO_MPI_RECV_TIMEOUT`` or 60 seconds."""
    env = os.environ.get(RECV_TIMEOUT_ENV)
    if env:
        try:
            value = float(env)
        except ValueError:
            raise MpiError(f"{RECV_TIMEOUT_ENV}={env!r} is not a number") from None
        if value > 0:
            return value
    return _RECV_TIMEOUT


@dataclass
class CommStats:
    """Per-rank traffic counters (pt2pt and collective internals alike)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    collectives: int = 0


@dataclass(frozen=True)
class RecvTimeout:
    """Structured diagnosis for a recv that hit the wall-clock backstop
    without the wait-for-graph analysis producing a verdict; carries the
    pending (source, tag) mailbox state at expiry."""

    rank: int
    source: int
    tag: int
    timeout: float
    pending: tuple[tuple[int, int], ...] = ()

    def describe(self) -> str:
        def fmt(v: int) -> str:
            return "any" if v == ANY_SOURCE else str(v)

        inbox = (
            ", ".join(f"(source={s}, tag={t})" for s, t in self.pending)
            if self.pending
            else "empty"
        )
        return (
            f"rank {self.rank}: recv(source={fmt(self.source)}, "
            f"tag={fmt(self.tag)}) timed out after {self.timeout:g}s — "
            f"unresolved deadlock? pending mailbox: {inbox}"
        )


class _Mailbox:
    """Pending messages of one rank, with (source, tag) matching."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: list[tuple[int, int, bytes]] = []

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._lock:
            self._pending.append((source, tag, payload))
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> int | None:
        for i, (s, t, _) in enumerate(self._pending):
            if (source == ANY_SOURCE or s == source) and (
                tag == ANY_TAG or t == tag
            ):
                return i
        return None

    def get(
        self,
        source: int,
        tag: int,
        timeout: float,
        *,
        world: "MpiWorld | None" = None,
        rank: int | None = None,
    ) -> tuple[int, int, bytes]:
        """Blocking matched pop.

        When ``world``/``rank`` are given, the wait is a poll loop: the
        rank registers itself in the world's blocked registry and, each
        time a poll interval elapses without a matching message, runs
        the wait-for-graph analysis — raising :class:`DeadlockError`
        with a diagnosis instead of sitting out the full timeout.  Poll
        intervals are staggered by rank so concurrent diagnoses rarely
        collide.
        """
        deadline = time.monotonic() + timeout
        poll = None
        if world is not None:
            poll = world.poll_interval * (1.0 + 0.13 * rank)
            world._set_blocked(rank, source, tag)
        with self._lock:
            try:
                while True:
                    i = self._match(source, tag)
                    if i is not None:
                        return self._pending.pop(i)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlockError(RecvTimeout(
                            rank=-1 if rank is None else rank,
                            source=source,
                            tag=tag,
                            timeout=timeout,
                            pending=tuple((s, t) for s, t, _ in self._pending),
                        ))
                    wait = remaining if poll is None else min(poll, remaining)
                    if not self._cond.wait(timeout=wait) and world is not None:
                        report = world._diagnose(rank, source, tag, self)
                        if report is not None:
                            raise DeadlockError(report)
            finally:
                if world is not None:
                    world._clear_blocked(rank)

    def try_get(self, source: int, tag: int) -> tuple[int, int, bytes] | None:
        """Non-blocking probe+pop (backs Request.test)."""
        with self._lock:
            i = self._match(source, tag)
            return self._pending.pop(i) if i is not None else None


class Request:
    """Handle for a non-blocking operation (mpi4py-style lowercase API).

    ``isend`` requests are complete immediately (sends are buffered);
    ``irecv`` requests complete when a matching message is consumed via
    :meth:`test` or :meth:`wait`.
    """

    def __init__(self, comm: "CommBase | None" = None, source: int = ANY_SOURCE,
                 tag: int = ANY_TAG, payload: Any = None, done: bool = False):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._payload = payload
        self._done = done

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: (done, payload_or_None)."""
        if self._done:
            return True, self._payload
        got = self._comm._try_get(self._source, self._tag)
        if got is None:
            return False, None
        self._comm._count_recv()
        self._payload = pickle.loads(got[2])
        self._done = True
        return True, self._payload

    def wait(self) -> Any:
        """Block until completion; returns the received object (or the
        sent one, for isend requests)."""
        if self._done:
            return self._payload
        _, _, payload = self._comm._get(self._source, self._tag)
        self._comm._count_recv()
        self._payload = pickle.loads(payload)
        self._done = True
        return self._payload


class MpiWorld:
    """A set of in-process ranks with their mailboxes.

    Beyond delivery, the world tracks which ranks are blocked in a
    receive (``rank -> (source, tag)``) and which have terminated, so a
    blocked rank can run the wait-for-graph deadlock analysis of
    :mod:`repro.analyze.deadlock` instead of waiting out the timeout.
    """

    def __init__(
        self,
        size: int,
        recv_timeout: float | None = None,
        poll_interval: float = _POLL_INTERVAL,
    ):
        if size < 1:
            raise MpiError(f"world size must be >= 1, got {size}")
        self.size = size
        self.recv_timeout = (
            default_recv_timeout() if recv_timeout is None else recv_timeout
        )
        self.poll_interval = poll_interval
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.stats = [CommStats() for _ in range(size)]
        self._dl_lock = threading.Lock()
        self._blocked: dict[int, tuple[int, int]] = {}
        self._finished: set[int] = set()

    def comm(self, rank: int) -> "Comm":
        if not (0 <= rank < self.size):
            raise MpiError(f"rank {rank} out of world of size {self.size}")
        return Comm(self, rank)

    # -- deadlock analysis ----------------------------------------------------
    def _set_blocked(self, rank: int, source: int, tag: int) -> None:
        with self._dl_lock:
            self._blocked[rank] = (source, tag)

    def _clear_blocked(self, rank: int) -> None:
        with self._dl_lock:
            self._blocked.pop(rank, None)

    def mark_finished(self, rank: int) -> None:
        """Record that ``rank``'s thread terminated (normally or not) and
        wake blocked ranks so they re-run the analysis promptly."""
        with self._dl_lock:
            self._finished.add(rank)
        for mb in self.mailboxes:
            with mb._lock:
                mb._cond.notify_all()

    def _peer_stuck(self, peer: int, source: int, tag: int) -> bool | None:
        """Is ``peer`` blocked with no matching pending message?

        Returns None (undecidable: its mailbox lock is busy, so it is
        doing *something*) rather than blocking — lock order here is
        own-mailbox -> world -> peer-mailbox, and a blocking acquire
        could deadlock the detector itself.
        """
        mb = self.mailboxes[peer]
        if not mb._lock.acquire(blocking=False):
            return None
        try:
            return mb._match(source, tag) is None
        finally:
            mb._lock.release()

    def _diagnose(self, rank: int, source: int, tag: int, mailbox: "_Mailbox"):
        """Snapshot the blocked registry and run the wait-for-graph
        analysis for ``rank`` (which holds ``mailbox``'s lock and has
        verified no matching message is pending).  Returns a
        DeadlockReport, or None when no deadlock is provable yet."""
        from repro.analyze.deadlock import PendingMsg, RankWait, diagnose

        with self._dl_lock:
            registry = dict(self._blocked)
            finished = frozenset(self._finished)
        waits = {}
        for r, (s, t) in registry.items():
            if r == rank:
                waits[r] = RankWait(r, s, t)
            elif self._peer_stuck(r, s, t):
                waits[r] = RankWait(r, s, t)
            # undecidable / has a match: treated as active (omitted)
        unmatched = tuple(PendingMsg(s, t) for s, t, _ in mailbox._pending)
        return diagnose(rank, waits, finished, self.size, unmatched)


class CommBase:
    """The mpi4py-style lowercase interface, substrate-agnostic.

    Subclasses provide the transport: ``_put(dest, tag, payload)`` (raw
    buffered enqueue, never counted in stats), ``_get(source, tag)``
    (blocking matched receive, deadlock analysis armed) and
    ``_try_get`` (non-blocking probe+pop); plus a ``stats`` property.
    Everything else — pt2pt bookkeeping, the collectives and their
    internal tag space, traffic accounting — is shared, so the two
    substrates cannot drift apart semantically.
    """

    rank: int
    size: int

    # -- transport primitives (substrate-specific) ---------------------------
    def _put(self, dest: int, tag: int, payload: Any) -> None:
        raise NotImplementedError

    def _get(self, source: int, tag: int) -> tuple[int, int, bytes]:
        raise NotImplementedError

    def _try_get(self, source: int, tag: int) -> tuple[int, int, bytes] | None:
        raise NotImplementedError

    @property
    def stats(self) -> CommStats:
        raise NotImplementedError

    # -- traffic accounting (hooks for substrate telemetry) ------------------
    def _count_sent(self, nbytes: int) -> None:
        st = self.stats
        st.messages_sent += 1
        st.bytes_sent += nbytes

    def _count_recv(self) -> None:
        self.stats.messages_received += 1

    def _count_collective(self) -> None:
        self.stats.collectives += 1

    # -- point-to-point ------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MpiError(f"{what} rank {peer} out of world of size {self.size}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send (never deadlocks): the message is pickled and
        enqueued at the destination."""
        self._check_peer(dest, "destination")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._count_sent(len(payload))
        self._put(dest, tag, payload)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive with (source, tag) matching."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        _, _, payload = self._get(source, tag)
        self._count_recv()
        return pickle.loads(payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return Request(done=True, payload=obj)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive: returns a :class:`Request` to test/wait."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        return Request(self, source, tag)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int | None = None,
        sendtag: int = 0,
        recvtag: int | None = None,
    ) -> Any:
        """Combined send+receive (deadlock-free: sends are buffered)."""
        self.send(obj, dest, sendtag)
        return self.recv(dest if source is None else source,
                         sendtag if recvtag is None else recvtag)

    # -- collectives ----------------------------------------------------------
    def _coll_tag(self, coll_id: int) -> int:
        tag = _COLL_BIT | (self._coll_seq << 4) | coll_id
        self._coll_seq += 1
        self._count_collective()
        return tag

    def barrier(self) -> None:
        """All ranks synchronize (gather-to-0 then broadcast)."""
        tag = self._coll_tag(0)
        if self.rank == 0:
            for src in range(1, self.size):
                self._get(src, tag)
            for dst in range(1, self.size):
                self._put(dst, tag, b"")
        else:
            self._put(0, tag, b"")
            self._get(0, tag)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root, "root")
        tag = self._coll_tag(1)
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
                    self._count_sent(len(payload))
                    self._put(dst, tag, payload)
            return obj
        _, _, payload = self._get(root, tag)
        self._count_recv()
        return pickle.loads(payload)

    def scatter(self, objs: list | None, root: int = 0) -> Any:
        self._check_peer(root, "root")
        tag = self._coll_tag(2)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise MpiError(
                    f"scatter at root needs exactly {self.size} items, "
                    f"got {None if objs is None else len(objs)}"
                )
            mine = objs[root]
            for dst in range(self.size):
                if dst != root:
                    payload = pickle.dumps(objs[dst], protocol=pickle.HIGHEST_PROTOCOL)
                    self._count_sent(len(payload))
                    self._put(dst, tag, payload)
            return mine
        _, _, payload = self._get(root, tag)
        self._count_recv()
        return pickle.loads(payload)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        self._check_peer(root, "root")
        tag = self._coll_tag(3)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    _, _, payload = self._get(src, tag)
                    self._count_recv()
                    out[src] = pickle.loads(payload)
            return out
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._count_sent(len(payload))
        self._put(root, tag, payload)
        return None

    def allgather(self, obj: Any) -> list:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        acc = self.reduce(obj, op, root=0)
        return self.bcast(acc, root=0)

    # -- shared windows -------------------------------------------------------
    def shared_window(self, arr, root: int = 0):
        """Node-local zero-copy array broadcast (pyuvsim-style).

        The root rank contributes ``arr``; every rank gets back a view
        of *one* shared buffer — writable at the root, read-only
        everywhere else — instead of ``size`` pickled copies.  Counted
        as one collective; no per-rank message bytes (that is the whole
        point).  Substrate-specific: shared memory under ``procs``, a
        direct read-only view under ``inproc``.
        """
        raise NotImplementedError


class Comm(CommBase):
    """One rank's view of the threaded world."""

    def __init__(self, world: MpiWorld, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size
        self._coll_seq = 0

    # -- transport over the world's mailboxes --------------------------------
    def _put(self, dest: int, tag: int, payload: Any) -> None:
        self.world.mailboxes[dest].put(self.rank, tag, payload)

    def _get(self, source: int, tag: int) -> tuple[int, int, bytes]:
        """Blocking matched receive from this rank's mailbox, with the
        deadlock analysis armed."""
        return self.world.mailboxes[self.rank].get(
            source, tag, self.world.recv_timeout, world=self.world, rank=self.rank
        )

    def _try_get(self, source: int, tag: int) -> tuple[int, int, bytes] | None:
        return self.world.mailboxes[self.rank].try_get(source, tag)

    @property
    def stats(self) -> CommStats:
        return self.world.stats[self.rank]

    def shared_window(self, arr, root: int = 0):
        """Inproc windows share the interpreter: the root's array is
        handed to every rank directly (no pickling), read-only views
        for non-roots — the same contract the procs substrate honours
        through POSIX shared memory."""
        self._check_peer(root, "root")
        tag = self._coll_tag(7)
        if self.rank == root:
            if arr is None:
                raise MpiError("shared_window root must contribute an array")
            for dst in range(self.size):
                if dst != root:
                    self._put(dst, tag, arr)  # by reference: zero-copy
            return arr
        _, _, shared = self._get(source=root, tag=tag)
        view = shared.view()
        view.setflags(write=False)
        return view


def run_world(
    size: int,
    fn: Callable[[Comm, int], Any],
    *,
    recv_timeout: float | None = None,
) -> list[Any]:
    """Run ``fn(comm, rank)`` on every rank of a fresh threaded world;
    returns the per-rank results in rank order.

    Any rank raising makes :func:`run_world` raise :class:`MpiError`
    carrying all per-rank failures (after every thread has stopped).
    """
    world = MpiWorld(size, recv_timeout=recv_timeout)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def target(rank: int) -> None:
        try:
            results[rank] = fn(world.comm(rank), rank)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with lock:
                errors.append((rank, exc))
        finally:
            # lets blocked peers diagnose "waiting on a finished rank"
            world.mark_finished(rank)

    threads = [
        threading.Thread(target=target, args=(r,), name=f"mpi-rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        errors.sort()
        details = "; ".join(f"rank {r}: {type(e).__name__}: {e}" for r, e in errors)
        raise MpiError(f"{len(errors)} rank(s) failed: {details}") from errors[0][1]
    return results
