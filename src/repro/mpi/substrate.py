"""The real-process MPI substrate: ranks from a persistent worker pool.

Each rank is a process spawned once (forkserver/spawn, the PR-4 pool
machinery) and reused across worlds; point-to-point traffic and the
collectives built on it travel over per-(src, dst) single-producer/
single-consumer **byte lanes** in one POSIX shared-memory block — the
same monotonic write-count discipline as the telemetry rings of
:mod:`repro.telemetry.ring`, but lossless: a sender whose lane is full
chunks its frame and, while waiting for space, drains its own inbound
lanes (preserving the buffered-send guarantee that ``sendrecv`` pairs
never deadlock).

A shared **control block** carries the world's abort word plus a
per-rank registry (state, awaited source/tag, drain progress) — the
cross-process replica of the threaded world's blocked registry, so the
wait-for-graph deadlock analysis of :mod:`repro.analyze.deadlock` keeps
working: a blocked rank snapshots the registry, proves peers quiescent
through lane-count equality under a progress seqlock, and raises
:class:`~repro.errors.DeadlockError` with the same reports the inproc
substrate produces.

Failure is loud and bounded, pyuvsim-style: a rank raising (or dying
outright — SIGKILL included) flips the abort word; every blocked peer
notices within a poll interval and unwinds, the master reaps the world
and raises a clean :class:`~repro.errors.ExecutionError` instead of
letting the survivors sit out the 60 s recv backstop.  Message counts
and byte volumes stream over per-rank telemetry ring lanes
(``KIND_COUNTER`` records) that the master drains into its bus exactly
like procs tile events.

``shared_window()`` gives kernels the pyuvsim ``shared_mem_bcast``
pattern: the root allocates one shared block, peers attach read-only
views, and the name is unlinked as soon as everyone is attached so an
aborted world cannot leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import time
import traceback
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.errors import DeadlockError, ExecutionError, MpiError
from repro.mpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    CommBase,
    CommStats,
    RecvTimeout,
    default_recv_timeout,
)
from repro.omp.procs import (
    _alloc_block,
    _defuse,
    _mp_context,
    _no_main_reimport,
    _unlink_block,
    _untrack,
    register_cleanup,
)
from repro.telemetry.ring import KIND_COUNTER, RECORD_WIDTH, RingWriter, drain_lane

__all__ = [
    "ProcComm",
    "MpiPool",
    "run_world_procs",
    "get_mpi_pool",
    "shutdown_mpi_pools",
    "live_mpi_blocks",
    "MPI_COUNTERS",
    "LANE_CAP_ENV",
]

#: env override for the per-(src,dst) lane capacity in bytes
LANE_CAP_ENV = "REPRO_MPI_LANE_CAP"
_DEFAULT_LANE_CAP = 1 << 20

#: comm-volume counters streamed over the ring (f0 = index here)
MPI_COUNTERS = ("mpi_msgs_sent", "mpi_bytes_sent", "mpi_msgs_recv", "mpi_collectives")

#: per-rank telemetry ring slots (records); enough for thousands of
#: messages between master drains, and drops are reconciled at the end
_RING_CAP = 4096

_FRAME = struct.Struct("<qq")  # (tag, payload_length) framing header

_SPIN = 0.0002  # lane-wait granularity (seconds)
_DIAG_INTERVAL = 0.05  # seconds between deadlock-analysis attempts

# control-block words
_ABORT = 0  # 1 => world is aborting
_ABORT_RANK = 1  # who flipped the abort word
_CTRL_HEAD = 2
# per-rank registry words, at _CTRL_HEAD + rank * _REG_WORDS
_REG_STATE = 0  # 0 active, 1 blocked, 2 finished
_REG_SOURCE = 1
_REG_TAG = 2
_REG_PROGRESS = 3  # seqlock: odd while a drain is rewriting lane cursors
_REG_WORDS = 4

_ACTIVE, _BLOCKED, _FINISHED = 0, 1, 2


def lane_capacity() -> int:
    env = os.environ.get(LANE_CAP_ENV)
    if env:
        return max(64, int(env))
    return _DEFAULT_LANE_CAP


class _WorldAborted(MpiError):
    """Raised inside a rank when the world's abort word flips."""


class ProcComm(CommBase):
    """One process-rank's communicator over the shared lanes."""

    def __init__(
        self,
        rank: int,
        size: int,
        ctrl: np.ndarray,
        lane_hdr: np.ndarray,
        lane_buf: np.ndarray,
        ring: RingWriter | None,
        recv_timeout: float,
        window_prefix: str = "",
    ):
        self.rank = rank
        self.size = size
        self._coll_seq = 0
        self._ctrl = ctrl
        self._hdr = lane_hdr  # (size*size, 2) int64: [write_count, read_count]
        self._buf = lane_buf  # (size*size, cap) uint8 payload rings
        self._cap = lane_buf.shape[1]
        self._ring = ring
        self._recv_timeout = recv_timeout
        self._window_prefix = window_prefix
        self._window_seq = 0
        self._windows: list[shared_memory.SharedMemory] = []
        self._stats = CommStats()
        #: frames drained but not yet matched: (source, tag, payload)
        self._pending: list[tuple[int, int, bytes]] = []
        #: partially-drained frame bytes, per source rank
        self._partial = [bytearray() for _ in range(size)]

    # -- registry ------------------------------------------------------------
    def _reg(self, rank: int) -> int:
        return _CTRL_HEAD + rank * _REG_WORDS

    def _set_state(self, state: int, source: int = 0, tag: int = 0) -> None:
        base = self._reg(self.rank)
        self._ctrl[base + _REG_SOURCE] = source
        self._ctrl[base + _REG_TAG] = tag
        self._ctrl[base + _REG_STATE] = state

    def _finish(self) -> None:
        self._set_state(_FINISHED)

    def _abort_world(self) -> None:
        self._ctrl[_ABORT_RANK] = self.rank
        self._ctrl[_ABORT] = 1

    def _check_abort(self) -> None:
        if self._ctrl[_ABORT]:
            raise _WorldAborted(
                f"MPI world aborted (by rank {int(self._ctrl[_ABORT_RANK])})"
            )

    # -- stats + comm-volume telemetry ---------------------------------------
    @property
    def stats(self) -> CommStats:
        return self._stats

    def _emit(self, counter: int, delta: float) -> None:
        if self._ring is not None:
            self._ring.emit(KIND_COUNTER, counter, delta)

    def _count_sent(self, nbytes: int) -> None:
        super()._count_sent(nbytes)
        self._emit(0, 1)
        self._emit(1, nbytes)

    def _count_recv(self) -> None:
        super()._count_recv()
        self._emit(2, 1)

    def _count_collective(self) -> None:
        super()._count_collective()
        self._emit(3, 1)

    # -- lane transport ------------------------------------------------------
    def _lane(self, src: int, dst: int) -> int:
        return src * self.size + dst

    def _put(self, dest: int, tag: int, payload: Any) -> None:
        """Chunked lossless write into the (rank -> dest) lane.

        When the lane is full the sender spins briefly, draining its own
        inbound lanes meanwhile — a full lane therefore cannot deadlock
        two ranks sending to each other, preserving the buffered-send
        semantics the shared collectives assume.
        """
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            # the window fast path hands arrays around by reference in
            # the inproc world; across processes everything is bytes
            payload = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME.pack(tag, len(payload)) + bytes(payload)
        lane = self._lane(self.rank, dest)
        hdr = self._hdr[lane]
        buf = self._buf[lane]
        cap = self._cap
        view = np.frombuffer(frame, dtype=np.uint8)
        off = 0
        deadline = time.monotonic() + self._recv_timeout
        while off < len(view):
            write, read = int(hdr[0]), int(hdr[1])
            space = cap - (write - read)
            if space <= 0:
                self._check_abort()
                self._drain()
                if time.monotonic() >= deadline:
                    raise MpiError(
                        f"rank {self.rank}: send to {dest} stalled for "
                        f"{self._recv_timeout:g}s (lane full, receiver not "
                        "draining) — deadlock or dead peer?"
                    )
                time.sleep(_SPIN)
                continue
            n = min(space, len(view) - off)
            pos = write % cap
            first = min(n, cap - pos)
            buf[pos:pos + first] = view[off:off + first]
            if n > first:
                buf[:n - first] = view[off + first:off + n]
            hdr[0] = write + n  # publish after the payload
            off += n

    def _drain(self) -> bool:
        """Move every inbound lane's available bytes into local frames.

        Guarded by the registry's progress seqlock (odd while cursors
        move) so a remote deadlock diagnoser can tell "nothing arrived
        since this rank's last failed scan" from "caught mid-drain".
        Returns True when at least one complete frame was delivered.
        """
        base = self._reg(self.rank)
        delivered = False
        for src in range(self.size):
            if src == self.rank:
                continue
            lane = self._lane(src, self.rank)
            hdr = self._hdr[lane]
            write, read = int(hdr[0]), int(hdr[1])
            avail = write - read
            if avail <= 0:
                continue
            self._ctrl[base + _REG_PROGRESS] += 1  # odd: drain in flight
            buf = self._buf[lane]
            cap = self._cap
            pos = read % cap
            first = min(avail, cap - pos)
            chunk = bytes(buf[pos:pos + first])
            if avail > first:
                chunk += bytes(buf[:avail - first])
            hdr[1] = write  # consume before parsing
            partial = self._partial[src]
            partial += chunk
            while len(partial) >= _FRAME.size:
                tag, length = _FRAME.unpack_from(partial)
                if len(partial) < _FRAME.size + length:
                    break
                payload = bytes(partial[_FRAME.size:_FRAME.size + length])
                del partial[:_FRAME.size + length]
                self._pending.append((src, tag, payload))
                delivered = True
            if delivered:
                # a fresh frame may satisfy the pending recv: unblock
                # *inside* the seqlock so diagnosers never see a stale
                # "blocked" paired with already-drained lanes
                self._ctrl[base + _REG_STATE] = _ACTIVE
            self._ctrl[base + _REG_PROGRESS] += 1  # even: quiescent again
        return delivered

    def _match_pop(self, source: int, tag: int) -> tuple[int, int, bytes] | None:
        for i, (s, t, _) in enumerate(self._pending):
            if (source == ANY_SOURCE or s == source) and (
                tag == ANY_TAG or t == tag
            ):
                return self._pending.pop(i)
        return None

    def _try_get(self, source: int, tag: int) -> tuple[int, int, bytes] | None:
        self._drain()
        return self._match_pop(source, tag)

    def _get(self, source: int, tag: int) -> tuple[int, int, bytes]:
        self._drain()
        got = self._match_pop(source, tag)
        if got is not None:
            return got
        deadline = time.monotonic() + self._recv_timeout
        # stagger diagnosis polls by rank, like the threaded world
        next_diag = time.monotonic() + _DIAG_INTERVAL * (1.0 + 0.13 * self.rank)
        self._set_state(_BLOCKED, source, tag)
        try:
            while True:
                self._check_abort()
                if self._drain():
                    got = self._match_pop(source, tag)
                    if got is not None:
                        return got
                    # new frames, but none matched: arm the registry again
                    self._set_state(_BLOCKED, source, tag)
                now = time.monotonic()
                if now >= deadline:
                    # last-instant arrivals must win over the backstop
                    if self._drain():
                        got = self._match_pop(source, tag)
                        if got is not None:
                            return got
                    raise DeadlockError(RecvTimeout(
                        rank=self.rank, source=source, tag=tag,
                        timeout=self._recv_timeout,
                        pending=tuple((s, t) for s, t, _ in self._pending),
                    ))
                if now >= next_diag:
                    report = self._diagnose(source, tag)
                    if report is not None:
                        raise DeadlockError(report)
                    next_diag = now + _DIAG_INTERVAL
                time.sleep(_SPIN)
        finally:
            base = self._reg(self.rank)
            if self._ctrl[base + _REG_STATE] == _BLOCKED:
                self._ctrl[base + _REG_STATE] = _ACTIVE

    # -- cross-process wait-for-graph analysis -------------------------------
    def _peer_stuck(self, peer: int, source: int, tag: int) -> bool:
        """Is ``peer`` provably blocked with nothing left to scan?

        True only when the peer is flagged blocked, every lane into it
        is fully drained, and its progress seqlock is even and unchanged
        around those reads — i.e. its last full scan saw everything ever
        sent to it and matched nothing.  Any concurrent movement makes
        this undecidable (False): the caller just retries, exactly like
        the threaded world's try-lock probe.
        """
        base = self._reg(peer)
        p1 = int(self._ctrl[base + _REG_PROGRESS])
        if p1 % 2 or self._ctrl[base + _REG_STATE] != _BLOCKED:
            return False
        for src in range(self.size):
            if src == peer:
                continue
            hdr = self._hdr[self._lane(src, peer)]
            if int(hdr[0]) != int(hdr[1]):
                return False  # undrained traffic: the peer has work to do
        if int(self._ctrl[base + _REG_PROGRESS]) != p1:
            return False
        return self._ctrl[base + _REG_STATE] == _BLOCKED

    def _diagnose(self, source: int, tag: int):
        from repro.analyze.deadlock import PendingMsg, RankWait, diagnose

        waits = {self.rank: RankWait(self.rank, source, tag)}
        finished = set()
        for r in range(self.size):
            if r == self.rank:
                continue
            base = self._reg(r)
            state = int(self._ctrl[base + _REG_STATE])
            if state == _FINISHED:
                finished.add(r)
            elif state == _BLOCKED:
                s = int(self._ctrl[base + _REG_SOURCE])
                t = int(self._ctrl[base + _REG_TAG])
                if self._peer_stuck(r, s, t):
                    waits[r] = RankWait(r, s, t)
        # Soundness: the snapshot above is only trustworthy if *we* have
        # nothing left to scan.  A frame that landed in one of our lanes
        # after the last drain (say, from a peer that then finished, or
        # the send half of a peer now blocked in its recv half) refutes
        # any verdict — bail out and let the caller drain it first.
        # Checked *after* the state reads: a peer's payload bytes are
        # written before its registry flips, so "state seen, lane still
        # empty" proves nothing was in flight.
        for src in range(self.size):
            if src == self.rank:
                continue
            hdr = self._hdr[self._lane(src, self.rank)]
            if int(hdr[0]) != int(hdr[1]):
                return None
        unmatched = tuple(PendingMsg(s, t) for s, t, _ in self._pending)
        return diagnose(self.rank, waits, finished, self.size, unmatched)

    # -- shared windows ------------------------------------------------------
    def shared_window(self, arr, root: int = 0):
        """pyuvsim-style ``shared_mem_bcast``: root-only allocation.

        The root copies ``arr`` into a fresh shared block and broadcasts
        only its (name, shape, dtype); peers attach read-only views.
        After every peer has acknowledged its attach the root unlinks
        the name immediately — mappings keep the memory alive for every
        live view, and a rank dying later cannot leak the segment.

        Stats cost on both substrates: exactly one collective, zero
        message bytes — sharing memory instead of copying it is the
        whole point, and the counters say so.
        """
        self._check_peer(root, "root")
        tag = self._coll_tag(7)  # window metadata
        ack = tag + 1  # attach acknowledgements (coll_id slot 8)
        if self.rank == root:
            if arr is None:
                raise MpiError("shared_window root must contribute an array")
            arr = np.ascontiguousarray(arr)
            self._window_seq += 1
            shm = shared_memory.SharedMemory(
                name=f"{self._window_prefix}win{self._window_seq}_{self.rank}",
                create=True, size=max(arr.nbytes, 1),
            )
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            meta = pickle.dumps((shm.name, arr.shape, arr.dtype.str),
                                protocol=pickle.HIGHEST_PROTOCOL)
            for dst in range(self.size):
                if dst != root:
                    self._put(dst, tag, meta)
            for src in range(self.size):
                if src != root:
                    self._get(src, ack)
            shm.unlink()  # every peer attached: safe to drop the name
            self._windows.append(shm)
            return view
        _, _, meta = self._get(root, tag)
        name, shape, dtype = pickle.loads(meta)
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        view.setflags(write=False)
        self._windows.append(shm)
        self._put(root, ack, b"")
        return view

    def _release_windows(self) -> None:
        """Hand window lifetimes to the numpy views (fd-close defuse)."""
        for shm in self._windows:
            _defuse(shm)
        self._windows.clear()


# --------------------------------------------------------------------------
# Rank worker process
# --------------------------------------------------------------------------


def _rank_serve(rank: int, conn, size: int, ctrl_name: str, lane_name: str,
                ring_name: str, lane_cap: int, ring_cap: int) -> None:
    """Rank process: serve one world at a time until shutdown."""
    ctrl_shm = shared_memory.SharedMemory(name=ctrl_name)
    lane_shm = shared_memory.SharedMemory(name=lane_name)
    ring_shm = shared_memory.SharedMemory(name=ring_name)
    for shm in (ctrl_shm, lane_shm, ring_shm):
        _untrack(shm)
    nlanes = size * size
    ctrl = np.ndarray((_CTRL_HEAD + _REG_WORDS * size + size,), dtype=np.int64,
                      buffer=ctrl_shm.buf)
    lane_hdr = np.ndarray((nlanes, 2), dtype=np.int64, buffer=lane_shm.buf)
    lane_buf = np.ndarray((nlanes, lane_cap), dtype=np.uint8,
                          buffer=lane_shm.buf, offset=nlanes * 16)
    ring_counts = ctrl[_CTRL_HEAD + _REG_WORDS * size:]
    ring_buf = np.ndarray((size, ring_cap, RECORD_WIDTH), dtype=np.float64,
                          buffer=ring_shm.buf)

    # pyuvsim-style excepthook: anything escaping a thread of this rank
    # (not just the serve loop) must take the whole world down with it
    def _excepthook(exc_type, exc, tb):  # pragma: no cover - last resort
        ctrl[_ABORT_RANK] = rank
        ctrl[_ABORT] = 1
        sys.__excepthook__(exc_type, exc, tb)

    sys.excepthook = _excepthook

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, KeyboardInterrupt):  # pragma: no cover
                return
            tag = msg[0]
            if tag == "shutdown":
                return
            if tag == "ping":
                conn.send(("pong", rank, msg[1]))
                continue
            # ("world", epoch, fn, recv_timeout, window_prefix)
            _, epoch, fn, recv_timeout, window_prefix = msg
            comm = ProcComm(
                rank, size, ctrl, lane_hdr, lane_buf,
                RingWriter(ring_counts, ring_buf, rank),
                recv_timeout, window_prefix=f"{window_prefix}e{epoch}_",
            )
            try:
                result = fn(comm, rank)
                comm._finish()
                reply = ("result", rank, epoch, result)
            except _WorldAborted as exc:
                comm._finish()
                reply = ("aborted", rank, epoch, str(exc))
            except BaseException as exc:
                comm._abort_world()
                comm._finish()
                detail = f"{type(exc).__name__}: {exc}"
                if not isinstance(exc, MpiError):
                    detail += "\n" + traceback.format_exc()
                reply = ("error", rank, epoch, detail)
            finally:
                comm._release_windows()
            try:
                conn.send(reply)
            except Exception:  # pragma: no cover - master went away
                return
    finally:
        for shm in (ctrl_shm, lane_shm, ring_shm):
            _defuse(shm)


# --------------------------------------------------------------------------
# Master side
# --------------------------------------------------------------------------


class MpiPool:
    """A persistent world of rank processes for one size."""

    def __init__(self, size: int):
        if size < 1:
            raise MpiError(f"world size must be >= 1, got {size}")
        self.size = size
        self.prefix = f"ezmpi_{os.getpid()}_{os.urandom(3).hex()}_"
        self.lane_cap = lane_capacity()
        self.ring_cap = _RING_CAP
        self._mp = _mp_context()
        nlanes = size * size
        ctrl_shm = _alloc_block(
            self.prefix + "ctrl_", 0,
            (_CTRL_HEAD + _REG_WORDS * size + size) * 8,
        )
        self._ctrl_name = ctrl_shm.name
        self.ctrl = np.ndarray((_CTRL_HEAD + _REG_WORDS * size + size,),
                               dtype=np.int64, buffer=ctrl_shm.buf)
        lane_shm = _alloc_block(
            self.prefix + "lanes_", 0, nlanes * 16 + nlanes * self.lane_cap
        )
        self._lane_name = lane_shm.name
        self.lane_hdr = np.ndarray((nlanes, 2), dtype=np.int64, buffer=lane_shm.buf)
        ring_shm = _alloc_block(
            self.prefix + "ring_", 0,
            size * self.ring_cap * RECORD_WIDTH * 8,
        )
        self._ring_name = ring_shm.name
        self.ring_buf = np.ndarray((size, self.ring_cap, RECORD_WIDTH),
                                   dtype=np.float64, buffer=ring_shm.buf)
        self._ring_consumed = [0] * size
        self.epoch = 0
        self.broken = False
        self.conns = []
        self.procs = []
        with _no_main_reimport():
            for rank in range(size):
                parent, child = self._mp.Pipe()
                p = self._mp.Process(
                    target=_rank_serve,
                    args=(rank, child, size, self._ctrl_name, self._lane_name,
                          self._ring_name, self.lane_cap, self.ring_cap),
                    daemon=True,
                    name=f"easypap-mpi-{rank}",
                )
                p.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(p)

    # -- lifecycle ------------------------------------------------------------
    def healthy(self) -> bool:
        return not self.broken and all(p.is_alive() for p in self.procs)

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self.procs]

    def shutdown(self) -> None:
        self.broken = True
        for conn in self.conns:
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for p in self.procs:
            p.join(timeout=max(deadline - time.monotonic(), 0.05))
        for p in self.procs:
            if p.is_alive():
                p.terminate()
        for p in self.procs:
            p.join(timeout=1.0)
            if p.is_alive():  # pragma: no cover
                p.kill()
                p.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for name in (self._ctrl_name, self._lane_name, self._ring_name):
            _unlink_block(name)

    def _fail(self, why: str) -> ExecutionError:
        self.shutdown()
        _MPI_POOLS.pop(self.size, None)
        return ExecutionError(why)

    def _drain_stale(self) -> None:
        for conn in self.conns:
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):
                pass

    # -- telemetry ------------------------------------------------------------
    def _drain_counters(self, bus) -> None:
        """Publish drained KIND_COUNTER records on ``bus`` (per-rank
        producers), mirroring how the procs master drains tile events."""
        ring_counts = self.ctrl[_CTRL_HEAD + _REG_WORDS * self.size:]
        for rank in range(self.size):
            records, self._ring_consumed[rank], dropped = drain_lane(
                ring_counts, self.ring_buf, rank, self._ring_consumed[rank]
            )
            if bus is None:
                continue
            for rec in records:
                if int(rec[0]) == KIND_COUNTER:
                    idx = int(rec[2])
                    if 0 <= idx < len(MPI_COUNTERS):
                        bus.counter(MPI_COUNTERS[idx], rec[3], producer=rank)
            if dropped:
                bus.record_dropped(dropped)

    # -- running a world ------------------------------------------------------
    def run(
        self,
        fn: Callable[[ProcComm, int], Any],
        *,
        recv_timeout: float | None = None,
        bus=None,
    ) -> list[Any]:
        """Dispatch ``fn(comm, rank)`` to every rank; collect in order.

        Liveness is supervised: a rank that dies flips the abort word so
        its peers unwind promptly, then the pool is torn down and a
        clean :class:`ExecutionError` raised — bounded, never the recv
        backstop.  ``bus`` (when given) receives the live comm-volume
        CounterEvents drained from the rank ring lanes.
        """
        timeout = default_recv_timeout() if recv_timeout is None else recv_timeout
        if not self.healthy():
            raise self._fail("MPI rank pool is broken")
        self.epoch += 1
        epoch = self.epoch
        # quiescent reset: workers only touch lanes between "world" and
        # their reply, so zeroing here races with nothing
        self.ctrl[:] = 0
        self.lane_hdr[:] = 0
        self._ring_consumed = [0] * self.size
        self._drain_stale()
        try:
            for conn in self.conns:
                conn.send(("world", epoch, fn, timeout, self.prefix))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise self._fail(f"MPI rank pool died at dispatch: {exc}") from None
        pending = set(range(self.size))
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, str]] = []
        aborted: list[int] = []
        grace_deadline: float | None = None
        dead_ranks: list[int] = []
        while pending:
            self._drain_counters(bus)
            for rank in sorted(pending):
                conn = self.conns[rank]
                try:
                    if not conn.poll(0.005):
                        continue
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # liveness check below handles the dead pipe
                kind, r, ep = msg[0], msg[1], msg[2]
                if ep != epoch or kind == "pong":
                    continue
                pending.discard(r)
                if kind == "result":
                    results[r] = msg[3]
                elif kind == "aborted":
                    aborted.append(r)
                else:  # "error"
                    errors.append((r, msg[3]))
            if not pending:
                break
            for rank in list(pending):
                if not self.procs[rank].is_alive():
                    if rank not in dead_ranks:
                        dead_ranks.append(rank)
                        self.ctrl[_ABORT_RANK] = rank
                        self.ctrl[_ABORT] = 1
                    pending.discard(rank)
            if dead_ranks and grace_deadline is None:
                grace_deadline = time.monotonic() + 10.0
            if grace_deadline is not None and time.monotonic() > grace_deadline:
                raise self._fail(
                    f"MPI rank(s) {dead_ranks} died; peers did not unwind "
                    "within the abort grace period"
                )
        self._drain_counters(bus)
        if dead_ranks:
            raise self._fail(
                f"MPI rank {dead_ranks[0]} died "
                f"(world of {self.size} aborted, peers unwound cleanly)"
            )
        if errors:
            errors.sort()
            details = "; ".join(f"rank {r}: {msg.splitlines()[0]}" for r, msg in errors)
            for r in sorted(aborted):
                details += f"; rank {r}: aborted by peer"
            raise MpiError(f"{len(errors)} rank(s) failed: {details}")
        if aborted:  # pragma: no cover - abort without an error reply
            raise MpiError(f"MPI world aborted (ranks {sorted(aborted)})")
        return results


_MPI_POOLS: dict[int, MpiPool] = {}


def get_mpi_pool(size: int) -> MpiPool:
    """The persistent rank pool for a world size (respawned if broken)."""
    register_cleanup(shutdown_mpi_pools)
    pool = _MPI_POOLS.get(size)
    if pool is not None and not pool.healthy():
        pool.shutdown()
        pool = None
    if pool is None:
        pool = MpiPool(size)
        _MPI_POOLS[size] = pool
    return pool


def shutdown_mpi_pools() -> None:
    """Stop every rank pool and unlink their shared blocks."""
    for key in list(_MPI_POOLS):
        _MPI_POOLS.pop(key).shutdown()


def live_mpi_blocks() -> list[str]:
    """Names of MPI-owned shared blocks still registered (leak tests)."""
    from repro.omp.procs import _LIVE_BLOCKS

    return [n for n in _LIVE_BLOCKS if n.startswith("ezmpi_")]


def run_world_procs(
    size: int,
    fn: Callable[[ProcComm, int], Any],
    *,
    recv_timeout: float | None = None,
    bus=None,
) -> list[Any]:
    """Run ``fn(comm, rank)`` on every rank of the process world.

    The process-substrate twin of :func:`repro.mpi.comm.run_world`:
    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one).  Raises :class:`MpiError` when
    ranks fail, :class:`ExecutionError` when one dies outright.
    """
    return get_mpi_pool(size).run(fn, recv_timeout=recv_timeout, bus=bus)
