"""``python -m repro.analyze`` — lint every built-in kernel variant.

The CI gate: runs the static + dynamic lint (including the race
detector) over each registered kernel/variant at a small deterministic
size, and exits nonzero if any *error*-level finding shows up.  Built-in
variants must come out clean; the seeded-buggy examples under
``examples/`` are the positive fixtures (exercised by the tests, not by
this sweep — they register extra kernels only when imported).
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.lint import lint_variant
from repro.core.kernel import get_kernel, list_kernels

#: variants that need an MPI world, with the process count to use
MPI_VARIANTS = {"mpi_omp": 2, "mpi_2d": 4}


def sweep(
    kernels: list[str] | None = None,
    *,
    dim: int = 64,
    tile: int = 16,
    verbose: bool = False,
) -> int:
    names = kernels or list_kernels()
    nerrors = nwarnings = nchecked = 0
    for kname in names:
        kernel = get_kernel(kname)
        for vname in kernel.variant_names():
            mpi_np = MPI_VARIANTS.get(vname, 0)
            result = lint_variant(
                kname, vname, dim=dim, tile=tile, mpi_np=mpi_np
            )
            nchecked += 1
            nerrors += len(result.errors)
            nwarnings += len(result.warnings)
            if verbose or not result.clean:
                print(result.describe())
    print(
        f"analyze: {nchecked} variants checked, "
        f"{nerrors} error(s), {nwarnings} warning(s)"
    )
    return 1 if nerrors else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="lint + race-check built-in kernel variants",
    )
    parser.add_argument("-k", "--kernel", action="append", help="restrict to kernel(s)")
    parser.add_argument("-s", "--size", type=int, default=64, help="image size")
    parser.add_argument("--tile", type=int, default=16, help="tile size")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    return sweep(args.kernel, dim=args.size, tile=args.tile, verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
