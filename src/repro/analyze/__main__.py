"""``python -m repro.analyze`` — lint every built-in kernel variant.

The CI gate: runs the static + dynamic lint (including the race
detector) over each registered kernel/variant at a small deterministic
size, and exits nonzero if any *error*-level finding shows up.  Built-in
variants must come out clean.  The seeded-buggy examples under
``examples/`` can join the sweep via ``--load``: their
``EXPECTED_VERDICTS`` annotations flip the polarity, so an annotated
variant *must* produce a matching error finding (the seeded bug is
confirmed) and then counts as OK, while a missing detection fails the
sweep.
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.lint import lint_variant
from repro.core.kernel import get_kernel, list_kernels, load_kernel_module
from repro.errors import EasypapError, UnknownKernelError

#: variants that need an MPI world, with the process count to use
MPI_VARIANTS = {"mpi_omp": 2, "mpi_2d": 4}


def sweep(
    kernels: list[str] | None = None,
    *,
    dim: int = 64,
    tile: int = 16,
    verbose: bool = False,
    expected: dict | None = None,
) -> int:
    expected = expected or {}
    names = kernels or list_kernels()
    nerrors = nwarnings = nchecked = nconfirmed = 0
    for kname in names:
        try:
            kernel = get_kernel(kname)
        except UnknownKernelError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        for vname in kernel.variant_names():
            mpi_np = MPI_VARIANTS.get(vname, 0)
            result = lint_variant(
                kname, vname, dim=dim, tile=tile, mpi_np=mpi_np
            )
            nchecked += 1
            nwarnings += len(result.warnings)
            exp = expected.get((kname, vname))
            if exp and exp.get("verdict") == "race":
                buf = exp.get("buffer", "")
                matched = [
                    f for f in result.errors
                    if not buf or f"'{buf}'" in f.message
                ]
                if matched:
                    nconfirmed += 1
                    if verbose:
                        print(
                            f"{kname}/{vname}: seeded bug confirmed "
                            f"({len(matched)} matching error finding(s))"
                        )
                else:
                    nerrors += 1
                    print(
                        f"{kname}/{vname}: EXPECTED_VERDICTS announces a race "
                        f"on buffer {buf!r}, but the dynamic sweep found none"
                    )
                continue
            nerrors += len(result.errors)
            if verbose or not result.clean:
                print(result.describe())
    tail = f", {nconfirmed} seeded bug(s) confirmed" if nconfirmed else ""
    print(
        f"analyze: {nchecked} variants checked, "
        f"{nerrors} error(s), {nwarnings} warning(s){tail}"
    )
    return 1 if nerrors else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="lint + race-check built-in kernel variants",
    )
    parser.add_argument("-k", "--kernel", action="append", help="restrict to kernel(s)")
    parser.add_argument("-s", "--size", type=int, default=64, help="image size")
    parser.add_argument("--tile", type=int, default=16, help="tile size")
    parser.add_argument(
        "--load", action="append", default=[], metavar="FILE",
        help="load a kernel module first (its EXPECTED_VERDICTS annotations "
        "flip the polarity for the annotated variants)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    expected: dict = {}
    for path in args.load:
        try:
            module = load_kernel_module(path)
        except EasypapError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        expected.update(getattr(module, "EXPECTED_VERDICTS", {}) or {})
    return sweep(
        args.kernel, dim=args.size, tile=args.tile, verbose=args.verbose,
        expected=expected,
    )


if __name__ == "__main__":
    sys.exit(main())
