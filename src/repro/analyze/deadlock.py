"""MPI wait-for-graph deadlock analysis.

Upgrades the comm layer's recv-timeout heuristic ("blocked for 60s —
deadlock?") into an actual diagnosis.  While a rank is blocked in a
receive, the world keeps a registry of who waits for whom; every poll
interval the blocked rank snapshots that registry and calls
:func:`diagnose`, which recognizes three provable situations:

* **cycle** — the rank's wait chain (each rank blocked on a specific
  source) loops back to itself: the classic recv/recv deadlock;
* **finished-peer** — the awaited source has already terminated without
  a matching send; any messages sitting in the mailbox that match
  neither the source nor the tag are reported as near-misses (the
  "sent with the wrong tag" bug);
* **starved ANY_SOURCE** — the rank waits on ``ANY_SOURCE`` but every
  other rank is blocked or finished, so nobody can ever send.

The analysis is conservative: a rank whose state cannot be established
without blocking is treated as active and no verdict is produced — the
caller simply retries at the next poll, and the hard timeout remains
the backstop.

This module is pure (no threading, no I/O): the comm layer feeds it
:class:`RankWait`/:class:`PendingMsg` snapshots, and wraps a returned
:class:`DeadlockReport` in :class:`repro.errors.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["ANY", "RankWait", "PendingMsg", "DeadlockReport", "diagnose"]

#: wildcard source/tag (mirrors comm.ANY_SOURCE / comm.ANY_TAG)
ANY = -1


def _fmt(v: int) -> str:
    return "any" if v == ANY else str(v)


@dataclass(frozen=True)
class RankWait:
    """One rank observed blocked in a receive with no matching message."""

    rank: int
    source: int  # awaited source rank, or ANY
    tag: int  # awaited tag, or ANY

    def describe(self) -> str:
        return (
            f"rank {self.rank} blocked in "
            f"recv(source={_fmt(self.source)}, tag={_fmt(self.tag)})"
        )


@dataclass(frozen=True)
class PendingMsg:
    """A message sitting in the blocked rank's mailbox that does *not*
    match its receive (wrong source or wrong tag)."""

    source: int
    tag: int

    def describe(self) -> str:
        return f"from rank {self.source} with tag {self.tag}"


@dataclass(frozen=True)
class DeadlockReport:
    """A provable deadlock involving ``rank``."""

    kind: str  # "cycle" | "finished-peer" | "starved"
    rank: int
    waits: tuple[RankWait, ...] = ()  # the blocked ranks involved
    cycle: tuple[int, ...] = ()  # for kind == "cycle": r0 -> r1 -> ... -> r0
    finished: tuple[int, ...] = ()  # terminated ranks involved
    unmatched: tuple[PendingMsg, ...] = ()

    def describe(self) -> str:
        if self.kind == "cycle":
            arrows = " -> ".join(str(r) for r in self.cycle)
            head = f"deadlock detected: cyclic wait among ranks {arrows}"
        elif self.kind == "finished-peer":
            me = self.waits[0]
            head = (
                f"deadlock detected: {me.describe()} but rank "
                f"{self.finished[0]} has already finished"
            )
        else:  # starved
            me = self.waits[0]
            head = (
                f"deadlock detected: {me.describe()} but every other rank "
                "is blocked or finished — nobody can send"
            )
        lines = [head]
        if self.kind == "cycle":
            lines += ["  " + w.describe() for w in self.waits]
        if self.unmatched:
            lines.append(
                f"  {len(self.unmatched)} pending message(s) match neither "
                "the source nor the tag: "
                + "; ".join(m.describe() for m in self.unmatched)
            )
        return "\n".join(lines)


def diagnose(
    rank: int,
    waits: Mapping[int, RankWait],
    finished: frozenset[int] | set[int],
    size: int,
    unmatched: Sequence[PendingMsg] = (),
) -> DeadlockReport | None:
    """Decide whether ``rank`` is provably deadlocked.

    ``waits`` must contain only ranks known to be *stuck* (blocked with
    no matching pending message) — undecidable ranks are omitted by the
    caller and break any would-be cycle, producing no verdict.
    """
    me = waits.get(rank)
    if me is None:
        return None
    unmatched = tuple(unmatched)

    if me.source == ANY:
        others = [r for r in range(size) if r != rank]
        if others and all(r in finished or r in waits for r in others):
            return DeadlockReport(
                kind="starved",
                rank=rank,
                waits=(me,),
                finished=tuple(sorted(set(finished) & set(others))),
                unmatched=unmatched,
            )
        return None

    # follow the chain of specific-source waits starting at ``rank``
    chain = [rank]
    cur = me
    while True:
        nxt = cur.source
        if nxt in finished:
            # only the direct waiter reports; transitive waiters see the
            # reporter's own termination and cascade at a later poll
            if len(chain) == 1:
                return DeadlockReport(
                    kind="finished-peer",
                    rank=rank,
                    waits=(me,),
                    finished=(nxt,),
                    unmatched=unmatched,
                )
            return None
        if nxt == rank:
            chain.append(nxt)
            return DeadlockReport(
                kind="cycle",
                rank=rank,
                waits=tuple(waits[r] for r in chain[:-1]),
                cycle=tuple(chain),
                unmatched=unmatched,
            )
        w = waits.get(nxt)
        if w is None or w.source == ANY or nxt in chain:
            # active/undecidable rank, ANY_SOURCE wait, or a cycle not
            # through us (its members will report it) — no verdict
            return None
        chain.append(nxt)
        cur = w
