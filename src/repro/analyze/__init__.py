"""repro.analyze — parallel-correctness analyses over recorded runs.

Three analyses turn runs into verdicts (see ``docs/analyze.md``):

* :mod:`repro.analyze.races` — a vector-clock happens-before data-race
  detector over per-task tile read/write footprints;
* :mod:`repro.analyze.lint` — kernel-variant lint: tile-partition
  completeness/disjointness, double-buffer discipline, shared-accumulator
  (``parallel_reduce`` misuse) checks;
* :mod:`repro.analyze.deadlock` — the wait-for-graph machinery behind
  ``mpi.comm``'s blocked-rank deadlock detector.

CLI entry points: ``easypap --check-races`` / ``--lint`` and
``easyview --races``; ``python -m repro.analyze`` sweeps every built-in
kernel variant (the CI gate).
"""

from repro.analyze.lint import Finding, lint_results, lint_variant
from repro.analyze.races import RaceReport, check_races, detect_races

__all__ = [
    "RaceReport",
    "detect_races",
    "check_races",
    "Finding",
    "lint_results",
    "lint_variant",
]
