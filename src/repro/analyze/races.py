"""The data-race detector.

For every synchronization region of a footprint-carrying trace, find
pairs of logically concurrent tasks (per :mod:`repro.analyze.hb`) whose
footprints conflict: one writes a buffer rectangle the other reads or
writes.  Candidate pairs are pruned with a spatial hash, so cost stays
near-linear in the number of footprint regions.

Reports are actionable: they name the two tasks, their tiles, the
buffer and the overlapping rectangle, and — for task-graph regions —
the ``depend`` token whose absence broke the ordering.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analyze.footprint import RegionTasks, TaskNode, tasks_by_region
from repro.analyze.hb import concurrency_of
from repro.trace.events import Trace

__all__ = ["RaceReport", "RaceCheckResult", "detect_races", "check_races"]

#: spatial-hash cell side, in pixels
_CELL = 32

#: stop after this many distinct racy pairs (reports stay readable)
MAX_REPORTS = 20


@dataclass(frozen=True)
class RaceReport:
    """One detected race: two concurrent tasks with conflicting accesses."""

    kind: str  # "write-write" or "read-write"
    buf: str
    overlap: tuple[int, int, int, int]  # x, y, w, h
    iteration: int
    region: int
    rmode: str
    a: TaskNode
    b: TaskNode
    a_access: str  # "read" | "write"
    b_access: str
    advice: str

    def describe(self) -> str:
        ox, oy, ow, oh = self.overlap
        lines = [
            f"{self.kind} race on buffer {self.buf!r} "
            f"(iteration {self.iteration}, region {self.region}):",
            f"  {self.a.describe()} {self.a_access}s "
            f"and {self.b.describe()} {self.b_access}s "
            f"the rectangle x={ox} y={oy} {ow}x{oh}",
            f"  {self.advice}",
        ]
        return "\n".join(lines)


@dataclass
class RaceCheckResult:
    """Outcome of :func:`check_races` on one trace."""

    races: list[RaceReport]
    regions_checked: int
    tasks_checked: int
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.races

    def describe(self) -> str:
        if self.clean:
            return (
                f"no data races: {self.tasks_checked} tasks across "
                f"{self.regions_checked} parallel regions, all conflicting "
                f"accesses ordered by happens-before"
            )
        head = f"{len(self.races)} data race(s) detected"
        if self.truncated:
            head += f" (report truncated at {MAX_REPORTS})"
        body = "\n\n".join(r.describe() for r in self.races)
        return f"{head}:\n\n{body}"


def _cells(x: int, y: int, w: int, h: int):
    for cy in range(y // _CELL, (y + h - 1) // _CELL + 1):
        for cx in range(x // _CELL, (x + w - 1) // _CELL + 1):
            yield (cx, cy)


def _overlap(a, b):
    """Intersection of two (x, y, w, h) rects, or None."""
    x0, y0 = max(a[0], b[0]), max(a[1], b[1])
    x1 = min(a[0] + a[2], b[0] + b[2])
    y1 = min(a[1] + a[3], b[1] + b[3])
    if x0 >= x1 or y0 >= y1:
        return None
    return (x0, y0, x1 - x0, y1 - y0)


def _advice(region: RegionTasks, writer: TaskNode, other: TaskNode, buf: str) -> str:
    if region.rmode == "dag":
        missing = next(iter(writer.depend_out), None)
        if missing is not None and missing not in other.depend_in:
            return (
                f"missing ordering edge: {writer.describe()} declares "
                f"depend(out: {missing}) but {other.describe()} does not list "
                f"it in depend(in: {list(other.depend_in)}) — add the "
                f"in-dependence to order them"
            )
        return (
            "no dependency path orders these tasks — add a depend clause "
            "creating a happens-before edge between them"
        )
    return (
        "tasks of a worksharing loop run concurrently with no ordering: "
        f"make writes to {buf!r} disjoint per task, write to the other "
        "buffer of a double-buffer pair, or fold shared results with "
        "ctx.parallel_reduce"
    )


def _region_races(region: RegionTasks, reports: list[RaceReport]) -> int:
    """Append races of one region to ``reports``; returns tasks examined."""
    tasks = region.tasks
    if not region.parallel or len(tasks) < 2:
        return len(tasks)
    concurrent = concurrency_of(region)

    # spatial hash: buffer -> cell -> list of (rect, task position, is_write)
    index: dict[str, dict[tuple, list]] = defaultdict(lambda: defaultdict(list))
    for pos, node in enumerate(tasks):
        for is_write, regs in ((False, node.reads), (True, node.writes)):
            for r in regs:
                buf, x, y, w, h = r[:5]
                # optional (z, d) depth extent of 3D regions; 2D regions
                # conservatively span every plane (see regions_overlap)
                zext = tuple(r[5:7]) or None
                entry = ((x, y, w, h), pos, is_write, zext)
                buckets = index[buf]
                for cell in _cells(x, y, w, h):
                    buckets[cell].append(entry)

    seen: set[tuple] = set()
    for buf, buckets in index.items():
        for entries in buckets.values():
            for i in range(len(entries)):
                rect_i, pos_i, wr_i, z_i = entries[i]
                for j in range(i + 1, len(entries)):
                    rect_j, pos_j, wr_j, z_j = entries[j]
                    if pos_i == pos_j or not (wr_i or wr_j):
                        continue
                    if (
                        z_i is not None
                        and z_j is not None
                        and min(z_i[0] + z_i[1], z_j[0] + z_j[1])
                        <= max(z_i[0], z_j[0])
                    ):
                        continue  # disjoint depth ranges: no 3D overlap
                    key = (min(pos_i, pos_j), max(pos_i, pos_j), buf)
                    if key in seen:
                        continue
                    ov = _overlap(rect_i, rect_j)
                    if ov is None:
                        continue
                    a, b = tasks[pos_i], tasks[pos_j]
                    if not concurrent(a.tid, b.tid):
                        continue
                    seen.add(key)
                    if len(reports) >= MAX_REPORTS:
                        return len(tasks)
                    writer, other = (a, b) if wr_i else (b, a)
                    reports.append(
                        RaceReport(
                            kind="write-write" if (wr_i and wr_j) else "read-write",
                            buf=buf,
                            overlap=ov,
                            iteration=region.iteration,
                            region=region.region,
                            rmode=region.rmode,
                            a=a,
                            b=b,
                            a_access="write" if wr_i else "read",
                            b_access="write" if wr_j else "read",
                            advice=_advice(region, writer, other, buf),
                        )
                    )
    return len(tasks)


def detect_races(trace: Trace) -> list[RaceReport]:
    """All races of a trace (capped at :data:`MAX_REPORTS`)."""
    return check_races(trace).races


def check_races(trace: Trace) -> RaceCheckResult:
    """Run the happens-before race analysis over a recorded trace."""
    reports: list[RaceReport] = []
    nregions = ntasks = 0
    for region in tasks_by_region(trace):
        ntasks += _region_races(region, reports)
        if region.parallel:
            nregions += 1
    return RaceCheckResult(
        races=reports,
        regions_checked=nregions,
        tasks_checked=ntasks,
        truncated=len(reports) >= MAX_REPORTS,
    )
