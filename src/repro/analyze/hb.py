"""Vector clocks and the happens-before relation of a run.

The runtime's synchronization structure makes the global picture easy:
every region (``parallel_for``, ``parallel_reduce``, ``sequential_for``,
task region) is forked and joined by the master, so *tasks of different
regions are always ordered* — the fork-join barrier is a happens-before
edge.  All concurrency therefore lives within a single region:

* ``seq`` regions run their tasks back-to-back on one CPU — totally
  ordered, never racy;
* ``par``/``reduce`` regions are OpenMP worksharing loops: the spec
  orders nothing between two chunks of the same loop, so every task
  pair is *logically concurrent* — regardless of where the simulated
  schedule happened to place them.  (Detecting against logical
  concurrency rather than one observed schedule is what makes reports
  schedule-independent, the ThreadSanitizer lesson.)
* ``dag`` regions (``task`` + ``depend``) get real vector clocks: a
  task's clock is the join of its predecessors' clocks plus its own
  tick, and two tasks are concurrent iff their clocks are incomparable.
"""

from __future__ import annotations

from repro.analyze.footprint import RegionTasks

__all__ = ["VectorClock", "region_clocks", "concurrency_of"]


class VectorClock:
    """A sparse vector clock over task ids."""

    __slots__ = ("_c",)

    def __init__(self, components: dict[int, int] | None = None):
        self._c: dict[int, int] = dict(components or {})

    def tick(self, tid: int) -> "VectorClock":
        c = dict(self._c)
        c[tid] = c.get(tid, 0) + 1
        return VectorClock(c)

    def join(self, other: "VectorClock") -> "VectorClock":
        c = dict(self._c)
        for k, v in other._c.items():
            if v > c.get(k, 0):
                c[k] = v
        return VectorClock(c)

    def __le__(self, other: "VectorClock") -> bool:
        return all(v <= other._c.get(k, 0) for k, v in self._c.items())

    def concurrent(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def __getitem__(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items()))
        return f"VC({inner})"


def region_clocks(region: RegionTasks) -> dict[int, VectorClock]:
    """Vector clocks of a ``dag`` region's tasks, keyed by task id.

    Task ids are assigned in submission order and OpenMP dependencies
    only point backwards in program order, so ascending-tid iteration is
    a valid topological order.
    """
    clocks: dict[int, VectorClock] = {}
    for node in region.tasks:
        vc = VectorClock()
        for p in node.preds:
            pvc = clocks.get(p)
            if pvc is not None:
                vc = vc.join(pvc)
        clocks[node.tid] = vc.tick(node.tid)
    return clocks


def concurrency_of(region: RegionTasks):
    """A predicate ``concurrent(tid_a, tid_b)`` for tasks of ``region``."""
    if region.rmode == "seq":
        return lambda a, b: False
    if region.rmode == "dag":
        clocks = region_clocks(region)

        def dag_concurrent(a: int, b: int) -> bool:
            ca, cb = clocks.get(a), clocks.get(b)
            if ca is None or cb is None:
                return True  # unknown ordering: assume concurrent (sound)
            return ca.concurrent(cb)

        return dag_concurrent
    # worksharing: every pair of distinct tasks is logically concurrent
    return lambda a, b: a != b
