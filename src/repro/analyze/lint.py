"""Kernel-variant lint: parallel-correctness checks beyond races.

``lint_variant`` drives a *short* instrumented run (two iterations at a
small size — not the kernel's real workload) and checks:

* **tile-partition completeness/disjointness** — within one region, the
  tiles processed must not overlap (disjointness is an error: the same
  pixels computed twice) and, unless the variant is declared lazy,
  must cover the whole image (a gap is a warning: pixels never
  computed);
* **double-buffer discipline** — a variant whose tasks write a buffer
  that concurrent tasks of the same region read (the classic "wrote
  ``cur`` instead of ``next``" bug) — derived from the race detector's
  read-write conflicts;
* **shared-accumulator misuse** — a purely static AST pass over the
  variant's source: a ``parallel_for`` body that mutates a captured
  variable (``nonlocal``/``global`` declarations, augmented assignment
  to a free name) races in real OpenMP; the fix is
  ``ctx.parallel_reduce``.

Race reports themselves are folded in as error findings, so one lint
call gives the complete verdict for a variant.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

import numpy as np

from repro.analyze.footprint import tasks_by_region
from repro.analyze.races import RaceCheckResult, check_races
from repro.core.config import RunConfig
from repro.core.kernel import Kernel, get_kernel
from repro.trace.events import Trace

__all__ = [
    "Finding",
    "LintResult",
    "lint_variant",
    "lint_results",
    "lint_trace",
    "static_findings",
]


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic."""

    level: str  # "error" | "warning"
    check: str  # e.g. "partition-overlap", "double-buffer", "race"
    message: str

    def describe(self) -> str:
        return f"[{self.level}] {self.check}: {self.message}"


@dataclass
class LintResult:
    """All findings for one kernel variant."""

    kernel: str
    variant: str
    findings: list[Finding] = field(default_factory=list)
    race_results: list[RaceCheckResult] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "warning"]

    @property
    def clean(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        head = f"{self.kernel}/{self.variant}: "
        if self.clean:
            return head + "ok"
        return head + f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)\n" + "\n".join(
            "  " + f.describe() for f in self.findings
        )


# --------------------------------------------------------------------------
# Dynamic checks (over an instrumented trace)
# --------------------------------------------------------------------------


def partition_findings(trace: Trace, *, lazy: bool = False) -> list[Finding]:
    """Check, per region, that processed tiles are disjoint and cover
    the image.  Regions whose items are not tiles (rows, phases, GPU
    launches) are skipped."""
    dim = trace.meta.dim
    if dim <= 0:
        return []
    dim_y = int(trace.meta.extra.get("dim_y", dim)) or dim
    findings: list[Finding] = []
    for region in tasks_by_region(trace):
        tiled = [t for t in region.tasks if t.event.has_tile]
        if not tiled or len(tiled) != len(region.tasks):
            continue
        deps_domain = str(trace.meta.extra.get("domain", "grid")) == "wavefront"
        ordered = region.rmode == "dag" or (
            deps_domain and region.rmode == "seq"
        )
        cov = np.zeros((dim_y, dim), dtype=np.int32)
        for node in tiled:
            e = node.event
            cov[e.y : e.y + e.h, e.x : e.x + e.w] += 1
        if ordered:
            # dependency-ordered regions (wavefront domains, task DAGs)
            # and sequential loops over dependency-carrying domains
            # legitimately revisit blocks — ordered re-writes are the
            # whole point; concurrent overlap is the race detector's
            # job.  Only a coverage gap is worth flagging here.
            if not lazy and (cov == 0).any():
                y, x = map(int, np.argwhere(cov == 0)[0])
                findings.append(
                    Finding(
                        "warning",
                        "partition-gap",
                        f"region {region.region} (iteration {region.iteration}): "
                        f"pixel (x={x}, y={y}) is covered by no tile — the "
                        "partition misses parts of the image",
                    )
                )
            continue
        if (cov > 1).any():
            y, x = map(int, np.argwhere(cov > 1)[0])
            pair = [n for n in tiled
                    if n.event.x <= x < n.event.x + n.event.w
                    and n.event.y <= y < n.event.y + n.event.h][:2]
            names = " and ".join(n.describe() for n in pair)
            findings.append(
                Finding(
                    "error",
                    "partition-overlap",
                    f"region {region.region} (iteration {region.iteration}): "
                    f"{names} both cover pixel (x={x}, y={y}) — tiles of one "
                    "region must be disjoint",
                )
            )
        elif not lazy and (cov == 0).any():
            y, x = map(int, np.argwhere(cov == 0)[0])
            findings.append(
                Finding(
                    "warning",
                    "partition-gap",
                    f"region {region.region} (iteration {region.iteration}): "
                    f"pixel (x={x}, y={y}) is covered by no tile — the "
                    "partition misses parts of the image",
                )
            )
    return findings


def race_findings(rr: RaceCheckResult) -> list[Finding]:
    """Fold race reports into findings, adding one double-buffer
    diagnostic per buffer whose read/write overlap looks like the
    'wrote cur instead of next' bug."""
    findings = [Finding("error", "race", race.describe()) for race in rr.races]
    flagged: set[str] = set()
    for race in rr.races:
        if (
            race.kind == "read-write"
            and race.rmode in ("par", "reduce")
            and race.buf not in flagged
        ):
            flagged.add(race.buf)
            findings.append(
                Finding(
                    "error",
                    "double-buffer",
                    f"tasks write buffer {race.buf!r} while concurrent tasks "
                    "read it — double-buffer discipline: write into the "
                    "paired buffer and swap between iterations",
                )
            )
    return findings


def lint_trace(trace: Trace, *, lazy: bool = False) -> list[Finding]:
    """Dynamic lint of one recorded trace (partition + races)."""
    rr = check_races(trace)
    return partition_findings(trace, lazy=lazy) + race_findings(rr)


# --------------------------------------------------------------------------
# Static checks (over the variant's AST)
# --------------------------------------------------------------------------


def static_findings(kernel: Kernel, variant_name: str) -> list[Finding]:
    """AST pass over the variant's source: shared-accumulator misuse."""
    fn = kernel.variants.get(variant_name)
    if fn is None:
        return []
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError):
        return []
    func = tree.body[0]
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    nested = {
        n.name: n for n in ast.walk(func) if isinstance(n, ast.FunctionDef)
    }
    findings: list[Finding] = []
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("parallel_for", "parallel_reduce")
        ):
            continue
        construct = node.func.attr
        for arg in node.args[:1]:
            body = None
            if isinstance(arg, ast.Lambda):
                body = arg
            elif isinstance(arg, ast.Name):
                body = nested.get(arg.id)
            if body is not None:
                findings.extend(
                    _accumulator_findings(body, construct, variant_name)
                )
    return findings


def _accumulator_findings(
    body: ast.Lambda | ast.FunctionDef, construct: str, variant_name: str
) -> list[Finding]:
    bound = {a.arg for a in body.args.args}
    bound |= {a.arg for a in body.args.kwonlyargs}
    # names assigned inside the body are locals, not captured state
    for n in ast.walk(body):
        if isinstance(n, ast.Assign):
            for t in n.targets:
                if isinstance(t, ast.Name):
                    bound.add(t.id)
        elif isinstance(n, (ast.For, ast.comprehension)):
            t = n.target
            if isinstance(t, ast.Name):
                bound.add(t.id)
    findings = []
    for n in ast.walk(body):
        shared = None
        if isinstance(n, (ast.Nonlocal, ast.Global)):
            shared = ", ".join(n.names)
        elif (
            isinstance(n, ast.AugAssign)
            and isinstance(n.target, ast.Name)
            and n.target.id not in bound
        ):
            shared = n.target.id
        if shared is None:
            continue
        if construct == "parallel_for":
            msg = (
                f"variant {variant_name!r}: the parallel_for body mutates "
                f"the shared variable(s) {shared} — in OpenMP this is a data "
                "race; accumulate with ctx.parallel_reduce instead"
            )
        else:
            msg = (
                f"variant {variant_name!r}: the parallel_reduce body mutates "
                f"the shared variable(s) {shared} — reduction bodies must "
                "return their value, not mutate captured state"
            )
        findings.append(Finding("error", "shared-accumulator", msg))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def lint_results(
    kernel: Kernel,
    variant_name: str,
    results,
    *,
    mpi_np: int = 0,
) -> LintResult:
    """Lint already-recorded run results (one per traced rank): the AST
    pass plus the dynamic partition + race checks on each trace."""
    result = LintResult(kernel=kernel.name, variant=variant_name)
    result.findings.extend(static_findings(kernel, variant_name))
    lazy = variant_name in kernel.lazy_variants or mpi_np > 0
    for r in results:
        if r.trace is None:
            continue
        result.findings.extend(partition_findings(r.trace, lazy=lazy))
        rr = check_races(r.trace)
        result.race_results.append(rr)
        result.findings.extend(race_findings(rr))
    return result


def lint_variant(
    kernel_name: str,
    variant_name: str,
    *,
    dim: int = 64,
    tile: int = 16,
    iterations: int = 2,
    nthreads: int = 4,
    schedule: str = "dynamic",
    arg: str | None = None,
    mpi_np: int = 0,
    seed: int | None = 42,
    model=None,
) -> LintResult:
    """Full lint of one variant: a short instrumented run + AST pass.

    MPI variants run with every rank traced (``--debug M``) and each
    rank's trace is analyzed; gap warnings are suppressed because a rank
    legitimately computes only its own band/block.
    """
    from repro.core.engine import run

    kernel = get_kernel(kernel_name)
    config = RunConfig(
        kernel=kernel_name,
        variant=variant_name,
        dim=dim,
        tile_w=tile,
        tile_h=tile,
        iterations=iterations,
        nthreads=nthreads,
        schedule=schedule,
        arg=arg,
        seed=seed,
        mpi_np=mpi_np,
        # the analysis needs determinism, not wall-clock honesty
        mpi_backend="inproc",
        debug="M" if mpi_np else "",
        trace=True,
        footprints=True,
    )
    run_result = run(config, model=model)
    return lint_results(
        kernel, variant_name, run_result.rank_results or [run_result], mpi_np=mpi_np
    )
