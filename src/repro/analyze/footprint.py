"""Per-task footprint extraction from traces.

The runtime attaches three things to every trace event when footprint
collection is on (``RunConfig.footprints``): the synchronization region
it belongs to (``extra["region"]``, with ``extra["rmode"]`` naming the
region's construct), its read/write regions (``event.reads/writes``),
and — for task-graph regions — its predecessor task ids
(``extra["preds"]``) plus the raw ``depend`` tokens.

This module groups a :class:`~repro.trace.events.Trace` back into
:class:`RegionTasks`, the unit the race detector works on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import Trace, TraceEvent

__all__ = ["TaskNode", "RegionTasks", "tasks_by_region", "has_footprints"]


@dataclass(frozen=True)
class TaskNode:
    """One task execution with its footprint and sync information."""

    event: TraceEvent
    #: id within the region: meta ``tid`` (dag) or ``index`` (worksharing)
    tid: int
    preds: tuple[int, ...] = ()
    depend_in: tuple[str, ...] = ()
    depend_out: tuple[str, ...] = ()

    @property
    def reads(self) -> tuple:
        return self.event.reads

    @property
    def writes(self) -> tuple:
        return self.event.writes

    def describe(self) -> str:
        """Human-readable identity: the tile if there is one, else the id."""
        e = self.event
        if e.has_tile:
            return f"task #{self.tid} (tile x={e.x} y={e.y} {e.w}x{e.h})"
        return f"task #{self.tid} ({e.kind})"


@dataclass
class RegionTasks:
    """All tasks of one synchronization region, in task-id order."""

    region: int
    rmode: str  # "par" | "reduce" | "seq" | "dag"
    iteration: int
    kind: str
    tasks: list[TaskNode] = field(default_factory=list)

    @property
    def parallel(self) -> bool:
        """Whether tasks of this region may overlap in time at all."""
        return self.rmode in ("par", "reduce", "dag")


def tasks_by_region(trace: Trace) -> list[RegionTasks]:
    """Group the trace's footprint-carrying events into regions.

    Events without a ``region`` id (older traces, GPU launches,
    instrumented sections) are skipped — no footprint, no verdict.
    Regions are returned in region-id order; consecutive regions are
    separated by a barrier (fork/join or implicit taskwait), so the race
    detector only ever compares tasks *within* one region.
    """
    regions: dict[int, RegionTasks] = {}
    for e in trace.events:
        extra = e.extra
        rid = extra.get("region")
        if rid is None:
            continue
        rt = regions.get(rid)
        if rt is None:
            rt = regions[rid] = RegionTasks(
                region=int(rid),
                rmode=str(extra.get("rmode", "par")),
                iteration=e.iteration,
                kind=e.kind,
            )
        tid = extra.get("tid", extra.get("index"))
        tid = int(tid) if tid is not None else len(rt.tasks)
        rt.tasks.append(
            TaskNode(
                event=e,
                tid=tid,
                preds=tuple(int(p) for p in extra.get("preds", ())),
                depend_in=tuple(str(t) for t in extra.get("depend_in", ())),
                depend_out=tuple(str(t) for t in extra.get("depend_out", ())),
            )
        )
    out = []
    for rid in sorted(regions):
        rt = regions[rid]
        rt.tasks.sort(key=lambda t: t.tid)
        out.append(rt)
    return out


def has_footprints(trace: Trace) -> bool:
    """Whether the trace carries any footprint data at all."""
    return any(e.reads or e.writes for e in trace.events)
