"""repro — a Python reproduction of EASYPAP.

EASYPAP (Lasserre, Namyst, Wacrenier, 2020) is a framework for learning
parallel programming: students parallelize 2D image kernels and observe
scheduling, load balance and task dependencies through monitoring
windows, trace exploration (EASYVIEW) and experiment/plotting tools.

Public surface (see README for the guided tour):

* :mod:`repro.core` — kernels, variants, images, the run engine;
* :mod:`repro.sched` — loop-scheduling policies and the deterministic
  scheduling simulator (the OpenMP-team substitute);
* :mod:`repro.omp` / :mod:`repro.mpi` / :mod:`repro.gpu` — the runtimes;
* :mod:`repro.monitor` / :mod:`repro.trace` / :mod:`repro.view` — the
  observation stack;
* :mod:`repro.expt` — expTools-style sweeps and easyplot.
"""

from repro.core.config import RunConfig
from repro.core.engine import RunResult, run
from repro.core.kernel import Kernel, get_kernel, list_kernels, register_kernel, variant
from repro.errors import EasypapError

__version__ = "1.0.0"

__all__ = [
    "RunConfig",
    "RunResult",
    "run",
    "Kernel",
    "get_kernel",
    "list_kernels",
    "register_kernel",
    "variant",
    "EasypapError",
    "__version__",
]
