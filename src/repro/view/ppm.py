"""PPM/PGM image output — the SDL-window replacement for still frames.

Packed uint32 EASYPAP images and (h, w, 3) RGB arrays both save to the
binary PPM (P6) format readable by any image viewer; no image library
is needed.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import ConfigError

__all__ = ["packed_to_rgb", "save_ppm", "save_pgm", "load_ppm"]


def packed_to_rgb(img: np.ndarray) -> np.ndarray:
    """(h, w) packed uint32 RGBA -> (h, w, 3) uint8 RGB (alpha dropped)."""
    return np.stack(
        [(img >> 24 & 0xFF), (img >> 16 & 0xFF), (img >> 8 & 0xFF)], axis=-1
    ).astype(np.uint8)


def save_ppm(img: np.ndarray, path: str | os.PathLike) -> Path:
    """Save an image as binary PPM.  Accepts packed uint32 or (h, w, 3) RGB."""
    if img.ndim == 2:
        rgb = packed_to_rgb(img.astype(np.uint32))
    elif img.ndim == 3 and img.shape[2] == 3:
        rgb = img.astype(np.uint8)
    else:
        raise ConfigError(f"cannot save image of shape {img.shape} as PPM")
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    h, w = rgb.shape[:2]
    with p.open("wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(rgb.tobytes())
    return p


def save_pgm(gray: np.ndarray, path: str | os.PathLike) -> Path:
    """Save a (h, w) grayscale array (any dtype, scaled to 0-255) as PGM."""
    if gray.ndim != 2:
        raise ConfigError(f"cannot save array of shape {gray.shape} as PGM")
    g = gray.astype(np.float64)
    vmax = g.max()
    g8 = (255 * g / vmax).astype(np.uint8) if vmax > 0 else np.zeros_like(g, dtype=np.uint8)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    h, w = g8.shape
    with p.open("wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(g8.tobytes())
    return p


def load_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM back into a (h, w, 3) uint8 array (round-trip
    support for tests and the trace explorer's thumbnails)."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ConfigError(f"{path}: not a binary PPM file")
    # header: magic, width, height, maxval — separated by whitespace,
    # possibly with comment lines
    fields: list[bytes] = []
    i = 2
    while len(fields) < 3:
        while i < len(data) and data[i : i + 1].isspace():
            i += 1
        if data[i : i + 1] == b"#":
            while i < len(data) and data[i : i + 1] != b"\n":
                i += 1
            continue
        j = i
        while j < len(data) and not data[j : j + 1].isspace():
            j += 1
        fields.append(data[i:j])
        i = j
    i += 1  # single whitespace after maxval
    w, h, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise ConfigError(f"{path}: unsupported maxval {maxval}")
    pixels = np.frombuffer(data, dtype=np.uint8, count=w * h * 3, offset=i)
    return pixels.reshape(h, w, 3).copy()
