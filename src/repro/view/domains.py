"""Domain-aware trace renderings.

The classic EASYVIEW windows assume a regular tile grid.  The views
here render what the grid views cannot:

* :func:`tiling_map_svg` — the tiling/coverage map drawn from each
  task's *actual* pixel rectangle, so irregular domains (center-refined
  quadtrees, clipped edge tiles, z-slab bands) render faithfully
  instead of being forced through a uniform ``rows x cols`` raster;
* :func:`wavefront_gantt_svg` — the per-CPU Gantt chart of a
  dependency-carrying region, tasks colored by topological *wave*
  (recomputed from the recorded predecessor lists), which makes the
  static-schedule dependency stalls visible as same-color gaps;
* :func:`divergence_map_svg` — the SIMT divergence heat-map: each GPU
  work-group drawn at its image position, brightness given by its
  lockstep/lane-work ratio (the per-group counters the device
  simulator stamps on the telemetry bus).

All three operate on a loaded :class:`~repro.trace.events.Trace`, so
they compose with ``easyview`` the same way the Gantt chart does.
"""

from __future__ import annotations

from repro.trace.events import Trace, TraceEvent
from repro.view.colors import cpu_color, heat_color
from repro.view.svg import SvgCanvas

__all__ = [
    "wave_depths",
    "tiling_map_svg",
    "wavefront_gantt_svg",
    "divergence_map_svg",
]


def _plane_dims(trace: Trace) -> tuple[int, int]:
    dim = max(int(trace.meta.dim), 1)
    dim_y = int(trace.meta.extra.get("dim_y", dim)) or dim
    return dim, dim_y


def _tile_events(trace: Trace, iteration: int | None) -> list[TraceEvent]:
    events = [e for e in trace.events if e.has_tile and e.w > 0 and e.h > 0]
    if iteration is None and events:
        iteration = max(e.iteration for e in events)
    return [e for e in events if e.iteration == iteration]


def wave_depths(events: list[TraceEvent]) -> dict[int, int]:
    """Per-event wave index of one dependency-carrying region.

    The wave of a task is its longest-path depth in the DAG recorded in
    the events' ``extra['preds']`` lists (``extra['tid']`` keys them),
    so the chart needs nothing beyond the ``.evt`` file itself.
    Events without dependency metadata sit in wave 0.
    """
    depth: dict[int, int] = {}
    by_tid = {e.extra.get("tid"): e for e in events}
    for e in sorted(events, key=lambda e: e.extra.get("tid", 0)):
        tid = e.extra.get("tid")
        if tid is None:
            continue
        preds = e.extra.get("preds") or ()
        depth[tid] = 1 + max(
            (depth.get(p, 0) for p in preds if p in by_tid), default=-1
        )
    return depth


def tiling_map_svg(
    trace: Trace, iteration: int | None = None, *, width: float = 420.0
) -> SvgCanvas:
    """The tiling window drawn from actual task rectangles.

    Every task of one iteration paints its pixel rect in its CPU's
    color; later tasks overpaint earlier ones (wavefront revisits show
    the *last* writer, matching what the matrix holds).  Pixels no task
    touched stay dark — the coverage gaps the partition lint warns
    about are directly visible.
    """
    dim, dim_y = _plane_dims(trace)
    events = _tile_events(trace, iteration)
    scale = (width - 20) / dim
    height = dim_y * scale + 50
    svg = SvgCanvas(width, height)
    m = trace.meta
    domain = m.extra.get("domain", "grid")
    svg.text(10, 18, f"{m.kernel}/{m.variant} domain={domain} "
                     f"({len(events)} tasks)", size=11)
    ox, oy = 10.0, 30.0
    svg.rect(ox, oy, dim * scale, dim_y * scale, fill="#282828")
    for e in sorted(events, key=lambda e: e.end):
        r, g, b = cpu_color(e.cpu)
        svg.rect(
            ox + e.x * scale, oy + e.y * scale,
            max(e.w * scale - 0.5, 0.5), max(e.h * scale - 0.5, 0.5),
            fill=f"rgb({r},{g},{b})",
            title=f"({e.x},{e.y}) {e.w}x{e.h} -> CPU {e.cpu} "
                  f"({e.duration * 1e6:.1f} us)",
        )
    return svg


def wavefront_gantt_svg(
    trace: Trace,
    iteration: int | None = None,
    *,
    width: float = 900.0,
    lane_height: float = 22.0,
) -> SvgCanvas:
    """Per-CPU Gantt of one iteration, colored by topological wave.

    Consecutive waves cycle through the CPU palette, so a wavefront
    sweep renders as diagonal color bands; under a static schedule the
    bands tear apart and the idle gaps between them are the dependency
    stalls dynamic scheduling avoids.
    """
    events = _tile_events(trace, iteration)
    ncpus = trace.ncpus
    depth = wave_depths(events)
    t0 = min((e.start for e in events), default=0.0)
    t1 = max((e.end for e in events), default=1.0)
    span = (t1 - t0) or 1.0
    margin_left, margin_top = 60.0, 30.0
    height = margin_top + ncpus * (lane_height + 4) + 24
    svg = SvgCanvas(width, height)
    m = trace.meta
    nwaves = max(depth.values(), default=0) + 1
    svg.text(margin_left, 18,
             f"{m.kernel}/{m.variant} schedule={m.schedule} "
             f"{nwaves} waves, {len(events)} tasks", size=12)
    scale = (width - margin_left - 10) / span
    for cpu in range(ncpus):
        y = margin_top + cpu * (lane_height + 4)
        svg.text(5, y + lane_height * 0.7, f"CPU {cpu}", size=10)
        svg.rect(margin_left, y, width - margin_left - 10, lane_height,
                 fill="#f2f2f2")
    for e in events:
        if not (0 <= e.cpu < ncpus):
            continue
        wave = depth.get(e.extra.get("tid"), 0)
        r, g, b = cpu_color(wave)
        y = margin_top + e.cpu * (lane_height + 4)
        x = margin_left + (e.start - t0) * scale
        w = max((e.end - e.start) * scale, 0.5)
        tip = (f"wave {wave}  tile(x={e.x}, y={e.y}, {e.w}x{e.h})  "
               f"{e.duration * 1e6:.1f} us")
        preds = e.extra.get("preds")
        if preds:
            tip += f"  preds={list(preds)}"
        svg.rect(x, y + 1, w, lane_height - 2, fill=f"rgb({r},{g},{b})",
                 title=tip)
    return svg


def divergence_map_svg(
    trace: Trace, iteration: int | None = None, *, width: float = 420.0
) -> SvgCanvas:
    """SIMT divergence heat-map over GPU work-groups.

    Each work-group of one launch paints its image rectangle with the
    heat ramp scaled by its ``divergence`` counter (lockstep work over
    useful lane work, >= 1): black means fully converged lanes, bright
    means the group crawled at its slowest lane's pace — on mandel, the
    set boundary lights up.
    """
    dim, dim_y = _plane_dims(trace)
    events = [
        e for e in _tile_events(trace, iteration)
        if "divergence" in e.extra
    ]
    scale = (width - 20) / dim
    height = dim_y * scale + 50
    svg = SvgCanvas(width, height)
    m = trace.meta
    vals = [float(e.extra["divergence"]) for e in events]
    vmax = max(vals, default=1.0)
    svg.text(10, 18,
             f"{m.kernel}/{m.variant} divergence (max {vmax:.2f}x, "
             f"{len(events)} groups)", size=11)
    ox, oy = 10.0, 30.0
    svg.rect(ox, oy, dim * scale, dim_y * scale, fill="#282828")
    for e in events:
        # the ramp spans [1, vmax]: no divergence stays black
        penalty = float(e.extra["divergence"])
        r, g, b = heat_color(penalty - 1.0, max(vmax - 1.0, 1e-9))
        svg.rect(
            ox + e.x * scale, oy + e.y * scale,
            max(e.w * scale - 0.5, 0.5), max(e.h * scale - 0.5, 0.5),
            fill=f"rgb({r},{g},{b})",
            title=f"group ({e.x},{e.y}) {e.w}x{e.h}: {penalty:.2f}x "
                  f"(lockstep {e.extra.get('lockstep', 0):.0f} / "
                  f"lane {e.extra.get('lane_work', 0):.0f})",
        )
    return svg
