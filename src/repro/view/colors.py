"""Color utilities shared by all renderers.

Threads/CPUs get stable distinct colors, consistent across the Activity
Monitor, the Tiling window and EASYVIEW Gantt charts — the paper makes
a point of this cross-window color consistency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cpu_color", "cpu_palette", "heat_color", "heat_image", "CPU_COLORS"]

#: RGB triples for CPUs 0..15 (wraps around beyond that)
CPU_COLORS: list[tuple[int, int, int]] = [
    (230, 60, 60),    # red
    (70, 160, 240),   # blue
    (80, 200, 100),   # green
    (240, 200, 60),   # yellow
    (180, 100, 240),  # purple
    (255, 140, 40),   # orange
    (70, 220, 220),   # cyan
    (240, 110, 180),  # pink
    (150, 200, 60),   # lime
    (110, 110, 255),  # indigo
    (200, 140, 100),  # brown
    (120, 220, 170),  # mint
    (220, 90, 110),   # raspberry
    (90, 140, 180),   # steel
    (170, 170, 90),   # olive
    (160, 120, 200),  # lilac
]


def cpu_color(cpu: int) -> tuple[int, int, int]:
    """The (r, g, b) color of a CPU/thread (-1 → dark gray: not computed)."""
    if cpu < 0:
        return (40, 40, 40)
    return CPU_COLORS[cpu % len(CPU_COLORS)]


def cpu_palette(ncpus: int) -> list[tuple[int, int, int]]:
    return [cpu_color(c) for c in range(ncpus)]


def heat_color(value: float, vmax: float) -> tuple[int, int, int]:
    """Heat-map ramp: black → dark red → orange → white.

    The paper's heat-map mode: "the brighter an area is, the more
    time-consuming it is" (Fig. 9).
    """
    if vmax <= 0:
        return (0, 0, 0)
    t = min(max(value / vmax, 0.0), 1.0)
    r = min(255, int(510 * t))
    g = min(255, max(0, int(510 * (t - 0.35))))
    b = min(255, max(0, int(510 * (t - 0.7))))
    return (r, g, b)


def heat_image(values: np.ndarray, vmax: float | None = None) -> np.ndarray:
    """Vectorized heat ramp: (h, w) floats -> (h, w, 3) uint8 RGB."""
    vmax = float(values.max()) if vmax is None else float(vmax)
    if vmax <= 0:
        return np.zeros(values.shape + (3,), dtype=np.uint8)
    t = np.clip(values / vmax, 0.0, 1.0)
    r = np.clip(510 * t, 0, 255)
    g = np.clip(510 * (t - 0.35), 0, 255)
    b = np.clip(510 * (t - 0.7), 0, 255)
    return np.stack([r, g, b], axis=-1).astype(np.uint8)
