"""Minimal SVG writer + chart primitives.

No plotting library is available offline, so EASYVIEW's Gantt charts and
easyplot's speedup graphs are emitted as hand-built SVG — which is also
what makes the output diffable and testable.
"""

from __future__ import annotations

import html
import os
from pathlib import Path

__all__ = ["SvgCanvas"]


def _fmt(v: float) -> str:
    return f"{v:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An append-only SVG document."""

    def __init__(self, width: float, height: float, background: str | None = "#ffffff"):
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background)

    # -- primitives -----------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        *,
        fill: str = "#000000",
        stroke: str | None = None,
        opacity: float | None = None,
        title: str | None = None,
    ) -> None:
        attrs = f'x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" height="{_fmt(h)}" fill="{fill}"'
        if stroke:
            attrs += f' stroke="{stroke}"'
        if opacity is not None:
            attrs += f' fill-opacity="{opacity}"'
        if title:
            # <title> renders as a hover bubble — the EASYVIEW task-duration
            # pop-up (paper Fig. 7) in SVG form
            self._parts.append(
                f"<rect {attrs}><title>{html.escape(title)}</title></rect>"
            )
        else:
            self._parts.append(f"<rect {attrs}/>")

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        *, stroke: str = "#000000", width: float = 1.0
    ) -> None:
        self._parts.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{_fmt(width)}"/>'
        )

    def polyline(
        self, points: list[tuple[float, float]], *, stroke: str, width: float = 1.5
    ) -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="{_fmt(width)}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, *, fill: str) -> None:
        self._parts.append(f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" fill="{fill}"/>')

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 11.0,
        fill: str = "#202020",
        anchor: str = "start",
    ) -> None:
        self._parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'font-family="sans-serif" fill="{fill}" text-anchor="{anchor}">'
            f"{html.escape(content)}</text>"
        )

    # -- output ------------------------------------------------------------------
    def tostring(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(self.width)}" '
            f'height="{_fmt(self.height)}" viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | os.PathLike) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.tostring(), encoding="utf-8")
        return p
