"""Rendering: terminal (ASCII), SVG and PPM output of the monitoring
windows and trace views — the SDL-window replacement."""

from repro.view.ascii import (
    render_activity,
    render_heatmap,
    render_idleness_history,
    render_tiling,
)
from repro.view.colors import cpu_color, cpu_palette, heat_color, heat_image
from repro.view.domains import (
    divergence_map_svg,
    tiling_map_svg,
    wave_depths,
    wavefront_gantt_svg,
)
from repro.view.ppm import load_ppm, packed_to_rgb, save_pgm, save_ppm
from repro.view.svg import SvgCanvas
from repro.view.thumbnail import heat_tile_image, thumbnail, tiling_image

__all__ = [
    "divergence_map_svg",
    "tiling_map_svg",
    "wave_depths",
    "wavefront_gantt_svg",
    "render_activity",
    "render_heatmap",
    "render_idleness_history",
    "render_tiling",
    "cpu_color",
    "cpu_palette",
    "heat_color",
    "heat_image",
    "load_ppm",
    "packed_to_rgb",
    "save_pgm",
    "save_ppm",
    "SvgCanvas",
    "heat_tile_image",
    "thumbnail",
    "tiling_image",
]
