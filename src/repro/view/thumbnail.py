"""Image thumbnails — the reduced surface view on EASYVIEW's right side."""

from __future__ import annotations

import numpy as np

from repro.view.ppm import packed_to_rgb

__all__ = ["thumbnail", "tiling_image", "heat_tile_image"]


def thumbnail(img: np.ndarray, max_side: int = 128) -> np.ndarray:
    """Downsample a packed uint32 image to at most ``max_side`` px
    (block mean per channel), returning (h, w, 3) uint8 RGB."""
    rgb = packed_to_rgb(img.astype(np.uint32)) if img.ndim == 2 else img
    h, w = rgb.shape[:2]
    f = max(1, -(-max(h, w) // max_side))
    # crop to a multiple of f then block-average
    hh, ww = (h // f) * f, (w // f) * f
    r = rgb[:hh, :ww].reshape(hh // f, f, ww // f, f, 3).mean(axis=(1, 3))
    return r.astype(np.uint8)


def tiling_image(tiling: np.ndarray, cell: int = 8) -> np.ndarray:
    """Render a tile→CPU map as an RGB image (the Tiling window)."""
    from repro.view.colors import cpu_color

    rows, cols = tiling.shape
    out = np.zeros((rows * cell, cols * cell, 3), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            out[r * cell : (r + 1) * cell, c * cell : (c + 1) * cell] = cpu_color(
                int(tiling[r, c])
            )
    return out


def heat_tile_image(heat: np.ndarray, cell: int = 8) -> np.ndarray:
    """Render per-tile durations as the heat-map window (Fig. 9)."""
    from repro.view.colors import heat_image

    hm = heat_image(heat)
    return np.repeat(np.repeat(hm, cell, axis=0), cell, axis=1)
