"""The monitoring dashboard: both EASYPAP windows in one SVG.

Paper Fig. 3 shows the two side windows popped up by ``--monitoring``:
the Tiling window (top) and the CPU monitoring window.  This module
renders the equivalent composite for one iteration — tile→thread map,
heat map, per-CPU load bars and the cumulated-idleness history — and an
animated flip-book version (SMIL) that replays the tiling window over
all iterations, the closest file-based equivalent of watching the
window live.
"""

from __future__ import annotations

from repro.monitor.activity import Monitor
from repro.monitor.records import IterationRecord
from repro.view.colors import cpu_color, heat_color
from repro.view.svg import SvgCanvas

__all__ = ["dashboard_svg", "animated_tiling_svg"]

_CELL = 14.0
_GAP = 20.0


def _draw_tiling(svg: SvgCanvas, rec: IterationRecord, ox: float, oy: float) -> float:
    svg.text(ox, oy - 6, "Tiling window", size=11)
    rows, cols = rec.tiling.shape
    for r in range(rows):
        for c in range(cols):
            cr, cg, cb = cpu_color(int(rec.tiling[r, c]))
            svg.rect(ox + c * _CELL, oy + r * _CELL, _CELL - 1, _CELL - 1,
                     fill=f"rgb({cr},{cg},{cb})",
                     title=f"tile ({r},{c}) -> CPU {int(rec.tiling[r, c])}")
            if rec.stolen[r, c]:
                svg.circle(ox + c * _CELL + _CELL / 2, oy + r * _CELL + _CELL / 2,
                           2.0, fill="#ffffff")
    return oy + rows * _CELL


def _draw_heat(svg: SvgCanvas, rec: IterationRecord, ox: float, oy: float) -> float:
    svg.text(ox, oy - 6, "Heat map (bright = slow)", size=11)
    rows, cols = rec.tiling.shape
    vmax = float(rec.heat.max()) or 1.0
    for r in range(rows):
        for c in range(cols):
            cr, cg, cb = heat_color(float(rec.heat[r, c]), vmax)
            svg.rect(ox + c * _CELL, oy + r * _CELL, _CELL - 1, _CELL - 1,
                     fill=f"rgb({cr},{cg},{cb})",
                     title=f"{rec.heat[r, c] * 1e6:.1f} us")
    return oy + rows * _CELL


def _draw_activity(svg: SvgCanvas, monitor: Monitor, rec: IterationRecord,
                   ox: float, oy: float, width: float) -> float:
    svg.text(ox, oy - 6, f"Activity Monitor (iteration {rec.iteration})", size=11)
    loads = rec.load_percent()
    bar_h = 14.0
    for cpu, load in enumerate(loads):
        y = oy + cpu * (bar_h + 4)
        cr, cg, cb = cpu_color(cpu)
        svg.rect(ox + 50, y, width - 60, bar_h, fill="#eeeeee")
        svg.rect(ox + 50, y, (width - 60) * load / 100.0, bar_h,
                 fill=f"rgb({cr},{cg},{cb})", title=f"{load:.1f}%")
        svg.text(ox, y + bar_h - 3, f"CPU {cpu}", size=10)
        svg.text(ox + width - 5, y + bar_h - 3, f"{load:.0f}%", size=9,
                 anchor="end")
    y = oy + len(loads) * (bar_h + 4) + 14
    # idleness history sparkline
    hist = monitor.idleness_history
    if hist:
        svg.text(ox, y - 2, "cumulated idleness", size=10)
        vmax = max(hist) or 1.0
        pts = [
            (ox + 120 + i * max((width - 130) / max(len(hist) - 1, 1), 1.0),
             y + 12 - 12 * v / vmax)
            for i, v in enumerate(hist)
        ]
        if len(pts) > 1:
            svg.polyline(pts, stroke="#cc4444")
        y += 20
    return y


def dashboard_svg(monitor: Monitor, iteration_index: int = -1) -> SvgCanvas:
    """The two monitoring windows for one recorded iteration."""
    if not monitor.records:
        raise ValueError("monitor holds no iteration records")
    rec = monitor.records[iteration_index]
    rows, cols = rec.tiling.shape
    maps_w = cols * _CELL
    width = max(2 * maps_w + 3 * _GAP, 420.0)
    height = rows * _CELL + (monitor.ncpus + 2) * 18 + 110
    svg = SvgCanvas(width, height)
    y0 = 30.0
    _draw_tiling(svg, rec, _GAP, y0)
    _draw_heat(svg, rec, 2 * _GAP + maps_w, y0)
    _draw_activity(svg, monitor, rec, _GAP, y0 + rows * _CELL + 30,
                   width - 2 * _GAP)
    return svg


def animated_tiling_svg(monitor: Monitor, frame_seconds: float = 0.5) -> SvgCanvas:
    """A SMIL flip-book of the tiling window across iterations.

    Each frame's tile grid is shown in turn, looping — open in any
    browser to watch the scheduling evolve like the live window.
    """
    if not monitor.records:
        raise ValueError("monitor holds no iteration records")
    rows, cols = monitor.records[0].tiling.shape
    n = len(monitor.records)
    total = n * frame_seconds
    svg = SvgCanvas(cols * _CELL + 2 * _GAP, rows * _CELL + 2 * _GAP + 20)
    svg.text(_GAP, 18, f"Tiling window, {n} iterations (animated)", size=11)
    for i, rec in enumerate(monitor.records):
        parts = []
        for r in range(rows):
            for c in range(cols):
                cr, cg, cb = cpu_color(int(rec.tiling[r, c]))
                parts.append(
                    f'<rect x="{_GAP + c * _CELL:.1f}" y="{_GAP + 20 + r * _CELL:.1f}" '
                    f'width="{_CELL - 1}" height="{_CELL - 1}" '
                    f'fill="rgb({cr},{cg},{cb})"/>'
                )
        begin = i * frame_seconds
        svg._parts.append(
            f'<g opacity="0">{"".join(parts)}'
            f'<animate attributeName="opacity" values="0;1;1;0" '
            f'keyTimes="0;{begin / total:.4f};{(begin + frame_seconds) / total:.4f};1" '
            f'dur="{total}s" repeatCount="indefinite" calcMode="discrete"/></g>'
        )
    return svg
