"""Terminal renderers: the monitoring windows, drawn with characters.

These are the interactive SDL windows of EASYPAP translated to the
terminal: the Tiling window (one glyph per tile, colored per thread),
the Activity Monitor (per-CPU load bars + idleness history) and the
heat-map mode (brightness ramp glyphs).
"""

from __future__ import annotations

import numpy as np

from repro.monitor.records import IterationRecord

__all__ = [
    "render_tiling",
    "render_heatmap",
    "render_activity",
    "render_idleness_history",
]

#: glyph used for each CPU in the tiling window (wraps after 36 CPUs)
CPU_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"

#: brightness ramp for heat maps (dark .. bright)
HEAT_GLYPHS = " .:-=+*#%@"


def render_tiling(tiling: np.ndarray, stolen: np.ndarray | None = None) -> str:
    """Render a tile→CPU map; '.' marks tiles not computed, stolen tiles
    are shown upper-case — making Fig. 4's patterns visible in a terminal."""
    lines = []
    for r in range(tiling.shape[0]):
        chars = []
        for c in range(tiling.shape[1]):
            cpu = int(tiling[r, c])
            if cpu < 0:
                chars.append(".")
                continue
            g = CPU_GLYPHS[cpu % len(CPU_GLYPHS)]
            if stolen is not None and stolen[r, c]:
                g = g.upper() if g.isalpha() else f"{g}"
            chars.append(g)
        lines.append("".join(chars))
    return "\n".join(lines)


def render_heatmap(heat: np.ndarray, vmax: float | None = None) -> str:
    """Render per-tile durations as a brightness ramp (paper Fig. 9)."""
    vmax = float(heat.max()) if vmax is None else float(vmax)
    lines = []
    for r in range(heat.shape[0]):
        chars = []
        for c in range(heat.shape[1]):
            if vmax <= 0:
                chars.append(HEAT_GLYPHS[0])
            else:
                t = min(max(float(heat[r, c]) / vmax, 0.0), 1.0)
                chars.append(HEAT_GLYPHS[min(int(t * len(HEAT_GLYPHS)), len(HEAT_GLYPHS) - 1)])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_activity(record: IterationRecord, width: int = 40) -> str:
    """Per-CPU load bars for one iteration (the Activity Monitor)."""
    lines = [f"iteration {record.iteration}  (span {record.span * 1e3:.3f} ms)"]
    for cpu, load in enumerate(record.load_percent()):
        filled = int(round(width * load / 100.0))
        bar = "#" * filled + "-" * (width - filled)
        lines.append(f"CPU {cpu:2d} [{bar}] {load:5.1f}%")
    lines.append(f"idle this iteration: {record.idleness() * 1e3:.3f} ms")
    return "\n".join(lines)


def render_idleness_history(history: list[float], width: int = 60, height: int = 8) -> str:
    """The cumulated-idleness diagram at the bottom of the Activity
    Monitor window."""
    if not history:
        return "(no iterations recorded)"
    vals = history[-width:]
    vmax = max(vals) or 1.0
    rows = []
    for level in range(height, 0, -1):
        thresh = vmax * (level - 0.5) / height
        rows.append("".join("|" if v >= thresh else " " for v in vals))
    rows.append("-" * len(vals))
    rows.append(f"cumulated idleness: {history[-1] * 1e3:.3f} ms over {len(history)} iterations")
    return "\n".join(rows)
