"""GPU substrate: a SIMT device simulator with profiling events."""

from repro.gpu.device import DeviceSpec, GpuDevice, LaunchResult, divergence_penalty

__all__ = ["DeviceSpec", "GpuDevice", "LaunchResult", "divergence_penalty"]
