"""SIMT device simulator: the OpenCL substrate.

EASYPAP's OpenCL support is partial — kernels run and render, but
monitoring/trace integration is listed as future work (paper §V), to be
built on OpenCL profiling events.  This module provides the equivalent
device model *with* profiling: work-groups execute in lockstep (a
group's cost is the **maximum** of its lanes' costs — divergent lanes
stall the whole group), groups are dispatched dynamically over compute
units, and the resulting timeline feeds the same monitoring/trace stack
as CPU variants.

The lockstep rule is what makes the Mandelbrot kernel interesting on a
GPU: tiles straddling the set boundary pay the worst-lane price, which
:func:`divergence_penalty` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.sched.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sched.policies import DynamicSchedule
from repro.sched.simulator import simulate
from repro.sched.timeline import Timeline

__all__ = ["DeviceSpec", "LaunchResult", "GpuDevice", "divergence_penalty"]


@dataclass(frozen=True)
class DeviceSpec:
    """A virtual GPU: compute units + lane-speed ratio vs one CPU core.

    ``lane_speedup`` expresses how much faster one *fully converged*
    lane-step is than the CPU scalar work unit (GPUs win on throughput);
    ``launch_overhead`` is the per-kernel-launch cost in virtual seconds.
    """

    num_cus: int = 8
    #: SIMD width of one CU: a work-group of L lanes executes in
    #: ceil(L / lanes_per_group) serial wavefronts
    lanes_per_group: int = 64
    lane_speedup: float = 4.0
    launch_overhead: float = 20e-6
    #: host<->device bandwidth (PCIe-class); transfers serialize before
    #: and after the kernel, which is what makes memory-bound kernels
    #: transfer-bound on a GPU
    bytes_per_second: float = 8e9


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    timeline: Timeline
    group_costs: list[float] = field(default_factory=list)
    total_lane_work: float = 0.0
    total_lockstep_work: float = 0.0
    transfer_in_time: float = 0.0
    transfer_out_time: float = 0.0

    @property
    def makespan(self) -> float:
        """End-to-end time including the output transfer."""
        return self.timeline.makespan + self.transfer_out_time

    @property
    def transfer_fraction(self) -> float:
        """Share of the launch spent moving data (1.0 = fully
        transfer-bound)."""
        total = self.makespan
        if total <= 0:
            return 0.0
        return (self.transfer_in_time + self.transfer_out_time) / total

    @property
    def divergence_penalty(self) -> float:
        """lockstep work / useful lane work, >= 1; 1 = no divergence."""
        if self.total_lane_work <= 0:
            return 1.0
        return self.total_lockstep_work / self.total_lane_work


def divergence_penalty(lane_costs: np.ndarray) -> float:
    """Divergence of a single group: max(lanes) * nlanes / sum(lanes)."""
    total = float(lane_costs.sum())
    if total <= 0:
        return 1.0
    return float(lane_costs.max()) * lane_costs.size / total


class GpuDevice:
    """Executes 2D pixel workloads group by group."""

    def __init__(self, spec: DeviceSpec | None = None, model: CostModel = DEFAULT_COST_MODEL):
        self.spec = spec or DeviceSpec()
        self.model = model

    def launch(
        self,
        lane_costs: np.ndarray,
        *,
        group_w: int = 8,
        group_h: int = 8,
        items: list | None = None,
        start_time: float = 0.0,
        meta: dict | None = None,
        transfer_in_bytes: int = 0,
        transfer_out_bytes: int = 0,
    ) -> LaunchResult:
        """Run a kernel whose per-pixel cost (in work units) is
        ``lane_costs``; the NDRange is partitioned into
        ``group_w x group_h`` work-groups dispatched over the CUs.

        ``items`` optionally attaches one object per group (e.g. tiles)
        to the timeline, in row-major group order.
        ``transfer_in_bytes`` / ``transfer_out_bytes`` model host→device
        and device→host copies serializing around the kernel.
        """
        H, W = lane_costs.shape
        if H % group_h or W % group_w:
            raise ConfigError(
                f"NDRange {W}x{H} not divisible by group {group_w}x{group_h}"
            )
        rows, cols = H // group_h, W // group_w
        groups = lane_costs.reshape(rows, group_h, cols, group_w).swapaxes(1, 2)
        # lockstep: the group advances at the pace of its slowest lane
        lock = groups.max(axis=(2, 3)).astype(np.float64)
        lane_sum = groups.sum(axis=(2, 3)).astype(np.float64)
        unit = self.model.seconds_per_unit / self.spec.lane_speedup
        # a group wider than the CU's SIMD width runs as serial wavefronts
        wavefronts = -(-(group_w * group_h) // self.spec.lanes_per_group)
        costs = (lock * (unit * wavefronts)).ravel().tolist()
        ngroups = rows * cols
        if items is not None and len(items) != ngroups:
            raise ConfigError(f"{len(items)} items for {ngroups} groups")
        t_in = transfer_in_bytes / self.spec.bytes_per_second
        t_out = transfer_out_bytes / self.spec.bytes_per_second
        result = simulate(
            costs,
            DynamicSchedule(1),
            self.spec.num_cus,
            items=items,
            model=self.model,
            start_time=start_time + self.spec.launch_overhead + t_in,
            meta=dict(meta or {}, device="gpu"),
        )
        # per-work-group lockstep-cost counters: every simulated task
        # carries its lockstep work, useful lane work and divergence
        # ratio, so the telemetry bus (and any trace recorded from it)
        # can chart where the SIMT penalty is paid
        nlanes = group_w * group_h
        lock_flat = lock.ravel()
        lane_flat = lane_sum.ravel()
        for e in result.timeline.execs:
            i = e.meta.get("index")
            if i is None:
                continue
            ls = float(lock_flat[i]) * nlanes
            lw = float(lane_flat[i])
            e.meta["lockstep"] = ls
            e.meta["lane_work"] = lw
            e.meta["divergence"] = round(ls / lw, 6) if lw > 0 else 1.0
        return LaunchResult(
            timeline=result.timeline,
            group_costs=costs,
            total_lane_work=float(lane_sum.sum()),
            # every lane of the group runs for the slowest lane's duration
            total_lockstep_work=float(lock.sum()) * group_w * group_h,
            transfer_in_time=t_in,
            transfer_out_time=t_out,
        )
