"""Event-driven simulation of OpenMP loop scheduling.

Given per-item costs and a :class:`~repro.sched.policies.SchedulePolicy`,
:func:`simulate` computes the exact timeline a pool of ``ncpus`` virtual
CPUs would produce: every policy of the paper's Fig. 4 is driven through
the same event loop, so timelines are directly comparable.

The simulation is fully deterministic: ties between CPUs becoming free
at the same instant are broken by CPU index, mirroring the determinism
of a barrier-released thread team grabbing chunks in rank order.

:func:`simulate_makespan` is the perf-mode companion: when nothing
consumes per-task timelines (no monitoring, no tracing), the static and
dynamic-family policies admit a closed form — per-CPU sequences of
``[start, dispatch, cost, cost, ...]`` folded with ``np.add.accumulate``
— that yields the **bit-identical** makespan of the event loop without
allocating a single :class:`TaskExec`.  ``np.add.accumulate`` sums
strictly left-to-right, so the floating-point association matches the
reference loop exactly; this invariant is enforced by a Hypothesis
property in ``tests/test_simulator.py``.  Work stealing has no closed
form, but its event loop is deterministic, so
:func:`~repro.sched.workstealing.stealing_makespan` replays it with a
plain free-time array and vectorized chunk folds — no heapq, no
per-task records, same makespan bit for bit.  Perf mode therefore never
runs the heapq event loop for *any* schedule policy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sched.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sched.policies import (
    Chunk,
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    SchedulePolicy,
    StaticSchedule,
)
from repro.sched.timeline import TaskExec, Timeline
from repro.sched.workstealing import simulate_stealing, stealing_makespan

__all__ = ["simulate", "simulate_makespan", "SimResult", "ChunkGrab"]


@dataclass(frozen=True)
class ChunkGrab:
    """One chunk hand-out: who got which range, when, and how."""

    cpu: int
    time: float
    chunk: Chunk
    stolen: bool = False

    @property
    def size(self) -> int:
        return len(self.chunk)


@dataclass
class SimResult:
    """Timeline plus scheduler-level bookkeeping.

    ``fast_makespan`` is set (and the timeline left empty) when the
    result comes from the closed-form fast path, which computes the
    makespan without materializing per-task executions.
    """

    timeline: Timeline
    grabs: list[ChunkGrab] = field(default_factory=list)
    steals: int = 0
    fast_makespan: float | None = None

    @property
    def makespan(self) -> float:
        if self.fast_makespan is not None:
            return self.fast_makespan
        return self.timeline.makespan

    def chunk_sizes(self) -> list[int]:
        """Chunk sizes in grab order (guided: non-increasing, Fig. 4d)."""
        ordered = sorted(self.grabs, key=lambda g: (g.time, g.cpu))
        return [g.size for g in ordered]


def simulate(
    costs: Sequence[float],
    policy: SchedulePolicy,
    ncpus: int,
    *,
    items: Sequence[Any] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
    meta: dict | None = None,
) -> SimResult:
    """Simulate scheduling ``len(costs)`` independent iterations.

    Parameters
    ----------
    costs:
        Virtual-seconds cost of each iteration of the collapsed loop.
    items:
        Objects attached to each iteration in the resulting timeline
        (defaults to the integer indices).
    model:
        Supplies dispatch/steal overheads (conversion from work units
        must already have been applied to ``costs``).
    meta:
        Extra annotations copied into every :class:`TaskExec`.
    """
    n = len(costs)
    if ncpus < 1:
        raise SimulationError(f"need at least one cpu, got {ncpus}")
    if items is None:
        items = list(range(n))
    elif len(items) != n:
        raise SimulationError(
            f"{len(items)} items for {n} costs"
        )
    base_meta = dict(meta or {})

    if isinstance(policy, StaticSchedule):
        result = _simulate_static(costs, policy, ncpus, items, model, start_time, base_meta)
    elif isinstance(policy, NonMonotonicDynamic):
        result = simulate_stealing(
            costs, policy, ncpus, items, model, start_time, base_meta, ChunkGrab, SimResult
        )
    elif isinstance(policy, (DynamicSchedule, GuidedSchedule)):
        result = _simulate_queue(costs, policy, ncpus, items, model, start_time, base_meta)
    else:
        raise SimulationError(f"unsupported policy {policy!r}")
    return result


def _run_chunk(
    timeline: Timeline,
    chunk: Chunk,
    cpu: int,
    t: float,
    costs: Sequence[float],
    items: Sequence[Any],
    base_meta: dict,
    stolen: bool = False,
) -> float:
    """Execute a chunk's iterations back-to-back on ``cpu`` from time ``t``."""
    for idx in chunk.indices():
        end = t + costs[idx]
        m = dict(base_meta)
        m["index"] = idx
        if stolen:
            m["stolen"] = True
        timeline.append(TaskExec(items[idx], cpu, t, end, m))
        t = end
    return t


def _simulate_static(
    costs: Sequence[float],
    policy: StaticSchedule,
    ncpus: int,
    items: Sequence[Any],
    model: CostModel,
    start_time: float,
    base_meta: dict,
) -> SimResult:
    timeline = Timeline(ncpus=ncpus)
    grabs: list[ChunkGrab] = []
    assignment = policy.assignment(len(costs), ncpus)
    for cpu, chunks in enumerate(assignment):
        t = start_time
        for chunk in chunks:
            t += model.dispatch_overhead
            grabs.append(ChunkGrab(cpu, t, chunk))
            t = _run_chunk(timeline, chunk, cpu, t, costs, items, base_meta)
    return SimResult(timeline, grabs)


def _simulate_queue(
    costs: Sequence[float],
    policy: DynamicSchedule | GuidedSchedule,
    ncpus: int,
    items: Sequence[Any],
    model: CostModel,
    start_time: float,
    base_meta: dict,
) -> SimResult:
    n = len(costs)
    if isinstance(policy, GuidedSchedule):
        queue = policy.chunk_queue(n, ncpus)
    else:
        queue = policy.chunk_queue(n)
    timeline = Timeline(ncpus=ncpus)
    grabs: list[ChunkGrab] = []
    # min-heap of (free_time, cpu): the earliest-free CPU grabs the next chunk;
    # ties resolve by cpu rank, as a real team leaving a barrier would race
    # deterministically in our model.
    heap: list[tuple[float, int]] = [(start_time, cpu) for cpu in range(ncpus)]
    heapq.heapify(heap)
    qi = 0
    while qi < len(queue):
        t, cpu = heapq.heappop(heap)
        chunk = queue[qi]
        qi += 1
        t += model.dispatch_overhead
        grabs.append(ChunkGrab(cpu, t, chunk))
        t = _run_chunk(timeline, chunk, cpu, t, costs, items, base_meta)
        heapq.heappush(heap, (t, cpu))
    return SimResult(timeline, grabs)


# --------------------------------------------------------------------------
# Closed-form makespans (the perf-mode fast path)
# --------------------------------------------------------------------------

#: below this chunk size a plain Python loop beats building a NumPy array;
#: both produce bit-identical sums, so the cutoff is purely a speed knob
_ACCUMULATE_CUTOFF = 32


def simulate_makespan(
    costs: Sequence[float],
    policy: SchedulePolicy,
    ncpus: int,
    *,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
) -> float:
    """Makespan of :func:`simulate`, bit-identical, without the timeline.

    Static policies reduce to one ``np.add.accumulate`` per CPU over the
    concatenation ``[start, dispatch, chunk costs..., dispatch, ...]``;
    dynamic/guided keep the tiny chunk-grab heap (plain floats, same tie
    breaking) but fold each chunk's costs the same closed-form way.
    ``nonmonotonic:dynamic`` replays its deterministic event loop
    without the heap or per-task records
    (:func:`~repro.sched.workstealing.stealing_makespan`).
    """
    n = len(costs)
    if ncpus < 1:
        raise SimulationError(f"need at least one cpu, got {ncpus}")
    if n == 0:
        return 0.0
    if isinstance(policy, NonMonotonicDynamic):
        return stealing_makespan(costs, policy, ncpus, model, start_time)
    c = np.ascontiguousarray(costs, dtype=np.float64)
    if isinstance(policy, StaticSchedule):
        return _static_makespan(c, policy, ncpus, model, start_time)
    if isinstance(policy, GuidedSchedule):
        return _queue_makespan(c, policy.chunk_queue(n, ncpus), ncpus, model, start_time)
    if isinstance(policy, DynamicSchedule):
        return _queue_makespan(c, policy.chunk_queue(n), ncpus, model, start_time)
    raise SimulationError(f"unsupported policy {policy!r}")


def _static_makespan(
    c: np.ndarray,
    policy: StaticSchedule,
    ncpus: int,
    model: CostModel,
    start_time: float,
) -> float:
    dispatch = np.array([model.dispatch_overhead])
    start = np.array([start_time])
    makespan = 0.0
    for chunks in policy.assignment(len(c), ncpus):
        if not chunks:
            continue
        parts = [start]
        for ch in chunks:
            parts.append(dispatch)
            parts.append(c[ch.lo : ch.hi])
        end = float(np.add.accumulate(np.concatenate(parts))[-1])
        if end > makespan:
            makespan = end
    return makespan


def _queue_makespan(
    c: np.ndarray,
    queue: Sequence[Chunk],
    ncpus: int,
    model: CostModel,
    start_time: float,
) -> float:
    d = model.dispatch_overhead
    heap: list[tuple[float, int]] = [(start_time, cpu) for cpu in range(ncpus)]
    heapq.heapify(heap)
    makespan = 0.0
    for chunk in queue:
        t, cpu = heapq.heappop(heap)
        t += d
        lo, hi = chunk.lo, chunk.hi
        if hi - lo >= _ACCUMULATE_CUTOFF:
            seg = np.empty(hi - lo + 1)
            seg[0] = t
            seg[1:] = c[lo:hi]
            t = float(np.add.accumulate(seg)[-1])
        else:
            for cost in c[lo:hi].tolist():
                t += cost
        if t > makespan:
            makespan = t
        heapq.heappush(heap, (t, cpu))
    return makespan
