"""Scheduling substrate: policies, simulator, task graphs, timelines."""

from repro.sched.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sched.dag_sim import simulate_dag
from repro.sched.policies import (
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    SchedulePolicy,
    StaticSchedule,
    parse_schedule,
)
from repro.sched.simulator import ChunkGrab, SimResult, simulate
from repro.sched.taskgraph import TaskGraph, TaskNode
from repro.sched.timeline import TaskExec, Timeline

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "simulate_dag",
    "SchedulePolicy",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "NonMonotonicDynamic",
    "parse_schedule",
    "simulate",
    "SimResult",
    "ChunkGrab",
    "TaskGraph",
    "TaskNode",
    "TaskExec",
    "Timeline",
]
