"""OpenMP loop-scheduling policies.

These model the ``schedule(...)`` clauses students experiment with in
EASYPAP (paper Fig. 4): ``static``, ``static,k``, ``dynamic,k``,
``guided[,k]`` and OpenMP 5's ``nonmonotonic:dynamic`` (implemented, as
in LLVM's runtime, as a static initial distribution corrected by work
stealing).

A policy only decides *which indices go together and to whom*; the
event-driven part lives in :mod:`repro.sched.simulator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ScheduleError

__all__ = [
    "SchedulePolicy",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "NonMonotonicDynamic",
    "parse_schedule",
    "SCHEDULE_NAMES",
]


@dataclass(frozen=True)
class Chunk:
    """A contiguous range [lo, hi) of the collapsed iteration space."""

    lo: int
    hi: int

    def __len__(self) -> int:
        return self.hi - self.lo

    def indices(self) -> range:
        return range(self.lo, self.hi)


class SchedulePolicy(ABC):
    """Base class: a named chunking/assignment strategy."""

    #: canonical OMP_SCHEDULE spelling, e.g. ``"dynamic,2"``
    name: str = "?"

    #: True when the assignment is fixed before execution (static family)
    is_static: bool = False

    #: True when idle threads steal from busy ones (nonmonotonic family)
    uses_stealing: bool = False

    @abstractmethod
    def spec(self) -> str:
        """The OMP_SCHEDULE string for this policy instance."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r})"


def _check_chunk(chunk: int | None) -> None:
    if chunk is not None and chunk < 1:
        raise ScheduleError(f"chunk size must be >= 1, got {chunk}")


class StaticSchedule(SchedulePolicy):
    """``schedule(static[,k])``.

    Without a chunk size, the iteration space is split into ``ncpus``
    nearly-equal contiguous blocks (one per thread).  With chunk ``k``,
    blocks of ``k`` iterations are dealt round-robin.
    """

    name = "static"
    is_static = True

    def __init__(self, chunk: int | None = None):
        _check_chunk(chunk)
        self.chunk = chunk

    def spec(self) -> str:
        return "static" if self.chunk is None else f"static,{self.chunk}"

    def assignment(self, n: int, ncpus: int) -> list[list[Chunk]]:
        """Per-CPU ordered chunk lists for ``n`` iterations."""
        if ncpus < 1:
            raise ScheduleError(f"need at least one cpu, got {ncpus}")
        per_cpu: list[list[Chunk]] = [[] for _ in range(ncpus)]
        if n == 0:
            return per_cpu
        if self.chunk is None:
            # LLVM/GCC static: first (n % p) threads get ceil(n/p), rest floor.
            base, extra = divmod(n, ncpus)
            lo = 0
            for cpu in range(ncpus):
                size = base + (1 if cpu < extra else 0)
                if size:
                    per_cpu[cpu].append(Chunk(lo, lo + size))
                lo += size
        else:
            k = self.chunk
            for i, lo in enumerate(range(0, n, k)):
                per_cpu[i % ncpus].append(Chunk(lo, min(lo + k, n)))
        return per_cpu


class DynamicSchedule(SchedulePolicy):
    """``schedule(dynamic[,k])`` — a central FIFO of fixed-size chunks."""

    name = "dynamic"

    def __init__(self, chunk: int = 1):
        _check_chunk(chunk)
        self.chunk = chunk

    def spec(self) -> str:
        return f"dynamic,{self.chunk}" if self.chunk != 1 else "dynamic"

    def chunk_queue(self, n: int) -> list[Chunk]:
        k = self.chunk
        return [Chunk(lo, min(lo + k, n)) for lo in range(0, n, k)]


class GuidedSchedule(SchedulePolicy):
    """``schedule(guided[,k])`` — decreasing chunk sizes, never below ``k``
    (except the final chunk).

    Chunk size follows LLVM's guided implementation,
    ``ceil(remaining / (2 * ncpus))`` — the factor 2 keeps initial chunks
    moderate, which is what makes guided competitive on irregular loops
    like mandel (paper Fig. 6)."""

    name = "guided"

    def __init__(self, chunk: int = 1):
        _check_chunk(chunk)
        self.chunk = chunk

    def spec(self) -> str:
        return f"guided,{self.chunk}" if self.chunk != 1 else "guided"

    def chunk_queue(self, n: int, ncpus: int) -> list[Chunk]:
        """The (deterministic) sequence of chunks handed out in grab order."""
        if ncpus < 1:
            raise ScheduleError(f"need at least one cpu, got {ncpus}")
        out: list[Chunk] = []
        lo = 0
        while lo < n:
            remaining = n - lo
            size = max(-(-remaining // (2 * ncpus)), self.chunk)
            size = min(size, remaining)
            out.append(Chunk(lo, lo + size))
            lo += size
        return out


class NonMonotonicDynamic(SchedulePolicy):
    """``schedule(nonmonotonic:dynamic[,k])``.

    Modeled after LLVM's implementation, as described in the paper
    (Fig. 4c): iterations are first distributed *statically* in
    contiguous per-thread blocks; a thread that exhausts its block
    steals chunks of ``k`` iterations from the victim with the most
    remaining work.
    """

    name = "nonmonotonic:dynamic"
    uses_stealing = True

    def __init__(self, chunk: int = 1, steal_half: bool = False):
        _check_chunk(chunk)
        self.chunk = chunk
        #: when True, a thief takes half of the victim's remaining block
        #: instead of one chunk (ablation knob, bench ABL2).
        self.steal_half = steal_half

    def spec(self) -> str:
        base = "nonmonotonic:dynamic"
        return f"{base},{self.chunk}" if self.chunk != 1 else base

    def initial_blocks(self, n: int, ncpus: int) -> list[Chunk]:
        """Per-CPU contiguous initial blocks (may be empty)."""
        if ncpus < 1:
            raise ScheduleError(f"need at least one cpu, got {ncpus}")
        base, extra = divmod(n, ncpus)
        blocks = []
        lo = 0
        for cpu in range(ncpus):
            size = base + (1 if cpu < extra else 0)
            blocks.append(Chunk(lo, lo + size))
            lo += size
        return blocks


SCHEDULE_NAMES = ("static", "dynamic", "guided", "nonmonotonic:dynamic")


def parse_schedule(spec: str) -> SchedulePolicy:
    """Parse an ``OMP_SCHEDULE``-style string into a policy object.

    >>> parse_schedule("dynamic,2").chunk
    2
    >>> parse_schedule("static").chunk is None
    True
    """
    if not spec or not isinstance(spec, str):
        raise ScheduleError(f"empty schedule spec: {spec!r}")
    text = spec.strip().lower()
    # strip the (ignored) monotonic modifier, keep nonmonotonic meaningful
    nonmonotonic = False
    if ":" in text:
        modifier, _, rest = text.partition(":")
        modifier = modifier.strip()
        if modifier == "nonmonotonic":
            nonmonotonic = True
        elif modifier != "monotonic":
            raise ScheduleError(f"unknown schedule modifier {modifier!r} in {spec!r}")
        text = rest.strip()
    kind, _, chunk_s = text.partition(",")
    kind = kind.strip()
    chunk: int | None = None
    if chunk_s:
        try:
            chunk = int(chunk_s)
        except ValueError:
            raise ScheduleError(f"bad chunk size {chunk_s!r} in {spec!r}") from None
    if kind == "static":
        if nonmonotonic:
            raise ScheduleError("nonmonotonic applies to dynamic only")
        return StaticSchedule(chunk)
    if kind == "dynamic":
        if nonmonotonic:
            return NonMonotonicDynamic(chunk if chunk is not None else 1)
        return DynamicSchedule(chunk if chunk is not None else 1)
    if kind == "guided":
        if nonmonotonic:
            raise ScheduleError(
                "nonmonotonic applies to dynamic only "
                "(guided work-stealing is not modelled)"
            )
        return GuidedSchedule(chunk if chunk is not None else 1)
    raise ScheduleError(f"unknown schedule kind {kind!r} in {spec!r}")
