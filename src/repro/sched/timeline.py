"""Timelines: the output of the scheduling simulator.

A :class:`Timeline` is an ordered record of task executions — which item
ran on which (virtual) CPU, from when to when — the exact information
EASYPAP's monitoring windows and EASYVIEW traces are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import SimulationError

__all__ = ["TaskExec", "Timeline"]

_EPS = 1e-9


@dataclass(frozen=True)
class TaskExec:
    """One task execution on a virtual CPU.

    ``item`` is whatever was scheduled (typically a :class:`~repro.core.tiling.Tile`);
    ``meta`` carries free-form annotations (iteration number, chunk id,
    whether the task was stolen, ...).
    """

    item: Any
    cpu: int
    start: float
    end: float
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """A collection of :class:`TaskExec` with analysis helpers."""

    def __init__(self, execs: Iterable[TaskExec] = (), ncpus: int | None = None):
        self.execs: list[TaskExec] = list(execs)
        if ncpus is None:
            ncpus = 1 + max((e.cpu for e in self.execs), default=-1)
        self.ncpus = max(ncpus, 0)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.execs)

    def __iter__(self) -> Iterator[TaskExec]:
        return iter(self.execs)

    def append(self, e: TaskExec) -> None:
        self.execs.append(e)
        if e.cpu >= self.ncpus:
            self.ncpus = e.cpu + 1

    def extend(self, es: Iterable[TaskExec]) -> None:
        for e in es:
            self.append(e)

    # -- aggregate metrics -------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Virtual completion time (max end over all executions)."""
        return max((e.end for e in self.execs), default=0.0)

    def busy_time(self, cpu: int) -> float:
        return sum(e.duration for e in self.execs if e.cpu == cpu)

    def busy_per_cpu(self) -> list[float]:
        busy = [0.0] * self.ncpus
        for e in self.execs:
            busy[e.cpu] += e.duration
        return busy

    def total_work(self) -> float:
        return sum(e.duration for e in self.execs)

    def load_percent(self, span: float | None = None) -> list[float]:
        """Per-CPU share of ``span`` spent computing (the Activity Monitor bars).

        ``span`` defaults to the makespan.
        """
        span = self.makespan if span is None else span
        if span <= 0:
            return [0.0] * self.ncpus
        return [100.0 * b / span for b in self.busy_per_cpu()]

    def idle_time(self, span: float | None = None) -> list[float]:
        span = self.makespan if span is None else span
        return [max(span - b, 0.0) for b in self.busy_per_cpu()]

    def cumulated_idleness(self) -> float:
        """Sum of idle time over CPUs (the idleness-history metric)."""
        return sum(self.idle_time())

    def imbalance(self) -> float:
        """max busy / mean busy, >= 1.0; 1.0 means perfect balance."""
        busy = self.busy_per_cpu()
        if not busy or sum(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def speedup_vs(self, seq_time: float) -> float:
        """Speedup against a sequential execution time."""
        span = self.makespan
        return seq_time / span if span > 0 else float("inf")

    # -- per-CPU structure ----------------------------------------------------------
    def lanes(self) -> dict[int, list[TaskExec]]:
        """Executions grouped per CPU, sorted by start time (Gantt lanes)."""
        out: dict[int, list[TaskExec]] = {c: [] for c in range(self.ncpus)}
        for e in self.execs:
            out.setdefault(e.cpu, []).append(e)
        for lane in out.values():
            lane.sort(key=lambda e: (e.start, e.end))
        return out

    def assignment(self) -> dict[Any, int]:
        """Mapping item -> cpu (the tiling-window colouring)."""
        return {e.item: e.cpu for e in self.execs}

    def items_of_cpu(self, cpu: int) -> list[Any]:
        """Items computed by ``cpu`` in execution order (coverage map)."""
        lane = sorted(
            (e for e in self.execs if e.cpu == cpu), key=lambda e: e.start
        )
        return [e.item for e in lane]

    def filtered(self, pred: Callable[[TaskExec], bool]) -> "Timeline":
        return Timeline([e for e in self.execs if pred(e)], ncpus=self.ncpus)

    def shifted(self, dt: float) -> "Timeline":
        """A copy with all times translated by ``dt`` (used to concatenate
        per-iteration timelines into a run-level trace)."""
        return Timeline(
            [
                TaskExec(e.item, e.cpu, e.start + dt, e.end + dt, dict(e.meta))
                for e in self.execs
            ],
            ncpus=self.ncpus,
        )

    # -- invariants -------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`SimulationError` if broken.

        * every execution has ``0 <= start <= end``;
        * executions on the same CPU never overlap.
        """
        for e in self.execs:
            if e.start < -_EPS or e.end < e.start - _EPS:
                raise SimulationError(f"bad interval in {e}")
            if not (0 <= e.cpu < self.ncpus):
                raise SimulationError(f"cpu {e.cpu} out of range in {e}")
        for cpu, lane in self.lanes().items():
            for a, b in zip(lane, lane[1:]):
                if b.start < a.end - _EPS:
                    raise SimulationError(
                        f"overlap on cpu {cpu}: {a} then {b}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Timeline({len(self.execs)} execs, ncpus={self.ncpus}, "
            f"makespan={self.makespan:.6g})"
        )
