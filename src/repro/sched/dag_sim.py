"""List scheduling of task graphs on virtual CPUs.

This is the runtime model behind ``#pragma omp task``: ready tasks are
assigned to idle threads in FIFO submission order.  The resulting
timeline lets EASYVIEW show the diagonal *wave* of connected-components
tasks sweeping the image (paper Fig. 12).

:func:`simulate_dag_policy` extends the model to *worksharing over a
dependency-carrying domain* (wavefront :class:`~repro.core.domains.WorkDomain`
regions): the same per-item loop a schedule policy would chunk, except
items must additionally wait for their predecessors.  ``static``
policies keep their fixed CPU assignment — a CPU simply idles until its
next item's predecessors finish, which is exactly where static loses to
the dynamic family on wavefront DAGs.  The dynamic/guided/stealing
policies all collapse to greedy FIFO list scheduling (a central ready
queue *is* what makes them dynamic; chunking is moot when readiness,
not contiguity, gates execution).
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

from repro.errors import SimulationError
from repro.sched.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sched.policies import SchedulePolicy, StaticSchedule
from repro.sched.taskgraph import TaskGraph
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["simulate_dag", "simulate_dag_policy", "dag_policy_makespan"]


def simulate_dag(
    graph: TaskGraph,
    ncpus: int,
    *,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
    meta: dict | None = None,
) -> Timeline:
    """Simulate FIFO list scheduling of ``graph`` on ``ncpus`` CPUs.

    Invariants guaranteed (and exploited by tests):

    * a task never starts before all its predecessors have finished;
    * a CPU runs at most one task at a time;
    * no CPU stays idle while a ready task is pending (greediness).
    """
    if ncpus < 1:
        raise SimulationError(f"need at least one cpu, got {ncpus}")
    n = len(graph)
    base_meta = dict(meta or {})
    timeline = Timeline(ncpus=ncpus)
    if n == 0:
        return timeline

    indeg = [len(node.preds) for node in graph.nodes]
    finish = [0.0] * n
    # ready: min-heap on (release_time, tid) — FIFO among simultaneously
    # released tasks thanks to increasing tids within a wave.
    ready: list[tuple[float, int]] = [
        (start_time, tid) for tid, d in enumerate(indeg) if d == 0
    ]
    heapq.heapify(ready)
    # idle CPUs: (free_time, cpu)
    cpus: list[tuple[float, int]] = [(start_time, c) for c in range(ncpus)]
    heapq.heapify(cpus)

    scheduled = 0
    while ready:
        rel, tid = heapq.heappop(ready)
        free_t, cpu = heapq.heappop(cpus)
        node = graph.nodes[tid]
        t0 = max(rel, free_t) + model.dispatch_overhead
        t1 = t0 + node.cost
        m = dict(base_meta)
        m.update(node.meta)
        m["tid"] = tid
        m["preds"] = sorted(node.preds)
        timeline.append(TaskExec(node.item, cpu, t0, t1, m))
        finish[tid] = t1
        heapq.heappush(cpus, (t1, cpu))
        scheduled += 1
        for s in sorted(node.succs):
            indeg[s] -= 1
            if indeg[s] == 0:
                release = max(finish[p] for p in graph.nodes[s].preds)
                heapq.heappush(ready, (release, s))
    if scheduled != n:
        raise SimulationError(
            f"scheduled {scheduled}/{n} tasks — graph has a cycle?"
        )
    return timeline


def _schedule_policy(
    costs: Sequence[float],
    preds: Sequence[Sequence[int]],
    policy: SchedulePolicy,
    ncpus: int,
    model: CostModel,
    start_time: float,
) -> list[tuple[int, float, float]]:
    """Per-task ``(cpu, start, finish)`` of policy-aware DAG scheduling.

    ``preds[i]`` must only name lower indices (enumeration order is a
    topological order — the :class:`~repro.core.domains.WorkDomain`
    contract), which is what makes the single forward pass below exact.
    """
    n = len(costs)
    if ncpus < 1:
        raise SimulationError(f"need at least one cpu, got {ncpus}")
    if len(preds) != n:
        raise SimulationError(f"{len(preds)} pred lists for {n} costs")
    out: list[tuple[int, float, float]] = [(0, start_time, start_time)] * n
    if n == 0:
        return out
    d = model.dispatch_overhead
    finish = [0.0] * n

    if isinstance(policy, StaticSchedule):
        # fixed assignment: each CPU runs its chunks in order, paying
        # the dispatch once per chunk and *idling* until the next
        # item's predecessors finish.  One pass in increasing global
        # index is exact: preds and same-CPU predecessors in program
        # order both have lower indices.
        cpu_of = [0] * n
        chunk_head = [False] * n
        for cpu, chunks in enumerate(policy.assignment(n, ncpus)):
            for chunk in chunks:
                first = True
                for idx in chunk.indices():
                    if idx < 0 or idx >= n:
                        raise SimulationError(f"task index {idx} out of range")
                    cpu_of[idx] = cpu
                    chunk_head[idx] = first
                    first = False
        free = [start_time] * ncpus
        for i in range(n):
            for p in preds[i]:
                if not 0 <= p < i:
                    raise SimulationError(
                        f"pred {p} of task {i} violates topological order"
                    )
            cpu = cpu_of[i]
            t0 = free[cpu] + (d if chunk_head[i] else 0.0)
            for p in preds[i]:
                if finish[p] > t0:
                    t0 = finish[p]
            t1 = t0 + costs[i]
            finish[i] = t1
            free[cpu] = t1
            out[i] = (cpu, t0, t1)
        return out

    # dynamic family (dynamic/guided/nonmonotonic): greedy FIFO list
    # scheduling off a central ready queue, one dispatch per task
    nsuccs: list[list[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for i, ps in enumerate(preds):
        for p in ps:
            if not 0 <= p < i:
                raise SimulationError(
                    f"pred {p} of task {i} violates topological order"
                )
            nsuccs[p].append(i)
            indeg[i] += 1
    ready: list[tuple[float, int]] = [
        (start_time, i) for i in range(n) if indeg[i] == 0
    ]
    heapq.heapify(ready)
    cpus: list[tuple[float, int]] = [(start_time, c) for c in range(ncpus)]
    heapq.heapify(cpus)
    scheduled = 0
    while ready:
        rel, i = heapq.heappop(ready)
        free_t, cpu = heapq.heappop(cpus)
        t0 = max(rel, free_t) + d
        t1 = t0 + costs[i]
        finish[i] = t1
        out[i] = (cpu, t0, t1)
        heapq.heappush(cpus, (t1, cpu))
        scheduled += 1
        for s in nsuccs[i]:
            indeg[s] -= 1
            if indeg[s] == 0:
                release = max(finish[p] for p in preds[s])
                heapq.heappush(ready, (release, s))
    if scheduled != n:
        raise SimulationError(
            f"scheduled {scheduled}/{n} tasks — graph has a cycle?"
        )
    return out


def simulate_dag_policy(
    costs: Sequence[float],
    preds: Sequence[Sequence[int]],
    policy: SchedulePolicy,
    ncpus: int,
    *,
    items: Sequence[Any] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
    meta: dict | None = None,
) -> Timeline:
    """Timeline of a schedule policy driving a dependency-carrying region.

    Same invariants as :func:`simulate_dag` (no task before its preds,
    one task per CPU at a time) plus policy semantics: ``static`` keeps
    its fixed chunk assignment (idling on unmet dependencies), the
    dynamic family greedily dispatches whatever is ready.
    """
    slots = _schedule_policy(costs, preds, policy, ncpus, model, start_time)
    if items is None:
        items = list(range(len(costs)))
    elif len(items) != len(costs):
        raise SimulationError(f"{len(items)} items for {len(costs)} costs")
    base_meta = dict(meta or {})
    timeline = Timeline(ncpus=ncpus)
    for i, (cpu, t0, t1) in enumerate(slots):
        m = dict(base_meta)
        m["index"] = i
        m["tid"] = i
        m["preds"] = sorted(preds[i])
        timeline.append(TaskExec(items[i], cpu, t0, t1, m))
    return timeline


def dag_policy_makespan(
    costs: Sequence[float],
    preds: Sequence[Sequence[int]],
    policy: SchedulePolicy,
    ncpus: int,
    *,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
) -> float:
    """Makespan of :func:`simulate_dag_policy` without the timeline.

    Runs the identical forward pass (same float operations in the same
    order), so the value is bit-identical — the replay memo and the
    perf path lean on that equality.
    """
    slots = _schedule_policy(costs, preds, policy, ncpus, model, start_time)
    if not slots:
        return 0.0
    return max(t1 for _, _, t1 in slots)
