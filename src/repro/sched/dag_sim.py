"""List scheduling of task graphs on virtual CPUs.

This is the runtime model behind ``#pragma omp task``: ready tasks are
assigned to idle threads in FIFO submission order.  The resulting
timeline lets EASYVIEW show the diagonal *wave* of connected-components
tasks sweeping the image (paper Fig. 12).
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError
from repro.sched.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sched.taskgraph import TaskGraph
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["simulate_dag"]


def simulate_dag(
    graph: TaskGraph,
    ncpus: int,
    *,
    model: CostModel = DEFAULT_COST_MODEL,
    start_time: float = 0.0,
    meta: dict | None = None,
) -> Timeline:
    """Simulate FIFO list scheduling of ``graph`` on ``ncpus`` CPUs.

    Invariants guaranteed (and exploited by tests):

    * a task never starts before all its predecessors have finished;
    * a CPU runs at most one task at a time;
    * no CPU stays idle while a ready task is pending (greediness).
    """
    if ncpus < 1:
        raise SimulationError(f"need at least one cpu, got {ncpus}")
    n = len(graph)
    base_meta = dict(meta or {})
    timeline = Timeline(ncpus=ncpus)
    if n == 0:
        return timeline

    indeg = [len(node.preds) for node in graph.nodes]
    finish = [0.0] * n
    # ready: min-heap on (release_time, tid) — FIFO among simultaneously
    # released tasks thanks to increasing tids within a wave.
    ready: list[tuple[float, int]] = [
        (start_time, tid) for tid, d in enumerate(indeg) if d == 0
    ]
    heapq.heapify(ready)
    # idle CPUs: (free_time, cpu)
    cpus: list[tuple[float, int]] = [(start_time, c) for c in range(ncpus)]
    heapq.heapify(cpus)

    scheduled = 0
    while ready:
        rel, tid = heapq.heappop(ready)
        free_t, cpu = heapq.heappop(cpus)
        node = graph.nodes[tid]
        t0 = max(rel, free_t) + model.dispatch_overhead
        t1 = t0 + node.cost
        m = dict(base_meta)
        m.update(node.meta)
        m["tid"] = tid
        m["preds"] = sorted(node.preds)
        timeline.append(TaskExec(node.item, cpu, t0, t1, m))
        finish[tid] = t1
        heapq.heappush(cpus, (t1, cpu))
        scheduled += 1
        for s in sorted(node.succs):
            indeg[s] -= 1
            if indeg[s] == 0:
                release = max(finish[p] for p in graph.nodes[s].preds)
                heapq.heappush(ready, (release, s))
    if scheduled != n:
        raise SimulationError(
            f"scheduled {scheduled}/{n} tasks — graph has a cycle?"
        )
    return timeline
