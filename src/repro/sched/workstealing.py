"""Work-stealing simulation for ``nonmonotonic:dynamic``.

The paper (Fig. 4c) describes OpenMP 5's nonmonotonic dynamic schedule
as observed through the tiling window: *"tiles are first distributed in
a static manner, but work-stealing is eventually used to correct load
imbalance"*.  We model exactly that: each CPU owns a contiguous block of
the iteration space and consumes it from the front in chunks of ``k``;
a CPU whose block is exhausted steals from the *back* of the block of
the victim with the most remaining iterations (or half the victim's
block with ``steal_half=True`` — the ABL2 ablation knob).
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

from repro.sched.costmodel import CostModel
from repro.sched.policies import Chunk, NonMonotonicDynamic
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["simulate_stealing"]


class _Block:
    """A [lo, hi) range consumed from both ends (owner: front, thief: back)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi

    @property
    def remaining(self) -> int:
        return max(self.hi - self.lo, 0)

    def take_front(self, k: int) -> Chunk:
        lo = self.lo
        hi = min(lo + k, self.hi)
        self.lo = hi
        return Chunk(lo, hi)

    def take_back(self, k: int) -> Chunk:
        hi = self.hi
        lo = max(hi - k, self.lo)
        self.hi = lo
        return Chunk(lo, hi)


def simulate_stealing(
    costs: Sequence[float],
    policy: NonMonotonicDynamic,
    ncpus: int,
    items: Sequence[Any],
    model: CostModel,
    start_time: float,
    base_meta: dict,
    grab_cls,
    result_cls,
    record_tasks: bool = True,
):
    """Event-driven simulation; returns a ``SimResult``.

    Deterministic: ties in free time break by CPU index, victim choice
    is the largest remaining block (ties by lowest CPU index).

    With ``record_tasks=False`` (the perf-mode fast path: stealing has
    no closed form, but nobody reads the timeline) the per-task records
    and their meta dicts are skipped; the result carries the makespan in
    ``fast_makespan`` and an empty timeline.  The event loop itself is
    identical either way, so the makespan is bit-for-bit the same.
    """
    n = len(costs)
    timeline = Timeline(ncpus=ncpus)
    grabs = []
    steals = 0
    makespan = 0.0
    blocks = [_Block(c.lo, c.hi) for c in policy.initial_blocks(n, ncpus)]
    k = policy.chunk

    # Inline chunk execution (kept local to avoid an import cycle with
    # simulator.py, which imports this module).
    def run_chunk(chunk: Chunk, cpu: int, t: float, stolen: bool) -> float:
        if not record_tasks:
            for idx in chunk.indices():
                t = t + costs[idx]
            return t
        for idx in chunk.indices():
            end = t + costs[idx]
            m = dict(base_meta)
            m["index"] = idx
            if stolen:
                m["stolen"] = True
            timeline.append(TaskExec(items[idx], cpu, t, end, m))
            t = end
        return t

    heap: list[tuple[float, int]] = [(start_time, cpu) for cpu in range(ncpus)]
    heapq.heapify(heap)
    done = 0
    parked: list[tuple[float, int]] = []
    while done < n:
        if not heap:  # pragma: no cover - defensive; cannot happen while done < n
            break
        t, cpu = heapq.heappop(heap)
        own = blocks[cpu]
        if own.remaining > 0:
            t += model.dispatch_overhead
            chunk = own.take_front(k)
            grabs.append(grab_cls(cpu, t, chunk, stolen=False))
            t = run_chunk(chunk, cpu, t, stolen=False)
            done += len(chunk)
            if t > makespan:
                makespan = t
            heapq.heappush(heap, (t, cpu))
            continue
        # Steal: pick the victim with the most remaining work.
        victim = max(range(ncpus), key=lambda c: (blocks[c].remaining, -c))
        if blocks[victim].remaining == 0:
            # Nothing left anywhere *right now*; but other CPUs scheduled
            # later in the heap may still hold unconsumed front chunks —
            # they don't (blocks are global state), so this CPU is done.
            parked.append((t, cpu))
            continue
        t += model.steal_overhead
        amount = max(blocks[victim].remaining // 2, k) if policy.steal_half else k
        chunk = blocks[victim].take_back(amount)
        steals += 1
        grabs.append(grab_cls(cpu, t, chunk, stolen=True))
        t = run_chunk(chunk, cpu, t, stolen=True)
        done += len(chunk)
        if t > makespan:
            makespan = t
        heapq.heappush(heap, (t, cpu))
    return result_cls(timeline, grabs, steals, None if record_tasks else makespan)
