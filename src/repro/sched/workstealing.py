"""Work-stealing simulation for ``nonmonotonic:dynamic``.

The paper (Fig. 4c) describes OpenMP 5's nonmonotonic dynamic schedule
as observed through the tiling window: *"tiles are first distributed in
a static manner, but work-stealing is eventually used to correct load
imbalance"*.  We model exactly that: each CPU owns a contiguous block of
the iteration space and consumes it from the front in chunks of ``k``;
a CPU whose block is exhausted steals from the *back* of the block of
the victim with the most remaining iterations (or half the victim's
block with ``steal_half=True`` — the ABL2 ablation knob).
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

import numpy as np

from repro.sched.costmodel import CostModel
from repro.sched.policies import Chunk, NonMonotonicDynamic
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["simulate_stealing", "stealing_makespan"]

#: same speed knob as simulator._ACCUMULATE_CUTOFF (kept local — the
#: simulator imports this module, not the other way around): chunks at
#: least this long are folded with ``np.add.accumulate``, whose strictly
#: left-to-right accumulation is bit-identical to the sequential
#: ``t = t + cost`` python-float adds of the event loop
_ACCUMULATE_CUTOFF = 32


class _Block:
    """A [lo, hi) range consumed from both ends (owner: front, thief: back)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi

    @property
    def remaining(self) -> int:
        return max(self.hi - self.lo, 0)

    def take_front(self, k: int) -> Chunk:
        lo = self.lo
        hi = min(lo + k, self.hi)
        self.lo = hi
        return Chunk(lo, hi)

    def take_back(self, k: int) -> Chunk:
        hi = self.hi
        lo = max(hi - k, self.lo)
        self.hi = lo
        return Chunk(lo, hi)


def simulate_stealing(
    costs: Sequence[float],
    policy: NonMonotonicDynamic,
    ncpus: int,
    items: Sequence[Any],
    model: CostModel,
    start_time: float,
    base_meta: dict,
    grab_cls,
    result_cls,
    record_tasks: bool = True,
):
    """Event-driven simulation; returns a ``SimResult``.

    Deterministic: ties in free time break by CPU index, victim choice
    is the largest remaining block (ties by lowest CPU index).

    With ``record_tasks=False`` (the perf-mode fast path: stealing has
    no closed form, but nobody reads the timeline) the per-task records
    and their meta dicts are skipped; the result carries the makespan in
    ``fast_makespan`` and an empty timeline.  The event loop itself is
    identical either way, so the makespan is bit-for-bit the same.
    """
    n = len(costs)
    timeline = Timeline(ncpus=ncpus)
    grabs = []
    steals = 0
    makespan = 0.0
    blocks = [_Block(c.lo, c.hi) for c in policy.initial_blocks(n, ncpus)]
    k = policy.chunk

    # Inline chunk execution (kept local to avoid an import cycle with
    # simulator.py, which imports this module).
    def run_chunk(chunk: Chunk, cpu: int, t: float, stolen: bool) -> float:
        if not record_tasks:
            for idx in chunk.indices():
                t = t + costs[idx]
            return t
        for idx in chunk.indices():
            end = t + costs[idx]
            m = dict(base_meta)
            m["index"] = idx
            if stolen:
                m["stolen"] = True
            timeline.append(TaskExec(items[idx], cpu, t, end, m))
            t = end
        return t

    heap: list[tuple[float, int]] = [(start_time, cpu) for cpu in range(ncpus)]
    heapq.heapify(heap)
    done = 0
    parked: list[tuple[float, int]] = []
    while done < n:
        if not heap:  # pragma: no cover - defensive; cannot happen while done < n
            break
        t, cpu = heapq.heappop(heap)
        own = blocks[cpu]
        if own.remaining > 0:
            t += model.dispatch_overhead
            chunk = own.take_front(k)
            grabs.append(grab_cls(cpu, t, chunk, stolen=False))
            t = run_chunk(chunk, cpu, t, stolen=False)
            done += len(chunk)
            if t > makespan:
                makespan = t
            heapq.heappush(heap, (t, cpu))
            continue
        # Steal: pick the victim with the most remaining work.
        victim = max(range(ncpus), key=lambda c: (blocks[c].remaining, -c))
        if blocks[victim].remaining == 0:
            # Nothing left anywhere *right now*; but other CPUs scheduled
            # later in the heap may still hold unconsumed front chunks —
            # they don't (blocks are global state), so this CPU is done.
            parked.append((t, cpu))
            continue
        t += model.steal_overhead
        amount = max(blocks[victim].remaining // 2, k) if policy.steal_half else k
        chunk = blocks[victim].take_back(amount)
        steals += 1
        grabs.append(grab_cls(cpu, t, chunk, stolen=True))
        t = run_chunk(chunk, cpu, t, stolen=True)
        done += len(chunk)
        if t > makespan:
            makespan = t
        heapq.heappush(heap, (t, cpu))
    return result_cls(timeline, grabs, steals, None if record_tasks else makespan)


def stealing_makespan(
    costs: Sequence[float],
    policy: NonMonotonicDynamic,
    ncpus: int,
    model: CostModel,
    start_time: float = 0.0,
) -> float:
    """The work-stealing makespan without the heapq event loop.

    Work stealing has no *closed form* (which CPU steals next depends on
    every earlier completion), but the event loop's evolution is fully
    deterministic, so it can be *replayed* with plain state — a
    free-time array instead of a heap, vectorized chunk folds instead of
    per-task bookkeeping — and proven exactly equal to
    :func:`simulate_stealing`:

    * the heap pops the smallest ``(t, cpu)`` tuple; a linear argmin
      over still-active CPUs with a strict ``<`` keeps the lowest index
      on ties — the same order;
    * a parked CPU (nothing left to steal) is never re-pushed onto the
      heap; clearing its ``active`` flag is the same exclusion;
    * chunk execution is ``t = t + costs[i]`` left to right; the
      ``np.add.accumulate`` fold is strictly left-to-right, hence
      bit-identical (short chunks just run the python loop).

    This is what :func:`repro.sched.simulator.simulate_makespan`
    dispatches to, completing perf mode's no-event-loop guarantee for
    every schedule policy.
    """
    n = len(costs)
    c = np.asarray(costs, dtype=np.float64)
    blocks = [_Block(b.lo, b.hi) for b in policy.initial_blocks(n, ncpus)]
    k = policy.chunk
    free = [start_time] * ncpus
    active = [True] * ncpus
    makespan = 0.0
    done = 0

    def fold(t: float, lo: int, hi: int) -> float:
        if hi - lo >= _ACCUMULATE_CUTOFF:
            seg = np.empty(hi - lo + 1)
            seg[0] = t
            seg[1:] = c[lo:hi]
            return float(np.add.accumulate(seg)[-1])
        for cost in c[lo:hi].tolist():
            t = t + cost
        return t

    while done < n:
        cpu = -1
        t = 0.0
        for i in range(ncpus):
            if active[i] and (cpu < 0 or free[i] < t):
                cpu = i
                t = free[i]
        if cpu < 0:  # pragma: no cover - defensive; cannot happen while done < n
            break
        own = blocks[cpu]
        if own.remaining > 0:
            t += model.dispatch_overhead
            chunk = own.take_front(k)
        else:
            victim = max(range(ncpus), key=lambda i: (blocks[i].remaining, -i))
            if blocks[victim].remaining == 0:
                active[cpu] = False  # parked: never scheduled again
                continue
            t += model.steal_overhead
            amount = max(blocks[victim].remaining // 2, k) if policy.steal_half else k
            chunk = blocks[victim].take_back(amount)
        t = fold(t, chunk.lo, chunk.hi)
        done += chunk.hi - chunk.lo
        if t > makespan:
            makespan = t
        free[cpu] = t
    return makespan
