"""Task graphs with OpenMP-style dependencies.

Models ``#pragma omp task depend(in: ...) depend(out/inout: ...)`` as
used in the connected-components assignment (paper Fig. 11): edges are
*inferred* from the data each task declares it reads and writes, with
the standard semantics —

* a reader depends on the previous writer of the datum,
* a writer depends on the previous writer **and** every reader since.

An explicit-edge API is also available for synthetic graphs in tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

from repro.errors import DependencyError

__all__ = ["TaskNode", "TaskGraph"]


@dataclass
class TaskNode:
    """One task: an attached payload, a cost, and dependency edges."""

    tid: int
    item: Any
    cost: float = 1.0
    preds: set[int] = field(default_factory=set)
    succs: set[int] = field(default_factory=set)
    meta: dict = field(default_factory=dict)


class TaskGraph:
    """A DAG of tasks built incrementally, in submission order."""

    def __init__(self):
        self.nodes: list[TaskNode] = []
        self._last_writer: dict[Hashable, int] = {}
        self._readers_since: dict[Hashable, list[int]] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    # -- construction -----------------------------------------------------------
    def add_task(
        self,
        item: Any,
        cost: float = 1.0,
        *,
        depends_on: Iterable[int] = (),
        reads: Sequence[Hashable] = (),
        writes: Sequence[Hashable] = (),
        meta: dict | None = None,
    ) -> int:
        """Submit a task; returns its id.

        ``reads``/``writes`` are data tokens (e.g. tile grid coordinates)
        mirroring ``depend(in: ...)`` / ``depend(inout: ...)``; a token in
        both behaves as ``inout``.  ``depends_on`` adds explicit edges.
        """
        tid = len(self.nodes)
        node = TaskNode(tid=tid, item=item, cost=cost, meta=dict(meta or {}))
        self.nodes.append(node)
        for p in depends_on:
            self._add_edge(p, tid)
        for token in reads:
            w = self._last_writer.get(token)
            if w is not None:
                self._add_edge(w, tid)
            self._readers_since.setdefault(token, []).append(tid)
        for token in writes:
            w = self._last_writer.get(token)
            if w is not None and w != tid:
                self._add_edge(w, tid)
            for r in self._readers_since.get(token, ()):
                if r != tid:
                    self._add_edge(r, tid)
            self._last_writer[token] = tid
            self._readers_since[token] = []
        return tid

    def _add_edge(self, src: int, dst: int) -> None:
        if not (0 <= src < len(self.nodes)):
            raise DependencyError(f"unknown predecessor task {src}")
        if src == dst:
            raise DependencyError(f"task {dst} cannot depend on itself")
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    # -- queries -------------------------------------------------------------------
    def roots(self) -> list[int]:
        return [n.tid for n in self.nodes if not n.preds]

    def topological_order(self) -> list[int]:
        """Kahn topological order (stable: FIFO on ready tasks).

        Raises :class:`DependencyError` on cycles — by construction the
        inferred graphs are acyclic (edges go from earlier to later
        submissions), so this only triggers on bad explicit edges.
        """
        indeg = [len(n.preds) for n in self.nodes]
        ready = deque(tid for tid, d in enumerate(indeg) if d == 0)
        order: list[int] = []
        while ready:
            tid = ready.popleft()
            order.append(tid)
            for s in sorted(self.nodes[tid].succs):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.nodes):
            raise DependencyError("task graph contains a cycle")
        return order

    def depth(self) -> int:
        """Length (in tasks) of the critical path — the wave count of Fig. 12."""
        level = [0] * len(self.nodes)
        for tid in self.topological_order():
            node = self.nodes[tid]
            level[tid] = 1 + max((level[p] for p in node.preds), default=0)
        return max(level, default=0)

    def levels(self) -> list[int]:
        """Per-task wavefront index (1-based; roots are level 1)."""
        level = [0] * len(self.nodes)
        for tid in self.topological_order():
            node = self.nodes[tid]
            level[tid] = 1 + max((level[p] for p in node.preds), default=0)
        return level

    def critical_path_time(self) -> float:
        """Longest cost-weighted path: a lower bound on any schedule."""
        finish = [0.0] * len(self.nodes)
        for tid in self.topological_order():
            node = self.nodes[tid]
            est = max((finish[p] for p in node.preds), default=0.0)
            finish[tid] = est + node.cost
        return max(finish, default=0.0)

    def validate(self) -> None:
        """Check edge symmetry and acyclicity."""
        for n in self.nodes:
            for s in n.succs:
                if n.tid not in self.nodes[s].preds:
                    raise DependencyError(f"asymmetric edge {n.tid}->{s}")
            for p in n.preds:
                if n.tid not in self.nodes[p].succs:
                    raise DependencyError(f"asymmetric edge {p}->{n.tid}")
        self.topological_order()
