"""Cost models: converting kernel *work units* into virtual time.

Kernels report deterministic work units (e.g. mandel: number of inner
escape-loop iterations executed; stencils: pixels touched, weighted by
whether the code path vectorizes).  The simulator runs on virtual
seconds, so a :class:`CostModel` provides the conversion plus the
runtime overheads that make granularity trade-offs visible (paper
Fig. 6: tiny chunks lose to dispatch overhead).

The default constants are calibrated so a 1024x1024 mandel iteration
lands in the hundreds-of-milliseconds range of the paper's example runs
("50 iterations completed in 579 ms"); absolute values are irrelevant to
the reproduced *shapes*, only their ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["CostModel", "DEFAULT_COST_MODEL", "measured_costs", "uniform_costs"]


@dataclass(frozen=True)
class CostModel:
    """Work-unit → virtual-seconds conversion and runtime overheads.

    Attributes
    ----------
    seconds_per_unit:
        Virtual seconds per work unit (≈ one arithmetic-dominated inner
        loop iteration of compiled code).
    dispatch_overhead:
        Cost paid by a thread each time it grabs a chunk from the
        scheduler (atomic increment + bookkeeping).
    steal_overhead:
        Extra cost of a successful steal (victim selection + CAS).
    fork_join_overhead:
        Cost per parallel region / per-iteration barrier.
    """

    seconds_per_unit: float = 5e-9
    dispatch_overhead: float = 2.5e-7
    steal_overhead: float = 1.5e-6
    fork_join_overhead: float = 5e-6

    def time_of(self, work: float) -> float:
        return work * self.seconds_per_unit

    def times_of(self, works: Iterable[float]) -> list[float]:
        f = self.seconds_per_unit
        return [w * f for w in works]

    def scaled(self, factor: float) -> "CostModel":
        """A model with all costs multiplied by ``factor``."""
        return CostModel(
            seconds_per_unit=self.seconds_per_unit * factor,
            dispatch_overhead=self.dispatch_overhead * factor,
            steal_overhead=self.steal_overhead * factor,
            fork_join_overhead=self.fork_join_overhead * factor,
        )

    def zero_overhead(self) -> "CostModel":
        """Same conversion factor, no runtime overheads (ablations)."""
        return CostModel(
            seconds_per_unit=self.seconds_per_unit,
            dispatch_overhead=0.0,
            steal_overhead=0.0,
            fork_join_overhead=0.0,
        )


DEFAULT_COST_MODEL = CostModel()


def perturb(costs: Sequence[float], rng, sigma: float) -> list[float]:
    """Apply multiplicative system noise to per-item costs.

    Each cost is scaled by a normal factor N(1, sigma), floored at 5% —
    the model behind run-to-run variability (OS jitter, frequency
    scaling) that makes repeated measurements differ and gives speedup
    plots their error bars.  ``sigma == 0`` is the deterministic default.
    """
    if sigma <= 0.0 or not costs:
        return list(costs)
    factors = rng.normal(1.0, sigma, size=len(costs))
    return [c * max(f, 0.05) for c, f in zip(costs, factors)]


def uniform_costs(n: int, cost: float = 1.0) -> list[float]:
    """``n`` identical costs (useful for synthetic schedules in tests)."""
    return [cost] * n


def measured_costs(works: Sequence[float], model: CostModel = DEFAULT_COST_MODEL) -> list[float]:
    """Convert a sequence of work units into virtual-second costs."""
    return model.times_of(works)
