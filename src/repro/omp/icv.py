"""OpenMP Internal Control Variables (ICVs).

EASYPAP experiments are driven through the standard environment
variables (``OMP_NUM_THREADS``, ``OMP_SCHEDULE``, see the expTools
script in paper Fig. 5).  This module resolves them — from an explicit
mapping or the process environment — into the runtime's configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigError
from repro.sched.policies import SchedulePolicy, parse_schedule

__all__ = ["Icvs", "resolve_icvs", "DEFAULT_NUM_THREADS"]

#: default virtual team size — matches the paper's 6-core/12-thread machine
DEFAULT_NUM_THREADS = 4


@dataclass(frozen=True)
class Icvs:
    """Resolved control variables for one run."""

    num_threads: int
    schedule: SchedulePolicy

    def spec(self) -> dict[str, str]:
        """Environment-variable form (round-trips through expTools CSVs)."""
        return {
            "OMP_NUM_THREADS": str(self.num_threads),
            "OMP_SCHEDULE": self.schedule.spec(),
        }


def resolve_icvs(
    env: Mapping[str, str] | None = None,
    *,
    num_threads: int | None = None,
    schedule: str | SchedulePolicy | None = None,
    default_schedule: str = "dynamic",
) -> Icvs:
    """Resolve ICVs with precedence: explicit args > ``env`` > os.environ > defaults.

    ``env=None`` reads the process environment; pass ``env={}`` for a
    hermetic resolution (what the test-suite does).
    """
    source: Mapping[str, str] = os.environ if env is None else env

    if num_threads is None:
        raw = source.get("OMP_NUM_THREADS")
        if raw is not None:
            try:
                num_threads = int(raw)
            except ValueError:
                raise ConfigError(f"bad OMP_NUM_THREADS: {raw!r}") from None
        else:
            num_threads = DEFAULT_NUM_THREADS
    if num_threads < 1:
        raise ConfigError(f"OMP_NUM_THREADS must be >= 1, got {num_threads}")

    if schedule is None:
        schedule = source.get("OMP_SCHEDULE", default_schedule)
    policy = schedule if isinstance(schedule, SchedulePolicy) else parse_schedule(schedule)
    return Icvs(num_threads=num_threads, schedule=policy)
