"""``parallel_for``: the OpenMP worksharing loop.

The default (``sim``) backend executes bodies sequentially — measuring
deterministic *work units* — then replays the loop through the
event-driven scheduler to obtain the timeline a real thread team would
produce under the requested ``schedule(...)`` clause.  The ``threads``
backend runs a real ``ThreadPoolExecutor`` team and records wall-clock
times (useful to sanity-check shapes against genuine parallelism; NumPy
tile bodies release the GIL in their inner loops).  The ``procs``
backend (:mod:`repro.omp.procs`) dispatches the same worksharing loops
onto a persistent shared-memory process pool — wall-clock times with
true parallelism even for pure-Python tile bodies.

Perf-mode fast path
-------------------
A kernel may pass ``frame=`` — a whole-frame batch implementation with
signature ``frame(ctx, items) -> works`` (``parallel_reduce``:
``frame(ctx, items) -> (works, value)``).  The frame performs every
side effect the per-item bodies would (image/data writes, change
flags) in one vectorized shot and returns the per-item work vector;
``None`` declines (e.g. an item subset the frame cannot prove safe),
falling back to the reference path.  The fast path engages only when
:meth:`ExecutionContext.fastpath_active` holds — no monitoring, no
tracing, no footprints — and is bit-identical to the reference in every
remaining observable: final images, kernel state, the virtual clock
(closed-form makespans match the event loop exactly), the region log,
and the jitter RNG stream.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.core import access
from repro.errors import ScheduleError
from repro.sched.policies import (
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    SchedulePolicy,
    StaticSchedule,
    parse_schedule,
)
from repro.sched.dag_sim import simulate_dag_policy
from repro.sched.simulator import SimResult, simulate, simulate_makespan
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["parallel_for", "parallel_reduce"]


def _resolve_policy(ctx, schedule: SchedulePolicy | str | None) -> SchedulePolicy:
    if schedule is None:
        return ctx.policy
    if isinstance(schedule, SchedulePolicy):
        return schedule
    return parse_schedule(schedule)


def parallel_for(
    ctx,
    body: Callable[[Any], float],
    items: Sequence[Any] | None = None,
    *,
    schedule: SchedulePolicy | str | None = None,
    kind: str = "tile",
    frame: Callable | None = None,
) -> SimResult:
    """Distribute ``items`` over the virtual team.

    ``body(item)`` performs the computation and returns its cost in
    *work units* (deterministic, e.g. loop iterations executed); items
    default to the tile grid in collapse(2) order.  ``frame`` is the
    optional whole-frame batch implementation (see the module
    docstring); it replaces the per-item bodies when the perf-mode fast
    path is active.

    Returns the :class:`SimResult` for the region; the context's clock
    advances past the simulated makespan + fork/join overhead.

    When ``items`` is omitted and the context's work domain carries
    dependency edges (wavefront domains), the region is scheduled as a
    policy-aware DAG instead of an independent loop — see
    :func:`_dag_for`.  Explicit item lists (subsets, reordered items)
    always take the independent-loop path, since domain edges are
    defined on whole-domain enumeration order.
    """
    whole_domain = items is None
    items = list(ctx.domain) if items is None else list(items)
    policy = _resolve_policy(ctx, schedule)
    deps = ctx.domain.dependencies() if whole_domain else None
    if deps is not None:
        return _dag_for(ctx, body, items, deps, policy, kind)
    meta = {"iteration": ctx.iteration, "kind": kind}
    if ctx.backend == "threads":
        meta.update(region=ctx.next_region(), rmode="par")
        return _threads_parallel_for(ctx, body, items, policy, meta)
    if ctx.backend == "procs":
        from repro.omp.procs import procs_parallel_for

        meta.update(region=ctx.next_region(), rmode="par")
        return procs_parallel_for(ctx, body, items, policy, meta)

    if frame is not None and ctx.fastpath_active():
        works = frame(ctx, items)
        if works is not None:
            return _fast_region(ctx, np.asarray(works, dtype=np.float64), policy)

    works, footprints = _measure(ctx, body, items)
    if ctx.region_log is not None:
        ctx.region_log.append(("par", works))
    costs = ctx.perturb_costs(ctx.model.times_of(works))
    meta.update(region=ctx.next_region(), rmode="par")
    result = simulate(
        costs,
        policy,
        ctx.nthreads,
        items=items,
        model=ctx.model,
        start_time=ctx.vclock,
        meta=meta,
    )
    end = max(result.timeline.makespan, ctx.vclock)
    ctx.vclock = end + ctx.model.fork_join_overhead
    if result.steals:
        ctx.bus.counter("steals", result.steals)
    ctx.record_timeline(result.timeline, footprints=footprints)
    return result


def _dag_for(ctx, body, items, deps, policy: SchedulePolicy, kind: str) -> SimResult:
    """One worksharing region over a dependency-carrying domain.

    Bodies execute immediately and sequentially in enumeration order —
    a valid topological order by the :class:`WorkDomain` contract — on
    *every* backend, exactly like ``task_region`` bodies do: that is
    what makes wavefront results bit-identical across sim/threads/procs.
    The timeline comes from the policy-aware DAG simulator, which is
    where ``static`` visibly loses to the dynamic family.
    """
    works, footprints = _measure(ctx, body, items)
    if ctx.region_log is not None:
        ctx.region_log.append(("dagp", works, [list(p) for p in deps]))
    costs = ctx.perturb_costs(ctx.model.times_of(works))
    meta = {
        "iteration": ctx.iteration,
        "kind": kind,
        "region": ctx.next_region(),
        "rmode": "dag",
    }
    timeline = simulate_dag_policy(
        costs, deps, policy, ctx.nthreads,
        items=items, model=ctx.model, start_time=ctx.vclock, meta=meta,
    )
    end = max(timeline.makespan, ctx.vclock)
    ctx.vclock = end + ctx.model.fork_join_overhead
    ctx.record_timeline(timeline, footprints=footprints)
    return SimResult(timeline)


def _fast_region(ctx, works: np.ndarray, policy: SchedulePolicy) -> SimResult:
    """Advance the clock past one worksharing region without building a
    timeline: closed-form makespan over the frame's work vector."""
    costs = ctx.frame_costs(works, "par")
    makespan = simulate_makespan(
        costs, policy, ctx.nthreads, model=ctx.model, start_time=ctx.vclock
    )
    ctx.next_region()
    ctx.fastpath_regions += 1
    ctx.vclock = max(makespan, ctx.vclock) + ctx.model.fork_join_overhead
    return SimResult(Timeline(ncpus=ctx.nthreads), fast_makespan=makespan)


def _measure(ctx, body, items):
    """Run bodies sequentially, measuring work units (and, when the run
    collects footprints, each body's read/write regions)."""
    if not ctx.collect_footprints:
        return [float(body(item) or 0.0) for item in items], None
    works, footprints = [], []
    for item in items:
        with access.collect() as col:
            works.append(float(body(item) or 0.0))
        footprints.append(col.freeze())
    return works, footprints


def parallel_reduce(
    ctx,
    body: Callable[[Any], tuple[float, Any]],
    items: Sequence[Any] | None = None,
    *,
    combine: Callable[[Any, Any], Any],
    init: Any,
    schedule: SchedulePolicy | str | None = None,
    kind: str = "tile",
    frame: Callable | None = None,
):
    """``parallel for reduction(op: acc)``: the race-free way to fold a
    value across a worksharing loop.

    ``body(item)`` returns ``(work_units, value)``; values are combined
    with ``combine`` in deterministic item order (real OpenMP reductions
    are unordered — our determinism is strictly stronger, which tests
    rely on).  Returns ``(sim_result, accumulated)``.

    ``frame(ctx, items)`` may return ``(works, value)`` where ``value``
    is the reduction of all items' values (associativity is already a
    requirement of the construct); the fast path then returns
    ``combine(init, value)``.

    This is the construct kernels should use instead of mutating shared
    state from tile bodies (the "changed" flags of Life/heat) — in real
    OpenMP that mutation needs ``atomic``/``critical``; here the
    reduction expresses the intent.
    """
    whole_domain = items is None
    items = list(ctx.domain) if items is None else list(items)
    deps = ctx.domain.dependencies() if whole_domain else None
    if deps is not None:
        # dependency-carrying domain: fold sequentially in enumeration
        # order (deterministic), schedule as a policy-aware DAG
        acc = init

        def body_dag(item):
            nonlocal acc
            work, value = body(item)
            acc = combine(acc, value)
            return work

        res = _dag_for(ctx, body_dag, items, deps, _resolve_policy(ctx, schedule), kind)
        return res, acc
    if ctx.backend == "procs":
        from repro.omp.procs import procs_parallel_reduce

        return procs_parallel_reduce(
            ctx, body, items, _resolve_policy(ctx, schedule),
            {
                "iteration": ctx.iteration, "kind": kind,
                "region": ctx.next_region(), "rmode": "reduce",
            },
            combine=combine, init=init,
        )
    if frame is not None and ctx.fastpath_active():
        out = frame(ctx, items)
        if out is not None:
            works, value = out
            res = _fast_region(
                ctx, np.asarray(works, dtype=np.float64), _resolve_policy(ctx, schedule)
            )
            return res, combine(init, value)
    acc = init
    works: list[float] = []
    footprints: list | None = [] if ctx.collect_footprints else None

    def wrapped_values():
        nonlocal acc
        for item in items:
            if footprints is not None:
                with access.collect() as col:
                    work, value = body(item)
                footprints.append(col.freeze())
            else:
                work, value = body(item)
            works.append(float(work or 0.0))
            acc = combine(acc, value)

    if ctx.backend == "threads":
        import threading

        lock = threading.Lock()

        def body_threads(item):
            nonlocal acc
            work, value = body(item)
            with lock:
                acc = combine(acc, value)
            return work

        res = _threads_parallel_for(
            ctx, body_threads, items, _resolve_policy(ctx, schedule),
            {
                "iteration": ctx.iteration, "kind": kind,
                "region": ctx.next_region(), "rmode": "reduce",
            },
        )
        return res, acc

    wrapped_values()
    if ctx.region_log is not None:
        ctx.region_log.append(("par", works))
    costs = ctx.perturb_costs(ctx.model.times_of(works))
    res = simulate(
        costs,
        _resolve_policy(ctx, schedule),
        ctx.nthreads,
        items=items,
        model=ctx.model,
        start_time=ctx.vclock,
        meta={
            "iteration": ctx.iteration,
            "kind": kind,
            "region": ctx.next_region(),
            "rmode": "reduce",
        },
    )
    ctx.vclock = max(res.timeline.makespan, ctx.vclock) + ctx.model.fork_join_overhead
    ctx.record_timeline(res.timeline, footprints=footprints)
    return res, acc


# --------------------------------------------------------------------------
# Real-thread backend
# --------------------------------------------------------------------------


def _threads_parallel_for(ctx, body, items, policy, meta) -> SimResult:
    """Run a real thread team; record wall-clock start/end per item.

    Scheduling semantics: ``static`` uses the precomputed assignment;
    every dynamic family policy (dynamic, guided, nonmonotonic) shares a
    central chunk queue — real stealing cannot be faithfully observed
    under the GIL (see DESIGN.md), so the dynamic behaviour is the
    honest common denominator.
    """
    n = len(items)
    nthreads = ctx.nthreads
    records: list[list[tuple[int, float, float]]] = [[] for _ in range(nthreads)]
    # the active footprint collector is thread-local, so each team member
    # records its own tasks; every idx runs exactly once, so the slot
    # writes below never contend
    fps: list | None = [None] * n if ctx.collect_footprints else None

    def run_item(idx: int) -> None:
        if fps is None:
            body(items[idx])
        else:
            with access.collect() as col:
                body(items[idx])
            fps[idx] = col.freeze()

    t0 = time.perf_counter()

    if isinstance(policy, StaticSchedule):
        assignments = policy.assignment(n, nthreads)

        def worker_static(rank: int) -> None:
            recs = records[rank]
            for chunk in assignments[rank]:
                for idx in chunk.indices():
                    s = time.perf_counter() - t0
                    run_item(idx)
                    e = time.perf_counter() - t0
                    recs.append((idx, s, e))

        target, args_of = worker_static, lambda r: (r,)
    else:
        if isinstance(policy, GuidedSchedule):
            queue = policy.chunk_queue(n, nthreads)
        elif isinstance(policy, DynamicSchedule):
            queue = policy.chunk_queue(n)
        elif isinstance(policy, NonMonotonicDynamic):
            queue = DynamicSchedule(policy.chunk).chunk_queue(n)
        else:  # pragma: no cover - parse_schedule covers all kinds
            raise ScheduleError(f"unsupported policy {policy!r}")
        lock = threading.Lock()
        state = {"next": 0}

        def worker_dynamic(rank: int) -> None:
            recs = records[rank]
            while True:
                with lock:
                    qi = state["next"]
                    if qi >= len(queue):
                        return
                    state["next"] = qi + 1
                for idx in queue[qi].indices():
                    s = time.perf_counter() - t0
                    run_item(idx)
                    e = time.perf_counter() - t0
                    recs.append((idx, s, e))

        target, args_of = worker_dynamic, lambda r: (r,)

    threads = [
        threading.Thread(target=target, args=args_of(r), name=f"easypap-{r}")
        for r in range(nthreads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    timeline = Timeline(ncpus=nthreads)
    for rank, recs in enumerate(records):
        for idx, s, e in recs:
            m = dict(meta)
            m["index"] = idx
            timeline.append(TaskExec(items[idx], rank, ctx.vclock + s, ctx.vclock + e, m))
    ctx.vclock += elapsed
    ctx.record_timeline(timeline, footprints=fps)
    return SimResult(timeline, grabs=[], steals=0)
