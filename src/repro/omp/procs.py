"""``backend="procs"``: a true-parallel persistent process pool.

The ``threads`` backend only achieves wall-clock parallelism for tile
bodies that release the GIL (NumPy inner loops); a pure-Python tile
body — the first thing a student writes — serializes.  This module
runs the same worksharing loops on a **persistent forkserver worker
pool** with all mutable kernel state in POSIX shared memory, so every
tile body runs in genuine parallel and ``--trace`` records real
wall-clock Gantt charts.

Architecture
------------
``SharedArena``
    Allocates named ``multiprocessing.shared_memory`` blocks and tracks
    them for deterministic cleanup (explicit ``release()``, plus a
    process-exit finalizer so interrupted runs never leak ``/dev/shm``
    segments — ``multiprocessing.util.Finalize`` also fires inside
    sweep worker processes, where ``atexit`` does not run).

``SharedData``
    A ``dict`` for ``ctx.data`` that transparently mirrors every NumPy
    array into the arena: assignment of a new array allocates a block
    and copies once; re-assignment of an equal-shape array copies in
    place; re-assignment of an array *already in the arena* (the
    ``cells, next = next, cells`` double-buffer swap) only remaps the
    key — zero-copy.  Non-array values stay plain and are shipped to
    workers per region (they are small: flags, viewport floats).

``TileBody``
    The picklable tile-body contract.  Closures cannot cross a process
    boundary, so kernels wrap their bound tile methods with
    ``ctx.body(self.do_tile)``; workers re-resolve ``(kernel_name,
    method_name)`` against their own kernel registry and context.

``ProcPool``
    One pool per team size, spawned once and reused across iterations,
    runs and expTools sweep points.  Per region the master writes the
    chunk table and item indices into shared blocks and sends one small
    dispatch message per worker — frames are **never** pickled.  Chunks
    are claimed through a shared int64 index array (one lock, one
    counter — contention is per *chunk*, not per tile); the
    ``nonmonotonic:dynamic`` family uses per-worker chunk deques in the
    same array, stolen from the tail of the most-loaded victim.
    Workers stream telemetry — wall-clock execution records and, when
    ``--check-races`` is on, read/write footprints — into per-worker
    shared-memory ring lanes (:mod:`repro.telemetry.ring`); the master
    drains the lanes between regions and re-publishes everything on the
    context's telemetry bus (monitoring, ``--trace``, the race
    analyzer, EASYVIEW).  A full lane drops its oldest records instead
    of ever blocking a worker; drops surface as the run's
    ``dropped_events`` counter.

Worker death (e.g. SIGKILL) is detected by liveness polling during
collection and surfaces as a clean :class:`ExecutionError` after a
bounded join; the pool is rebuilt on next use.
"""

from __future__ import annotations

import itertools
import os
import sys
import time
import traceback
from contextlib import contextmanager
from dataclasses import asdict
from multiprocessing import shared_memory, util
from typing import Any, Sequence

import numpy as np

from repro.core import access
from repro.errors import ExecutionError, ScheduleError
from repro.sched.policies import (
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    SchedulePolicy,
    StaticSchedule,
)
from repro.sched.simulator import SimResult
from repro.sched.timeline import TaskExec, Timeline
from repro.telemetry.ring import (
    KIND_EXEC,
    KIND_FP_READ,
    KIND_FP_WRITE,
    RECORD_WIDTH,
    RingWriter,
    drain_lane,
    ring_capacity,
)

__all__ = [
    "SharedArena",
    "SharedData",
    "TileBody",
    "ProcPool",
    "get_pool",
    "shutdown_pools",
    "procs_parallel_for",
    "procs_parallel_reduce",
    "new_session_id",
    "live_arena_blocks",
    "register_cleanup",
]

#: start method for pool workers; forkserver gives clean children that
#: preload the framework once (cheap respawn), spawn is the fallback.
START_METHODS = ("forkserver", "spawn")

#: how long ``ensure_session`` waits for workers to come up / resync
SETUP_TIMEOUT = float(os.environ.get("REPRO_PROCS_SETUP_TIMEOUT", "120"))

#: optional wall-clock bound per region (0 = unbounded, liveness only)
REGION_TIMEOUT = float(os.environ.get("REPRO_PROCS_TIMEOUT", "0"))

_SESSION_IDS = itertools.count(1)


def new_session_id() -> int:
    """A fresh id tying one ExecutionContext to pool setup state."""
    return next(_SESSION_IDS)


# --------------------------------------------------------------------------
# Shared-memory bookkeeping
# --------------------------------------------------------------------------

#: every live master-side block, for the exit finalizer: name -> SharedMemory
_LIVE_BLOCKS: dict[str, shared_memory.SharedMemory] = {}

_EXIT_FINALIZER = None


def _ensure_exit_finalizer() -> None:
    # util.Finalize(None, ...) runs at interpreter exit in the main
    # process *and* inside multiprocessing children (sweep workers),
    # where plain atexit handlers never fire.
    global _EXIT_FINALIZER
    if _EXIT_FINALIZER is None:
        _EXIT_FINALIZER = util.Finalize(None, _cleanup_at_exit, exitpriority=20)


def _cleanup_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    shutdown_pools()
    for fn in list(_EXTRA_CLEANUPS):
        try:
            fn()
        except Exception:
            pass
    for name in list(_LIVE_BLOCKS):
        _unlink_block(name)


#: exit hooks of sibling subsystems sharing the finalizer (the MPI rank
#: pool registers its shutdown here, so one Finalize covers everything)
_EXTRA_CLEANUPS: list = []


def register_cleanup(fn) -> None:
    """Run ``fn`` at interpreter exit, after the procs pools stop but
    before the live shared-memory blocks are swept."""
    _ensure_exit_finalizer()
    if fn not in _EXTRA_CLEANUPS:
        _EXTRA_CLEANUPS.append(fn)


def _alloc_block(prefix: str, seq: int, nbytes: int) -> shared_memory.SharedMemory:
    _ensure_exit_finalizer()
    shm = shared_memory.SharedMemory(
        name=f"{prefix}{seq}", create=True, size=max(int(nbytes), 1)
    )
    _LIVE_BLOCKS[shm.name] = shm
    return shm


def _unlink_block(name: str) -> None:
    shm = _LIVE_BLOCKS.pop(name, None)
    if shm is None:
        return
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    _defuse(shm)


def _defuse(shm: shared_memory.SharedMemory) -> None:
    """Hand the mapping's lifetime over to the NumPy views.

    ``SharedMemory.close()`` (also called by ``__del__``) unmaps
    immediately: NumPy keeps only an object reference to the mmap
    (``arr.base``), not an active buffer export, so a close under live
    views turns every later access into a segfault.  Instead we close
    the fd and null the object's handles — the mmap object then lives
    exactly as long as the views referencing it, and the OS reclaims
    the memory when the last one is garbage collected.
    """
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover
            pass
        shm._fd = -1
    shm._mmap = None
    shm._buf = None


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """No-op placeholder for the attach-side resource_tracker dance.

    Python < 3.13 registers *attached* (not just created) blocks with the
    resource tracker.  Pool workers share the master's tracker process
    (the fd is inherited through forkserver/spawn), so the re-register is
    a harmless set-dedup and must NOT be undone: an explicit
    ``unregister`` here would erase the master's own registration and
    break its unlink bookkeeping.  Kept as a hook (and documentation)
    should a future start method give workers a private tracker.
    """


class SharedArena:
    """A set of named shared-memory blocks owned by one run."""

    def __init__(self, tag: str = "arena"):
        self.prefix = f"ezpap_{tag}_{os.getpid()}_{os.urandom(3).hex()}_"
        self._seq = 0
        self._names: list[str] = []
        self.released = False

    def alloc(self, shape: tuple[int, ...], dtype) -> tuple[str, np.ndarray]:
        """Allocate a zero-filled block; returns ``(name, ndarray view)``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        shm = _alloc_block(self.prefix, self._seq, nbytes)
        self._seq += 1
        self._names.append(shm.name)
        return shm.name, np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    def release(self) -> None:
        """Unlink every block (idempotent).  Existing NumPy views stay
        readable until they are garbage collected; the ``/dev/shm``
        entries disappear immediately."""
        if self.released:
            return
        self.released = True
        for name in self._names:
            _unlink_block(name)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def live_arena_blocks() -> list[str]:
    """Names of not-yet-released arena blocks (leak tests)."""
    return [n for n in _LIVE_BLOCKS if "_arena_" in n]


class SharedData(dict):
    """``ctx.data`` with every NumPy array mirrored into shared memory.

    The stored values *are* the shared views, so master-side kernel code
    (lazy-evaluation bookkeeping, ``refresh_img``...) reads and writes
    the same bytes the workers do.  ``manifest()`` describes the array
    mapping plus the plain (picklable) values for one region dispatch.
    """

    def __init__(self, arena: SharedArena):
        super().__init__()
        self._arena = arena
        self._block_of_key: dict[str, str] = {}
        self._block_of_view: dict[int, str] = {}

    def __setitem__(self, key, value) -> None:
        if isinstance(value, np.ndarray) and value.dtype != object:
            block = self._block_of_view.get(id(value))
            if block is not None:
                # an arena view handed out earlier (buffer swap): remap
                self._block_of_key[key] = block
                dict.__setitem__(self, key, value)
                return
            current = self.get(key)
            if (
                isinstance(current, np.ndarray)
                and key in self._block_of_key
                and current.shape == value.shape
                and current.dtype == value.dtype
            ):
                current[...] = value  # same geometry: reuse the block
                return
            name, view = self._arena.alloc(value.shape, value.dtype)
            view[...] = value
            self._block_of_key[key] = name
            self._block_of_view[id(view)] = name
            dict.__setitem__(self, key, view)
            return
        self._forget(key)
        dict.__setitem__(self, key, value)

    def __delitem__(self, key) -> None:
        self._forget(key)
        dict.__delitem__(self, key)

    def _forget(self, key) -> None:
        self._block_of_key.pop(key, None)

    def update(self, *args, **kwargs) -> None:  # route through __setitem__
        for k, v in dict(*args, **kwargs).items():
            self[k] = v

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return self[key]

    def manifest(self) -> tuple[dict, dict]:
        """``(arrays, scalars)`` for one region message: array keys map
        to ``(block, shape, dtype)``, everything else is sent by value."""
        arrays = {}
        scalars = {}
        for k, v in self.items():
            block = self._block_of_key.get(k)
            if block is not None:
                arrays[k] = (block, tuple(v.shape), v.dtype.str)
            else:
                scalars[k] = v
        return arrays, scalars


# --------------------------------------------------------------------------
# The picklable tile-body contract
# --------------------------------------------------------------------------


class TileBody:
    """A tile body that can cross a process boundary.

    Wraps a *bound kernel method* with signature ``method(ctx, item)``;
    locally it behaves like the closure it replaces, and its ``spec``
    (kernel name, method name) lets pool workers re-resolve the same
    method against their own kernel instance and shadow context.
    """

    __slots__ = ("ctx", "method", "spec")

    def __init__(self, ctx, method):
        kernel = getattr(method, "__self__", None)
        name = getattr(kernel, "name", None)
        if not name or name == "?":
            raise ExecutionError(
                "ctx.body() needs a bound method of a registered kernel "
                f"(got {method!r})"
            )
        self.ctx = ctx
        self.method = method
        self.spec = (name, method.__func__.__name__)

    def __call__(self, item):
        return self.method(self.ctx, item)


def _require_tile_body(body, ctx) -> tuple[str, str]:
    if not isinstance(body, TileBody):
        raise ExecutionError(
            "backend='procs' runs tile bodies in worker processes, which "
            "cannot receive closures: pass ctx.body(self.do_tile) (a bound "
            "method of a registered kernel) instead of a lambda"
        )
    if body.ctx is not ctx:
        raise ExecutionError("ctx.body() was built for a different context")
    return body.spec


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


class _TrackingDict(dict):
    """Worker-side ``ctx.data``: records plain-value assignments made by
    tile bodies so the master can merge them after the region (the
    idempotent ``changed = True`` convergence flags)."""

    def __init__(self):
        super().__init__()
        self.sets: dict[str, Any] = {}

    def __setitem__(self, key, value) -> None:
        dict.__setitem__(self, key, value)
        if not isinstance(value, np.ndarray):
            self.sets[key] = value


def _worker_view(state: dict, name: str, shape, dtype) -> np.ndarray:
    shm = state["shms"].get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        state["shms"][name] = shm
    return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)


def _worker_setup(state: dict, setup: dict) -> None:
    from repro.core.config import RunConfig
    from repro.core.context import ExecutionContext
    from repro.core.kernel import get_kernel, load_kernel_module

    # detach blocks of the previous session: defuse, so views the old
    # shadow context still holds cannot turn into dangling pointers —
    # the mappings are reclaimed when those views are garbage collected
    state["shms"], old = {}, state.get("shms", {})
    for shm in old.values():
        _defuse(shm)
    for path in setup["kernel_files"]:
        load_kernel_module(path)
    kwargs = dict(setup["config"])
    # the worker context is inert: no pool of its own, no sinks
    kwargs.update(
        backend="sim", monitoring=False, trace=False,
        footprints=False, display=False, mpi_np=0,
    )
    cfg = RunConfig(**kwargs)
    ctx = ExecutionContext(cfg)
    state.update(
        ctx=ctx,
        kernel=get_kernel(cfg.kernel),
        img_names=tuple(setup["img_names"]),
        dim=setup["dim"],
        dim_y=setup.get("dim_y") or setup["dim"],
    )


def _worker_claim_queue(ctrl, lock, nchunks: int) -> int:
    with lock:
        cid = int(ctrl[0])
        if cid >= nchunks:
            return -1
        ctrl[0] = cid + 1
        return cid


def _worker_claim_steal(ctrl, lock, rank: int, nworkers: int, steal_half: bool) -> int:
    """Pop the front of our deque, or steal from the tail of the victim
    with the most remaining chunks.  Returns a chunk id or -1."""
    with lock:
        h, t = int(ctrl[2 + 2 * rank]), int(ctrl[3 + 2 * rank])
        if h < t:
            ctrl[2 + 2 * rank] = h + 1
            return h
        best, remaining = -1, 0
        for v in range(nworkers):
            if v == rank:
                continue
            r = int(ctrl[3 + 2 * v]) - int(ctrl[2 + 2 * v])
            if r > remaining:
                best, remaining = v, r
        if best < 0:
            return -1
        vt = int(ctrl[3 + 2 * best])
        take = max((remaining + 1) // 2, 1) if steal_half else 1
        ctrl[3 + 2 * best] = vt - take
        # adopt all stolen chunks but the one we run now
        ctrl[2 + 2 * rank] = vt - take + 1
        ctrl[3 + 2 * rank] = vt
        ctrl[1] += 1
        return vt - take


def _worker_region(state: dict, lock, ctrl, rank: int, nworkers: int, r: dict) -> dict:
    from repro.core.kernel import get_kernel

    ctx = state["ctx"]
    ctx.iteration = r["iteration"]
    shape = (state["dim_y"], state["dim"])
    a, b = state["img_names"]
    cur_name, nxt_name = (a, b) if r["img_parity"] == 0 else (b, a)
    ctx.img.cur = _worker_view(state, cur_name, shape, np.uint32)
    ctx.img.nxt = _worker_view(state, nxt_name, shape, np.uint32)

    data = _TrackingDict()
    for k, (name, shape, dt) in r["arrays"].items():
        dict.__setitem__(data, k, _worker_view(state, name, shape, dt))
    for k, v in r["scalars"].items():
        dict.__setitem__(data, k, v)
    ctx.data = data

    kname, mname = r["body"]
    kernel = state["kernel"] if state["kernel"].name == kname else get_kernel(kname)
    method = getattr(kernel, mname)

    if r["items_pickled"] is not None:
        items = r["items_pickled"]
    else:
        idx = _worker_view(state, r["items_block"], (r["n"],), np.int64)
        grid = ctx.grid
        items = [grid[int(i)] for i in idx]

    chunks = _worker_view(state, r["chunk_block"], (r["nchunks"], 2), np.int64)
    ring_payload = _worker_view(
        state, r["ring_block"], (nworkers, r["ring_cap"], RECORD_WIDTH), np.float64
    )
    # ring lane write counts live in the tail of the shared ctrl array:
    # attached once at worker startup, monotonic across regions
    ring = RingWriter(ctrl[2 + 2 * nworkers :], ring_payload, rank)

    mode = r["mode"]
    if mode == "static":
        my_chunks = iter(r["static_chunks"][rank])

        def next_chunk() -> int:
            return next(my_chunks, -1)

    elif mode == "queue":

        def next_chunk() -> int:
            return _worker_claim_queue(ctrl, lock, r["nchunks"])

    else:  # steal

        def next_chunk() -> int:
            return _worker_claim_steal(ctrl, lock, rank, nworkers, r["steal_half"])

    reduce_values = [] if r["reduce"] else None
    collect_fp = r["footprints"]
    # footprints carry buffer *names*; a numeric ring cannot ship strings,
    # so each worker interns them and sends the table back with "done"
    buf_ids: dict[str, int] = {}
    bufs: list[str] = []
    nev = 0
    perf = time.perf_counter
    while True:
        cid = next_chunk()
        if cid < 0:
            break
        lo, hi = int(chunks[cid, 0]), int(chunks[cid, 1])
        for pos in range(lo, hi):
            item = items[pos]
            if collect_fp:
                with access.collect() as col:
                    s = perf()
                    ret = method(ctx, item)
                    e = perf()
                fp = col.freeze()
                ring.emit(KIND_EXEC, pos, s, e)
                for kind, regions in (
                    (KIND_FP_READ, fp.reads),
                    (KIND_FP_WRITE, fp.writes),
                ):
                    for reg in regions:
                        buf, x, y, w, h = reg[:5]
                        z, depth = (reg[5], reg[6]) if len(reg) >= 7 else (0, 1)
                        bid = buf_ids.get(buf)
                        if bid is None:
                            bid = buf_ids[buf] = len(bufs)
                            bufs.append(buf)
                        ring.emit(kind, pos, bid, x, y, w, h, z, depth)
            else:
                s = perf()
                ret = method(ctx, item)
                e = perf()
                ring.emit(KIND_EXEC, pos, s, e)
            nev += 1
            if reduce_values is not None:
                reduce_values.append((pos, ret[1]))
    return {"n": nev, "values": reduce_values, "sets": data.sets, "bufs": bufs}


def _worker_main(rank: int, conn, lock, ctrl_name: str, nworkers: int) -> None:
    """Pool worker: serve setup/region messages until shutdown."""
    state: dict[str, Any] = {"shms": {}}
    ctrl_shm = shared_memory.SharedMemory(name=ctrl_name)
    _untrack(ctrl_shm)
    # layout: [queue cursor, steal count, per-worker deques (2 each),
    #          per-worker telemetry-ring write counts (1 each)]
    ctrl = np.ndarray((2 + 3 * nworkers,), dtype=np.int64, buffer=ctrl_shm.buf)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, KeyboardInterrupt):  # pragma: no cover
                return
            tag = msg[0]
            if tag == "shutdown":
                return
            try:
                if tag == "setup":
                    _worker_setup(state, msg[1])
                    conn.send(("ready", rank, msg[2]))
                elif tag == "region":
                    out = _worker_region(state, lock, ctrl, rank, nworkers, msg[1])
                    conn.send(("done", rank, msg[2], out))
                elif tag == "ping":
                    conn.send(("pong", rank, msg[2]))
            except Exception as exc:  # surface, do not die
                detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                try:
                    conn.send(("error", rank, msg[2], detail))
                except Exception:  # pragma: no cover - master went away
                    return
    finally:
        _defuse(ctrl_shm)


# --------------------------------------------------------------------------
# Master side
# --------------------------------------------------------------------------


@contextmanager
def _no_main_reimport():
    """Spawn workers without re-importing the caller's ``__main__``.

    forkserver/spawn children normally re-run the main module (that is
    why multiprocessing demands the ``if __name__ == "__main__"`` guard
    — an unguarded student script would recursively re-execute itself,
    or crash outright when main is ``<stdin>``).  Our workers live
    entirely in this importable module, so the re-import is pure risk
    with no benefit: temporarily hiding ``__main__``'s ``__file__`` and
    ``__spec__`` makes ``spawn.get_preparation_data`` skip it.
    """
    main = sys.modules.get("__main__")
    sentinel = object()
    saved_file = getattr(main, "__file__", sentinel)
    saved_spec = getattr(main, "__spec__", sentinel)
    try:
        if main is not None:
            if saved_file is not sentinel:
                del main.__file__
            main.__spec__ = None
        yield
    finally:
        if main is not None:
            if saved_file is not sentinel:
                main.__file__ = saved_file
            if saved_spec is not sentinel:
                main.__spec__ = saved_spec


def _mp_context():
    import multiprocessing as mp

    available = mp.get_all_start_methods()
    for method in START_METHODS:
        if method in available:
            ctx = mp.get_context(method)
            if method == "forkserver":
                # preload the framework once in the fork server: workers
                # then fork with repro + numpy already imported
                try:
                    ctx.set_forkserver_preload(["repro.omp.procs"])
                except Exception:  # pragma: no cover
                    pass
            return ctx
    raise ExecutionError(  # pragma: no cover - POSIX always has one
        f"no usable multiprocessing start method among {START_METHODS}"
    )


class _GrowBlock:
    """A pool-scoped shared block that grows geometrically; the name
    changes on growth so workers re-attach lazily."""

    def __init__(self, prefix: str, tag: str, dtype):
        self.prefix, self.tag, self.dtype = prefix, tag, np.dtype(dtype)
        self.name: str | None = None
        self.arr: np.ndarray | None = None
        self._gen = 0

    def ensure(self, shape: tuple[int, ...]) -> np.ndarray:
        needed = int(np.prod(shape, dtype=np.int64)) * self.dtype.itemsize
        if self.arr is None or self.arr.nbytes < needed:
            if self.name is not None:
                _unlink_block(self.name)
            cap = max(needed, 1024)
            shm = _alloc_block(f"{self.prefix}{self.tag}g{self._gen}_", 0, cap)
            self._gen += 1
            self.name = shm.name
            self.arr = np.ndarray((cap // self.dtype.itemsize,), dtype=self.dtype,
                                  buffer=shm.buf)
        flat = int(np.prod(shape, dtype=np.int64))
        return self.arr[:flat].reshape(shape)

    def release(self) -> None:
        if self.name is not None:
            _unlink_block(self.name)
            self.name, self.arr = None, None


def _chunk_plan(policy: SchedulePolicy, n: int, nworkers: int) -> dict:
    """Turn a schedule policy into a chunk table + dispatch mode."""
    if isinstance(policy, StaticSchedule):
        table: list[tuple[int, int]] = []
        static_chunks: list[list[int]] = []
        for chunks in policy.assignment(n, nworkers):
            ids = []
            for c in chunks:
                ids.append(len(table))
                table.append((c.lo, c.hi))
            static_chunks.append(ids)
        return {"mode": "static", "table": table, "static_chunks": static_chunks}
    if isinstance(policy, GuidedSchedule):
        table = [(c.lo, c.hi) for c in policy.chunk_queue(n, nworkers)]
        return {"mode": "queue", "table": table}
    if isinstance(policy, NonMonotonicDynamic):
        k = policy.chunk
        table = []
        deques = []  # per-worker [head, tail) over the chunk table
        for block in policy.initial_blocks(n, nworkers):
            head = len(table)
            for lo in range(block.lo, block.hi, k):
                table.append((lo, min(lo + k, block.hi)))
            deques.append((head, len(table)))
        return {
            "mode": "steal", "table": table, "deques": deques,
            "steal_half": policy.steal_half,
        }
    if isinstance(policy, DynamicSchedule):
        table = [(c.lo, c.hi) for c in policy.chunk_queue(n)]
        return {"mode": "queue", "table": table}
    raise ScheduleError(f"unsupported policy {policy!r}")  # pragma: no cover


class ProcPool:
    """A persistent team of worker processes (one per virtual CPU)."""

    def __init__(self, nworkers: int):
        self.nworkers = nworkers
        self.prefix = f"ezpap_pool_{os.getpid()}_{os.urandom(3).hex()}_"
        self._mp = _mp_context()
        self.lock = self._mp.Lock()
        ctrl_shm = _alloc_block(self.prefix + "ctrl_", 0, (2 + 3 * nworkers) * 8)
        self._ctrl_name = ctrl_shm.name
        self.ctrl = np.ndarray((2 + 3 * nworkers,), dtype=np.int64, buffer=ctrl_shm.buf)
        self._chunks = _GrowBlock(self.prefix, "chunks_", np.int64)
        self._items = _GrowBlock(self.prefix, "items_", np.int64)
        #: telemetry ring payload (lanes of fixed-width records); the
        #: write counts live in the tail of ``ctrl``, the master-side
        #: read cursors here
        self._ring = _GrowBlock(self.prefix, "ring_", np.float64)
        self._ring_consumed = [0] * nworkers
        self.session: int | None = None
        self.epoch = 0
        self.broken = False
        self.conns = []
        self.procs = []
        with _no_main_reimport():
            for rank in range(nworkers):
                parent, child = self._mp.Pipe()
                p = self._mp.Process(
                    target=_worker_main,
                    args=(rank, child, self.lock, self._ctrl_name, nworkers),
                    daemon=True,
                    name=f"easypap-procs-{rank}",
                )
                p.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(p)

    # -- liveness / lifecycle -------------------------------------------------
    def healthy(self) -> bool:
        return not self.broken and all(p.is_alive() for p in self.procs)

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self.procs]

    def shutdown(self) -> None:
        """Stop workers (bounded join, then terminate/kill) and unlink
        every pool-scoped shared block."""
        self.broken = True
        for conn in self.conns:
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for p in self.procs:
            p.join(timeout=max(deadline - time.monotonic(), 0.05))
        for p in self.procs:
            if p.is_alive():
                p.terminate()
        for p in self.procs:
            p.join(timeout=1.0)
            if p.is_alive():  # pragma: no cover - terminate() sufficed so far
                p.kill()
                p.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        _unlink_block(self._ctrl_name)
        for block in (self._chunks, self._items, self._ring):
            block.release()

    def _fail(self, why: str) -> "ExecutionError":
        self.shutdown()
        _POOLS.pop(self.nworkers, None)
        return ExecutionError(why)

    # -- message plumbing -----------------------------------------------------
    def _drain_stale(self) -> None:
        """Drop replies from abandoned epochs (a timed-out or interrupted
        region) so the next dispatch starts from a clean stream."""
        for conn in self.conns:
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):
                pass

    def _collect(self, want: str, epoch: int, timeout: float | None) -> list:
        """One reply of kind ``want``/``epoch`` per worker, with liveness
        checks and a bounded wait; raises ExecutionError on dead workers,
        worker exceptions, or timeout."""
        pending = set(range(self.nworkers))
        replies: list = [None] * self.nworkers
        errors: list[str] = []
        deadline = time.monotonic() + timeout if timeout else None
        while pending:
            progressed = False
            for rank in sorted(pending):
                conn = self.conns[rank]
                try:
                    if not conn.poll(0.02):
                        continue
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise self._fail(
                        f"procs worker {rank} died mid-region (connection lost); "
                        "pool will be respawned on next use"
                    ) from None
                progressed = True
                if msg[0] == "error" and msg[2] == epoch:
                    errors.append(f"worker {rank}: {msg[3]}")
                    pending.discard(rank)
                elif msg[0] == want and msg[2] == epoch:
                    replies[rank] = msg[3] if len(msg) > 3 else None
                    pending.discard(rank)
                # anything else: stale reply from an abandoned epoch — drop
            if not progressed:
                for rank in sorted(pending):
                    if not self.procs[rank].is_alive():
                        raise self._fail(
                            f"procs worker {rank} died mid-region (killed?); "
                            "pool will be respawned on next use"
                        )
                if deadline is not None and time.monotonic() > deadline:
                    raise self._fail(
                        f"procs workers did not answer within {timeout:.0f}s"
                    )
        if errors:
            raise ExecutionError(
                "procs region failed in worker(s):\n" + "\n".join(errors)
            )
        return replies

    # -- session + region dispatch -------------------------------------------
    def ensure_session(self, ctx) -> None:
        from repro.core.kernel import loaded_kernel_files

        if self.session == ctx.procs_session:
            return
        setup = {
            "config": asdict(ctx.config),
            "img_names": list(ctx.img_blocks),
            "dim": ctx.dim,
            "dim_y": ctx.dim_y,
            "kernel_files": loaded_kernel_files(),
        }
        self.epoch += 1
        self._drain_stale()
        for conn in self.conns:
            conn.send(("setup", setup, self.epoch))
        self._collect("ready", self.epoch, SETUP_TIMEOUT)
        self.session = ctx.procs_session

    def run_region(
        self,
        ctx,
        spec: tuple[str, str],
        items: Sequence,
        policy: SchedulePolicy,
        meta: dict,
        *,
        reduce: bool = False,
    ) -> tuple[Timeline, float, dict]:
        """Execute one worksharing region on the pool.

        Returns ``(timeline, elapsed_wall_seconds, extras)`` where
        ``extras`` carries reduction values (in item order), merged
        scalar writebacks, the steal count, per-task footprints (when
        the run collects them) and the number of telemetry events the
        ring dropped.
        """
        self.ensure_session(ctx)
        n = len(items)
        timeline = Timeline(ncpus=self.nworkers)
        if n == 0:
            return timeline, 0.0, {
                "values": [], "sets": {}, "steals": 0,
                "footprints": None, "dropped": 0,
            }

        plan = _chunk_plan(policy, n, self.nworkers)
        table = plan["table"]
        chunk_arr = self._chunks.ensure((max(len(table), 1), 2))
        chunk_arr[: len(table)] = table

        items_pickled = None
        items_block = None
        from repro.core.tiling import Tile

        grid = ctx.grid
        if all(
            isinstance(t, Tile) and 0 <= t.index < len(grid) and grid[t.index] == t
            for t in items
        ):
            idx_arr = self._items.ensure((n,))
            idx_arr[:] = [t.index for t in items]
            items_block = self._items.name
        else:
            items_pickled = list(items)

        want_fp = bool(ctx.collect_footprints)
        ring_cap = ring_capacity(n, want_fp)
        ring_arr = self._ring.ensure((self.nworkers, ring_cap, RECORD_WIDTH))

        # region control words: queue cursor, steal count, per-worker deques
        self.ctrl[0] = 0
        self.ctrl[1] = 0
        if plan["mode"] == "steal":
            for rank, (h, t) in enumerate(plan["deques"]):
                self.ctrl[2 + 2 * rank] = h
                self.ctrl[3 + 2 * rank] = t

        arrays, scalars = ctx.data.manifest()
        self.epoch += 1
        msg = {
            "body": spec,
            "iteration": ctx.iteration,
            "img_parity": ctx.img.swaps % 2,
            "arrays": arrays,
            "scalars": scalars,
            "n": n,
            "items_block": items_block,
            "items_pickled": items_pickled,
            "chunk_block": self._chunks.name,
            "nchunks": len(table),
            "ring_block": self._ring.name,
            "ring_cap": ring_cap,
            "footprints": want_fp,
            "mode": plan["mode"],
            "static_chunks": plan.get("static_chunks"),
            "steal_half": plan.get("steal_half", False),
            "reduce": reduce,
        }
        self._drain_stale()
        t0 = time.perf_counter()
        for conn in self.conns:
            conn.send(("region", msg, self.epoch))
        replies = self._collect("done", self.epoch, REGION_TIMEOUT or None)
        elapsed = time.perf_counter() - t0

        total = sum(r["n"] for r in replies)
        if total != n:
            # lost-work detection rides on the pipe replies, never on the
            # (droppable) telemetry ring
            raise self._fail(
                f"procs region executed {total} of {n} items — a worker "
                "lost its claimed chunk (crash mid-chunk?)"
            )
        values: list = [None] * n if reduce else []
        merged_sets: dict = {}
        ring_hdr = self.ctrl[2 + 2 * self.nworkers :]
        dropped = 0
        fp_reads: dict[int, list] = {}
        fp_writes: dict[int, list] = {}
        for rank, r in enumerate(replies):
            records, self._ring_consumed[rank], lost = drain_lane(
                ring_hdr, ring_arr, rank, self._ring_consumed[rank]
            )
            dropped += lost
            bufs = r.get("bufs") or []
            for rec in records:
                kind = int(rec[0])
                pos = int(rec[2])
                if kind == KIND_EXEC:
                    m = dict(meta)
                    m["index"] = pos
                    timeline.append(
                        TaskExec(
                            items[pos], rank,
                            ctx.vclock + (rec[3] - t0), ctx.vclock + (rec[4] - t0), m,
                        )
                    )
                elif kind in (KIND_FP_READ, KIND_FP_WRITE):
                    bid = int(rec[3])
                    region = (
                        bufs[bid] if 0 <= bid < len(bufs) else "?",
                        int(rec[4]), int(rec[5]), int(rec[6]), int(rec[7]),
                    )
                    z, depth = int(rec[8]), int(rec[9])
                    if (z, depth) != (0, 1):
                        region += (z, depth)
                    sink = fp_reads if kind == KIND_FP_READ else fp_writes
                    sink.setdefault(pos, []).append(region)
            if reduce:
                for pos, value in r["values"]:
                    values[pos] = value
            merged_sets.update(r["sets"])
        footprints = None
        if want_fp:
            footprints = [
                access.Footprint(
                    reads=tuple(fp_reads.get(pos, ())),
                    writes=tuple(fp_writes.get(pos, ())),
                )
                for pos in range(n)
            ]
        return timeline, elapsed, {
            "values": values,
            "sets": merged_sets,
            "steals": int(self.ctrl[1]),
            "footprints": footprints,
            "dropped": dropped,
        }


# --------------------------------------------------------------------------
# Pool registry
# --------------------------------------------------------------------------

_POOLS: dict[int, ProcPool] = {}


def get_pool(nworkers: int) -> ProcPool:
    """The persistent pool for a team size (respawned if broken)."""
    _ensure_exit_finalizer()
    pool = _POOLS.get(nworkers)
    if pool is not None and not pool.healthy():
        pool.shutdown()
        pool = None
    if pool is None:
        pool = ProcPool(nworkers)
        _POOLS[nworkers] = pool
    return pool


def shutdown_pools() -> None:
    """Stop every pool and unlink their shared blocks (tests, atexit)."""
    for key in list(_POOLS):
        _POOLS.pop(key).shutdown()


# --------------------------------------------------------------------------
# The backend entry points (called from repro.omp.parallel)
# --------------------------------------------------------------------------


def _publish_region(ctx, timeline, extra) -> None:
    """Re-publish one drained region on the context's telemetry bus."""
    if extra["dropped"]:
        ctx.bus.record_dropped(extra["dropped"])
    if extra["steals"]:
        ctx.bus.counter("steals", extra["steals"])
    ctx.record_timeline(timeline, footprints=extra["footprints"])


def procs_parallel_for(ctx, body, items, policy, meta) -> SimResult:
    spec = _require_tile_body(body, ctx)
    pool = get_pool(ctx.nthreads)
    timeline, elapsed, extra = pool.run_region(ctx, spec, items, policy, meta)
    for k, v in extra["sets"].items():
        ctx.data[k] = v
    ctx.vclock += elapsed
    _publish_region(ctx, timeline, extra)
    return SimResult(timeline, grabs=[], steals=extra["steals"])


def procs_parallel_reduce(ctx, body, items, policy, meta, *, combine, init):
    spec = _require_tile_body(body, ctx)
    pool = get_pool(ctx.nthreads)
    timeline, elapsed, extra = pool.run_region(
        ctx, spec, items, policy, meta, reduce=True
    )
    for k, v in extra["sets"].items():
        ctx.data[k] = v
    # deterministic item-order fold: the same (strictly stronger than
    # OpenMP) reduction order the sim backend guarantees
    acc = init
    for value in extra["values"]:
        acc = combine(acc, value)
    ctx.vclock += elapsed
    _publish_region(ctx, timeline, extra)
    return SimResult(timeline, grabs=[], steals=extra["steals"]), acc
