"""``task`` / ``taskwait``: OpenMP tasks with dependencies.

The connected-components assignment (paper Fig. 11) spawns one task per
tile with ``depend(in: left, up) depend(inout: self)`` clauses.  A
:class:`TaskRegion` reproduces this: tasks are submitted with the data
tokens they read and write; bodies run immediately (submission order is
always a valid topological order, since OpenMP dependencies only point
backwards in program order), and on region exit the dependency graph is
replayed through the DAG list scheduler to obtain the parallel
timeline — the wave of Fig. 12.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence

from repro.core import access
from repro.errors import DependencyError
from repro.sched.dag_sim import simulate_dag
from repro.sched.taskgraph import TaskGraph
from repro.sched.timeline import Timeline

__all__ = ["TaskRegion"]


class TaskRegion:
    """A ``#pragma omp parallel / single`` region spawning dependent tasks.

    Usage::

        with ctx.task_region() as tr:
            for tile in ctx.grid:
                tr.task(lambda t=tile: do_tile(ctx, t),
                        item=tile,
                        reads=[(tile.row - 1, tile.col), (tile.row, tile.col - 1)],
                        writes=[(tile.row, tile.col)])
        # on exit: the region's timeline is simulated and recorded

    Unknown read tokens (e.g. out-of-grid neighbours, like OpenMP's
    ``tile[i-1][j]`` with ``i == 0``) are simply never produced, hence
    create no edge — matching OpenMP semantics where a ``depend(in:)``
    on an address nobody wrote yet is a no-op.
    """

    def __init__(self, ctx, *, kind: str = "task"):
        self.ctx = ctx
        self.kind = kind
        self.graph = TaskGraph()
        self.timeline: Timeline | None = None
        self._closed = False

    # -- submission ---------------------------------------------------------
    def task(
        self,
        body: Callable[[], float],
        *,
        item: Any = None,
        reads: Sequence[Hashable] = (),
        writes: Sequence[Hashable] = (),
        meta: dict | None = None,
    ) -> int:
        """Submit one task; executes its body now, returns the task id."""
        if self._closed:
            raise DependencyError("task region already closed")
        if self.ctx.collect_footprints:
            with access.collect() as col:
                work = float(body() or 0.0)
            footprint = col.freeze()
        else:
            footprint = None
            work = float(body() or 0.0)
        cost = self.ctx.model.time_of(work)
        node_meta = dict(meta or {})
        node_meta["work"] = work
        if footprint is not None:
            node_meta["footprint"] = footprint
            node_meta["depend_in"] = [str(t) for t in reads]
            node_meta["depend_out"] = [str(t) for t in writes]
        return self.graph.add_task(
            item, cost, reads=reads, writes=writes, meta=node_meta
        )

    def taskloop(
        self,
        body: Callable[[Any], float],
        items: Sequence[Any],
        *,
        grainsize: int = 1,
        meta: dict | None = None,
    ) -> list[int]:
        """``#pragma omp taskloop grainsize(k)``: spawn one independent
        task per chunk of ``grainsize`` items; ``body(item)`` returns the
        item's work.  Returns the created task ids."""
        if grainsize < 1:
            raise DependencyError(f"grainsize must be >= 1, got {grainsize}")
        tids = []
        for lo in range(0, len(items), grainsize):
            chunk = list(items[lo : lo + grainsize])

            def chunk_body(chunk=chunk):
                return sum(float(body(item) or 0.0) for item in chunk)

            tids.append(
                self.task(
                    chunk_body,
                    item=chunk[0] if len(chunk) == 1 else tuple(chunk),
                    meta=meta,
                )
            )
        return tids

    # -- region lifecycle -------------------------------------------------------
    def __enter__(self) -> "TaskRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._closed = True
            return
        self.close()

    def close(self) -> Timeline:
        """Simulate the region (implicit ``taskwait`` + join)."""
        if self._closed:
            raise DependencyError("task region already closed")
        self._closed = True
        ctx = self.ctx
        if ctx.region_log is not None:
            # log raw works before noise is applied
            ctx.region_log.append(
                (
                    "dag",
                    [n.meta.get("work", 0.0) for n in self.graph.nodes],
                    [sorted(n.preds) for n in self.graph.nodes],
                )
            )
        noisy = ctx.perturb_costs([n.cost for n in self.graph.nodes])
        for node, cost in zip(self.graph.nodes, noisy):
            node.cost = cost
        timeline = simulate_dag(
            self.graph,
            ctx.nthreads,
            model=ctx.model,
            start_time=ctx.vclock,
            meta={
                "iteration": ctx.iteration,
                "kind": self.kind,
                "region": ctx.next_region(),
                "rmode": "dag",
            },
        )
        end = max(timeline.makespan, ctx.vclock)
        ctx.vclock = end + ctx.model.fork_join_overhead
        ctx.record_timeline(timeline)
        self.timeline = timeline
        return timeline
