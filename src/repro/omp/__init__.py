"""OpenMP-like runtime: worksharing loops, tasks, ICVs."""

from repro.omp.icv import DEFAULT_NUM_THREADS, Icvs, resolve_icvs
from repro.omp.parallel import parallel_for, parallel_reduce
from repro.omp.tasks import TaskRegion

__all__ = [
    "DEFAULT_NUM_THREADS",
    "Icvs",
    "resolve_icvs",
    "parallel_for",
    "parallel_reduce",
    "TaskRegion",
]
