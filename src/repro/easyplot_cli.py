"""The ``easyplot`` command (paper §II-C, Fig. 6).

    easyplot --kernel mandel --col grain --speedup

reads the performance CSV, facets by ``--col``, builds speedup curves
against the reference time, prints the text rendering and (with
``--output``) writes the SVG figure.  The legend is generated from the
data; constant parameters are listed above the graph.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EasypapError
from repro.expt.csvdb import read_rows
from repro.expt.easyplot import build_plot
from repro.expt.exptools import DEFAULT_CSV
from repro.expt.plotting import render_ascii_chart, render_svg, render_text

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(prog="easyplot", description="Plot easypap performance CSVs.")
    p.add_argument("-i", "--input", default=DEFAULT_CSV, help="results CSV path")
    p.add_argument("-k", "--kernel", default=None, help="filter by kernel")
    p.add_argument("-v", "--variant", default=None, help="filter by variant")
    p.add_argument("--dim", type=int, default=None, help="filter by image size")
    p.add_argument("-x", default="threads", help="x-axis column")
    p.add_argument("-y", default="time_us", help="y-axis column")
    p.add_argument("-c", "--col", default=None, help="facet column (e.g. grain -> tile_w)")
    p.add_argument("--speedup", action="store_true", help="plot speedups vs refTime")
    p.add_argument("--ref-time", type=float, default=None, metavar="US", help="reference time (us)")
    p.add_argument("-o", "--output", default=None, metavar="SVG", help="write the SVG figure")
    p.add_argument("--chart", action="store_true", help="also print an ASCII chart")
    args = p.parse_args(argv)

    col = args.col
    if col == "grain":  # the paper's --col grain means the square tile side
        col = "tile_w"
    try:
        rows = read_rows(args.input)
        spec = build_plot(
            rows,
            x=args.x,
            y=args.y,
            col=col,
            speedup=args.speedup,
            ref_time_us=args.ref_time,
            kernel=args.kernel,
            variant=args.variant,
            dim=args.dim,
        )
    except EasypapError as exc:
        print(f"easyplot: {exc}", file=sys.stderr)
        return 1
    print(render_text(spec))
    if args.chart:
        print()
        print(render_ascii_chart(spec))
    if args.output:
        path = render_svg(spec).save(args.output)
        print(f"\nSVG written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
