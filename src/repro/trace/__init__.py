"""Tracing: event model, recorder, .evt file format, EASYVIEW analysis."""

from repro.trace.analysis import (
    IterationAnalysis,
    analyze_iterations,
    bottleneck_report,
    critical_tasks,
    efficiency,
)
from repro.trace.chrome import save_chrome_trace, to_chrome_events
from repro.trace.compare import TraceComparison, match_tiles
from repro.trace.coverage import coverage_counts, coverage_mask, locality_score, mean_spread
from repro.trace.events import Trace, TraceEvent, TraceMeta
from repro.trace.format import default_trace_path, load_trace, save_trace
from repro.trace.gantt import GanttChart
from repro.trace.recorder import TraceRecorder
from repro.trace.stats import (
    DurationStats,
    duration_stats,
    iteration_spans,
    per_cpu_busy,
    task_imbalance,
)

__all__ = [
    "IterationAnalysis",
    "analyze_iterations",
    "bottleneck_report",
    "critical_tasks",
    "efficiency",
    "save_chrome_trace",
    "to_chrome_events",
    "Trace",
    "TraceEvent",
    "TraceMeta",
    "load_trace",
    "save_trace",
    "default_trace_path",
    "TraceRecorder",
    "GanttChart",
    "TraceComparison",
    "match_tiles",
    "coverage_mask",
    "coverage_counts",
    "locality_score",
    "mean_spread",
    "DurationStats",
    "duration_stats",
    "iteration_spans",
    "per_cpu_busy",
    "task_imbalance",
]
