"""Gantt-chart construction and the mouse-linking queries of EASYVIEW.

The left side of EASYVIEW is a per-CPU Gantt chart over a selectable
iteration range; moving the mouse vertically selects a time (tasks at
that x-position get their tile highlighted on the thumbnail), moving it
horizontally selects a CPU (its tiles over the period form the coverage
map).  :class:`GanttChart` provides those exact queries, plus ASCII and
SVG renderings.
"""

from __future__ import annotations

from repro.trace.events import Trace, TraceEvent
from repro.view.colors import cpu_color
from repro.view.svg import SvgCanvas

__all__ = ["GanttChart"]


class GanttChart:
    """A per-CPU view of (a slice of) a trace."""

    def __init__(self, trace: Trace, first_it: int | None = None, last_it: int | None = None):
        its = trace.iterations
        if not its:
            self.events: list[TraceEvent] = []
        else:
            lo = its[0] if first_it is None else first_it
            hi = its[-1] if last_it is None else last_it
            self.events = trace.iteration_range(lo, hi)
        self.trace = trace
        self.ncpus = trace.ncpus
        self.t0 = min((e.start for e in self.events), default=0.0)
        self.t1 = max((e.end for e in self.events), default=0.0)

    # -- structure ---------------------------------------------------------------
    def lanes(self) -> list[list[TraceEvent]]:
        out: list[list[TraceEvent]] = [[] for _ in range(self.ncpus)]
        for e in self.events:
            if 0 <= e.cpu < self.ncpus:
                out[e.cpu].append(e)
        for lane in out:
            lane.sort(key=lambda e: e.start)
        return out

    @property
    def span(self) -> float:
        return self.t1 - self.t0

    # -- mouse queries --------------------------------------------------------------
    def tasks_at_time(self, t: float) -> list[TraceEvent]:
        """Vertical mouse mode: tasks whose interval contains ``t`` —
        their tiles get highlighted over the thumbnail."""
        return [e for e in self.events if e.start <= t <= e.end]

    def tiles_at_time(self, t: float) -> list[tuple[int, int, int, int]]:
        """The (x, y, w, h) rectangles to highlight at time ``t``."""
        return [(e.x, e.y, e.w, e.h) for e in self.tasks_at_time(t) if e.has_tile]

    def cpu_tasks(self, cpu: int) -> list[TraceEvent]:
        """Horizontal mouse mode: all displayed tasks of one CPU."""
        return sorted(
            (e for e in self.events if e.cpu == cpu), key=lambda e: e.start
        )

    def task_at(self, cpu: int, t: float) -> TraceEvent | None:
        """The task under the mouse (its duration goes in the pop-up bubble)."""
        for e in self.cpu_tasks(cpu):
            if e.start <= t <= e.end:
                return e
        return None

    # -- renderings --------------------------------------------------------------------
    def to_ascii(self, width: int = 100) -> str:
        """One text row per CPU; each column is a time slot showing the
        task occupying it (by tile index glyph) or '.' when idle."""
        if not self.events or self.span <= 0:
            return "(empty gantt)"
        lines = []
        dt = self.span / width
        for cpu, lane in enumerate(self.lanes()):
            row = []
            for col in range(width):
                t = self.t0 + (col + 0.5) * dt
                busy = any(e.start <= t < e.end for e in lane)
                row.append("#" if busy else ".")
            lines.append(f"CPU {cpu:2d} |{''.join(row)}|")
        lines.append(
            f"        {self.t0 * 1e3:.3f} ms  ..  {self.t1 * 1e3:.3f} ms "
            f"({len(self.events)} tasks)"
        )
        return "\n".join(lines)

    def to_svg(
        self,
        width: float = 900.0,
        lane_height: float = 22.0,
        *,
        title: str | None = None,
    ) -> SvgCanvas:
        """The EASYVIEW Gantt rendering: one lane per CPU, one rect per
        task (hover shows duration + tile coordinates)."""
        margin_left, margin_top = 60.0, 30.0
        h = margin_top + self.ncpus * (lane_height + 4) + 20
        svg = SvgCanvas(width, h)
        if title or self.trace.meta.kernel != "?":
            label = title or (
                f"{self.trace.meta.kernel}/{self.trace.meta.variant} "
                f"dim={self.trace.meta.dim} threads={self.trace.meta.ncpus} "
                f"schedule={self.trace.meta.schedule}"
            )
            svg.text(margin_left, 18, label, size=12)
        span = self.span or 1.0
        scale = (width - margin_left - 10) / span
        for cpu in range(self.ncpus):
            y = margin_top + cpu * (lane_height + 4)
            svg.text(5, y + lane_height * 0.7, f"CPU {cpu}", size=10)
            svg.rect(margin_left, y, width - margin_left - 10, lane_height, fill="#f2f2f2")
        for e in self.events:
            if not (0 <= e.cpu < self.ncpus):
                continue
            y = margin_top + e.cpu * (lane_height + 4)
            x = margin_left + (e.start - self.t0) * scale
            w = max((e.end - e.start) * scale, 0.5)
            r, g, b = cpu_color(e.cpu)
            tip = f"{e.duration * 1e6:.1f} us"
            if e.has_tile:
                tip += f"  tile(x={e.x}, y={e.y}, {e.w}x{e.h})  it={e.iteration}"
            svg.rect(x, y + 1, w, lane_height - 2, fill=f"rgb({r},{g},{b})", title=tip)
        return svg
