"""Coverage maps: which image areas a CPU computed over a period.

EASYVIEW's horizontal mouse mode (paper §II-D, §III-B): selecting a CPU
highlights all tiles it executed during the displayed iterations — the
"coverage map", used to *see* the locality of a scheduling policy
(Fig. 10: nonmonotonic:dynamic keeps a CPU's tiles regrouped in one
area across iterations).
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import Trace

__all__ = ["coverage_mask", "coverage_counts", "locality_score", "mean_spread"]


def coverage_mask(
    trace: Trace,
    cpu: int,
    dim: int,
    first_it: int | None = None,
    last_it: int | None = None,
) -> np.ndarray:
    """Boolean (dim, dim) mask of pixels computed by ``cpu`` over the
    iteration range — the purple squares of Fig. 10."""
    mask = np.zeros((dim, dim), dtype=bool)
    its = trace.iterations
    lo = (its[0] if its else 0) if first_it is None else first_it
    hi = (its[-1] if its else 0) if last_it is None else last_it
    for e in trace.iteration_range(lo, hi):
        if e.cpu == cpu and e.has_tile:
            mask[e.y : e.y + e.h, e.x : e.x + e.w] = True
    return mask


def coverage_counts(
    trace: Trace, dim: int, first_it: int | None = None, last_it: int | None = None
) -> np.ndarray:
    """(ncpus, dim, dim) per-CPU visit counts (how often each pixel area
    was computed by each CPU)."""
    counts = np.zeros((trace.ncpus, dim, dim), dtype=np.int32)
    its = trace.iterations
    lo = (its[0] if its else 0) if first_it is None else first_it
    hi = (its[-1] if its else 0) if last_it is None else last_it
    for e in trace.iteration_range(lo, hi):
        if e.has_tile and 0 <= e.cpu < trace.ncpus:
            counts[e.cpu, e.y : e.y + e.h, e.x : e.x + e.w] += 1
    return counts


def mean_spread(
    trace: Trace, cpu: int, first_it: int | None = None, last_it: int | None = None
) -> float:
    """Mean Euclidean distance of a CPU's tile centers from their
    centroid, normalized by the image diagonal — 0 means all work in one
    spot, larger means scattered."""
    its = trace.iterations
    lo = (its[0] if its else 0) if first_it is None else first_it
    hi = (its[-1] if its else 0) if last_it is None else last_it
    centers = [
        (e.y + e.h / 2.0, e.x + e.w / 2.0)
        for e in trace.iteration_range(lo, hi)
        if e.cpu == cpu and e.has_tile
    ]
    if not centers:
        return 0.0
    pts = np.array(centers)
    centroid = pts.mean(axis=0)
    d = np.sqrt(((pts - centroid) ** 2).sum(axis=1)).mean()
    diag = np.sqrt(2.0) * max(trace.meta.dim, 1)
    return float(d / diag)


def locality_score(trace: Trace, first_it: int | None = None, last_it: int | None = None) -> float:
    """Average spread over CPUs (lower = better locality).

    Lets benchmarks compare policies quantitatively: static < guided <
    nonmonotonic < dynamic, typically.
    """
    spreads = [mean_spread(trace, c, first_it, last_it) for c in range(trace.ncpus)]
    spreads = [s for s in spreads if s > 0.0] or [0.0]
    return float(np.mean(spreads))
