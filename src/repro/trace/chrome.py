"""Chrome trace-event export and import.

EASYPAP's related-work section situates EASYVIEW among "outstanding
tools developed to visualize and analyze execution traces" (Aftermath,
Vampir, ViTE...).  This module bridges to that world: a recorded
:class:`~repro.trace.events.Trace` exports to the Chrome/Perfetto
trace-event JSON format, so traces can also be opened in
``chrome://tracing`` / https://ui.perfetto.dev — a gentle hand-off from
EASYVIEW to industrial-strength viewers.

Format reference: complete ('X') duration events with microsecond
timestamps; one thread id per virtual CPU.  The export is lossless up
to timestamp precision: every :class:`TraceEvent` field, including the
``--check-races`` footprints, rides in the event ``args``, and
:func:`load_chrome_trace` rebuilds a :class:`Trace` from the JSON —
``easyview`` therefore accepts ``.json`` traces wherever it accepts
``.evt`` ones.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import TraceError
from repro.trace.events import Trace, TraceEvent, TraceMeta

__all__ = ["to_chrome_events", "save_chrome_trace", "load_chrome_trace"]

# args keys owned by the exporter; everything else round-trips as extra
_OWN_KEYS = frozenset({"iteration", "kind", "x", "y", "w", "h", "reads", "writes"})


def to_chrome_events(trace: Trace) -> list[dict]:
    """Convert a trace to a list of Chrome 'X' (complete) events."""
    events: list[dict] = []
    m = trace.meta
    for cpu in range(trace.ncpus):
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": cpu,
            "args": {"name": f"CPU {cpu}"},
        })
    for e in trace.events:
        name = e.kind
        args = {"iteration": e.iteration, "kind": e.kind}
        if e.has_tile:
            name = f"{e.kind} ({e.x},{e.y}) {e.w}x{e.h}"
        args.update(x=e.x, y=e.y, w=e.w, h=e.h)
        if e.reads:
            args["reads"] = [list(r) for r in e.reads]
        if e.writes:
            args["writes"] = [list(r) for r in e.writes]
        if e.extra:
            args.update(e.extra)
        events.append({
            "ph": "X",
            "name": name,
            "cat": m.kernel or "kernel",
            "pid": 1,
            "tid": e.cpu,
            "ts": e.start * 1e6,  # microseconds
            "dur": e.duration * 1e6,
            "args": args,
        })
    return events


def save_chrome_trace(trace: Trace, path: str | os.PathLike) -> Path:
    """Write ``trace`` as a Chrome trace-event JSON file."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": to_chrome_events(trace),
        "displayTimeUnit": "ms",
        "otherData": trace.meta.to_dict(),
    }
    p.write_text(json.dumps(doc), encoding="utf-8")
    return p


def load_chrome_trace(path: str | os.PathLike) -> Trace:
    """Read a Chrome trace-event JSON file written by
    :func:`save_chrome_trace` back into a :class:`Trace`.

    Only 'X' (complete) events are considered; thread-name metadata is
    viewer decoration.  Timestamps come back with microsecond precision
    (the trace-event format's unit), which is finer than any virtual or
    wall clock delta the framework records.
    """
    p = Path(path)
    if not p.exists():
        raise TraceError(f"trace file not found: {p}")
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad Chrome trace JSON in {p}: {exc}") from None
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise TraceError(f"{p} is not a Chrome trace (no traceEvents key)")
    meta = TraceMeta.from_dict(doc.get("otherData", {}))
    events: list[TraceEvent] = []
    for rec in doc["traceEvents"]:
        if rec.get("ph") != "X":
            continue
        args = dict(rec.get("args", {}))
        try:
            ts = float(rec["ts"]) / 1e6
            dur = float(rec.get("dur", 0.0)) / 1e6
            events.append(TraceEvent.from_dict({
                "iteration": args.get("iteration", 0),
                "cpu": rec.get("tid", 0),
                "start": ts,
                "end": ts + dur,
                "x": args.get("x", -1),
                "y": args.get("y", -1),
                "w": args.get("w", -1),
                "h": args.get("h", -1),
                "kind": args.get("kind", str(rec.get("name", "tile"))),
                "reads": args.get("reads", ()),
                "writes": args.get("writes", ()),
                "extra": {k: v for k, v in args.items() if k not in _OWN_KEYS},
            }))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"bad Chrome trace event in {p}: {exc}") from None
    events.sort(key=lambda e: (e.start, e.cpu))
    return Trace(meta, events)
