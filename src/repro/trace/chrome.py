"""Chrome trace-event export.

EASYPAP's related-work section situates EASYVIEW among "outstanding
tools developed to visualize and analyze execution traces" (Aftermath,
Vampir, ViTE...).  This module bridges to that world: a recorded
:class:`~repro.trace.events.Trace` exports to the Chrome/Perfetto
trace-event JSON format, so traces can also be opened in
``chrome://tracing`` / https://ui.perfetto.dev — a gentle hand-off from
EASYVIEW to industrial-strength viewers.

Format reference: complete ('X') duration events with microsecond
timestamps; one thread id per virtual CPU.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.trace.events import Trace

__all__ = ["to_chrome_events", "save_chrome_trace"]


def to_chrome_events(trace: Trace) -> list[dict]:
    """Convert a trace to a list of Chrome 'X' (complete) events."""
    events: list[dict] = []
    m = trace.meta
    for cpu in range(trace.ncpus):
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": cpu,
            "args": {"name": f"CPU {cpu}"},
        })
    for e in trace.events:
        name = e.kind
        args = {"iteration": e.iteration}
        if e.has_tile:
            name = f"{e.kind} ({e.x},{e.y}) {e.w}x{e.h}"
            args.update(x=e.x, y=e.y, w=e.w, h=e.h)
        if e.extra:
            args.update(e.extra)
        events.append({
            "ph": "X",
            "name": name,
            "cat": m.kernel or "kernel",
            "pid": 1,
            "tid": e.cpu,
            "ts": e.start * 1e6,  # microseconds
            "dur": e.duration * 1e6,
            "args": args,
        })
    return events


def save_chrome_trace(trace: Trace, path: str | os.PathLike) -> Path:
    """Write ``trace`` as a Chrome trace-event JSON file."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": to_chrome_events(trace),
        "displayTimeUnit": "ms",
        "otherData": trace.meta.to_dict(),
    }
    p.write_text(json.dumps(doc), encoding="utf-8")
    return p
