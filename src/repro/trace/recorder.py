"""Trace recorder: turns telemetry events into trace events."""

from __future__ import annotations

from repro.core.tiling import Tile
from repro.sched.timeline import TaskExec
from repro.trace.events import Trace, TraceEvent, TraceMeta

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Accumulates :class:`TraceEvent` s during a run.

    A consumer on the telemetry bus: the bus feeds it one
    ``TileExecEvent`` per executed task (with its footprint already
    paired in) plus run annotations; the engine stamps metadata and
    hands the final :class:`Trace` to the writer (``--trace``) or
    directly to EASYVIEW.
    """

    def __init__(self, meta: TraceMeta | None = None):
        self.meta = meta or TraceMeta()
        self.events: list[TraceEvent] = []
        self.enabled = True

    def annotate(self, **info) -> None:
        """Attach free-form metadata to the trace (``meta.extra``).

        The real backends tag their traces with ``clock="wall"`` +
        the backend name so EASYVIEW can distinguish measured Gantt
        charts from simulated ones; sim runs leave ``extra`` untouched,
        keeping their ``.evt`` files byte-identical to golden fixtures.
        """
        self.meta.extra.update(info)

    # -- telemetry-bus consumer hooks ---------------------------------------

    def on_tile_exec(self, event) -> None:
        self.record_exec(event.exec, footprint=event.footprint)

    def on_annotation(self, event) -> None:
        self.annotate(**event.data)

    # -- recording ----------------------------------------------------------

    def record_exec(self, e: TaskExec, *, kind: str = "tile", footprint=None) -> None:
        if not self.enabled:
            return
        item = e.item
        if isinstance(item, Tile):
            x, y, w, h = item.as_rect()
        else:
            x = y = w = h = -1
        if footprint is None:
            footprint = e.meta.get("footprint")
        extra = {
            k: v
            for k, v in e.meta.items()
            if k not in ("iteration", "kind", "footprint")
        }
        self.events.append(
            TraceEvent(
                iteration=int(e.meta.get("iteration", 0)),
                cpu=e.cpu,
                start=e.start,
                end=e.end,
                x=x,
                y=y,
                w=w,
                h=h,
                kind=str(e.meta.get("kind", kind)),
                extra=extra,
                reads=footprint.reads if footprint is not None else (),
                writes=footprint.writes if footprint is not None else (),
            )
        )

    def record_section(
        self, iteration: int, cpu: int, start: float, end: float, kind: str
    ) -> None:
        """Record a non-tile instrumented section (e.g. ghost exchange)."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(iteration=iteration, cpu=cpu, start=start, end=end, kind=kind)
        )

    def to_trace(self) -> Trace:
        return Trace(self.meta, sorted(self.events, key=lambda e: (e.start, e.cpu)))

    def clear(self) -> None:
        self.events.clear()
