"""Bottleneck analysis: *why* a run is slower than ideal.

EASYVIEW lets students "understand performance issues" (paper §V); this
module turns a trace into the standard decomposition used to explain a
disappointing speedup:

  span = busy/ncpus + imbalance waste + (everything else: overheads)

per iteration and for the whole run, plus the tasks on the critical
end of each iteration (the ones whose completion defines the barrier).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import Trace, TraceEvent

__all__ = ["IterationAnalysis", "analyze_iterations", "efficiency", "critical_tasks",
           "bottleneck_report"]


@dataclass(frozen=True)
class IterationAnalysis:
    """Efficiency decomposition of one iteration."""

    iteration: int
    span: float          # first start .. last end
    busy: float          # sum of task durations
    ncpus: int

    @property
    def ideal(self) -> float:
        """Perfectly balanced time: busy / ncpus."""
        return self.busy / self.ncpus if self.ncpus else 0.0

    @property
    def efficiency(self) -> float:
        """Parallel efficiency in [0, 1]: ideal / span."""
        return self.ideal / self.span if self.span > 0 else 1.0

    @property
    def waste(self) -> float:
        """CPU-time lost to imbalance/idleness during the iteration."""
        return max(self.span * self.ncpus - self.busy, 0.0)


def analyze_iterations(trace: Trace) -> list[IterationAnalysis]:
    """Per-iteration efficiency decomposition."""
    spans: dict[int, tuple[float, float, float]] = {}
    for e in trace.events:
        lo, hi, busy = spans.get(e.iteration, (e.start, e.end, 0.0))
        spans[e.iteration] = (min(lo, e.start), max(hi, e.end), busy + e.duration)
    return [
        IterationAnalysis(iteration=it, span=hi - lo, busy=busy, ncpus=trace.ncpus)
        for it, (lo, hi, busy) in sorted(spans.items())
    ]


def efficiency(trace: Trace) -> float:
    """Whole-run parallel efficiency (busy / (ncpus * total span))."""
    parts = analyze_iterations(trace)
    total_span = sum(p.span for p in parts)
    total_busy = sum(p.busy for p in parts)
    if total_span <= 0 or trace.ncpus == 0:
        return 1.0
    return total_busy / (trace.ncpus * total_span)


def critical_tasks(trace: Trace, iteration: int, top: int = 3) -> list[TraceEvent]:
    """The tasks finishing last in an iteration — the ones every other
    CPU waits for at the implicit barrier."""
    events = trace.iteration_events(iteration)
    return sorted(events, key=lambda e: e.end, reverse=True)[:top]


def bottleneck_report(trace: Trace, top: int = 3) -> str:
    """Human-readable analysis: efficiency per iteration + what defined
    each iteration's end."""
    parts = analyze_iterations(trace)
    if not parts:
        return "(empty trace)"
    lines = [
        f"overall parallel efficiency: {efficiency(trace) * 100:.1f}% "
        f"on {trace.ncpus} CPUs"
    ]
    worst = min(parts, key=lambda p: p.efficiency)
    for p in parts:
        marker = "  <-- worst" if p.iteration == worst.iteration else ""
        lines.append(
            f"iteration {p.iteration:3d}: span {p.span * 1e3:9.3f} ms, "
            f"ideal {p.ideal * 1e3:9.3f} ms, efficiency {p.efficiency * 100:5.1f}%, "
            f"waste {p.waste * 1e3:9.3f} ms{marker}"
        )
    lines.append(f"\ncritical tasks of iteration {worst.iteration} "
                 "(the barrier waits for these):")
    for e in critical_tasks(trace, worst.iteration, top):
        where = f"tile(x={e.x}, y={e.y}, {e.w}x{e.h})" if e.has_tile else e.kind
        lines.append(
            f"  CPU {e.cpu}: {where} — {e.duration * 1e6:.1f} us, "
            f"ends at {e.end * 1e3:.3f} ms"
        )
    return "\n".join(lines)
