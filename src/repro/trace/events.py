"""Trace data model.

The ``--trace`` option records tile-related profiling events (start/end
time, tile coordinates, CPU) into a trace file explored off-line with
EASYVIEW.  :class:`TraceEvent` is one such event; :class:`Trace` is a
full recording with its run metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Iterator

__all__ = ["TraceEvent", "TraceMeta", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One task execution, as stored in a trace file.

    ``x, y, w, h`` locate the tile in the image (all -1 for events not
    tied to a tile); ``kind`` distinguishes tile computations from tasks
    and other instrumented sections.

    ``reads`` and ``writes`` are the task's memory-access footprint:
    tuples of ``(buf, x, y, w, h)`` regions, recorded only when the run
    enables footprint collection (``--check-races``).  They are omitted
    from serialized events when empty, and readers must ignore any
    further keys they do not know, so traces stay loadable both ways
    across versions.
    """

    iteration: int
    cpu: int
    start: float
    end: float
    x: int = -1
    y: int = -1
    w: int = -1
    h: int = -1
    kind: str = "tile"
    extra: dict = field(default_factory=dict)
    reads: tuple = ()
    writes: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def has_tile(self) -> bool:
        return self.x >= 0 and self.y >= 0

    def to_dict(self) -> dict:
        d = asdict(self)
        if not d["extra"]:
            del d["extra"]
        for key in ("reads", "writes"):
            if d[key]:
                d[key] = [list(r) for r in d[key]]
            else:
                del d[key]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        # Deliberately picks known keys only: events written by newer
        # versions may carry extra fields, which old readers must skip.
        return cls(
            iteration=int(d["iteration"]),
            cpu=int(d["cpu"]),
            start=float(d["start"]),
            end=float(d["end"]),
            x=int(d.get("x", -1)),
            y=int(d.get("y", -1)),
            w=int(d.get("w", -1)),
            h=int(d.get("h", -1)),
            kind=str(d.get("kind", "tile")),
            extra=dict(d.get("extra", {})),
            reads=_regions(d.get("reads", ())),
            writes=_regions(d.get("writes", ())),
        )


def _regions(raw) -> tuple:
    """Normalize serialized footprint regions to ``(buf, x, y, w, h)``
    tuples, preserving the optional ``(z, d)`` depth extent of 3D
    regions (see :mod:`repro.core.access`)."""
    return tuple(
        (str(r[0]),) + tuple(int(v) for v in r[1:7]) for r in raw
    )


@dataclass
class TraceMeta:
    """Run configuration stored in the trace header (and shown by EASYVIEW)."""

    kernel: str = "?"
    variant: str = "?"
    dim: int = 0
    tile_w: int = 0
    tile_h: int = 0
    ncpus: int = 0
    schedule: str = ""
    iterations: int = 0
    label: str = ""
    machine: str = "virtual"
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TraceMeta":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in d.items() if k in known}
        return cls(**kwargs)


class Trace:
    """A recorded run: metadata + chronologically ordered events."""

    def __init__(self, meta: TraceMeta | None = None, events: list[TraceEvent] | None = None):
        self.meta = meta or TraceMeta()
        self.events: list[TraceEvent] = list(events or [])

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def ncpus(self) -> int:
        if self.meta.ncpus:
            return self.meta.ncpus
        return 1 + max((e.cpu for e in self.events), default=-1)

    @property
    def iterations(self) -> list[int]:
        return sorted({e.iteration for e in self.events})

    @property
    def duration(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def iteration_events(self, iteration: int) -> list[TraceEvent]:
        return [e for e in self.events if e.iteration == iteration]

    def iteration_range(self, lo: int, hi: int) -> list[TraceEvent]:
        """Events of iterations in [lo, hi] (EASYVIEW's selectable range)."""
        return [e for e in self.events if lo <= e.iteration <= hi]

    def cpu_events(self, cpu: int) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.cpu == cpu), key=lambda e: e.start)

    def sorted(self) -> "Trace":
        return Trace(self.meta, sorted(self.events, key=lambda e: (e.start, e.cpu)))
