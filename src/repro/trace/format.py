"""Trace file format: ``.evt`` JSON-lines.

Line 1 is a header object (``{"easypap_trace": 1, "meta": {...}}``);
every following line is one event.  The format is append-friendly,
diff-friendly and readable with standard tools — in the spirit of
EASYPAP's simple tooling.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import TraceError
from repro.trace.events import Trace, TraceEvent, TraceMeta

__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION", "default_trace_path"]

TRACE_FORMAT_VERSION = 1


def default_trace_path(directory: str | os.PathLike = "traces", label: str = "cur") -> Path:
    """EASYPAP writes ``traces/ezv_trace_current.evt``; we mirror that."""
    return Path(directory) / f"ezv_trace_{label}.evt"


def save_trace(trace: Trace, path: str | os.PathLike) -> Path:
    """Write ``trace`` to ``path`` (parent directories are created)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        header = {
            "easypap_trace": TRACE_FORMAT_VERSION,
            "meta": trace.meta.to_dict(),
            "nevents": len(trace.events),
        }
        fh.write(json.dumps(header) + "\n")
        for e in trace.events:
            fh.write(json.dumps(e.to_dict()) + "\n")
    return p


def load_trace(path: str | os.PathLike) -> Trace:
    """Read a ``.evt`` trace file written by :func:`save_trace`."""
    p = Path(path)
    if not p.exists():
        raise TraceError(f"trace file not found: {p}")
    with p.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceError(f"empty trace file: {p}")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"bad trace header in {p}: {exc}") from None
        version = header.get("easypap_trace")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace version {version!r} in {p} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        meta = TraceMeta.from_dict(header.get("meta", {}))
        events = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceError(f"bad trace event at {p}:{lineno}: {exc}") from None
        declared = header.get("nevents")
        if declared is not None and declared != len(events):
            raise TraceError(
                f"truncated trace {p}: header declares {declared} events, "
                f"found {len(events)}"
            )
    return Trace(meta, events)
