"""Two-trace comparison — EASYVIEW's "nice trace comparison feature".

Paper Fig. 10 stacks two traces of the blur kernel (basic vs optimized)
on a shared time scale and lets students discover that inner tiles got
~10x faster while the whole kernel gained ~3x.  :class:`TraceComparison`
computes those numbers and renders the stacked view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import Trace, TraceEvent
from repro.trace.gantt import GanttChart
from repro.trace.stats import duration_stats, iteration_spans
from repro.view.svg import SvgCanvas

__all__ = ["TraceComparison", "match_tiles"]


def match_tiles(a: Trace, b: Trace, iteration: int) -> list[tuple[TraceEvent, TraceEvent]]:
    """Pair events of one iteration by tile rectangle (same decomposition)."""
    index = {
        (e.x, e.y, e.w, e.h): e for e in b.iteration_events(iteration) if e.has_tile
    }
    pairs = []
    for e in a.iteration_events(iteration):
        if e.has_tile:
            other = index.get((e.x, e.y, e.w, e.h))
            if other is not None:
                pairs.append((e, other))
    return pairs


@dataclass
class TileSpeedup:
    """Per-tile duration ratio between two traces."""

    x: int
    y: int
    w: int
    h: int
    before: float
    after: float

    @property
    def factor(self) -> float:
        return self.before / self.after if self.after > 0 else float("inf")


class TraceComparison:
    """Compare a 'before' trace against an 'after' trace."""

    def __init__(self, before: Trace, after: Trace):
        self.before = before
        self.after = after

    # -- aggregate numbers ------------------------------------------------------
    def overall_factor(self) -> float:
        """Total-span ratio (the ~3x of Fig. 10)."""
        a = sum(iteration_spans(self.before).values())
        b = sum(iteration_spans(self.after).values())
        return a / b if b > 0 else float("inf")

    def duration_summary(self) -> tuple:
        return duration_stats(self.before), duration_stats(self.after)

    def tile_speedups(self, iteration: int | None = None) -> list[TileSpeedup]:
        if iteration is not None:
            iters = [iteration]
        else:
            iters = sorted(set(self.before.iterations) & set(self.after.iterations))
        out = []
        for it in iters:
            for ea, eb in match_tiles(self.before, self.after, it):
                out.append(
                    TileSpeedup(ea.x, ea.y, ea.w, ea.h, ea.duration, eb.duration)
                )
        return out

    def speedup_quantiles(self, qs=(0.5, 0.9)) -> list[float]:
        factors = [s.factor for s in self.tile_speedups() if np.isfinite(s.factor)]
        if not factors:
            return [0.0 for _ in qs]
        return [float(np.quantile(factors, q)) for q in qs]

    def faster_tile_fraction(self, threshold: float) -> float:
        """Fraction of matched tiles at least ``threshold`` x faster —
        "many tasks are approximately 10 times faster"."""
        sp = self.tile_speedups()
        if not sp:
            return 0.0
        return sum(1 for s in sp if s.factor >= threshold) / len(sp)

    # -- rendering ------------------------------------------------------------------
    def to_svg(self, width: float = 900.0) -> SvgCanvas:
        """Stacked Gantt charts on a shared time scale (Fig. 10 layout:
        optimized on top, basic at the bottom)."""
        top = GanttChart(self.after)
        bottom = GanttChart(self.before)
        span = max(top.span, bottom.span) or 1.0
        # draw each chart into its own canvas scaled by the shared span
        def chart_svg(chart: GanttChart, label: str) -> SvgCanvas:
            sub = chart.to_svg(width * (chart.span / span or 1.0), title=label)
            return sub

        top_svg = chart_svg(top, f"after: {self.after.meta.variant}")
        bot_svg = chart_svg(bottom, f"before: {self.before.meta.variant}")
        h = top_svg.height + bot_svg.height + 10
        combined = SvgCanvas(width, h)
        combined._parts.append(f'<g transform="translate(0,0)">{top_svg.tostring()}</g>')
        combined._parts.append(
            f'<g transform="translate(0,{top_svg.height + 10})">{bot_svg.tostring()}</g>'
        )
        return combined

    def report(self) -> str:
        """Human-readable comparison summary."""
        sb, sa = self.duration_summary()
        med, p90 = self.speedup_quantiles()
        lines = [
            f"before: {self.before.meta.kernel}/{self.before.meta.variant} "
            f"({sb.count} tasks, total {sb.total * 1e3:.3f} ms)",
            f"after:  {self.after.meta.kernel}/{self.after.meta.variant} "
            f"({sa.count} tasks, total {sa.total * 1e3:.3f} ms)",
            f"overall speedup: x{self.overall_factor():.2f}",
            f"per-tile speedup: median x{med:.2f}, p90 x{p90:.2f}",
            f"tiles >= 8x faster: {self.faster_tile_fraction(8.0) * 100:.1f}%",
        ]
        return "\n".join(lines)
