"""Trace statistics: durations, distributions, imbalance.

The numeric backend of EASYVIEW's visual impressions — e.g. "many tasks
are approximately 10 times faster than their original version"
(Fig. 10) becomes a quantile comparison here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import Trace

__all__ = ["DurationStats", "duration_stats", "iteration_spans", "per_cpu_busy", "task_imbalance"]


@dataclass(frozen=True)
class DurationStats:
    """Summary of a set of task durations (seconds)."""

    count: int
    total: float
    mean: float
    median: float
    p10: float
    p90: float
    vmin: float
    vmax: float

    @classmethod
    def of(cls, durations: list[float]) -> "DurationStats":
        if not durations:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        a = np.asarray(durations, dtype=np.float64)
        return cls(
            count=int(a.size),
            total=float(a.sum()),
            mean=float(a.mean()),
            median=float(np.median(a)),
            p10=float(np.percentile(a, 10)),
            p90=float(np.percentile(a, 90)),
            vmin=float(a.min()),
            vmax=float(a.max()),
        )


def duration_stats(trace: Trace, *, kind: str | None = "tile") -> DurationStats:
    """Statistics of task durations, optionally filtered by event kind."""
    durs = [e.duration for e in trace.events if kind is None or e.kind == kind]
    return DurationStats.of(durs)


def iteration_spans(trace: Trace) -> dict[int, float]:
    """Per-iteration wall span (first start to last end)."""
    spans: dict[int, tuple[float, float]] = {}
    for e in trace.events:
        lo, hi = spans.get(e.iteration, (e.start, e.end))
        spans[e.iteration] = (min(lo, e.start), max(hi, e.end))
    return {it: hi - lo for it, (lo, hi) in sorted(spans.items())}


def per_cpu_busy(trace: Trace) -> list[float]:
    busy = [0.0] * trace.ncpus
    for e in trace.events:
        if 0 <= e.cpu < trace.ncpus:
            busy[e.cpu] += e.duration
    return busy


def task_imbalance(trace: Trace) -> float:
    """max/mean per-CPU busy time (1.0 = perfect balance)."""
    busy = per_cpu_busy(trace)
    mean = sum(busy) / len(busy) if busy else 0.0
    return max(busy) / mean if mean > 0 else 1.0
