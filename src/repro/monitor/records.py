"""Per-iteration monitoring records.

One :class:`IterationRecord` is the data content of EASYPAP's two
monitoring windows for one animation frame: the Activity Monitor
(per-CPU load + cumulated idleness history) and the Tiling window
(tile → thread map, or task-duration heat map).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord"]


@dataclass
class IterationRecord:
    """Monitoring snapshot for one iteration.

    Attributes
    ----------
    iteration:
        1-based iteration number.
    span:
        Duration of the iteration (virtual seconds).
    busy:
        Per-CPU time spent in tile computations during the iteration.
    tiling:
        ``(rows, cols)`` int array mapping each tile to the CPU that
        computed it; ``-1`` marks tiles not computed this iteration
        (the lazy Game-of-Life case, paper Fig. 13).
    heat:
        ``(rows, cols)`` float array of per-tile computation time
        (the heat-map mode, paper Fig. 9).
    stolen:
        ``(rows, cols)`` bool array marking tiles executed by a thief
        (nonmonotonic:dynamic).
    ntasks:
        Number of task executions recorded.
    """

    iteration: int
    span: float
    busy: list[float]
    tiling: np.ndarray
    heat: np.ndarray
    stolen: np.ndarray
    ntasks: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def ncpus(self) -> int:
        return len(self.busy)

    def load_percent(self) -> list[float]:
        """Per-CPU load = busy / span (the Activity Monitor gauges)."""
        if self.span <= 0:
            return [0.0] * self.ncpus
        return [min(100.0 * b / self.span, 100.0) for b in self.busy]

    def idleness(self) -> float:
        """Total idle CPU-time during the iteration."""
        return sum(max(self.span - b, 0.0) for b in self.busy)

    def computed_fraction(self) -> float:
        """Fraction of tiles computed this iteration (lazy kernels < 1)."""
        total = self.tiling.size
        return float((self.tiling >= 0).sum()) / total if total else 0.0

    def cpu_tiles(self, cpu: int) -> np.ndarray:
        """Boolean mask of tiles computed by ``cpu`` (coverage map)."""
        return self.tiling == cpu
