"""Monitoring: per-CPU activity, tiling windows, heat maps, cache model."""

from repro.monitor.activity import Monitor
from repro.monitor.cache import (
    CacheCounters,
    CacheSpec,
    LruCache,
    simulate_trace_cache,
    stencil_access_pattern,
    transpose_access_pattern,
)
from repro.monitor.records import IterationRecord

__all__ = [
    "Monitor",
    "IterationRecord",
    "CacheCounters",
    "CacheSpec",
    "LruCache",
    "simulate_trace_cache",
    "stencil_access_pattern",
    "transpose_access_pattern",
]
