"""Per-task cache counters: the PAPI extension (paper §V future work).

The paper plans to "integrate per-task cache usage information using
the PAPI library" into EASYVIEW.  Real hardware counters being
unavailable here, a per-CPU LRU cache model replays the memory accesses
of each task (in timeline order, on the CPU that executed it) and
attaches hit/miss counters to every trace event — enough to explore,
e.g., how the blocked transpose's miss rate responds to tile size
(bench EXT1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.trace.events import Trace, TraceEvent

__all__ = ["CacheSpec", "LruCache", "CacheCounters", "simulate_trace_cache",
           "stencil_access_pattern", "transpose_access_pattern"]


@dataclass(frozen=True)
class CacheSpec:
    """A private per-CPU cache: capacity and line size in bytes."""

    size_bytes: int = 32 * 1024  # L1-ish
    line_bytes: int = 64

    @property
    def num_lines(self) -> int:
        return max(self.size_bytes // self.line_bytes, 1)


class LruCache:
    """Fully associative LRU cache of line addresses."""

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = addr // self.spec.line_bytes
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return True
        self._lines[line] = None
        if len(self._lines) > self.spec.num_lines:
            self._lines.popitem(last=False)
        self.misses += 1
        return False

    def access_range(self, base: int, nbytes: int) -> tuple[int, int]:
        """Touch ``nbytes`` consecutive bytes; returns (hits, misses)."""
        lb = self.spec.line_bytes
        first = base // lb
        last = (base + max(nbytes, 1) - 1) // lb
        h = m = 0
        for line in range(first, last + 1):
            if self.access(line * lb):
                h += 1
            else:
                m += 1
        return h, m

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class CacheCounters:
    """Hit/miss counts attached to one task."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


#: an access pattern maps one event to (base_address, nbytes) ranges
AccessPattern = Callable[[TraceEvent, int], Iterable[tuple[int, int]]]

_PIXEL = 4  # bytes per uint32 pixel
_NEXT_BUFFER = 1 << 28  # address offset separating cur/next buffers


def stencil_access_pattern(e: TraceEvent, dim: int) -> Iterator[tuple[int, int]]:
    """Blur-like tile: read rows y-1..y+h of cur (with halo), write rows
    of next."""
    y0 = max(e.y - 1, 0)
    y1 = min(e.y + e.h + 1, dim)
    x0 = max(e.x - 1, 0)
    w = min(e.x + e.w + 1, dim) - x0
    for row in range(y0, y1):
        yield ((row * dim + x0) * _PIXEL, w * _PIXEL)
    for row in range(e.y, min(e.y + e.h, dim)):
        yield (_NEXT_BUFFER + (row * dim + e.x) * _PIXEL, e.w * _PIXEL)


def transpose_access_pattern(e: TraceEvent, dim: int) -> Iterator[tuple[int, int]]:
    """Blocked transpose: contiguous reads of the tile, strided writes of
    the transposed block (one range per destination row)."""
    for row in range(e.y, min(e.y + e.h, dim)):
        yield ((row * dim + e.x) * _PIXEL, e.w * _PIXEL)
    for row in range(e.x, min(e.x + e.w, dim)):
        yield (_NEXT_BUFFER + (row * dim + e.y) * _PIXEL, e.h * _PIXEL)


def simulate_trace_cache(
    trace: Trace,
    dim: int,
    pattern: AccessPattern,
    spec: CacheSpec | None = None,
) -> list[tuple[TraceEvent, CacheCounters]]:
    """Replay every tile event through its CPU's private cache, in start
    order, returning per-event counters (also summed into each event's
    ``extra['cache']`` for EASYVIEW display)."""
    spec = spec or CacheSpec()
    caches = [LruCache(spec) for _ in range(trace.ncpus)]
    out: list[tuple[TraceEvent, CacheCounters]] = []
    for e in sorted(trace.events, key=lambda e: (e.start, e.cpu)):
        if not e.has_tile or not (0 <= e.cpu < trace.ncpus):
            continue
        c = CacheCounters()
        cache = caches[e.cpu]
        for base, nbytes in pattern(e, dim):
            h, m = cache.access_range(base, nbytes)
            c.hits += h
            c.misses += m
        e.extra["cache"] = {"hits": c.hits, "misses": c.misses}
        out.append((e, c))
    return out
