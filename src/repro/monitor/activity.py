"""The run-time monitor: accumulates timelines into per-iteration records.

Plays the role of EASYPAP's ``--monitoring`` machinery: while the kernel
runs, the telemetry bus feeds it every region timeline (whichever
backend produced it); at each iteration boundary a snapshot is taken
for the Activity Monitor and Tiling windows.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiling import Tile, TileGrid
from repro.monitor.records import IterationRecord
from repro.sched.timeline import TaskExec, Timeline

__all__ = ["Monitor"]


class Monitor:
    """Collects task executions and produces :class:`IterationRecord` s."""

    def __init__(self, ncpus: int, grid: TileGrid | None = None):
        self.ncpus = ncpus
        self.grid = grid
        self.records: list[IterationRecord] = []
        #: running total of idle CPU-time (the history diagram at the
        #: bottom of the Activity Monitor window)
        self.idleness_history: list[float] = []
        self._cumulated_idleness = 0.0
        self._pending: list[TaskExec] = []
        self._iter_start: float = 0.0

    # -- telemetry-bus consumer hooks ----------------------------------------
    def on_region_end(self, timeline: Timeline) -> None:
        self.record_timeline(timeline)

    def on_iteration_mark(self, event) -> None:
        self.end_iteration(event.iteration, event.now)

    # -- feeding ------------------------------------------------------------
    def record_timeline(self, timeline: Timeline) -> None:
        self._pending.extend(timeline.execs)

    def record_exec(self, e: TaskExec) -> None:
        self._pending.append(e)

    def end_iteration(self, iteration: int, now: float) -> IterationRecord:
        """Close the current iteration, which spans [previous now, now)."""
        span = max(now - self._iter_start, 0.0)
        rows = self.grid.rows if self.grid else 0
        cols = self.grid.cols if self.grid else 0
        tiling = np.full((rows, cols), -1, dtype=np.int32)
        heat = np.zeros((rows, cols), dtype=np.float64)
        stolen = np.zeros((rows, cols), dtype=bool)
        busy = [0.0] * self.ncpus
        for e in self._pending:
            if 0 <= e.cpu < self.ncpus:
                busy[e.cpu] += e.duration
            item = e.item
            # irregular domains (quadtree refinements, wavefront tasks)
            # map several items onto one coarse cell, or none at all;
            # out-of-grid coordinates are simply not charted
            if (
                isinstance(item, Tile)
                and 0 <= item.row < rows
                and 0 <= item.col < cols
            ):
                tiling[item.row, item.col] = e.cpu
                heat[item.row, item.col] += e.duration
                if e.meta.get("stolen"):
                    stolen[item.row, item.col] = True
        rec = IterationRecord(
            iteration=iteration,
            span=span,
            busy=busy,
            tiling=tiling,
            heat=heat,
            stolen=stolen,
            ntasks=len(self._pending),
        )
        self.records.append(rec)
        self._cumulated_idleness += rec.idleness()
        self.idleness_history.append(self._cumulated_idleness)
        self._pending.clear()
        self._iter_start = now
        return rec

    # -- aggregate queries ----------------------------------------------------
    @property
    def cumulated_idleness(self) -> float:
        return self._cumulated_idleness

    def mean_load(self) -> list[float]:
        """Average per-CPU load over all recorded iterations."""
        if not self.records:
            return [0.0] * self.ncpus
        acc = [0.0] * self.ncpus
        for rec in self.records:
            for c, v in enumerate(rec.load_percent()):
                acc[c] += v
        return [v / len(self.records) for v in acc]

    def load_imbalance(self) -> float:
        """max/mean of per-CPU busy time summed over the run (>= 1)."""
        acc = [0.0] * self.ncpus
        for rec in self.records:
            for c, v in enumerate(rec.busy):
                acc[c] += v
        mean = sum(acc) / len(acc) if acc else 0.0
        return max(acc) / mean if mean > 0 else 1.0
