"""Report model for the static checker: human text + JSON.

The JSON schema (``"easypap_staticcheck": 1``) is documented in
``docs/staticcheck.md``; it is the machine-readable artifact the CI
static-check matrix uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VariantReport", "StaticCheckReport", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

_VERDICT_ORDER = {"race": 0, "unknown": 1, "clean": 2}


@dataclass
class VariantReport:
    """Static verdict for one kernel/variant pair."""

    kernel: str
    variant: str
    verdict: str                     # "clean" | "race" | "unknown"
    races: list = field(default_factory=list)      # [StaticRace]
    findings: list = field(default_factory=list)   # [StaticFinding]
    unknowns: list = field(default_factory=list)   # [reason]
    regions: list = field(default_factory=list)    # [RegionModel] (analyzed)
    file: str = ""
    elapsed_ms: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.kernel}/{self.variant}"

    def describe(self, verbose: bool = False) -> str:
        head = f"{self.name}: {self.verdict.upper() if self.verdict == 'race' else self.verdict}"
        if self.verdict == "clean":
            nregions = len(self.regions)
            head += f" ({nregions} region{'s' if nregions != 1 else ''})"
        out = [head]
        for race in self.races:
            out.extend("  " + line for line in race.describe().splitlines())
        if self.verdict == "unknown":
            for reason in self.unknowns:
                out.append(f"  - {reason}")
        for f in self.findings:
            if verbose or f.level != "info":
                out.append(f"  {f.describe()}")
        return "\n".join(out)

    def footprint_lines(self) -> list:
        """Human rendering of the statically inferred halos, per region."""
        out = []
        for region in self.regions:
            rects_r, rects_w = [], []
            for fp in region.footprints:
                rects_r.extend(r.describe() for r in fp.reads)
                rects_w.extend(w.describe() for w in fp.writes)
            rects_r = list(dict.fromkeys(rects_r))
            rects_w = list(dict.fromkeys(rects_w))
            out.append(f"{region.construct} region (kind={region.kind!r}, "
                       f"line {region.line}):")
            for r in rects_r:
                out.append(f"  read  {r}")
            for w in rects_w:
                out.append(f"  write {w}")
            if not rects_r and not rects_w:
                out.append("  (no buffer accesses inferred)")
        return out

    def to_dict(self) -> dict:
        reads, writes = [], []
        for region in self.regions:
            for fp in region.footprints:
                reads.extend(r.describe() for r in fp.reads)
                writes.extend(w.describe() for w in fp.writes)
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "verdict": self.verdict,
            "races": [r.to_dict() for r in self.races],
            "findings": [f.to_dict() for f in self.findings],
            "unknowns": list(self.unknowns),
            "regions": [
                {
                    "construct": region.construct,
                    "kind": region.kind,
                    "line": region.line,
                    "unknown": list(region.unknown),
                }
                for region in self.regions
            ],
            "footprints": {
                "reads": sorted(set(reads)),
                "writes": sorted(set(writes)),
            },
            "file": self.file,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@dataclass
class StaticCheckReport:
    """All variant reports of one ``staticcheck`` invocation."""

    reports: list = field(default_factory=list)    # [VariantReport]
    counters: dict = field(default_factory=dict)

    @property
    def any_race(self) -> bool:
        return any(r.verdict == "race" for r in self.reports)

    def sorted(self) -> list:
        return sorted(
            self.reports,
            key=lambda r: (_VERDICT_ORDER.get(r.verdict, 3), r.kernel, r.variant),
        )

    def describe(self, verbose: bool = False) -> str:
        out = [r.describe(verbose) for r in self.sorted()]
        races = sum(1 for r in self.reports if r.verdict == "race")
        unknown = sum(1 for r in self.reports if r.verdict == "unknown")
        clean = sum(1 for r in self.reports if r.verdict == "clean")
        out.append(
            f"static-check: {len(self.reports)} variant(s): {clean} clean, "
            f"{races} race, {unknown} unknown"
        )
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "easypap_staticcheck": SCHEMA_VERSION,
            "reports": [r.to_dict() for r in self.sorted()],
            "counters": dict(self.counters),
        }

    def find(self, kernel: str, variant: str) -> VariantReport | None:
        for r in self.reports:
            if r.kernel == kernel and r.variant == variant:
                return r
        return None
