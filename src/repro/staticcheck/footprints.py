"""Symbolic tile-body interpreter: AST -> per-tile footprint.

:func:`analyze_method` abstractly executes one tile body over the
symbolic tile ``(TX, TY, TW, TH)`` (grid position ``(TR, TC)``) and
records every buffer access as a :class:`~repro.staticcheck.sym.SymRect`:

* ``ctx.declare_access(reads=..., writes=...)`` region lists, including
  :func:`~repro.kernels.api.halo_region` calls (modeled *unclipped*, as
  the outer envelope ``[x-halo, x+w+halo)`` — a sound superset of the
  clipped dynamic declaration);
* ``ctx.img.cur_view / next_view`` windows and the scalar
  ``cur_img/set_cur`` accessors;
* direct NumPy subscripts of ``ctx.img.cur / nxt`` and of
  ``ctx.data[...]`` arrays.

The interpreter is *conservative*: any value it cannot express as an
affine function of the tile symbols collapses to TOP, and any buffer
touched through an unmodeled path is reported in
:attr:`BodyFootprint.unknown` — downstream this can only produce an
``unknown`` verdict, never a false ``clean``.

Helper methods called as ``self._helper(ctx, ...)`` are inlined with
the caller's symbolic arguments (bounded depth, cycle-guarded), which
is how ``blur``'s ``_declare_tile_access`` and ``heat``'s
``do_tile_delta`` contribute their declarations to the calling body.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.staticcheck.sym import TOP, Affine, SymRect, const, is_top, sym

__all__ = ["BodyFootprint", "analyze_method", "analyze_node", "MAX_INLINE_DEPTH"]

MAX_INLINE_DEPTH = 6

# -- symbolic values ---------------------------------------------------------


class _Marker:
    def __init__(self, name):
        self.name = name

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{self.name}>"


SELF = _Marker("self")
CTX = _Marker("ctx")
IMG = _Marker("img")
DATA = _Marker("data")
GRID = _Marker("grid")
TILE = _Marker("tile")
OPAQUE = _Marker("opaque")
VIEW = _Marker("view")

_TILE_ATTRS = {"x": "TX", "y": "TY", "w": "TW", "h": "TH", "row": "TR", "col": "TC"}
_HALO_FNS = {"halo_region", "clipped_halo"}
_NONDET_MODULES = {"random", "time"}
_PASSTHROUGH_BUILTINS = {"list", "sorted", "reversed", "tuple"}


class BufVal:
    def __init__(self, name):
        self.name = name


class RegionVal:
    """A ``(buf, x, y, w, h)``-style region spec as a first-class value."""

    def __init__(self, rect: SymRect):
        self.rect = rect


class TupleVal:
    def __init__(self, items):
        self.items = list(items)


class ListVal:
    def __init__(self, items):
        self.items = list(items)


class FuncVal:
    def __init__(self, node, env):
        self.node = node
        self.env = env


class BoundMethod:
    def __init__(self, owner, attr):
        self.owner = owner
        self.attr = attr


class ModuleVal:
    def __init__(self, name):
        self.name = name


class BuiltinVal:
    def __init__(self, name):
        self.name = name


@dataclass
class BodyFootprint:
    """Everything the interpreter learned about one tile body."""

    reads: list = field(default_factory=list)      # [SymRect]
    writes: list = field(default_factory=list)     # [SymRect]
    declared: set = field(default_factory=set)     # buffers with declare_access cover
    data_reads: list = field(default_factory=list)   # [(key, line)]
    data_stores: list = field(default_factory=list)  # [(key, rmw, line)]
    self_stores: list = field(default_factory=list)  # [line]
    captured: list = field(default_factory=list)     # [(name, line)]
    nondet: list = field(default_factory=list)       # [(what, line)]
    unknown: list = field(default_factory=list)      # [reason]
    file: str = ""

    def rects(self, mode: str):
        return self.reads if mode == "r" else self.writes

    def buffers(self) -> set:
        return {r.buf for r in self.reads} | {r.buf for r in self.writes}


# -- source / AST helpers ----------------------------------------------------

_AST_CACHE: dict = {}


def _fn_ast(fn):
    """(FunctionDef node, file) for a plain function, with real line numbers."""
    key = getattr(fn, "__code__", fn)
    cached = _AST_CACHE.get(key)
    if cached is not None:
        return cached
    lines, start = inspect.getsourcelines(fn)
    src = textwrap.dedent("".join(lines))
    tree = ast.parse(src)
    ast.increment_lineno(tree, start - 1)
    node = tree.body[0]
    result = (node, inspect.getsourcefile(fn) or "<unknown>")
    _AST_CACHE[key] = result
    return result


# -- the interpreter ---------------------------------------------------------


class BodyAnalyzer:
    def __init__(self, kernel_cls, fp: BodyFootprint | None = None):
        self.kernel_cls = kernel_cls
        self.fp = fp or BodyFootprint()
        self._cond = 0
        self._stack: list = []

    # .. entry points ........................................................

    def run_method(self, fn, args, kwargs=None) -> object:
        """Inline one kernel method with pre-bound ``self``-less args."""
        name = getattr(fn, "__name__", "?")
        if name in self._stack or len(self._stack) >= MAX_INLINE_DEPTH:
            return TOP
        node, file = _fn_ast(fn)
        if not self.fp.file:
            self.fp.file = file
        params = [a.arg for a in node.args.args]
        env: dict = {}
        if params:
            env[params[0]] = SELF
        for pname, val in zip(params[1:], args):
            env[pname] = val
        for pname in params[1 + len(args):]:
            env[pname] = TOP
        for k, v in (kwargs or {}).items():
            env[k] = v
        self._stack.append(name)
        try:
            return self._run_block(node.body, env)
        finally:
            self._stack.pop()

    def run_node(self, node, env, args) -> object:
        """Inline a Lambda or nested FunctionDef with evaluated args."""
        if len(self._stack) >= MAX_INLINE_DEPTH:
            return TOP
        params = [a.arg for a in node.args.args]
        local = dict(env)
        for pname, val in zip(params, args):
            local[pname] = val
        for pname in params[len(args):]:
            local[pname] = TOP
        # lambda default args capture loop variables (t=t)
        for pname, default in zip(reversed(params), reversed(node.args.defaults)):
            if local[pname] is TOP:
                local[pname] = self.eval(default, env)
        self._stack.append("<lambda>")
        try:
            if isinstance(node, ast.Lambda):
                return self.eval(node.body, local)
            return self._run_block(node.body, local)
        finally:
            self._stack.pop()

    # .. statements ..........................................................

    def _run_block(self, stmts, env) -> object:
        returns: list = []
        self._exec_block(stmts, env, returns)
        if len(returns) == 1:
            return returns[0]
        return TOP

    def _exec_block(self, stmts, env, returns):
        for stmt in stmts:
            self._exec(stmt, env, returns)

    def _exec(self, stmt, env, returns):
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            before = len(self.fp.data_reads)
            value = self.eval(stmt.value, env)
            rhs_keys = {k for k, _ in self.fp.data_reads[before:]}
            for target in stmt.targets:
                self._assign(target, value, env, rhs_keys)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval(stmt.value, env)
            self._assign(stmt.target, value, env, set())
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            self._cond += 1
            self._exec_block(stmt.body, env, returns)
            self._exec_block(stmt.orelse, env, returns)
            self._cond -= 1
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                itval = self.eval(stmt.iter, env)
                bind = TILE if itval is GRID else TOP
                self._assign(stmt.target, bind, env, set())
            else:
                self.eval(stmt.test, env)
            self._cond += 1
            self._exec_block(stmt.body, env, returns)
            self._exec_block(stmt.orelse, env, returns)
            self._cond -= 1
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                val = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, val, env, set())
            self._exec_block(stmt.body, env, returns)
        elif isinstance(stmt, ast.Return):
            returns.append(TOP if stmt.value is None else self.eval(stmt.value, env))
        elif isinstance(stmt, ast.FunctionDef):
            env[stmt.name] = FuncVal(stmt, env)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                self.fp.captured.append((name, stmt.lineno))
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, returns)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env, returns)
            self._exec_block(stmt.orelse, env, returns)
            self._exec_block(stmt.finalbody, env, returns)
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Assert,
                               ast.Raise, ast.Import, ast.ImportFrom)):
            pass
        else:
            self.fp.unknown.append(
                f"unmodeled statement {type(stmt).__name__} at line {stmt.lineno}"
            )

    def _assign(self, target, value, env, rhs_keys):
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = [e for e in target.elts]
            if isinstance(value, TupleVal) and len(value.items) == len(elts):
                for t, v in zip(elts, value.items):
                    self._assign(t, v, env, rhs_keys)
            else:
                for t in elts:
                    self._assign(t, TOP, env, rhs_keys)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, TOP, env, rhs_keys)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value, env)
            if isinstance(base, BufVal):
                self._note(base.name, target.slice, env, "w", target.lineno)
            elif base is DATA:
                key = self._const_str(target.slice, env)
                if key is not None:
                    self.fp.data_stores.append((key, key in rhs_keys, target.lineno))
                else:
                    self.fp.unknown.append(
                        f"ctx.data store with non-literal key at line {target.lineno}"
                    )
            elif base is not VIEW:
                self.eval(target.slice, env)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            if base is SELF:
                self.fp.self_stores.append(target.lineno)

    def _aug_assign(self, stmt, env):
        self.eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Name):
            env[target.id] = TOP
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value, env)
            if isinstance(base, BufVal):
                self._note(base.name, target.slice, env, "r", target.lineno)
                self._note(base.name, target.slice, env, "w", target.lineno)
            elif base is DATA:
                key = self._const_str(target.slice, env)
                if key is not None:
                    self.fp.data_reads.append((key, target.lineno))
                    self.fp.data_stores.append((key, True, target.lineno))
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            if base is SELF:
                self.fp.self_stores.append(target.lineno)

    # .. expressions .........................................................

    def eval(self, node, env) -> object:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return const(int(node.value))
            if isinstance(node.value, int):
                return const(node.value)
            if isinstance(node.value, str):
                return node.value
            return TOP
        if isinstance(node, ast.Name):
            return self._name(node.id, env)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(v, Affine):
                return v.scale(-1)
            return TOP
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return TOP
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            self._cond += 1
            self.eval(node.body, env)
            self.eval(node.orelse, env)
            self._cond -= 1
            return TOP
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Tuple):
            return TupleVal([self.eval(e, env) for e in node.elts])
        if isinstance(node, ast.List):
            return ListVal([self.eval(e, env) for e in node.elts])
        if isinstance(node, ast.Lambda):
            return FuncVal(node, env)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Dict, ast.Set, ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return TOP
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            if any(isinstance(n, ast.Attribute) and n.attr in
                   ("cur", "nxt", "data", "img", "cur_view", "next_view")
                   for n in ast.walk(node)):
                self.fp.unknown.append(
                    f"buffer access inside a comprehension at line {node.lineno} "
                    "is not modeled"
                )
            return TOP
        if isinstance(node, ast.Slice):
            return TOP
        return TOP

    def _name(self, name, env):
        if name in env:
            return env[name]
        if name in _HALO_FNS:
            return BuiltinVal(name)
        if name in _NONDET_MODULES:
            return ModuleVal(name)
        if name in ("np", "numpy", "math"):
            return ModuleVal(name)
        if name in ("min", "max", "abs", "len", "range", "int", "float", "bool",
                    "sum", "enumerate", "zip", "print", *_PASSTHROUGH_BUILTINS):
            return BuiltinVal(name)
        return OPAQUE

    def _attribute(self, node, env):
        base = self.eval(node.value, env)
        attr = node.attr
        if base is TILE:
            if attr in _TILE_ATTRS:
                return sym(_TILE_ATTRS[attr])
            if attr == "as_rect":
                return BoundMethod(TILE, attr)
            return TOP
        if base is CTX:
            if attr == "img":
                return IMG
            if attr == "data":
                return DATA
            if attr in ("dim", "DIM"):
                return sym("DIM")
            if attr == "grid":
                return GRID
            return BoundMethod(CTX, attr)
        if base is IMG:
            if attr == "cur":
                return BufVal("cur")
            if attr == "nxt":
                return BufVal("next")
            return BoundMethod(IMG, attr)
        if base is SELF:
            return BoundMethod(SELF, attr)
        if base is DATA:
            return BoundMethod(DATA, attr)
        if isinstance(base, ModuleVal):
            if base.name in _NONDET_MODULES:
                return BoundMethod(base, attr)
            if base.name in ("np", "numpy") and attr == "random":
                return ModuleVal("np.random")
            if base.name == "np.random":
                return BoundMethod(base, attr)
            return BuiltinVal(f"{base.name}.{attr}")
        if isinstance(base, (BufVal, ListVal)) or base is VIEW or base is GRID:
            return BoundMethod(base, attr)
        return TOP

    def _subscript(self, node, env):
        base = self.eval(node.value, env)
        if base is DATA:
            key = self._const_str(node.slice, env)
            if key is None:
                self.eval(node.slice, env)
                return TOP
            self.fp.data_reads.append((key, node.lineno))
            return BufVal(key)
        if isinstance(base, BufVal):
            self._note(base.name, node.slice, env, "r", node.lineno)
            return TOP
        if isinstance(base, TupleVal):
            idx = self.eval(node.slice, env)
            if isinstance(idx, Affine) and idx.is_const and 0 <= idx.k < len(base.items):
                return base.items[idx.k]
            return TOP
        self.eval(node.slice, env)
        return TOP

    def _binop(self, node, env):
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(left, Affine) and isinstance(right, Affine):
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                if right.is_const:
                    return left.scale(right.k)
                if left.is_const:
                    return right.scale(left.k)
            if left.is_const and right.is_const:
                if isinstance(node.op, ast.FloorDiv) and right.k:
                    return const(left.k // right.k)
                if isinstance(node.op, ast.Mod) and right.k:
                    return const(left.k % right.k)
        return TOP

    # .. calls ...............................................................

    def _call(self, node, env):
        fn = self.eval(node.func, env)
        if isinstance(fn, BoundMethod):
            return self._method_call(fn, node, env)
        if isinstance(fn, BuiltinVal):
            return self._builtin_call(fn, node, env)
        if isinstance(fn, ModuleVal):
            self._eval_args(node, env)
            if "random" in fn.name or fn.name in _NONDET_MODULES:
                self.fp.nondet.append((fn.name, node.lineno))
            return TOP
        if isinstance(fn, FuncVal):
            args = [self.eval(a, env) for a in node.args]
            return self.run_node(fn.node, fn.env, args)
        # unknown callable: evaluate args, flag raw buffer arguments
        args = [self.eval(a, env) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value, env) for kw in node.keywords}
        self._opaque_buffers(args + list(kwargs.values()), node)
        return TOP

    def _method_call(self, fn: BoundMethod, node, env):
        owner, attr = fn.owner, fn.attr
        if owner is CTX:
            return self._ctx_call(attr, node, env)
        if owner is IMG:
            if attr in ("cur_view", "next_view"):
                return self._view_call(attr, node, env)
            self._eval_args(node, env)
            return TOP
        if owner is TILE and attr == "as_rect":
            return TupleVal([sym("TX"), sym("TY"), sym("TW"), sym("TH")])
        if owner is SELF:
            return self._self_call(attr, node, env)
        if owner is DATA:
            if attr == "get":
                key = node.args and self._const_str_node(node.args[0], env)
                if key:
                    self.fp.data_reads.append((key, node.lineno))
            self._eval_args(node, env)
            return TOP
        if isinstance(owner, ListVal):
            if attr == "append" and node.args:
                owner.items.append(self.eval(node.args[0], env))
                return TOP
            if attr == "extend" and node.args:
                v = self.eval(node.args[0], env)
                if isinstance(v, (ListVal, TupleVal)):
                    owner.items.extend(v.items)
                return TOP
            self._eval_args(node, env)
            return TOP
        if isinstance(owner, BufVal):
            # whole-array method (.any(), .sum(), .fill()...): treat as an
            # unknown-extent read of the buffer
            self._eval_args(node, env)
            self.fp.reads.append(SymRect(owner.name, line=node.lineno,
                                         conditional=self._cond > 0))
            return TOP
        if isinstance(owner, ModuleVal):
            self._eval_args(node, env)
            if "random" in owner.name or owner.name in _NONDET_MODULES:
                self.fp.nondet.append((f"{owner.name}.{attr}", node.lineno))
            return TOP
        self._eval_args(node, env)
        return TOP

    def _ctx_call(self, attr, node, env):
        if attr == "declare_access":
            reads, writes = None, None
            if node.args:
                reads = self.eval(node.args[0], env)
            if len(node.args) > 1:
                writes = self.eval(node.args[1], env)
            for kw in node.keywords:
                if kw.arg == "reads":
                    reads = self.eval(kw.value, env)
                elif kw.arg == "writes":
                    writes = self.eval(kw.value, env)
            self._declare(reads, "r", node.lineno)
            self._declare(writes, "w", node.lineno)
            return TOP
        if attr in ("cur_img", "next_img", "set_cur", "set_next"):
            args = [self.eval(a, env) for a in node.args]
            buf = "cur" if "cur" in attr else "next"
            mode = "w" if attr.startswith("set_") else "r"
            y = args[0] if len(args) > 0 else TOP
            x = args[1] if len(args) > 1 else TOP
            self._record_rect(buf, x, y, const(1), const(1), mode, node.lineno)
            return TOP
        if attr in ("parallel_for", "parallel_reduce", "sequential_for",
                    "task_region", "run_on_master"):
            self.fp.unknown.append(
                f"nested ctx.{attr} inside a tile body at line {node.lineno}"
            )
            self._eval_args(node, env)
            return TOP
        self._eval_args(node, env)
        return TOP

    def _view_call(self, attr, node, env):
        buf = "cur" if attr == "cur_view" else "next"
        args = [self.eval(a, env) for a in node.args]
        mode = "rw"
        kwargs = {}
        for kw in node.keywords:
            v = self.eval(kw.value, env)
            if kw.arg == "mode":
                mode = v if isinstance(v, str) else "rw"
            else:
                kwargs[kw.arg] = v

        def pick(i, name):
            if name in kwargs:
                return kwargs[name]
            return args[i] if i < len(args) else TOP

        y, x = pick(0, "y"), pick(1, "x")
        h, w = pick(2, "h"), pick(3, "w")
        if "r" in mode:
            self._record_rect(buf, x, y, w, h, "r", node.lineno)
        if "w" in mode:
            self._record_rect(buf, x, y, w, h, "w", node.lineno)
        return VIEW

    def _self_call(self, attr, node, env):
        target = getattr(self.kernel_cls, attr, None)
        args = [self.eval(a, env) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value, env) for kw in node.keywords if kw.arg}
        if target is None or not callable(target):
            self._opaque_buffers(args + list(kwargs.values()), node)
            return TOP
        if isinstance(target, (staticmethod, classmethod)):
            target = target.__func__
        return self.run_method(target, args, kwargs)

    def _builtin_call(self, fn, node, env):
        if fn.name in _HALO_FNS:
            return self._halo_call(node, env)
        args = [self.eval(a, env) for a in node.args]
        for kw in node.keywords:
            self.eval(kw.value, env)
        if fn.name in _PASSTHROUGH_BUILTINS and args:
            if args[0] is GRID or isinstance(args[0], (ListVal, TupleVal)):
                return args[0]
        self._opaque_buffers(args, node)
        return TOP

    def _halo_call(self, node, env):
        args = [self.eval(a, env) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value, env) for kw in node.keywords if kw.arg}
        names = ("buf", "x", "y", "w", "h", "dim", "halo")
        vals = dict(zip(names, args))
        vals.update(kwargs)
        buf = vals.get("buf")
        halo = vals.get("halo", const(1))
        if not isinstance(buf, str) or not isinstance(halo, Affine) or not halo.is_const:
            self.fp.unknown.append(f"unresolvable halo_region at line {node.lineno}")
            return RegionVal(SymRect("?", line=node.lineno))
        k = const(halo.k)
        x, y = vals.get("x", TOP), vals.get("y", TOP)
        w, h = vals.get("w", TOP), vals.get("h", TOP)

        def a_sub(p, q):
            return TOP if is_top(p) or is_top(q) else p - q

        def a_add(p, q):
            return TOP if is_top(p) or is_top(q) else p + q

        rect = SymRect(
            buf,
            x0=a_sub(x, k), y0=a_sub(y, k),
            x1=a_add(a_add(x, w), k), y1=a_add(a_add(y, h), k),
            line=node.lineno, clipped=True, conditional=self._cond > 0,
        )
        return RegionVal(rect)

    # .. access recording ....................................................

    def _record_rect(self, buf, x, y, w, h, mode, line):
        def a_add(p, q):
            return TOP if is_top(p) or is_top(q) else p + q

        rect = SymRect(buf, x0=x, y0=y, x1=a_add(x, w), y1=a_add(y, h),
                       line=line, conditional=self._cond > 0)
        for m in mode:
            self.fp.rects(m).append(rect)

    def _declare(self, value, mode, line):
        if value is None:
            return
        if not isinstance(value, (ListVal, TupleVal)):
            self.fp.unknown.append(
                f"declare_access with unresolvable region list at line {line}"
            )
            return
        for item in value.items:
            rect = self._region_of(item, line)
            if rect is None:
                self.fp.unknown.append(
                    f"unresolvable region in declare_access at line {line}"
                )
                continue
            self.fp.declared.add(rect.buf)
            self.fp.rects(mode).append(rect)

    def _region_of(self, item, line) -> SymRect | None:
        if isinstance(item, RegionVal):
            return item.rect
        if isinstance(item, TupleVal) and len(item.items) == 5:
            buf, x, y, w, h = item.items
            if not isinstance(buf, str):
                return None

            def a_add(p, q):
                return TOP if is_top(p) or is_top(q) else p + q

            def bound(v):
                return v if isinstance(v, Affine) else TOP

            return SymRect(buf, x0=bound(x), y0=bound(y),
                           x1=a_add(bound(x), bound(w)), y1=a_add(bound(y), bound(h)),
                           line=line, conditional=self._cond > 0)
        return None

    def _note(self, buf, slice_node, env, mode, line):
        """A direct NumPy subscript on a raw buffer array."""
        rect = self._rect_from_index(buf, slice_node, env, line)
        self.fp.rects(mode).append(rect)

    def _rect_from_index(self, buf, slice_node, env, line) -> SymRect:
        cond = self._cond > 0

        def interval(n, full_hi):
            """(lo, hi, exact) for one index component."""
            if isinstance(n, ast.Slice):
                lo = const(0) if n.lower is None else self.eval(n.lower, env)
                hi = full_hi if n.upper is None else self.eval(n.upper, env)
                lo = lo if isinstance(lo, Affine) else TOP
                hi = hi if isinstance(hi, Affine) else TOP
                return lo, hi, n.step is None
            v = self.eval(n, env)
            if isinstance(v, Affine):
                return v, v + const(1), True
            return TOP, TOP, False

        full = sym("DIM")
        if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) == 2:
            ynode, xnode = slice_node.elts
            y0, y1, yex = interval(ynode, full)
            x0, x1, xex = interval(xnode, full)
            return SymRect(buf, x0=x0, y0=y0, x1=x1, y1=y1, line=line,
                           clipped=not (yex and xex), conditional=cond)
        y0, y1, yex = interval(slice_node, full)
        return SymRect(buf, x0=const(0), y0=y0, x1=full, y1=y1, line=line,
                       clipped=not yex, conditional=cond)

    # .. misc ................................................................

    def _eval_args(self, node, env):
        args = [self.eval(a, env) for a in node.args]
        kwargs = [self.eval(kw.value, env) for kw in node.keywords]
        self._opaque_buffers(args + kwargs, node)

    def _opaque_buffers(self, values, node):
        for v in values:
            if isinstance(v, BufVal):
                fname = ast.unparse(node.func) if hasattr(ast, "unparse") else "?"
                self._opaque_use(v.name, fname, node.lineno)

    def _opaque_use(self, buf, fname, line):
        """A raw buffer array escaped into an unrecognized call.

        Resolution is deferred to :func:`_resolve_opaque`: escapes of a
        buffer covered by a ``ctx.declare_access`` declaration are
        trusted, the rest degrade the footprint."""
        self.fp.__dict__.setdefault("_opaque", []).append((buf, fname, line))

    def _const_str(self, slice_node, env):
        v = self.eval(slice_node, env)
        return v if isinstance(v, str) else None

    def _const_str_node(self, node, env):
        v = self.eval(node, env)
        return v if isinstance(v, str) else None


def _resolve_opaque(fp: BodyFootprint):
    """Post-pass over raw buffers that escaped into helper calls.

    A buffer covered by a ``ctx.declare_access`` declaration is trusted
    (the declaration *is* the contract; the dynamic cross-validation
    enforces it).  The image planes are always arrays, so an undeclared
    escape makes their footprint unknown.  Other ``ctx.data`` entries
    without a declaration and without subscripted use are treated as
    scalar parameters (``max_iter``-style) — see docs/staticcheck.md.
    """
    for buf, fname, line in fp.__dict__.pop("_opaque", []):
        if buf in fp.declared:
            continue
        if buf in ("cur", "next"):
            rect = SymRect(buf, line=line)
            fp.reads.append(rect)
            fp.writes.append(rect)
            fp.unknown.append(
                f"buffer {buf!r} passed to {fname}() at line {line} without a "
                "ctx.declare_access declaration"
            )
        else:
            fp.data_reads.append((buf, line))


def analyze_method(kernel_cls, fn, item_value) -> BodyFootprint:
    """Analyze one tile/item body given as an unbound kernel method."""
    an = BodyAnalyzer(kernel_cls)
    an.run_method(fn, [CTX, item_value])
    _resolve_opaque(an.fp)
    return an.fp


def analyze_node(kernel_cls, node, ctx_name: str, item_value, file: str = "",
                 extra_env: dict | None = None, pass_item: bool = True) -> BodyFootprint:
    """Analyze an inline body (lambda or nested def) from a variant.

    ``extra_env`` pre-binds enclosing-scope names (grid loop variables
    captured through lambda defaults); ``pass_item`` mirrors how the
    runtime invokes the body (worksharing bodies receive the item, task
    bodies are thunks)."""
    an = BodyAnalyzer(kernel_cls)
    an.fp.file = file
    env = {ctx_name: CTX, "self": SELF}
    env.update(extra_env or {})
    args = [item_value] if pass_item else []
    an.run_node(node, env, args)
    _resolve_opaque(an.fp)
    return an.fp
