"""Symbolic affine arithmetic over tile coordinates.

The static analyzer describes every buffer access as a rectangle whose
bounds are *affine expressions* of the tile symbols:

========  =====================================================
``TX``    tile origin column (``tile.x``)
``TY``    tile origin row (``tile.y``)
``TW``    tile width (``tile.w``)
``TH``    tile height (``tile.h``)
``TR``    tile grid row (``tile.row``)
``TC``    tile grid column (``tile.col``)
``IT``    item index for non-tile worksharing (row kernels)
``DIM``   image side length
``K``     fresh positive offset (distance between two items)
========  =====================================================

Anything that cannot be expressed as ``const + sum(coeff * sym)`` with
integer coefficients collapses to :data:`TOP` ("unknown value").  TOP
is absorbing: arithmetic with TOP yields TOP, and a rectangle with a
TOP bound can never *prove* anything — which is exactly the soundness
contract (``unknown``, never a false ``clean``).

Proofs use the box domain: every symbol has a known lower bound
(:data:`LOWER`) and no upper bound, so an affine expression has a
computable minimum over the box (attained at the lower-bound vertex
when every coefficient is non-negative, ``-inf`` otherwise).  An
inequality ``e >= 0`` holds for *all* instantiations iff that minimum
is ``>= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "Affine", "TOP", "is_top", "sym", "const", "SymRect",
    "always_ge", "always_gt", "relation", "LOWER",
]

#: lower bounds of the symbol box (no symbol has an upper bound)
LOWER = {
    "TX": 0, "TY": 0, "TR": 0, "TC": 0, "IT": 0,
    "TW": 1, "TH": 1, "DIM": 1, "K": 1,
}


class _Top:
    """Absorbing unknown value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):  # pragma: no cover - debugging aid
        return "?"


TOP = _Top()


def is_top(v) -> bool:
    return v is TOP


@dataclass(frozen=True)
class Affine:
    """``const + sum(coeff * sym)`` with integer coefficients."""

    coeffs: tuple = ()  # sorted ((sym, coeff), ...), zero coeffs removed
    k: int = 0

    @staticmethod
    def normalize(mapping: dict, k) -> "Affine":
        items = tuple(sorted((s, c) for s, c in mapping.items() if c))
        return Affine(items, k)

    def as_dict(self) -> dict:
        return dict(self.coeffs)

    def __add__(self, other: "Affine") -> "Affine":
        d = self.as_dict()
        for s, c in other.coeffs:
            d[s] = d.get(s, 0) + c
        return Affine.normalize(d, self.k + other.k)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "Affine":
        return Affine.normalize({s: c * factor for s, c in self.coeffs}, self.k * factor)

    def subst(self, mapping: dict):
        """Replace symbols by affine expressions, ints, or TOP."""
        out = const(self.k)
        for s, c in self.coeffs:
            repl = mapping.get(s)
            if repl is None:
                repl = sym(s)
            elif isinstance(repl, int):
                repl = const(repl)
            elif is_top(repl):
                return TOP
            out = out + repl.scale(c)
        return out

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def min_value(self) -> float:
        """Minimum over the symbol box (``-inf`` if unbounded below)."""
        v = float(self.k)
        for s, c in self.coeffs:
            if c > 0:
                v += c * LOWER.get(s, 0)
            else:
                return float("-inf")
        return v

    def value(self, env: dict) -> int | None:
        """Numeric value under a full numeric assignment (None if a
        symbol is missing from ``env``)."""
        v = self.k
        for s, c in self.coeffs:
            if s not in env:
                return None
            v += c * env[s]
        return v

    def __str__(self):
        parts = []
        for s, c in self.coeffs:
            if c == 1:
                parts.append(f"+{s}")
            elif c == -1:
                parts.append(f"-{s}")
            else:
                parts.append(f"{c:+d}*{s}")
        if self.k or not parts:
            parts.append(f"{self.k:+d}")
        text = "".join(parts)
        return text[1:] if text.startswith("+") else text


def sym(name: str) -> Affine:
    return Affine(((name, 1),), 0)


def const(k: int) -> Affine:
    return Affine((), int(k))


def _add(a, b):
    return TOP if a is TOP or b is TOP else a + b


def _sub(a, b):
    return TOP if a is TOP or b is TOP else a - b


def always_ge(a, b) -> bool:
    """Provably ``a >= b`` for every instantiation in the box."""
    if a is TOP or b is TOP:
        return False
    return (a - b).min_value() >= 0


def always_gt(a, b) -> bool:
    """Provably ``a > b`` (integer semantics: ``a - b >= 1``)."""
    if a is TOP or b is TOP:
        return False
    return (a - b).min_value() >= 1


@dataclass(frozen=True)
class SymRect:
    """Half-open symbolic rectangle ``[x0, x1) x [y0, y1)`` on ``buf``.

    ``clipped`` marks an *outer envelope* whose true extent may be
    smaller (halo clipping at image borders); ``conditional`` marks an
    access guarded by a branch.  Both still participate in conflict
    detection — a race proof instantiates an interior tile where the
    clip does not bind.
    """

    buf: str
    x0: object = TOP  # Affine or TOP
    y0: object = TOP
    x1: object = TOP
    y1: object = TOP
    line: int = 0
    clipped: bool = False
    conditional: bool = False

    def is_unknown(self) -> bool:
        return any(is_top(b) for b in (self.x0, self.y0, self.x1, self.y1))

    def subst(self, mapping: dict) -> "SymRect":
        def s(b):
            return TOP if is_top(b) else b.subst(mapping)

        return replace(self, x0=s(self.x0), y0=s(self.y0), x1=s(self.x1), y1=s(self.y1))

    def describe(self) -> str:
        if self.is_unknown():
            return f"{self.buf}[?]"
        return (f"{self.buf}[x={self.x0}..{self.x1}, y={self.y0}..{self.y1}]")

    def bounds_json(self):
        def b(v):
            return None if is_top(v) else str(v)

        return {"x0": b(self.x0), "y0": b(self.y0), "x1": b(self.x1), "y1": b(self.y1)}

    def contains_numeric(self, x: int, y: int, w: int, h: int, env: dict) -> bool:
        """Does the rect contain ``[x, x+w) x [y, y+h)`` under the numeric
        assignment ``env``?  TOP bounds contain everything (an unknown
        envelope constrains nothing)."""

        def lo(bound, limit):
            if is_top(bound):
                return True
            v = bound.value(env)
            return v is None or v <= limit

        def hi(bound, limit):
            if is_top(bound):
                return True
            v = bound.value(env)
            return v is None or v >= limit

        return (lo(self.x0, x) and lo(self.y0, y)
                and hi(self.x1, x + w) and hi(self.y1, y + h))


def _axis_disjoint(a0, a1, b0, b1) -> bool:
    """One axis provably separates (or one interval is provably empty)."""
    return (always_ge(b0, a1) or always_ge(a0, b1)
            or always_ge(a0, a1) or always_ge(b0, b1))


def _axis_overlap(a0, a1, b0, b1) -> bool:
    """Both intervals provably intersect: every upper bound strictly
    exceeds every lower bound (implies both are non-empty)."""
    return all(always_gt(hi, lo) for hi in (a1, b1) for lo in (a0, b0))


def relation(a: SymRect, b: SymRect) -> str:
    """Three-way decision: ``disjoint`` | ``overlap`` | ``unknown``.

    ``overlap`` means a common cell exists for *every* instantiation in
    the box — this is what licenses a definite race verdict.
    ``disjoint`` means no instantiation shares a cell.  Anything else
    is ``unknown`` and must never be reported as clean.
    """
    if a.buf != b.buf:
        return "disjoint"
    if a.is_unknown() or b.is_unknown():
        return "unknown"
    if (_axis_disjoint(a.x0, a.x1, b.x0, b.x1)
            or _axis_disjoint(a.y0, a.y1, b.y0, b.y1)):
        return "disjoint"
    if (_axis_overlap(a.x0, a.x1, b.x0, b.x1)
            and _axis_overlap(a.y0, a.y1, b.y0, b.y1)):
        return "overlap"
    return "unknown"


# re-exported helpers for the evaluator
add = _add
sub = _sub
