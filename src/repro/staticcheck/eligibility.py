"""Backend-eligibility lint over extracted regions.

These findings do not change the race verdict — they flag patterns
that break or degrade specific backends before any run:

``procs-body``
    a worksharing body is an inline closure; the procs pool needs a
    picklable ``ctx.body(self.method)`` reference to cross the process
    boundary.
``nondeterminism``
    ``random`` / ``time`` / ``np.random`` calls inside a tile body —
    results then depend on the schedule; use the seeded RNG utilities.
``kernel-state``
    a tile body mutates ``self`` — per-process kernel instances in the
    procs backend diverge silently, and threads race on the shared one.
``captured-state``
    ``global`` / ``nonlocal`` mutation from a tile body.
``shared-accumulator``
    read-modify-write of a ``ctx.data`` scalar inside a parallel
    region; express it as a ``ctx.parallel_reduce`` instead.
``scalar-merge``
    (info) a plain scalar store in a parallel region — valid under the
    documented procs merge contract *only* when idempotent.
``fastpath-alias``
    a ``frame=`` region whose body reads a buffer beyond the rectangle
    it writes in the same buffer: the whole-frame vectorized fastpath
    would read already-overwritten cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.staticcheck.extract import RegionModel
from repro.staticcheck.sym import always_ge

__all__ = ["StaticFinding", "eligibility_findings"]


@dataclass(frozen=True)
class StaticFinding:
    level: str       # "warning" | "info"
    check: str
    message: str
    line: int = 0

    def describe(self) -> str:
        return f"[{self.level}] {self.check}: {self.message}"

    def to_dict(self) -> dict:
        return {"level": self.level, "check": self.check,
                "message": self.message, "line": self.line}


def _frame_alias(region: RegionModel, fp) -> list:
    out = []
    for w in fp.writes:
        for r in fp.reads:
            if r.buf != w.buf or r.is_unknown() or w.is_unknown():
                continue
            inside = (always_ge(r.x0, w.x0) and always_ge(r.y0, w.y0)
                      and always_ge(w.x1, r.x1) and always_ge(w.y1, r.y1))
            if not inside:
                out.append(StaticFinding(
                    "warning", "fastpath-alias",
                    f"frame= region reads {r.describe()} beyond its own "
                    f"write {w.describe()} on the same buffer — the "
                    "whole-frame fastpath would observe overwritten cells",
                    line=r.line,
                ))
                break
    return out


def eligibility_findings(regions: list) -> list:
    findings: list = []
    seen = set()

    def add(f: StaticFinding):
        key = (f.check, f.message)
        if key not in seen:
            seen.add(key)
            findings.append(f)

    for region in regions:
        parallel = region.parallel
        bodies = list(region.bodies) + [t.body for t in region.tasks if t.body]
        for body, fp in zip(bodies, region.footprints):
            if parallel and body.is_lambda and region.construct in ("par", "reduce"):
                add(StaticFinding(
                    "warning", "procs-body",
                    f"{region.construct} body at line {body.line} is an inline "
                    "closure; the procs backend needs a picklable "
                    "ctx.body(self.method) reference",
                    line=body.line,
                ))
            for what, line in fp.nondet:
                add(StaticFinding(
                    "warning", "nondeterminism",
                    f"{what}() called in a tile body (line {line}) makes the "
                    "result schedule-dependent; use the seeded RNG utilities",
                    line=line,
                ))
            for line in fp.self_stores:
                add(StaticFinding(
                    "warning", "kernel-state",
                    f"tile body mutates self at line {line}; kernel instances "
                    "are shared across threads and duplicated across procs "
                    "workers",
                    line=line,
                ))
            for name, line in fp.captured:
                add(StaticFinding(
                    "warning", "captured-state",
                    f"tile body mutates captured variable {name!r} at line "
                    f"{line}; use ctx.parallel_reduce or ctx.data",
                    line=line,
                ))
            if parallel:
                for key, rmw, line in fp.data_stores:
                    if rmw:
                        add(StaticFinding(
                            "warning", "shared-accumulator",
                            f"ctx.data[{key!r}] is read-modify-written at line "
                            f"{line} inside a parallel region; lost updates are "
                            "possible — express it as a ctx.parallel_reduce",
                            line=line,
                        ))
                    else:
                        add(StaticFinding(
                            "info", "scalar-merge",
                            f"ctx.data[{key!r}] is assigned at line {line} in a "
                            "parallel region; valid under the procs scalar-merge "
                            "contract only because the store is idempotent",
                            line=line,
                        ))
            if region.frame:
                for f in _frame_alias(region, fp):
                    add(f)
    return findings
