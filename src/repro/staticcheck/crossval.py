"""Static-vs-dynamic footprint cross-validation.

The static envelope is only trustworthy if every access the runtime
*actually performs* falls inside it — this is the contract that lets
``repro.analyze`` skip dynamic footprint recording when the static
verdict is ``clean``.  :func:`cross_validate` replays a recorded trace
against a variant's symbolic footprints: each dynamic footprint region
is substituted into the tile symbols (``TX = event.x`` ...) and must be
contained in at least one static rectangle of the same buffer and
access mode.  Unknown (TOP) static bounds contain everything — an
unmodeled region constrains nothing, so the check can fail only where
the analyzer claimed knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CrossViolation", "CrossValResult", "cross_validate"]


@dataclass(frozen=True)
class CrossViolation:
    """One dynamic access observed outside the static envelope."""

    buf: str
    mode: str            # "read" | "write"
    rect: tuple          # (x, y, w, h)
    kind: str
    iteration: int
    tile: tuple          # (x, y, w, h) of the executing task, or None

    def describe(self) -> str:
        x, y, w, h = self.rect
        where = (f"tile x={self.tile[0]} y={self.tile[1]}"
                 if self.tile else f"kind={self.kind!r}")
        return (f"dynamic {self.mode} of {self.buf}[x={x}..{x + w}, "
                f"y={y}..{y + h}] (iteration {self.iteration}, {where}) "
                "is outside the static envelope")


@dataclass
class CrossValResult:
    kernel: str
    variant: str
    events: int = 0              # events carrying footprints
    regions_checked: int = 0     # dynamic footprint regions tested
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        name = f"{self.kernel}/{self.variant}"
        if not self.events:
            return (f"cross-validation {name}: vacuous — the trace carries "
                    "no footprints (record with easypap --check-races -t)")
        if self.ok:
            return (f"cross-validation {name}: ok ({self.regions_checked} "
                    f"dynamic regions from {self.events} events inside the "
                    "static envelope)")
        out = [f"cross-validation {name}: FAILED "
               f"({len(self.violations)} violation(s))"]
        out.extend(f"  {v.describe()}" for v in self.violations[:20])
        return "\n".join(out)


def cross_validate(report, trace) -> CrossValResult:
    """Check every dynamic footprint of ``trace`` against the static
    envelope of ``report`` (a :class:`~repro.staticcheck.report.VariantReport`)."""
    result = CrossValResult(kernel=report.kernel, variant=report.variant)
    regions = report.regions
    meta = trace.meta
    tw = meta.tile_w or 1
    th = meta.tile_h or 1
    for e in trace.events:
        if not e.reads and not e.writes:
            continue
        result.events += 1
        env = {"DIM": meta.dim}
        if e.has_tile:
            env.update(TX=e.x, TY=e.y, TW=e.w, TH=e.h,
                       TR=e.y // th, TC=e.x // tw)
        idx = e.extra.get("index")
        if isinstance(idx, int):
            env["IT"] = idx
        candidates = [r for r in regions if r.kind == e.kind] or regions
        for mode, label, dyn in (("r", "read", e.reads), ("w", "write", e.writes)):
            static_rects = [
                rect
                for region in candidates
                for fp in region.footprints
                for rect in fp.rects(mode)
            ]
            for buf, x, y, w, h in dyn:
                result.regions_checked += 1
                rects = [s for s in static_rects if s.buf == buf]
                if any(s.contains_numeric(x, y, w, h, env) for s in rects):
                    continue
                result.violations.append(CrossViolation(
                    buf=buf, mode=label, rect=(x, y, w, h), kind=e.kind,
                    iteration=e.iteration,
                    tile=(e.x, e.y, e.w, e.h) if e.has_tile else None,
                ))
    return result
