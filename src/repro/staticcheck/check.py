"""Driver: kernel/variant -> extracted regions -> footprints -> verdict.

The verdict lattice per variant:

``race``
    at least one conflict was *proven* (a concrete neighbor offset on
    which a write of one concurrent instance overlaps an access of the
    other, with no ordering between them);
``unknown``
    no proven race, but something escaped the model — an unrecognized
    execution construct, a non-affine access, a buffer escaping into an
    undeclared helper call — inside a *parallel* region;
``clean``
    every access of every parallel region was modeled and every
    conflicting pair was proven disjoint or dependence-ordered.

Sequential regions never influence the verdict (no concurrency); their
footprints still feed the cross-validation envelope.
"""

from __future__ import annotations

import time

from repro.staticcheck.eligibility import eligibility_findings
from repro.staticcheck.extract import extract_variant
from repro.staticcheck.footprints import TILE, analyze_method, analyze_node
from repro.staticcheck.races import check_region
from repro.staticcheck.report import StaticCheckReport, VariantReport
from repro.staticcheck.sym import sym

__all__ = ["check_variant", "check_kernel", "check_kernels"]


def _analyze_region_bodies(kernel_cls, vm, region):
    item = TILE if region.item_kind == "tile" else sym("IT")
    pass_item = region.construct != "dag"
    bodies = list(region.bodies) + [t.body for t in region.tasks if t.body]
    fps = []
    for body in bodies:
        if body.method:
            fn = getattr(kernel_cls, body.method)
            if isinstance(fn, (staticmethod, classmethod)):
                fn = fn.__func__
            fp = analyze_method(kernel_cls, fn, item)
        else:
            extra = {name: TILE for name in body.tile_names}
            fp = analyze_node(kernel_cls, body.node, vm.ctx_name, item,
                              file=vm.file, extra_env=extra, pass_item=pass_item)
        fps.append(fp)
    region.footprints = fps


def check_variant(kernel, variant_name: str) -> VariantReport:
    """Statically analyze one variant of an instantiated kernel."""
    t0 = time.perf_counter()
    kernel_cls = type(kernel)
    fn = kernel.variants[variant_name]
    vm = extract_variant(kernel_cls, kernel.name, variant_name, fn)
    races, unknowns = [], list(vm.unknown)
    for region in vm.regions:
        _analyze_region_bodies(kernel_cls, vm, region)
        r_races, r_unknowns = check_region(region)
        races.extend(r_races)
        unknowns.extend(r_unknowns)
    findings = eligibility_findings(vm.regions)
    if races:
        verdict = "race"
    elif unknowns:
        verdict = "unknown"
    else:
        verdict = "clean"
    return VariantReport(
        kernel=kernel.name,
        variant=variant_name,
        verdict=verdict,
        races=races,
        findings=findings,
        unknowns=list(dict.fromkeys(unknowns)),
        regions=vm.regions,
        file=vm.file,
        elapsed_ms=(time.perf_counter() - t0) * 1e3,
    )


def check_kernel(kernel, variants=None) -> list:
    """Variant reports for one kernel (all variants by default).  An
    explicit ``variants`` list is treated as a matrix restriction: names
    a kernel does not implement are skipped for that kernel."""
    if variants:
        names = [n for n in variants if n in kernel.variants]
    else:
        names = sorted(kernel.variants)
    return [check_variant(kernel, name) for name in names]


def check_kernels(kernels, variants=None) -> StaticCheckReport:
    """Aggregate report over several instantiated kernels."""
    report = StaticCheckReport()
    for kernel in kernels:
        report.reports.extend(check_kernel(kernel, variants))
    total = sum(r.elapsed_ms for r in report.reports)
    report.counters["staticcheck_ms"] = round(total, 3)
    report.counters["staticcheck_variants"] = len(report.reports)
    report.counters["staticcheck_races"] = sum(
        1 for r in report.reports if r.verdict == "race"
    )
    return report
