"""Variant extraction: variant function AST -> execution-region models.

A variant is the orchestration layer of a kernel: it builds worksharing
regions (``ctx.parallel_for`` / ``parallel_reduce``), sequential
regions, and task DAGs (``with ctx.task_region() as tr``), passing
tile/item bodies by reference.  This module recognizes those constructs
syntactically and resolves each body to either a kernel method or an
inline lambda / nested ``def`` for the footprint interpreter.

Anything the extractor does not recognize as a *master-side* statement
or a known construct — most notably accelerator ``device.launch``
dispatches — marks the variant ``unknown``: the analyzer refuses to
certify code whose execution structure it cannot see.

Helper methods invoked from the variant (``self._full_pass(ctx, ...)``)
are scanned recursively (bounded depth) so regions created inside them
are modeled too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.footprints import (
    TILE,
    BodyAnalyzer,
    _fn_ast,
)
from repro.staticcheck.sym import Affine, sym

__all__ = ["BodyRef", "TaskModel", "RegionModel", "VariantModel", "extract_variant"]

_WORKSHARING = {"parallel_for": "par", "parallel_reduce": "reduce",
                "sequential_for": "seq"}
_HELPER_SCAN_DEPTH = 2


@dataclass
class BodyRef:
    """A tile/item body: a kernel method name, or an inline AST node."""

    method: str | None = None
    node: object = None          # ast.Lambda | ast.FunctionDef
    is_lambda: bool = False
    tile_names: tuple = ()       # grid loop variables in scope (lambda defaults)
    line: int = 0

    @property
    def label(self) -> str:
        if self.method:
            return f"self.{self.method}"
        return "<lambda>" if self.is_lambda else "<nested def>"


@dataclass
class TaskModel:
    """One ``tr.task(...)`` call inside a task region."""

    body: BodyRef | None
    dep_reads: list | None       # [(dr, dc)] or None when not affine
    dep_writes: list | None
    line: int = 0


@dataclass
class RegionModel:
    construct: str               # "par" | "reduce" | "seq" | "dag"
    kind: str = "tile"
    item_kind: str = "tile"      # "tile" | "item"
    bodies: list = field(default_factory=list)    # [BodyRef]
    tasks: list = field(default_factory=list)     # [TaskModel]
    frame: bool = False
    line: int = 0
    unknown: list = field(default_factory=list)
    # filled by the driver:
    footprints: list = field(default_factory=list)

    @property
    def parallel(self) -> bool:
        return self.construct in ("par", "reduce", "dag")


@dataclass
class VariantModel:
    kernel: str
    variant: str
    regions: list = field(default_factory=list)
    unknown: list = field(default_factory=list)
    file: str = ""
    ctx_name: str = "ctx"


def _mentions_grid(node, ctx_name: str) -> bool:
    for n in ast.walk(node):
        if (isinstance(n, ast.Attribute) and n.attr == "grid"
                and isinstance(n.value, ast.Name) and n.value.id == ctx_name):
            return True
    return False


def _iter_calls(stmt):
    """Call nodes of a statement, skipping lambda / nested-def bodies
    (those run later, inside the construct that receives them)."""
    todo = [stmt]
    while todo:
        n = todo.pop()
        if isinstance(n, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(n, ast.Call):
            yield n
        todo.extend(ast.iter_child_nodes(n))


class _Extractor:
    def __init__(self, kernel_cls, model: VariantModel):
        self.kernel_cls = kernel_cls
        self.model = model
        self._seen_helpers: set = set()

    # -- body resolution ----------------------------------------------------

    def _resolve_body(self, node, ctx_name, local_defs, tile_names) -> BodyRef | None:
        if isinstance(node, ast.Call):
            f = node.func
            if (isinstance(f, ast.Attribute) and f.attr == "body"
                    and isinstance(f.value, ast.Name) and f.value.id == ctx_name
                    and node.args):
                return self._resolve_body(node.args[0], ctx_name, local_defs, tile_names)
            return None
        if isinstance(node, ast.Lambda):
            return BodyRef(node=node, is_lambda=True, tile_names=tuple(tile_names),
                           line=node.lineno)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if getattr(self.kernel_cls, node.attr, None) is not None:
                    return BodyRef(method=node.attr, line=node.lineno)
            return None
        if isinstance(node, ast.Name):
            if node.id in local_defs:
                return BodyRef(node=local_defs[node.id], tile_names=tuple(tile_names),
                               line=node.lineno)
            if getattr(self.kernel_cls, node.id, None) is not None:
                return BodyRef(method=node.id, line=node.lineno)
            return None
        return None

    # -- construct parsing --------------------------------------------------

    def _kw(self, call, name):
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _region_from_call(self, call, construct, ctx_name, local_defs, tile_names):
        kind = "tile"
        kind_node = self._kw(call, "kind")
        region = RegionModel(construct=construct, line=call.lineno)
        if kind_node is not None:
            if isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str):
                kind = kind_node.value
            else:
                region.unknown.append(
                    f"non-literal kind= at line {call.lineno}"
                )
        region.kind = kind
        region.item_kind = "tile" if kind == "tile" else "item"
        region.frame = self._kw(call, "frame") is not None
        if not call.args:
            region.unknown.append(f"{construct} region without a body at line {call.lineno}")
            self.model.regions.append(region)
            return
        body = self._resolve_body(call.args[0], ctx_name, local_defs, tile_names)
        if body is None:
            region.unknown.append(
                f"could not resolve the {construct} body at line {call.lineno}"
            )
        else:
            region.bodies.append(body)
        self.model.regions.append(region)

    def _dep_offsets(self, node, tile_names) -> list | None:
        """``reads=[(t.row, t.col - 1), ...]`` -> ``[(0, -1), ...]``."""
        if node is None:
            return []
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None
        analyzer = BodyAnalyzer(self.kernel_cls)
        env = {name: TILE for name in tile_names}
        offsets = []
        for elt in node.elts:
            if not (isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) == 2):
                return None
            r = analyzer.eval(elt.elts[0], dict(env))
            c = analyzer.eval(elt.elts[1], dict(env))
            if not (isinstance(r, Affine) and isinstance(c, Affine)):
                return None
            dr = r - sym("TR")
            dc = c - sym("TC")
            if not (dr.is_const and dc.is_const):
                return None
            offsets.append((dr.k, dc.k))
        return offsets

    def _scan_task_region(self, with_stmt, ctx_name, local_defs, tile_names):
        item = with_stmt.items[0]
        call = item.context_expr
        kind = "task"
        kind_node = self._kw(call, "kind")
        if isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str):
            kind = kind_node.value
        region = RegionModel(construct="dag", kind=kind, line=with_stmt.lineno)
        tr_name = None
        if isinstance(item.optional_vars, ast.Name):
            tr_name = item.optional_vars.id
        if tr_name is None:
            region.unknown.append(
                f"task region without an `as` name at line {with_stmt.lineno}"
            )
            self.model.regions.append(region)
            return

        def scan(stmts, names):
            for stmt in stmts:
                if isinstance(stmt, ast.For):
                    inner = list(names)
                    if (_mentions_grid(stmt.iter, ctx_name)
                            and isinstance(stmt.target, ast.Name)):
                        inner.append(stmt.target.id)
                    scan(stmt.body, inner)
                    scan(stmt.orelse, inner)
                    continue
                if isinstance(stmt, (ast.If, ast.While)):
                    scan(stmt.body, names)
                    scan(stmt.orelse, names)
                    continue
                if isinstance(stmt, ast.With):
                    scan(stmt.body, names)
                    continue
                for call_node in _iter_calls(stmt):
                    f = call_node.func
                    if not (isinstance(f, ast.Attribute)
                            and isinstance(f.value, ast.Name)
                            and f.value.id == tr_name):
                        continue
                    if f.attr == "taskloop":
                        region.unknown.append(
                            f"tr.taskloop at line {call_node.lineno} is not modeled"
                        )
                        continue
                    if f.attr != "task":
                        continue
                    body = None
                    if call_node.args:
                        body = self._resolve_body(
                            call_node.args[0], ctx_name, local_defs, names
                        )
                    reads = self._dep_offsets(self._kw(call_node, "reads"), names)
                    writes = self._dep_offsets(self._kw(call_node, "writes"), names)
                    if body is None:
                        region.unknown.append(
                            f"could not resolve the task body at line {call_node.lineno}"
                        )
                    region.tasks.append(TaskModel(
                        body=body, dep_reads=reads, dep_writes=writes,
                        line=call_node.lineno,
                    ))

        scan(with_stmt.body, list(tile_names))
        self.model.regions.append(region)

    # -- statement walk -----------------------------------------------------

    def scan_function(self, node, ctx_name, depth=0):
        local_defs = {
            s.name: s for s in ast.walk(node) if isinstance(s, ast.FunctionDef)
            and s is not node
        }
        self._scan_block(node.body, ctx_name, local_defs, [], depth)

    def _scan_block(self, stmts, ctx_name, local_defs, tile_names, depth):
        for stmt in stmts:
            if isinstance(stmt, ast.With):
                call = stmt.items[0].context_expr
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "task_region"
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == ctx_name):
                    self._scan_task_region(stmt, ctx_name, local_defs, tile_names)
                    continue
                self._scan_block(stmt.body, ctx_name, local_defs, tile_names, depth)
                continue
            if isinstance(stmt, ast.For):
                inner = list(tile_names)
                if (_mentions_grid(stmt.iter, ctx_name)
                        and isinstance(stmt.target, ast.Name)):
                    inner.append(stmt.target.id)
                self._scan_block(stmt.body, ctx_name, local_defs, inner, depth)
                self._scan_block(stmt.orelse, ctx_name, local_defs, inner, depth)
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self._scan_block(stmt.body, ctx_name, local_defs, tile_names, depth)
                self._scan_block(stmt.orelse, ctx_name, local_defs, tile_names, depth)
                continue
            if isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._scan_block(block, ctx_name, local_defs, tile_names, depth)
                for handler in stmt.handlers:
                    self._scan_block(handler.body, ctx_name, local_defs, tile_names, depth)
                continue
            if isinstance(stmt, ast.FunctionDef):
                continue
            self._scan_statement(stmt, ctx_name, local_defs, tile_names, depth)

    def _scan_statement(self, stmt, ctx_name, local_defs, tile_names, depth):
        for call in _iter_calls(stmt):
            f = call.func
            if not isinstance(f, ast.Attribute):
                continue
            if f.attr == "launch":
                self.model.unknown.append(
                    f"unrecognized execution construct "
                    f"'{ast.unparse(f)}' at line {call.lineno}"
                )
                continue
            if not isinstance(f.value, ast.Name):
                continue
            if f.value.id == ctx_name:
                if f.attr in _WORKSHARING:
                    self._region_from_call(call, _WORKSHARING[f.attr], ctx_name,
                                           local_defs, tile_names)
                # run_on_master and friends execute on the master: no
                # concurrency, nothing to model here
                continue
            if f.value.id == "self" and depth < _HELPER_SCAN_DEPTH:
                helper = getattr(self.kernel_cls, f.attr, None)
                if helper is None or not callable(helper) or f.attr in self._seen_helpers:
                    continue
                if isinstance(helper, (staticmethod, classmethod)):
                    helper = helper.__func__
                self._seen_helpers.add(f.attr)
                try:
                    hnode, _ = _fn_ast(helper)
                except (OSError, TypeError):
                    continue
                params = [a.arg for a in hnode.args.args]
                helper_ctx = params[1] if len(params) > 1 else ctx_name
                self.scan_function(hnode, helper_ctx, depth + 1)


def extract_variant(kernel_cls, kernel_name: str, variant_name: str, fn) -> VariantModel:
    node, file = _fn_ast(fn)
    params = [a.arg for a in node.args.args]
    ctx_name = params[1] if len(params) > 1 else "ctx"
    model = VariantModel(kernel=kernel_name, variant=variant_name,
                         file=file, ctx_name=ctx_name)
    _Extractor(kernel_cls, model).scan_function(node, ctx_name)
    return model
