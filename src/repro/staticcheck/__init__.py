"""``repro.staticcheck``: AST-based static analysis of kernel variants.

Three run-free verdicts over every kernel variant (see
``docs/staticcheck.md``):

1. **static race check** — symbolic per-tile read/write footprints
   (halo extents as affine offsets of the tile rectangle) checked for
   overlap across concurrent tiles of each worksharing construct and
   for ordering coverage in task DAGs;
2. **backend-eligibility lint** — closure capture, nondeterminism,
   kernel-state mutation, shared scalar accumulators, fastpath
   aliasing;
3. **contract cross-validation** — dynamic ``FootprintEvent`` regions
   from a recorded trace must fall inside the static envelope, making
   the static verdict a trusted input to :mod:`repro.analyze`.

Soundness contract: a variant is reported ``clean`` only when every
access of every parallel region was modeled *and* proven conflict-free;
anything outside the model degrades to ``unknown``, never to a false
``clean``.  A ``race`` verdict is an existence proof: a concrete
neighbor offset on which two unordered instances touch the same cell.

Entry points: :func:`check_variant` / :func:`check_kernels` (library),
``python -m repro.staticcheck`` (CLI), ``easypap --static-check`` and
``easyview --halos`` (integrated).
"""

from repro.staticcheck.check import check_kernel, check_kernels, check_variant
from repro.staticcheck.crossval import CrossValResult, cross_validate
from repro.staticcheck.eligibility import StaticFinding
from repro.staticcheck.races import StaticRace
from repro.staticcheck.report import SCHEMA_VERSION, StaticCheckReport, VariantReport

__all__ = [
    "check_variant", "check_kernel", "check_kernels",
    "cross_validate", "CrossValResult",
    "StaticRace", "StaticFinding",
    "StaticCheckReport", "VariantReport", "SCHEMA_VERSION",
]
