"""Static race proofs over symbolic footprints.

For a worksharing region every item runs concurrently (the analyzer
treats *all* schedule families as fully parallel — any static/dynamic/
guided chunking is a subset of that, so the verdict covers each).  Two
concurrent tiles are modeled as the symbolic tile ``A`` and a neighbor
``B`` shifted by ``(dc*TW, dr*TH)`` pixels (``(dr, dc)`` grid offset);
row/item regions shift the item symbol by a fresh positive ``K``.

A *proven overlap* between a write of one instance and an access of the
other — for some concrete neighbor offset — is a definite race: there
exists a grid (any with a neighbor in that direction) on which the two
accesses touch the same cell with no ordering between them.  A pair
that can be neither proven overlapping nor proven disjoint makes the
region ``unknown`` for that buffer; it is never reported as clean.

Task-DAG regions additionally get an *ordering-coverage* proof: the
declared dependences induce a cone of reachable tile offsets (sums of
dependence offsets, i.e. chains of edges through intermediate tasks);
a conflicting offset outside ``cone U -cone`` is an unordered conflict
— the dynamic detector's "missing ordering edge", derived without
running the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.staticcheck.extract import RegionModel
from repro.staticcheck.footprints import BodyFootprint
from repro.staticcheck.sym import SymRect, const, relation, sym

__all__ = ["StaticRace", "check_region", "dep_cone"]

#: neighbor offsets, nearest first (the first proven conflict is reported)
_OFFSETS = sorted(
    ((dr, dc) for dr in range(-2, 3) for dc in range(-2, 3) if (dr, dc) != (0, 0)),
    key=lambda o: (abs(o[0]) + abs(o[1]), o),
)
_CONE_RADIUS = 4


@dataclass(frozen=True)
class StaticRace:
    """One statically proven data race."""

    kind: str        # "read-write" | "write-write"
    buf: str
    construct: str   # "par" | "reduce" | "dag"
    offset: tuple    # (dr, dc) grid offset, or (0, k) for item regions
    lines: tuple     # conflicting source lines, sorted
    file: str = ""
    a_access: str = ""
    b_access: str = ""
    advice: str = ""

    def describe(self) -> str:
        where = (f"items at distance {self.offset[1]}"
                 if self.construct == "item"
                 else f"tiles at grid offset ({self.offset[0]}, {self.offset[1]})")
        lines = ", ".join(f"{self.file}:{ln}" for ln in self.lines)
        out = [
            f"{self.kind} race on buffer {self.buf!r} between concurrent "
            f"{where}:",
            f"  {self.a_access}",
            f"  {self.b_access}",
            f"  conflicting lines: {lines}",
        ]
        if self.advice:
            out.append(f"  advice: {self.advice}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "buf": self.buf, "construct": self.construct,
            "offset": list(self.offset), "lines": list(self.lines),
            "file": self.file, "advice": self.advice,
        }


def _tile_shift(dr: int, dc: int) -> dict:
    return {
        "TX": sym("TX") + sym("TW").scale(dc),
        "TY": sym("TY") + sym("TH").scale(dr),
        "TR": sym("TR") + const(dr),
        "TC": sym("TC") + const(dc),
    }


def _item_shift(k: int = 1) -> dict:
    return {"IT": sym("IT") + sym("K").scale(k)}


def _merge_footprints(fps) -> BodyFootprint:
    merged = BodyFootprint()
    for fp in fps:
        merged.reads.extend(fp.reads)
        merged.writes.extend(fp.writes)
        merged.declared |= fp.declared
        merged.unknown.extend(fp.unknown)
        if not merged.file:
            merged.file = fp.file
    return merged


def _conflicting_pairs(fp: BodyFootprint, shift: dict):
    """(a, b_shifted, kind) candidates between instance A and shifted B."""
    b_reads = [r.subst(shift) for r in fp.reads]
    b_writes = [w.subst(shift) for w in fp.writes]
    for a in fp.writes:
        for b in b_writes:
            yield a, b, "write-write"
    for a in fp.reads:
        for b in b_writes:
            yield a, b, "read-write"
    for a in fp.writes:
        for b in b_reads:
            yield a, b, "read-write"


def dep_cone(offsets, radius: int = _CONE_RADIUS) -> set:
    """Tile offsets reachable through chains of dependence edges.

    An edge covers offset ``d``; a chain through intermediate tasks
    covers any sum of edge offsets (intermediate tiles exist on a
    rectangular grid whenever both endpoints do)."""
    seen = {(0, 0)}
    stack = [(0, 0)]
    while stack:
        p = stack.pop()
        for (a, b) in offsets:
            q = (p[0] + a, p[1] + b)
            if q not in seen and abs(q[0]) <= radius and abs(q[1]) <= radius:
                seen.add(q)
                stack.append(q)
    seen.discard((0, 0))
    return seen


def _race(kind, buf, construct, offset, a: SymRect, b: SymRect, file, advice):
    lines = tuple(sorted({a.line, b.line}))
    return StaticRace(
        kind=kind, buf=buf, construct=construct, offset=offset, lines=lines,
        file=file,
        a_access=f"access {a.describe()} at line {a.line}",
        b_access=f"conflicts with the neighbor's {b.describe()} at line {b.line}",
        advice=advice,
    )


def _worksharing_races(region: RegionModel, fp: BodyFootprint):
    races, unknowns = [], []
    seen_race = set()
    seen_unknown = set()
    if region.item_kind == "tile":
        shifts = [((dr, dc), _tile_shift(dr, dc)) for dr, dc in _OFFSETS]
        construct = region.construct
    else:
        shifts = [((0, 1), _item_shift())]
        construct = "item"
    advice = ("concurrent instances touch overlapping regions with no "
              "ordering; double-buffer (write the 'next' plane and swap "
              "after the region) or restructure the decomposition")
    for offset, shift in shifts:
        for a, b, kind in _conflicting_pairs(fp, shift):
            rel = relation(a, b)
            if rel == "overlap" and (a.buf, kind) not in seen_race:
                seen_race.add((a.buf, kind))
                races.append(_race(kind, a.buf, construct, offset, a, b,
                                   fp.file, advice))
            elif rel == "unknown" and (a.buf, kind) not in seen_unknown:
                seen_unknown.add((a.buf, kind))
                unknowns.append(
                    f"accesses on buffer {a.buf!r} (lines {a.line}, {b.line}) "
                    "are not provably disjoint across concurrent instances"
                )
    # a proven race on a buffer supersedes an unknown on the same buffer
    raced = {r.buf for r in races}
    unknowns = [u for u in unknowns
                if not any(f"'{b}'" in u or f'"{b}"' in u for b in raced)]
    return races, unknowns


def _dag_races(region: RegionModel, fp: BodyFootprint):
    races, unknowns = [], []
    if len(region.tasks) > 1:
        unknowns.append(
            "multiple task declarations per region are not modeled"
        )
        return races, unknowns
    task = region.tasks[0]
    if task.dep_reads is None or task.dep_writes is None:
        unknowns.append(
            f"task dependences at line {task.line} are not affine in the "
            "tile grid coordinates"
        )
        return races, unknowns
    if any(off != (0, 0) for off in task.dep_writes):
        unknowns.append(
            f"task at line {task.line} declares an out-dependence on a "
            "different tile; coverage is not modeled"
        )
        return races, unknowns
    cone = dep_cone(task.dep_reads)
    seen = set()
    for dr, dc in _OFFSETS:
        covered = (dr, dc) in cone or (-dr, -dc) in cone
        shift = _tile_shift(dr, dc)
        for a, b, kind in _conflicting_pairs(fp, shift):
            rel = relation(a, b)
            if rel == "disjoint":
                continue
            if covered:
                continue
            key = (a.buf, kind, "race" if rel == "overlap" else "unknown")
            if key in seen:
                continue
            seen.add(key)
            if rel == "overlap":
                dep = f"reads=[(t.row{dr:+d}, t.col{dc:+d})]"
                advice = (
                    "missing ordering edge: the declared dependences do not "
                    f"cover grid offset ({dr}, {dc}) — add the in-dependence "
                    f"{dep} (or the symmetric one) to order the conflicting tasks"
                )
                races.append(_race(kind, a.buf, "dag", (dr, dc), a, b,
                                   fp.file, advice))
            else:
                unknowns.append(
                    f"accesses on buffer {a.buf!r} (lines {a.line}, {b.line}) "
                    f"are not provably disjoint at uncovered grid offset "
                    f"({dr}, {dc})"
                )
    return races, unknowns


def check_region(region: RegionModel):
    """(races, unknowns) for one region; empty for sequential regions."""
    if not region.parallel:
        return [], []
    fp = _merge_footprints(region.footprints)
    body_unknowns = list(dict.fromkeys(fp.unknown))
    if region.construct in ("par", "reduce"):
        races, unknowns = _worksharing_races(region, fp)
    else:
        if not region.tasks:
            return [], list(region.unknown) + body_unknowns
        races, unknowns = _dag_races(region, fp)
    return races, list(region.unknown) + body_unknowns + unknowns
