"""``python -m repro.staticcheck``: the static analyzer CLI.

Targets are resolved in order: an existing ``.py`` path, a dotted
module name (``examples.buggy_blur_writes_cur``), then a registered
kernel name.  Modules are loaded through the kernel-module loader (so
a file already registered via ``easypap --load`` is reused, not
re-registered) and every kernel they define is checked — without ever
executing a single kernel iteration.

Exit status: 0 when no race verdict was produced (or, under
``--expect``, when every verdict matches the module's
``EXPECTED_VERDICTS`` annotations), 1 on race / expectation mismatch /
cross-validation failure, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from repro.core.kernel import Kernel, get_kernel, list_kernels, load_kernel_module
from repro.errors import EasypapError
from repro.staticcheck.check import check_kernels
from repro.staticcheck.crossval import cross_validate
from repro.trace.format import load_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Static race/eligibility analysis of kernel variants "
        "(no kernel execution).",
    )
    p.add_argument("targets", nargs="*",
                   help="kernel names, .py files, or dotted modules to check")
    p.add_argument("-k", "--kernel", action="append", default=[],
                   help="kernel name to check (repeatable)")
    p.add_argument("-V", "--variant", action="append", default=[],
                   help="restrict to these variants (repeatable)")
    p.add_argument("--all", action="store_true",
                   help="check every registered kernel")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable report ('-' for stdout)")
    p.add_argument("--expect", action="store_true",
                   help="compare verdicts against the loaded modules' "
                   "EXPECTED_VERDICTS annotations")
    p.add_argument("--trace", action="append", default=[], metavar="FILE",
                   help="cross-validate the static envelope against a "
                   "recorded trace (repeatable)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="include info-level findings and per-region footprints")
    return p


def _module_kernel_names(module) -> list:
    names = []
    for value in vars(module).values():
        if (isinstance(value, type) and issubclass(value, Kernel)
                and value is not Kernel
                and value.__module__ == module.__name__):
            name = getattr(value, "name", "?")
            if name and name != "?" and name in list_kernels():
                names.append(name)
    return names


def _resolve_targets(targets):
    """-> (kernel names, loaded modules). Raises EasypapError."""
    kernels, modules = [], []
    for target in targets:
        path = Path(target)
        if path.suffix == ".py" or path.exists():
            module = load_kernel_module(path)
            modules.append(module)
            kernels.extend(_module_kernel_names(module))
            continue
        if "." in target:
            try:
                spec = importlib.util.find_spec(target)
            except (ImportError, ValueError, ModuleNotFoundError):
                spec = None
            if spec is not None and spec.origin:
                module = load_kernel_module(spec.origin)
                modules.append(module)
                kernels.extend(_module_kernel_names(module))
                continue
        if target in list_kernels():
            kernels.append(target)
            continue
        raise EasypapError(
            f"cannot resolve target {target!r}: not a file, module or "
            "registered kernel"
        )
    return kernels, modules


def _expectations(modules) -> dict:
    expected = {}
    for module in modules:
        expected.update(getattr(module, "EXPECTED_VERDICTS", {}) or {})
    return expected


def check_expectations(report, expected: dict, annotated_kernels: set) -> list:
    """Compare a StaticCheckReport against EXPECTED_VERDICTS annotations.

    Returns a list of human-readable problems (empty = all matched)."""
    problems = []
    for (kname, vname), exp in expected.items():
        vr = report.find(kname, vname)
        if vr is None:
            continue  # variant not part of this run
        want = exp.get("verdict", "race")
        if vr.verdict != want:
            problems.append(
                f"{kname}/{vname}: expected verdict {want!r}, got {vr.verdict!r}"
            )
            continue
        if want != "race":
            continue
        match = None
        for race in vr.races:
            if exp.get("kind") and race.kind != exp["kind"]:
                continue
            if exp.get("buffer") and race.buf != exp["buffer"]:
                continue
            if exp.get("construct") and race.construct != exp["construct"]:
                continue
            match = race
            break
        if match is None:
            problems.append(
                f"{kname}/{vname}: no {exp.get('kind', 'any')} race on buffer "
                f"{exp.get('buffer')!r} was reported"
            )
            continue
        want_lines = set(exp.get("lines", []))
        got_lines = set()
        for race in vr.races:
            got_lines.update(race.lines)
        if want_lines and not want_lines <= got_lines:
            problems.append(
                f"{kname}/{vname}: expected conflicting lines "
                f"{sorted(want_lines)}, reported {sorted(got_lines)}"
            )
        advice = exp.get("advice")
        if advice and not any(advice in race.advice for race in vr.races):
            problems.append(
                f"{kname}/{vname}: advice does not mention {advice!r}"
            )
    for vr in report.reports:
        if vr.verdict == "race" and (vr.kernel, vr.variant) not in expected:
            if vr.kernel in annotated_kernels:
                problems.append(
                    f"{vr.kernel}/{vr.variant}: unexpected race verdict "
                    "(no EXPECTED_VERDICTS annotation)"
                )
    return problems


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        kernel_names, modules = _resolve_targets(args.targets)
        kernel_names.extend(args.kernel)
        if args.all or not kernel_names:
            kernel_names.extend(list_kernels())
        # stable order, duplicates removed
        kernel_names = list(dict.fromkeys(kernel_names))
        kernels = [get_kernel(name) for name in kernel_names]
    except EasypapError as exc:
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 2

    variants = args.variant or None
    try:
        report = check_kernels(kernels, variants)
    except EasypapError as exc:  # pragma: no cover - defensive
        print(f"staticcheck: {exc}", file=sys.stderr)
        return 1

    status = 0
    if args.json == "-":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe(verbose=args.verbose))
        if args.verbose:
            for vr in report.sorted():
                print(f"\nfootprints of {vr.name}:")
                for line in vr.footprint_lines():
                    print(f"  {line}")
        if args.json:
            Path(args.json).parent.mkdir(parents=True, exist_ok=True)
            Path(args.json).write_text(
                json.dumps(report.to_dict(), indent=2), encoding="utf-8"
            )
            print(f"JSON report written to {args.json}")

    for trace_path in args.trace:
        try:
            trace = load_trace(trace_path)
        except EasypapError as exc:
            print(f"staticcheck: {exc}", file=sys.stderr)
            return 2
        vr = report.find(trace.meta.kernel, trace.meta.variant)
        if vr is None:
            print(
                f"staticcheck: trace {trace_path} is for "
                f"{trace.meta.kernel}/{trace.meta.variant}, which was not "
                "checked in this invocation",
                file=sys.stderr,
            )
            return 2
        cv = cross_validate(vr, trace)
        print(cv.describe())
        if not cv.ok:
            status = 1

    if args.expect:
        expected = _expectations(modules)
        annotated = {k for (k, _v) in expected}
        problems = check_expectations(report, expected, annotated)
        for problem in problems:
            print(f"staticcheck: expectation mismatch: {problem}",
                  file=sys.stderr)
        if problems:
            status = 1
        else:
            print(f"staticcheck: {len(expected)} expected verdict(s) matched")
    elif report.any_race:
        status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
