"""Argument validation helpers shared by the public API surface."""

from __future__ import annotations

from repro.errors import ConfigError


def check_positive(name: str, value: int | float) -> None:
    """Raise :class:`ConfigError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_range(name: str, value: int | float, lo, hi) -> None:
    """Raise :class:`ConfigError` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigError(f"{name} must be a power of two, got {value!r}")
