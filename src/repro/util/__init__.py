"""Small shared utilities (timing, RNG, validation helpers)."""

from repro.util.timing import Stopwatch, format_duration
from repro.util.validation import check_positive, check_power_of_two, check_range

__all__ = [
    "Stopwatch",
    "format_duration",
    "check_positive",
    "check_power_of_two",
    "check_range",
]
