"""Wall-clock timing helpers.

The framework mostly runs on *virtual* time produced by the scheduling
simulator, but performance mode and the real ``threads`` backend need
wall-clock measurements; this module centralizes them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_duration(seconds: float) -> str:
    """Render a duration the way EASYPAP's performance mode does.

    >>> format_duration(0.579)
    '579.000 ms'
    """
    ms = seconds * 1e3
    if ms >= 1.0 or ms == 0.0:
        return f"{ms:.3f} ms"
    return f"{ms * 1e3:.3f} us"


@dataclass
class Stopwatch:
    """Accumulating stopwatch with ``start``/``stop``/``elapsed``.

    Can be used as a context manager::

        with Stopwatch() as sw:
            work()
        print(sw.elapsed)
    """

    _t0: float | None = None
    _acc: float = 0.0
    laps: list[float] = field(default_factory=list)

    def start(self) -> "Stopwatch":
        if self._t0 is not None:
            raise RuntimeError("stopwatch already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._t0
        self._t0 = None
        self._acc += lap
        self.laps.append(lap)
        return lap

    @property
    def running(self) -> bool:
        return self._t0 is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated time (including the current lap if running)."""
        cur = time.perf_counter() - self._t0 if self._t0 is not None else 0.0
        return self._acc + cur

    def reset(self) -> None:
        self._t0 = None
        self._acc = 0.0
        self.laps.clear()

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self.running:
            self.stop()
