"""Deterministic random number generation.

All stochastic pieces of the framework (random datasets, synthetic cost
models) derive their generators from here so that a run is reproducible
from its ``--seed``.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xEA57


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy Generator seeded deterministically.

    ``None`` maps to the framework default seed (runs are reproducible by
    default; pass an explicit seed to vary).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


JITTER_STREAM = 0x1177E5


def make_jitter_rng(seed: int | None, run_index: int = 0) -> np.random.Generator:
    """The noise stream used to model run-to-run system jitter.

    Keyed by (seed, run index) so repeating a configuration with
    ``runs=10`` yields ten distinct — but individually reproducible —
    executions, like real measurements do.
    """
    base = DEFAULT_SEED if seed is None else seed
    return np.random.default_rng([base & 0xFFFFFFFF, JITTER_STREAM, run_index])


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key path.

    Used to give each MPI rank / repetition its own stream without the
    streams being correlated.
    """
    mix = []
    for k in keys:
        if isinstance(k, str):
            mix.extend(k.encode())
        else:
            mix.append(int(k) & 0xFFFFFFFF)
    seed_seq = np.random.SeedSequence([int(rng.integers(0, 2**31))] + mix)
    return np.random.default_rng(seed_seq)
