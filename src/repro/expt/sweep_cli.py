"""``python -m repro.expt``: run a parameter sweep from the shell.

The expTools grid, without writing a script::

    python -m repro.expt --kernel mandel --variant omp_tiled \\
        --size 256 --grain 16,32 --iterations 10 \\
        --threads 2,4,8 --schedule static --schedule dynamic,2 \\
        --runs 3 --workers 4 --resume --csv perf_data.csv

Comma-separated (or repeated) values sweep a dimension; ``--schedule``
is repeat-only because schedule specs contain commas (``dynamic,2``).
``--workers``, ``--resume``, ``--timeout``/``--retries`` and
``--cache-dir`` expose the parallel runner's fault-tolerance knobs
(see :func:`repro.expt.exptools.execute`).

``--executor`` picks where points run (serial, local-procs, socket).
A distributed sweep is the same grid with a socket master::

    python -m repro.expt ... --executor socket --bind 0.0.0.0:7777

plus any number of workers, on any hosts::

    python -m repro.expt worker --connect master-host:7777

A worker exits 0 when the master sends NO_MORE_JOBS — or when no
master is reachable, so late workers after a finished sweep are
harmless.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EasypapError
from repro.expt.executors import EXECUTOR_NAMES, make_executor, parse_address, run_worker
from repro.expt.exptools import DEFAULT_CSV, execute

__all__ = ["build_sweep_parser", "build_worker_parser", "main"]


def _csv_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def build_sweep_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.expt",
        description="expTools parameter sweep: the cartesian product of all "
        "swept dimensions, run in parallel, appended to a results CSV.  "
        "('python -m repro.expt worker --connect HOST:PORT' starts a "
        "distributed sweep worker instead.)",
    )
    grid = p.add_argument_group("swept dimensions (comma-separated or repeated)")
    grid.add_argument("-k", "--kernel", action="append", default=None,
                      metavar="NAME[,NAME...]")
    grid.add_argument("-v", "--variant", action="append", default=None,
                      metavar="NAME[,NAME...]")
    grid.add_argument("-s", "--size", action="append", default=None,
                      metavar="DIM[,DIM...]")
    grid.add_argument("-g", "--grain", action="append", default=None,
                      metavar="G[,G...]")
    grid.add_argument("-i", "--iterations", action="append", default=None,
                      metavar="N[,N...]")
    grid.add_argument("-a", "--arg", action="append", default=None,
                      metavar="V[,V...]", help="kernel-specific parameter")
    grid.add_argument("--threads", action="append", default=None,
                      metavar="N[,N...]", help="OMP_NUM_THREADS values")
    grid.add_argument("--schedule", action="append", default=None, metavar="SPEC",
                      help="OMP_SCHEDULE value (repeat the flag per spec; specs "
                      "like 'dynamic,2' contain commas)")
    grid.add_argument("--backend", action="append", default=None,
                      metavar="NAME[,NAME...]",
                      help="execution backend(s) to sweep (sim, threads, procs)")
    grid.add_argument("--domain", action="append", default=None,
                      metavar="KIND[,KIND...]",
                      help="work domain(s) to sweep (grid, wavefront, "
                      "quadtree, slab3d); rows record the domain column")

    runner = p.add_argument_group("runner")
    runner.add_argument("-r", "--runs", type=int, default=1,
                        help="repetitions per configuration")
    runner.add_argument("-w", "--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    runner.add_argument("--executor", choices=EXECUTOR_NAMES, default=None,
                        help="where points run (default: serial for "
                        "--workers 1, local-procs otherwise)")
    runner.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="socket executor: master listen address "
                        "(default 127.0.0.1:0 = ephemeral port, printed "
                        "unless --quiet)")
    runner.add_argument("--lease-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="socket executor: requeue a dispatched job whose "
                        "worker goes silent this long")
    runner.add_argument("--max-requeues", type=int, default=2, metavar="N",
                        help="socket executor: dispatch attempts per job after "
                        "worker deaths before recording status=error")
    runner.add_argument("--resume", action="store_true",
                        help="skip points already recorded in the CSV")
    runner.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-run wall-clock budget")
    runner.add_argument("--retries", type=int, default=0,
                        help="attempts per point before recording status=error")
    runner.add_argument("--reuse-work", action="store_true",
                        help="capture work profiles once, re-simulate per config")
    runner.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist work profiles here (default: "
                        "$REPRO_WORK_CACHE, unset = in-memory only)")
    runner.add_argument("--csv", default=DEFAULT_CSV, metavar="PATH",
                        help=f"results database (default: {DEFAULT_CSV})")
    runner.add_argument("--machine", default="virtual",
                        help="machine label for CSV rows")
    runner.add_argument("-q", "--quiet", action="store_true",
                        help="no per-point progress lines")
    return p


def build_worker_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.expt worker",
        description="Distributed sweep worker: pulls jobs from a socket "
        "master, pushes result rows back, exits on NO_MORE_JOBS.",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the master's address (--bind on the sweep side)")
    p.add_argument("--heartbeat", type=float, default=5.0, metavar="SECONDS",
                   help="idle liveness ping interval while parked")
    p.add_argument("--connect-wait", type=float, default=10.0, metavar="SECONDS",
                   help="keep retrying the connection this long (workers may "
                   "start before the master binds)")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="no per-job progress lines")
    return p


def _grid(args: argparse.Namespace) -> tuple[dict, dict]:
    """The (easypap_options, omp_icv) dicts of the requested sweep."""
    options: dict[str, list] = {}
    flag_of = {
        "kernel": "--kernel ",
        "variant": "--variant ",
        "size": "--size ",
        "grain": "--grain ",
        "iterations": "--iterations ",
        "arg": "--arg ",
        "backend": "--backend ",
        "domain": "--domain ",
    }
    for attr, flag in flag_of.items():
        occurrences = getattr(args, attr)
        if occurrences is None:
            continue
        values: list[str] = []
        for occurrence in occurrences:
            values.extend(_csv_list(occurrence))
        if values:
            options[flag] = values
    icvs: dict[str, list] = {}
    if args.threads:
        threads: list[str] = []
        for occurrence in args.threads:
            threads.extend(_csv_list(occurrence))
        icvs["OMP_NUM_THREADS="] = threads
    if args.schedule:
        icvs["OMP_SCHEDULE="] = list(args.schedule)
    return options, icvs


def _worker_main(argv: list[str]) -> int:
    args = build_worker_parser().parse_args(argv)
    try:
        host, port = parse_address(args.connect)
    except EasypapError as exc:
        print(f"repro.expt worker: {exc}", file=sys.stderr)
        return 2
    return run_worker(
        host, port,
        heartbeat=args.heartbeat,
        connect_wait=args.connect_wait,
        verbose=not args.quiet,
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    args = build_sweep_parser().parse_args(argv)
    options, icvs = _grid(args)
    try:
        executor = args.executor
        if executor is not None or args.bind is not None:
            executor = make_executor(
                executor or "socket",
                workers=args.workers,
                bind=args.bind,
                lease_timeout=args.lease_timeout,
                max_requeues=args.max_requeues,
                verbose=not args.quiet,
            )
        rows = execute(
            "easypap",
            icvs,
            options,
            runs=args.runs,
            csv_path=args.csv,
            machine=args.machine,
            reuse_work=args.reuse_work,
            verbose=not args.quiet,
            workers=args.workers,
            resume=args.resume,
            timeout=args.timeout,
            retries=args.retries,
            cache_dir=args.cache_dir,
            executor=executor,
        )
    except EasypapError as exc:
        print(f"repro.expt: {exc}", file=sys.stderr)
        return 2
    failed = sum(1 for r in rows if r["status"] == "error")
    print(f"{len(rows)} points recorded to {args.csv}"
          + (f" ({failed} failed)" if failed else ""))
    return 1 if failed == len(rows) and rows else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
