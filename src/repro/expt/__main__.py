"""Entry point for ``python -m repro.expt`` (the sweep runner CLI)."""

from repro.expt.sweep_cli import main

if __name__ == "__main__":
    raise SystemExit(main())
