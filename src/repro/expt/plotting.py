"""PlotSpec renderers: text tables, ASCII charts, SVG line charts.

The SVG output reproduces the layout of paper Fig. 6: one sub-graph
per facet, shared y-axis, automatic legend, constant parameters listed
above the graphs.
"""

from __future__ import annotations

from repro.expt.easyplot import PlotSpec
from repro.view.colors import cpu_color
from repro.view.svg import SvgCanvas

__all__ = ["render_text", "render_ascii_chart", "render_svg"]


def render_text(spec: PlotSpec) -> str:
    """Tabular rendering: one table per facet, series as columns."""
    out = [spec.header()]
    for facet in spec.facets:
        if facet.title:
            out.append(f"\n== {facet.title} ==")
        xs = sorted({x for s in facet.series for x in s.xs}, key=lambda v: (str(type(v)), v))
        labels = [s.label for s in facet.series]
        widths = [max(len(lbl), 10) for lbl in labels]
        header = f"{spec.x:>10} | " + " | ".join(
            f"{l:>{w}}" for l, w in zip(labels, widths)
        )
        out.append(header)
        out.append("-" * len(header))
        for x in xs:
            cells = []
            for s, w in zip(facet.series, widths):
                v = s.point(x)
                cells.append(f"{v:>{w}.3f}" if v is not None else " " * (w - 1) + "-")
            out.append(f"{str(x):>10} | " + " | ".join(cells))
    return "\n".join(out)


def render_ascii_chart(spec: PlotSpec, height: int = 16, width: int = 60) -> str:
    """Quick terminal chart (one block per facet, series as letters)."""
    out = [spec.header()]
    for facet in spec.facets:
        if facet.title:
            out.append(f"-- {facet.title} --")
        pts = [(x, y, i) for i, s in enumerate(facet.series) for x, y in zip(s.xs, s.ys)]
        if not pts:
            out.append("(no data)")
            continue
        xs = sorted({p[0] for p in pts}, key=lambda v: (str(type(v)), v))
        ymax = max(p[1] for p in pts) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for x, y, i in pts:
            cx = int(xs.index(x) / max(len(xs) - 1, 1) * (width - 1))
            cy = height - 1 - int(y / ymax * (height - 1))
            grid[cy][cx] = chr(ord("A") + i % 26)
        out.append(f"ymax={ymax:.3f} ({spec.ylabel})")
        out.extend("|" + "".join(row) for row in grid)
        out.append("+" + "-" * width)
        out.append(" x: " + " ".join(str(x) for x in xs))
        for i, s in enumerate(facet.series):
            out.append(f"  {chr(ord('A') + i % 26)} = {s.label}")
    return "\n".join(out)


def render_svg(spec: PlotSpec, *, facet_width: float = 360.0, height: float = 300.0) -> SvgCanvas:
    """Fig. 6-style SVG: faceted line charts + legend + parameter line."""
    nfacets = max(len(spec.facets), 1)
    legend_h = 18.0 * max(
        (len(f.series) for f in spec.facets), default=0
    ) + 10
    total_w = facet_width * nfacets + 20
    total_h = height + legend_h + 60
    svg = SvgCanvas(total_w, total_h)
    svg.text(10, 16, spec.header(), size=11)

    # global y scale across facets (shared axis, like the paper's figure)
    ymax = max(
        (y + e for f in spec.facets for s in f.series for y, e in zip(s.ys, s.yerr)),
        default=1.0,
    ) or 1.0
    plot_top, plot_bottom = 40.0, 40.0 + height - 60
    plot_h = plot_bottom - plot_top

    for fi, facet in enumerate(spec.facets):
        ox = 10 + fi * facet_width + 40
        inner_w = facet_width - 70
        svg.text(ox + inner_w / 2, plot_top - 8, facet.title, anchor="middle", size=11)
        # axes
        svg.line(ox, plot_top, ox, plot_bottom, stroke="#404040")
        svg.line(ox, plot_bottom, ox + inner_w, plot_bottom, stroke="#404040")
        # y ticks
        for k in range(5):
            yv = ymax * k / 4
            yy = plot_bottom - plot_h * k / 4
            svg.line(ox - 3, yy, ox, yy, stroke="#404040")
            svg.text(ox - 6, yy + 4, f"{yv:.3g}", anchor="end", size=9)
        xs = sorted(
            {x for s in facet.series for x in s.xs},
            key=lambda v: (str(type(v)), v),
        )
        def xpos(x):
            if len(xs) <= 1:
                return ox + inner_w / 2
            return ox + xs.index(x) / (len(xs) - 1) * inner_w
        for x in xs:
            svg.text(xpos(x), plot_bottom + 14, str(x), anchor="middle", size=9)
        svg.text(ox + inner_w / 2, plot_bottom + 30, spec.x, anchor="middle", size=10)
        for si, s in enumerate(facet.series):
            r, g, b = cpu_color(si)
            color = f"rgb({r},{g},{b})"
            pts = [
                (xpos(x), plot_bottom - (y / ymax) * plot_h)
                for x, y in zip(s.xs, s.ys)
            ]
            if len(pts) > 1:
                svg.polyline(pts, stroke=color)
            for (px, py), err in zip(pts, s.yerr):
                svg.circle(px, py, 2.5, fill=color)
                if err > 0:
                    dy = (err / ymax) * plot_h
                    svg.line(px, py - dy, px, py + dy, stroke=color)

    # legend (series labels are identical across facets by construction)
    if spec.facets and spec.facets[0].series:
        ly = plot_bottom + 48
        svg.text(10, ly, "legend", size=10)
        for si, s in enumerate(spec.facets[0].series):
            r, g, b = cpu_color(si)
            yy = ly + 14 + si * 16
            svg.line(14, yy - 4, 34, yy - 4, stroke=f"rgb({r},{g},{b})", width=2)
            svg.text(40, yy, s.label, size=10)
    svg.text(10, 30, f"y: {spec.ylabel}", size=10)
    return svg
