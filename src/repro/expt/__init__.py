"""Experiment tools: expTools sweeps, the results CSV, easyplot."""

from repro.expt.csvdb import (
    PROVENANCE_COLUMNS,
    append_rows,
    filter_rows,
    locked,
    read_header,
    read_rows,
    strip_provenance,
    unique_values,
)
from repro.expt.easyplot import PlotFacet, PlotSeries, PlotSpec, build_plot
from repro.expt.executors import (
    EXECUTOR_NAMES,
    Executor,
    LocalProcsExecutor,
    SerialExecutor,
    SocketExecutor,
    make_executor,
    run_worker,
)
from repro.expt.exptools import (
    SweepTimeout,
    completed_points,
    execute,
    point_key,
    sweep_configs,
    sweep_points,
)
from repro.expt.plotting import render_ascii_chart, render_svg, render_text
from repro.expt.replay import WorkProfileCache, capture_log, replay_log

__all__ = [
    "PROVENANCE_COLUMNS",
    "append_rows",
    "filter_rows",
    "locked",
    "read_header",
    "read_rows",
    "strip_provenance",
    "unique_values",
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "LocalProcsExecutor",
    "SocketExecutor",
    "make_executor",
    "run_worker",
    "PlotFacet",
    "PlotSeries",
    "PlotSpec",
    "build_plot",
    "SweepTimeout",
    "completed_points",
    "execute",
    "point_key",
    "sweep_configs",
    "sweep_points",
    "render_ascii_chart",
    "render_svg",
    "render_text",
    "WorkProfileCache",
    "capture_log",
    "replay_log",
]
