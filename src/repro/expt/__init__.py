"""Experiment tools: expTools sweeps, the results CSV, easyplot."""

from repro.expt.csvdb import (
    append_rows,
    filter_rows,
    locked,
    read_header,
    read_rows,
    unique_values,
)
from repro.expt.easyplot import PlotFacet, PlotSeries, PlotSpec, build_plot
from repro.expt.exptools import (
    SweepTimeout,
    completed_points,
    execute,
    point_key,
    sweep_configs,
    sweep_points,
)
from repro.expt.plotting import render_ascii_chart, render_svg, render_text
from repro.expt.replay import WorkProfileCache, capture_log, replay_log

__all__ = [
    "append_rows",
    "filter_rows",
    "locked",
    "read_header",
    "read_rows",
    "unique_values",
    "PlotFacet",
    "PlotSeries",
    "PlotSpec",
    "build_plot",
    "SweepTimeout",
    "completed_points",
    "execute",
    "point_key",
    "sweep_configs",
    "sweep_points",
    "render_ascii_chart",
    "render_svg",
    "render_text",
    "WorkProfileCache",
    "capture_log",
    "replay_log",
]
