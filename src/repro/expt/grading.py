"""The grading harness: automated assessment of a student variant.

EASYPAP is a teaching tool; what instructors do with it at scale is
*grade*: is the student's variant correct, does it actually speed up,
is the load balanced?  :func:`grade_variant` runs that rubric —
correctness against the ``seq`` reference across several geometries and
schedules, speedup at growing team sizes, and load balance — and
returns a structured report.

Used programmatically or through ``tools/grade.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RunConfig
from repro.core.engine import run
from repro.core.kernel import get_kernel
from repro.errors import EasypapError

__all__ = ["CheckResult", "GradeReport", "grade_variant"]


@dataclass
class CheckResult:
    """One rubric item."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        return f"[{'PASS' if self.passed else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class GradeReport:
    """Full rubric outcome for one (kernel, variant)."""

    kernel: str
    variant: str
    checks: list[CheckResult] = field(default_factory=list)
    speedups: dict[int, float] = field(default_factory=dict)

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def total(self) -> int:
        return len(self.checks)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total

    def summary(self) -> str:
        lines = [f"grading {self.kernel}/{self.variant}: "
                 f"{self.passed}/{self.total} checks passed"]
        lines += [f"  {c}" for c in self.checks]
        if self.speedups:
            lines.append("  speedups: " + ", ".join(
                f"{t} threads -> x{s:.2f}" for t, s in sorted(self.speedups.items())
            ))
        return "\n".join(lines)


def _images_equal(a: np.ndarray, b: np.ndarray) -> tuple[bool, str]:
    if np.array_equal(a, b):
        return True, "identical images"
    bad = int((a != b).sum())
    return False, f"{bad} differing pixels"


def grade_variant(
    kernel: str,
    variant: str,
    *,
    dims: tuple[int, ...] = (32, 48, 96),
    tile: int = 8,
    iterations: int = 2,
    schedules: tuple[str, ...] = ("static", "dynamic", "nonmonotonic:dynamic"),
    threads: tuple[int, ...] = (2, 4, 8),
    min_speedup_per_thread: float = 0.5,
    arg: str | None = None,
    seed: int = 1,
) -> GradeReport:
    """Run the rubric; never raises for student mistakes — failures
    become failed checks (configuration errors still raise)."""
    report = GradeReport(kernel=kernel, variant=variant)
    get_kernel(kernel).compute_fn(variant)  # fail fast on unknown names

    def cfg(**kw) -> RunConfig:
        base = dict(kernel=kernel, variant=variant, tile_w=tile, tile_h=tile,
                    iterations=iterations, arg=arg, seed=seed)
        base.update(kw)
        return RunConfig(**base)

    # 1. correctness across image sizes (incl. one not divisible by tile)
    for dim in tuple(dims) + (dims[-1] - tile // 2,):
        try:
            ref = run(cfg(dim=dim, variant="seq", nthreads=1))
            got = run(cfg(dim=dim, nthreads=4))
            ok, detail = _images_equal(ref.image, got.image)
        except EasypapError as exc:
            ok, detail = False, f"raised {type(exc).__name__}: {exc}"
        report.checks.append(CheckResult(f"correct at dim={dim}", ok, detail))

    # 2. correctness under every schedule (catches order assumptions)
    for sched in schedules:
        try:
            ref = run(cfg(dim=dims[0], variant="seq", nthreads=1))
            got = run(cfg(dim=dims[0], nthreads=5, schedule=sched))
            ok, detail = _images_equal(ref.image, got.image)
        except EasypapError as exc:
            ok, detail = False, f"raised {type(exc).__name__}: {exc}"
        report.checks.append(CheckResult(f"correct under {sched}", ok, detail))

    # 3. determinism: same config twice -> same image and same time
    a = run(cfg(dim=dims[0], nthreads=4))
    b = run(cfg(dim=dims[0], nthreads=4))
    ok = bool(np.array_equal(a.image, b.image)) and a.elapsed == b.elapsed
    report.checks.append(CheckResult("deterministic", ok,
                                     "bit-identical reruns" if ok else "reruns differ"))

    # 4. scalability: speedup vs the 1-thread run of the same variant
    base = run(cfg(dim=dims[-1], nthreads=1, schedule="dynamic"))
    for t in threads:
        par = run(cfg(dim=dims[-1], nthreads=t, schedule="dynamic"))
        s = par.speedup_vs(base)
        report.speedups[t] = s
        ok = s >= min_speedup_per_thread * t
        report.checks.append(CheckResult(
            f"speedup at {t} threads", ok,
            f"x{s:.2f} (threshold x{min_speedup_per_thread * t:.1f})",
        ))

    # 5. load balance under the dynamic schedule
    mon = run(cfg(dim=dims[-1], nthreads=4, schedule="dynamic", monitoring=True))
    if mon.monitor is not None and mon.monitor.records:
        imb = mon.monitor.load_imbalance()
        ok = imb < 1.5
        report.checks.append(CheckResult(
            "load balance (dynamic)", ok, f"imbalance {imb:.2f} (threshold 1.5)"
        ))
    return report
