"""expTools: experiment automation (paper Fig. 5).

Students customize a python script specifying parameter ranges::

    from repro.expt.exptools import *

    easypap_options["--kernel "] = ["mandel"]
    easypap_options["--iterations "] = [10]
    easypap_options["--variant "] = ["omp_tiled"]
    easypap_options["--grain "] = [16, 32]
    omp_icv["OMP_NUM_THREADS="] = list(range(2, 13, 2))
    omp_icv["OMP_SCHEDULE="] = ["static", "guided", "dynamic,2",
                                "nonmonotonic:dynamic"]
    execute('easypap', omp_icv, easypap_options, runs=10)

``execute`` runs the full cartesian product (in-process — the kernels
and the CLI parser are the same ones the ``easypap`` command uses) and
appends one CSV row per run, with every parameter recorded, ready for
``easyplot``.

Large sweeps are a first-class workload, not a for-loop:

* ``workers=N`` fans the (configuration, repetition) grid out over a
  ``multiprocessing`` pool; results stream back and are appended to
  the CSV **as they finish**, so a killed sweep keeps every completed
  point (results are deterministic, so parallel and serial sweeps
  yield identical rows).
* ``resume=True`` skips points already recorded in the CSV (keyed by
  the configuration's ``csv_row()`` identity plus the ``run`` index) —
  re-invoking a crashed or extended sweep only runs what is missing.
  Rows recorded with ``status=error`` are retried.
* ``timeout=``/``retries=`` bound each point: a failing or overrunning
  run becomes a ``status=error`` row instead of aborting the sweep.
* ``reuse_work=True`` computes per-tile work once per (kernel, size,
  grain, iterations) and re-simulates the scheduling for each
  configuration — hundreds of configurations in seconds, with results
  identical to full runs (work is deterministic).  With ``cache_dir=``
  (or ``$REPRO_WORK_CACHE``) the captured profiles persist on disk and
  are shared across workers *and* across invocations.

The execution backend is sweepable like any other dimension
(``easypap_options["--backend "] = ["sim", "threads", "procs"]``; the
CSV records it per row).  A ``procs`` point spawns its persistent
worker pool once per sweep process and reuses it across every
subsequent ``procs`` point of matching width, so the pool-spawn cost is
paid once, not per point — leave ``reuse_work`` off for real backends,
whose wall-clock times must come from actual execution.
"""

from __future__ import annotations

import multiprocessing
import os
import shlex
import signal
import threading
import time
from contextlib import contextmanager
from itertools import product
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.cli import build_parser, config_from_args, parse_args_strict
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.errors import ConfigError
from repro.expt.csvdb import append_rows, read_header, read_rows
from repro.expt.replay import WorkProfileCache

__all__ = [
    "execute",
    "sweep_configs",
    "sweep_points",
    "completed_points",
    "easypap_options",
    "omp_icv",
    "DEFAULT_CSV",
    "SweepTimeout",
]

DEFAULT_CSV = "perf_data.csv"

#: module-level dicts so student scripts can mirror the paper verbatim
easypap_options: dict[str, list] = {}
omp_icv: dict[str, list] = {}

#: the columns identifying one sweep point (a configuration + repetition);
#: mirrors RunConfig.csv_row() + the run index
IDENTITY_COLUMNS = (
    "kernel", "variant", "dim", "tile_w", "tile_h", "iterations",
    "threads", "schedule", "backend", "arg", "np", "run",
)


class SweepTimeout(Exception):
    """A single sweep point exceeded its ``timeout=`` budget."""


def _combinations(spec: Mapping[str, Sequence]) -> list[dict[str, Any]]:
    keys = list(spec)
    out = []
    for values in product(*(spec[k] for k in keys)):
        out.append(dict(zip(keys, values)))
    return out


def _argv_of(options: Mapping[str, Any]) -> list[str]:
    """Turn {"--grain ": 16, ...} into an argv list (tolerates the
    trailing-space style of the paper's script)."""
    argv: list[str] = []
    for flag, value in options.items():
        argv.extend(shlex.split(flag.strip()))
        if value is not None and value != "":
            argv.append(str(value))
    return argv


def _env_of(icvs: Mapping[str, Any]) -> dict[str, str]:
    """Turn {"OMP_NUM_THREADS=": 4, ...} into an environment dict."""
    env = {}
    for key, value in icvs.items():
        env[key.rstrip("=").strip()] = str(value)
    return env


def sweep_configs(
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
) -> list[tuple[RunConfig, dict[str, str]]]:
    """All (RunConfig, env) pairs of the sweep's cartesian product.

    Malformed options raise :class:`ConfigError` (never ``SystemExit``:
    a typo in a sweep script must not kill the interpreter mid-sweep).
    """
    parser = build_parser()
    configs = []
    for opt_combo in _combinations(options or {}):
        argv = _argv_of(opt_combo)
        for icv_combo in _combinations(icvs or {}):
            env = _env_of(icv_combo)
            args = parse_args_strict(argv, parser)
            configs.append((config_from_args(args, env=env), env))
    return configs


# -- point identity (resume) --------------------------------------------------

def point_key(row: Mapping[str, Any]) -> tuple[str, ...]:
    """Canonical identity of a sweep point from a CSV row or row dict.

    Cells are compared as strings so typed reads (``4``) and config
    values (``"4"``) key identically.
    """
    return tuple(str(row.get(c, "")) for c in IDENTITY_COLUMNS)


def sweep_points(
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
    runs: int = 1,
) -> list[tuple[RunConfig, int]]:
    """The full (configuration, repetition) grid of a sweep."""
    return [
        (config, rep)
        for config, _env in sweep_configs(icvs, options)
        for rep in range(runs)
    ]


def completed_points(csv_path: str | os.PathLike) -> set[tuple[str, ...]]:
    """Identity keys of the points already recorded in ``csv_path``.

    ``status=error`` rows do not count (they are retried on resume);
    in files written with a ``status`` column, neither do truncated
    rows whose status cell never made it to disk.  Legacy files
    without the column count every row.
    """
    p = Path(csv_path)
    if not p.exists():
        return set()
    header = read_header(p)
    if header is None:
        return set()
    has_status = "status" in header
    done = set()
    for r in read_rows(p):
        status = r.get("status", "")
        if has_status and status != "ok":
            continue
        done.add(point_key(r))
    return done


# -- running one point --------------------------------------------------------

@contextmanager
def _time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`SweepTimeout` after ``seconds`` of wall time.

    Implemented with ``SIGALRM``, so it is enforced only on POSIX main
    threads (each pool worker's task runs on its main thread); elsewhere
    it degrades to a no-op rather than failing the sweep.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise SweepTimeout(f"run exceeded {seconds}s")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _execute_point(
    config: RunConfig,
    rep: int,
    *,
    cache: WorkProfileCache | None,
    machine: str,
    timeout: float | None,
    retries: int,
) -> dict:
    """One (configuration, repetition): a CSV row, never an exception.

    Failures and timeouts are retried up to ``retries`` times, then
    recorded as a ``status=error`` row so the rest of the sweep (and
    ``easyplot`` over its output) keeps working.
    """
    rep_cfg = config.with_(run_index=rep)
    row = dict(config.csv_row())
    row["machine"] = machine
    row["run"] = rep
    last_error = ""
    for _attempt in range(max(0, retries) + 1):
        try:
            with _time_limit(timeout):
                if cache is not None:
                    elapsed = cache.simulate(rep_cfg)
                    completed = rep_cfg.iterations
                    counters: dict = {}
                else:
                    result = run(rep_cfg)
                    elapsed = result.elapsed
                    completed = result.completed_iterations
                    counters = result.counters
        except SweepTimeout as exc:
            last_error = str(exc)
            continue
        except Exception as exc:
            last_error = f"{type(exc).__name__}: {exc}"
            continue
        row["time_us"] = round(elapsed * 1e6, 3)
        row["completed"] = completed
        # telemetry-bus counters: scheduling + channel health per point
        row["steals"] = int(counters.get("steals", 0))
        row["dropped_events"] = int(counters.get("dropped_events", 0))
        row["status"] = "ok"
        row["error"] = ""
        return row
    row["time_us"] = ""
    row["completed"] = 0
    row["steals"] = ""
    row["dropped_events"] = ""
    row["status"] = "error"
    row["error"] = last_error[:200]
    return row


# -- the worker-pool side -----------------------------------------------------

_WORKER_STATE: dict[str, Any] = {}


def _init_worker(reuse_work: bool, cache_dir, machine: str,
                 timeout: float | None, retries: int) -> None:
    _WORKER_STATE["cache"] = (
        WorkProfileCache(cache_dir=cache_dir) if reuse_work else None
    )
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["timeout"] = timeout
    _WORKER_STATE["retries"] = retries


def _pool_point(job: tuple[RunConfig, int]) -> dict:
    config, rep = job
    return _execute_point(
        config,
        rep,
        cache=_WORKER_STATE["cache"],
        machine=_WORKER_STATE["machine"],
        timeout=_WORKER_STATE["timeout"],
        retries=_WORKER_STATE["retries"],
    )


def _pool_context():
    """Fork where available (cheap, shares the kernel registry); spawn
    otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# -- the driver ---------------------------------------------------------------

def execute(
    prog: str = "easypap",
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
    runs: int = 1,
    *,
    csv_path: str | Path = DEFAULT_CSV,
    machine: str = "virtual",
    reuse_work: bool = False,
    verbose: bool = False,
    workers: int = 1,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 0,
    cache_dir: str | os.PathLike | None = None,
) -> list[dict]:
    """Run the sweep; returns (and appends to ``csv_path``) the new rows.

    ``prog`` is accepted for fidelity with the paper's script; only
    'easypap' is meaningful.  With ``resume=True`` the returned list
    holds only the points actually (re-)run this invocation; skipped
    points stay untouched in the CSV.
    """
    if prog not in ("easypap", "./run", "run"):
        raise ConfigError(f"unknown program {prog!r} (expected 'easypap')")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    icvs = icvs if icvs is not None else omp_icv
    options = options if options is not None else easypap_options
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_WORK_CACHE") or None

    jobs = sweep_points(icvs, options, runs)
    total = len(jobs)
    if resume:
        done = completed_points(csv_path)
        jobs = [
            (config, rep)
            for config, rep in jobs
            if point_key({**config.csv_row(), "run": rep}) not in done
        ]
        if verbose and len(jobs) < total:
            print(f"resume: {total - len(jobs)}/{total} points already recorded")

    rows: list[dict] = []
    started = time.perf_counter()

    def record(row: dict) -> None:
        append_rows(csv_path, [row])
        rows.append(row)
        if verbose:
            shown = (
                f"time={row['time_us']}us" if row["status"] == "ok"
                else f"error: {row['error']}"
            )
            print(
                f"[{len(rows)}/{len(jobs)}] kernel={row['kernel']} "
                f"threads={row['threads']} schedule={row['schedule']} "
                f"run={row['run']} {shown}"
            )

    if workers == 1 or len(jobs) <= 1:
        cache = WorkProfileCache(cache_dir=cache_dir) if reuse_work else None
        for config, rep in jobs:
            record(_execute_point(config, rep, cache=cache, machine=machine,
                                  timeout=timeout, retries=retries))
    else:
        if reuse_work:
            # keep each workload's points contiguous so one worker
            # captures the profile and replays the rest from memory
            jobs.sort(key=lambda j: (WorkProfileCache.workload_key(j[0]), j[1]))
            chunksize = max(1, len(jobs) // (workers * 4))
        else:
            chunksize = 1
        ctx = _pool_context()
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(reuse_work, cache_dir, machine, timeout, retries),
        ) as pool:
            for row in pool.imap_unordered(_pool_point, jobs, chunksize=chunksize):
                record(row)

    if verbose:
        wall = time.perf_counter() - started
        print(f"sweep: {len(rows)} points in {wall:.2f}s "
              f"({workers} worker{'s' if workers > 1 else ''})")
    return rows
