"""expTools: experiment automation (paper Fig. 5).

Students customize a python script specifying parameter ranges::

    from repro.expt.exptools import *

    easypap_options["--kernel "] = ["mandel"]
    easypap_options["--iterations "] = [10]
    easypap_options["--variant "] = ["omp_tiled"]
    easypap_options["--grain "] = [16, 32]
    omp_icv["OMP_NUM_THREADS="] = list(range(2, 13, 2))
    omp_icv["OMP_SCHEDULE="] = ["static", "guided", "dynamic,2",
                                "nonmonotonic:dynamic"]
    execute('easypap', omp_icv, easypap_options, runs=10)

``execute`` runs the full cartesian product (in-process — the kernels
and the CLI parser are the same ones the ``easypap`` command uses) and
appends one CSV row per run, with every parameter recorded, ready for
``easyplot``.

Large sweeps are a first-class workload, not a for-loop.  *Where* the
grid runs is a pluggable :class:`~repro.expt.executors.Executor`:

* ``executor="serial"`` (default for ``workers=1``) runs points inline;
* ``executor="local-procs"`` (default for ``workers=N``) fans out over
  a ``multiprocessing`` pool on this host;
* ``executor="socket"`` starts a TCP master; ``python -m repro.expt
  worker --connect host:port`` processes — on this host or across a
  cluster — pull jobs and push result rows back.

Whatever the executor, results stream into the CSV **as they finish**,
so a killed sweep keeps every completed point, and:

* ``resume=True`` skips points already recorded in the CSV (keyed by
  the configuration's ``csv_row()`` identity plus the ``run`` index) —
  re-invoking a crashed or extended sweep only runs what is missing.
  The identity excludes the provenance columns, so a sweep interrupted
  under one executor resumes under any other.  Rows recorded with
  ``status=error`` are retried.
* ``timeout=``/``retries=`` bound each point: a failing or overrunning
  run becomes a ``status=error`` row instead of aborting the sweep.
  The socket executor adds lease-based requeues on top: a point whose
  worker dies is re-dispatched (boundedly) to another worker.
* ``reuse_work=True`` computes per-tile work once per (kernel, size,
  grain, iterations) and re-simulates the scheduling for each
  configuration — hundreds of configurations in seconds, with results
  identical to full runs (work is deterministic).  With ``cache_dir=``
  (or ``$REPRO_WORK_CACHE``) the captured profiles persist on disk and
  are shared across workers *and* across invocations.  On top of the
  profiles sits the schedule-result memo: the replayed time of each
  fully-specified point is remembered too, so repeated and resumed
  points skip even the re-simulation — every row records ``memo``
  (hit/miss) and the sweep summary tallies ``memo_hits``/
  ``memo_misses``.

The execution backend is sweepable like any other dimension
(``easypap_options["--backend "] = ["sim", "threads", "procs"]``; the
CSV records it per row).  A ``procs`` point spawns its persistent
worker pool once per sweep process and reuses it across every
subsequent ``procs`` point of matching width, so the pool-spawn cost is
paid once, not per point — leave ``reuse_work`` off for real backends,
whose wall-clock times must come from actual execution.
"""

from __future__ import annotations

import os
import shlex
import time
from itertools import product
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.cli import build_parser, config_from_args, parse_args_strict
from repro.core.config import RunConfig
from repro.errors import ConfigError
from repro.expt.csvdb import append_rows, read_header, read_rows
from repro.expt.executors import (
    Executor,
    RunOptions,
    SweepJob,
    SweepTimeout,
    make_executor,
)

__all__ = [
    "execute",
    "sweep_configs",
    "sweep_points",
    "completed_points",
    "easypap_options",
    "omp_icv",
    "DEFAULT_CSV",
    "SweepTimeout",
]

DEFAULT_CSV = "perf_data.csv"

#: module-level dicts so student scripts can mirror the paper verbatim
easypap_options: dict[str, list] = {}
omp_icv: dict[str, list] = {}

#: the columns identifying one sweep point (a configuration + repetition);
#: mirrors RunConfig.csv_row() + the run index.  Provenance columns
#: (executor, worker_id, machine) are deliberately excluded: where a
#: point ran must not change *whether* it ran.
IDENTITY_COLUMNS = (
    "kernel", "variant", "dim", "tile_w", "tile_h", "iterations",
    "threads", "schedule", "backend", "arg", "np", "domain", "run",
)


def _combinations(spec: Mapping[str, Sequence]) -> list[dict[str, Any]]:
    keys = list(spec)
    out = []
    for values in product(*(spec[k] for k in keys)):
        out.append(dict(zip(keys, values)))
    return out


def _argv_of(options: Mapping[str, Any]) -> list[str]:
    """Turn {"--grain ": 16, ...} into an argv list (tolerates the
    trailing-space style of the paper's script)."""
    argv: list[str] = []
    for flag, value in options.items():
        argv.extend(shlex.split(flag.strip()))
        if value is not None and value != "":
            argv.append(str(value))
    return argv


def _env_of(icvs: Mapping[str, Any]) -> dict[str, str]:
    """Turn {"OMP_NUM_THREADS=": 4, ...} into an environment dict."""
    env = {}
    for key, value in icvs.items():
        env[key.rstrip("=").strip()] = str(value)
    return env


def sweep_configs(
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
) -> list[tuple[RunConfig, dict[str, str]]]:
    """All (RunConfig, env) pairs of the sweep's cartesian product.

    Malformed options raise :class:`ConfigError` (never ``SystemExit``:
    a typo in a sweep script must not kill the interpreter mid-sweep).
    """
    parser = build_parser()
    configs = []
    for opt_combo in _combinations(options or {}):
        argv = _argv_of(opt_combo)
        for icv_combo in _combinations(icvs or {}):
            env = _env_of(icv_combo)
            args = parse_args_strict(argv, parser)
            configs.append((config_from_args(args, env=env), env))
    return configs


# -- point identity (resume) --------------------------------------------------

def point_key(row: Mapping[str, Any]) -> tuple[str, ...]:
    """Canonical identity of a sweep point from a CSV row or row dict.

    Cells are compared as strings so typed reads (``4``) and config
    values (``"4"``) key identically.  The ``domain`` column joined the
    identity later than the others; rows from older CSVs (no such
    column) key as the default ``"grid"``, so resuming a legacy sweep
    keeps recognizing its completed points.
    """
    key = []
    for c in IDENTITY_COLUMNS:
        v = str(row.get(c, ""))
        if c == "domain" and v == "":
            v = "grid"
        key.append(v)
    return tuple(key)


def sweep_points(
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
    runs: int = 1,
) -> list[tuple[RunConfig, int]]:
    """The full (configuration, repetition) grid of a sweep."""
    return [
        (config, rep)
        for config, _env in sweep_configs(icvs, options)
        for rep in range(runs)
    ]


def completed_points(csv_path: str | os.PathLike) -> set[tuple[str, ...]]:
    """Identity keys of the points already recorded in ``csv_path``.

    ``status=error`` rows do not count (they are retried on resume);
    in files written with a ``status`` column, neither do truncated
    rows whose status cell never made it to disk.  Legacy files
    without the column count every row.
    """
    p = Path(csv_path)
    if not p.exists():
        return set()
    header = read_header(p)
    if header is None:
        return set()
    has_status = "status" in header
    done = set()
    for r in read_rows(p):
        status = r.get("status", "")
        if has_status and status != "ok":
            continue
        done.add(point_key(r))
    return done


# -- the driver ---------------------------------------------------------------

def _resolve_executor(
    executor: str | Executor | None, workers: int, n_jobs: int, verbose: bool,
) -> Executor:
    """Pick the executor: an instance is used as-is, a name is built
    with defaults, None keeps the historical ``workers=`` behavior."""
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        executor = "serial" if workers == 1 or n_jobs <= 1 else "local-procs"
    if not isinstance(executor, str):
        raise ConfigError(f"executor must be a name or an Executor, got {executor!r}")
    return make_executor(executor, workers=workers, verbose=verbose)


def execute(
    prog: str = "easypap",
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
    runs: int = 1,
    *,
    csv_path: str | Path = DEFAULT_CSV,
    machine: str = "virtual",
    reuse_work: bool = False,
    verbose: bool = False,
    workers: int = 1,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 0,
    cache_dir: str | os.PathLike | None = None,
    executor: str | Executor | None = None,
) -> list[dict]:
    """Run the sweep; returns (and appends to ``csv_path``) the new rows.

    ``prog`` is accepted for fidelity with the paper's script; only
    'easypap' is meaningful.  With ``resume=True`` the returned list
    holds only the points actually (re-)run this invocation; skipped
    points stay untouched in the CSV.  ``executor`` selects where
    points run — a name from ``EXECUTOR_NAMES`` or a configured
    :class:`~repro.expt.executors.Executor` instance (e.g. a
    ``SocketExecutor`` whose address workers were already pointed at);
    by default ``workers=1`` runs serially and ``workers=N`` uses the
    local process pool.
    """
    if prog not in ("easypap", "./run", "run"):
        raise ConfigError(f"unknown program {prog!r} (expected 'easypap')")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    icvs = icvs if icvs is not None else omp_icv
    options = options if options is not None else easypap_options
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_WORK_CACHE") or None

    grid = sweep_points(icvs, options, runs)
    total = len(grid)
    if resume:
        done = completed_points(csv_path)
        grid = [
            (config, rep)
            for config, rep in grid
            if point_key({**config.csv_row(), "run": rep}) not in done
        ]
        if verbose and len(grid) < total:
            print(f"resume: {total - len(grid)}/{total} points already recorded")

    jobs = [SweepJob(i, config, rep) for i, (config, rep) in enumerate(grid)]
    exec_obj = _resolve_executor(executor, workers, len(jobs), verbose)
    exec_obj.configure(RunOptions(
        machine=machine,
        timeout=timeout,
        retries=retries,
        reuse_work=reuse_work,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    ))

    rows: list[dict] = []
    started = time.perf_counter()

    def record(row: dict) -> None:
        append_rows(csv_path, [row])
        rows.append(row)
        # schedule-result memo telemetry: each row says whether the
        # memo served it; the executor counters aggregate the tally
        # (works across executors — serial, pool workers, sockets)
        memo = row.get("memo", "")
        if memo == "hit":
            exec_obj.counters["memo_hits"] = exec_obj.counters.get("memo_hits", 0) + 1
        elif memo == "miss":
            exec_obj.counters["memo_misses"] = (
                exec_obj.counters.get("memo_misses", 0) + 1
            )
        if verbose:
            shown = (
                f"time={row['time_us']}us" if row["status"] == "ok"
                else f"error: {row['error']}"
            )
            print(
                f"[{len(rows)}/{len(jobs)}] kernel={row['kernel']} "
                f"threads={row['threads']} schedule={row['schedule']} "
                f"run={row['run']} {shown}"
            )

    try:
        for job in jobs:
            exec_obj.submit(job)
        for row in exec_obj.drain():
            record(row)
    finally:
        exec_obj.close()

    if verbose:
        wall = time.perf_counter() - started
        fabric = ", ".join(
            f"{k}={v}" for k, v in exec_obj.counters.items() if v
        )
        print(f"sweep: {len(rows)} points in {wall:.2f}s "
              f"(executor={exec_obj.name}"
              + (f", {fabric}" if fabric else "") + ")")
    return rows
