"""expTools: experiment automation (paper Fig. 5).

Students customize a python script specifying parameter ranges::

    from repro.expt.exptools import *

    easypap_options["--kernel "] = ["mandel"]
    easypap_options["--iterations "] = [10]
    easypap_options["--variant "] = ["omp_tiled"]
    easypap_options["--grain "] = [16, 32]
    omp_icv["OMP_NUM_THREADS="] = list(range(2, 13, 2))
    omp_icv["OMP_SCHEDULE="] = ["static", "guided", "dynamic,2",
                                "nonmonotonic:dynamic"]
    execute('easypap', omp_icv, easypap_options, runs=10)

``execute`` runs the full cartesian product (in-process — the kernels
and the CLI parser are the same ones the ``easypap`` command uses) and
appends one CSV row per run, with every parameter recorded, ready for
``easyplot``.

For sweeps where only the *schedule dimensions* vary (threads,
schedule), pass ``reuse_work=True``: per-tile work is computed once per
(kernel, size, grain, iterations) and the scheduling is re-simulated for
each configuration — hundreds of configurations in seconds, with
results identical to full runs (work is deterministic).
"""

from __future__ import annotations

import shlex
import time
from itertools import product
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.cli import build_parser, config_from_args
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.errors import ConfigError
from repro.expt.csvdb import append_rows
from repro.expt.replay import WorkProfileCache

__all__ = ["execute", "sweep_configs", "easypap_options", "omp_icv", "DEFAULT_CSV"]

DEFAULT_CSV = "perf_data.csv"

#: module-level dicts so student scripts can mirror the paper verbatim
easypap_options: dict[str, list] = {}
omp_icv: dict[str, list] = {}


def _combinations(spec: Mapping[str, Sequence]) -> list[dict[str, Any]]:
    keys = list(spec)
    out = []
    for values in product(*(spec[k] for k in keys)):
        out.append(dict(zip(keys, values)))
    return out


def _argv_of(options: Mapping[str, Any]) -> list[str]:
    """Turn {"--grain ": 16, ...} into an argv list (tolerates the
    trailing-space style of the paper's script)."""
    argv: list[str] = []
    for flag, value in options.items():
        argv.extend(shlex.split(flag.strip()))
        if value is not None and value != "":
            argv.append(str(value))
    return argv


def _env_of(icvs: Mapping[str, Any]) -> dict[str, str]:
    """Turn {"OMP_NUM_THREADS=": 4, ...} into an environment dict."""
    env = {}
    for key, value in icvs.items():
        env[key.rstrip("=").strip()] = str(value)
    return env


def sweep_configs(
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
) -> list[tuple[RunConfig, dict[str, str]]]:
    """All (RunConfig, env) pairs of the sweep's cartesian product."""
    parser = build_parser()
    configs = []
    for opt_combo in _combinations(options or {}):
        argv = _argv_of(opt_combo)
        for icv_combo in _combinations(icvs or {}):
            env = _env_of(icv_combo)
            args = parser.parse_args(argv)
            configs.append((config_from_args(args, env=env), env))
    return configs


def execute(
    prog: str = "easypap",
    icvs: Mapping[str, Sequence] | None = None,
    options: Mapping[str, Sequence] | None = None,
    runs: int = 1,
    *,
    csv_path: str | Path = DEFAULT_CSV,
    machine: str = "virtual",
    reuse_work: bool = False,
    verbose: bool = False,
) -> list[dict]:
    """Run the sweep; returns (and appends to ``csv_path``) the rows.

    ``prog`` is accepted for fidelity with the paper's script; only
    'easypap' is meaningful.
    """
    if prog not in ("easypap", "./run", "run"):
        raise ConfigError(f"unknown program {prog!r} (expected 'easypap')")
    icvs = icvs if icvs is not None else omp_icv
    options = options if options is not None else easypap_options
    cache = WorkProfileCache() if reuse_work else None
    rows: list[dict] = []
    for config, env in sweep_configs(icvs, options):
        for rep in range(runs):
            rep_cfg = config.with_(run_index=rep)
            started = time.perf_counter()
            if cache is not None:
                elapsed = cache.simulate(rep_cfg)
                completed = rep_cfg.iterations
            else:
                result = run(rep_cfg)
                elapsed = result.elapsed
                completed = result.completed_iterations
            row = dict(config.csv_row())
            row["machine"] = machine
            row["time_us"] = round(elapsed * 1e6, 3)
            row["run"] = rep
            row["completed"] = completed
            rows.append(row)
            if verbose:
                real = time.perf_counter() - started
                print(
                    f"[{len(rows)}] {config.label()} run={rep} "
                    f"time={elapsed * 1e3:.3f} ms (took {real:.2f}s)"
                )
    append_rows(csv_path, rows)
    return rows
