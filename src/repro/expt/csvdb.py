"""The performance-results CSV database.

EASYPAP's performance mode appends every run — completion time plus
all execution and configuration parameters — to a CSV file (paper
§II-C).  This module owns that file format: append-friendly writes,
typed reads, filtering and grouping helpers used by ``easyplot``.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Any, Iterable

from repro.errors import PlotError

__all__ = ["append_rows", "read_rows", "filter_rows", "unique_values", "column_types"]


def _parse_cell(text: str) -> Any:
    """Best-effort typing: int, then float, then string."""
    if text == "":
        return ""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def append_rows(path: str | os.PathLike, rows: Iterable[dict]) -> Path:
    """Append dict rows to ``path``, creating it (with a header) if needed.

    New columns appearing later are supported by rewriting the header
    union; missing cells become empty strings — sweeps evolve, old data
    stays loadable.
    """
    rows = [dict(r) for r in rows]
    if not rows:
        return Path(path)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    existing: list[dict] = read_rows(p) if p.exists() else []
    cols: list[str] = []
    for r in existing + rows:
        for k in r:
            if k not in cols:
                cols.append(k)
    with p.open("w", newline="", encoding="utf-8") as fh:
        w = csv.DictWriter(fh, fieldnames=cols, restval="")
        w.writeheader()
        for r in existing + rows:
            w.writerow(r)
    return p


def read_rows(path: str | os.PathLike) -> list[dict]:
    """Read a results CSV with typed cells."""
    p = Path(path)
    if not p.exists():
        raise PlotError(f"results file not found: {p}")
    with p.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        return [
            {k: _parse_cell(v if v is not None else "") for k, v in row.items()}
            for row in reader
        ]


def filter_rows(rows: list[dict], **criteria: Any) -> list[dict]:
    """Rows matching every criterion (value, or list of accepted values)."""
    out = []
    for r in rows:
        ok = True
        for k, v in criteria.items():
            if v is None:
                continue
            cell = r.get(k)
            accepted = v if isinstance(v, (list, tuple, set)) else (v,)
            if cell not in accepted:
                ok = False
                break
        if ok:
            out.append(r)
    return out


def unique_values(rows: list[dict], column: str) -> list[Any]:
    """Distinct values of a column, in stable first-seen order."""
    seen: list[Any] = []
    for r in rows:
        v = r.get(column)
        if v not in seen:
            seen.append(v)
    return seen


def column_types(rows: list[dict]) -> dict[str, type]:
    """Dominant python type per column (diagnostics)."""
    out: dict[str, type] = {}
    for r in rows:
        for k, v in r.items():
            out.setdefault(k, type(v))
    return out
