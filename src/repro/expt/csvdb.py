"""The performance-results CSV database.

EASYPAP's performance mode appends every run — completion time plus
all execution and configuration parameters — to a CSV file (paper
§II-C).  This module owns that file format: crash-safe appends, typed
reads, filtering and grouping helpers used by ``easyplot``.

Durability model (what the parallel sweep runner relies on):

* When the incoming rows fit the existing header, :func:`append_rows`
  is a **true append** — one line-buffered write per row, never
  touching data already on disk.  A process killed mid-append loses at
  most its own last row; everything previously recorded survives.
* When the column set must grow (sweeps evolve), the file is rewritten
  to a temporary sibling and swapped in with :func:`os.replace`, so
  readers always see either the old or the new complete file.
* Writers serialize on an advisory ``flock`` over a ``<name>.lock``
  sidecar (see :func:`locked`), so concurrent sweep processes can
  share one database without interleaving or losing rows.
"""

from __future__ import annotations

import csv
import math
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import PlotError

try:  # POSIX only; on other platforms writers fall back to best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "append_rows",
    "read_rows",
    "read_header",
    "filter_rows",
    "unique_values",
    "column_types",
    "locked",
    "PROVENANCE_COLUMNS",
    "strip_provenance",
]

#: columns recording *where and how* a row was produced, not *what*
#: was measured: the executor that dispatched the point, the worker
#: process that ran it, the execution tier the run resolved to
#: (fastpath/jit/interpreted — all bit-identical by construction) and
#: whether the schedule-result memo served the point ("hit"/"miss"/"").
#: Cross-executor sweeps are row-identical modulo these columns, and
#: the resume identity excludes them, so databases written under
#: different executors (or numba availabilities, or warm vs cold
#: caches) merge cleanly.
PROVENANCE_COLUMNS = ("executor", "worker_id", "jit_tier", "memo")


def strip_provenance(row: dict) -> dict:
    """A copy of ``row`` without the provenance columns (comparisons
    across executors, deduplication of merged databases)."""
    return {k: v for k, v in row.items() if k not in PROVENANCE_COLUMNS}

#: spellings float() accepts but that must stay strings: a cell reading
#: "nan" must not NaN-poison easyplot group keys (NaN != NaN, so every
#: such row would land in its own group), and "inf" must not merge
#: distinct labels into one float
_NONFINITE_SPELLINGS = frozenset(["nan", "inf", "infinity"])


def _parse_cell(text: str) -> Any:
    """Best-effort typing: int, then finite float, then string.

    Only values that round-trip are coerced: any spelling of a
    non-finite float (``nan``/``inf``/``infinity``, any case or sign)
    is kept as a string, so ``read → write → read`` is the identity on
    cell values.
    """
    if text == "":
        return ""
    try:
        return int(text)
    except ValueError:
        pass
    if text.strip().lstrip("+-").lower() in _NONFINITE_SPELLINGS:
        return text
    try:
        value = float(text)
    except ValueError:
        return text
    if not math.isfinite(value):  # pragma: no cover - guarded above
        return text
    return value


@contextmanager
def locked(path: str | os.PathLike) -> Iterator[None]:
    """Advisory exclusive lock serializing writers of ``path``.

    The lock lives on a ``<name>.lock`` sidecar so the database file
    itself is only ever touched by whole-row appends or atomic
    replaces.  Reentrant use in one process is not supported; where
    ``fcntl`` is unavailable the lock degrades to a no-op (single
    writer assumed).
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = p.with_name(p.name + ".lock")
    with lock_path.open("a") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def read_header(path: str | os.PathLike) -> list[str] | None:
    """The column list of ``path``, or None for a missing/empty file."""
    p = Path(path)
    if not p.exists():
        return None
    with p.open("r", newline="", encoding="utf-8") as fh:
        try:
            return next(csv.reader(fh))
        except StopIteration:
            return None


def _read_raw(p: Path) -> list[dict]:
    """Rows as raw strings (used by the rewrite path so existing cells
    are preserved byte-for-byte rather than retyped and reformatted)."""
    with p.open("r", newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))


def append_rows(path: str | os.PathLike, rows: Iterable[dict]) -> Path:
    """Append dict rows to ``path``, creating it (with a header) if needed.

    New columns appearing later are supported by an atomic rewrite with
    the header union; missing cells become empty strings — sweeps
    evolve, old data stays loadable.  When the columns already fit, the
    write is a true O(rows) append (the historical implementation
    re-read and rewrote the whole file on every call).
    """
    rows = [dict(r) for r in rows]
    if not rows:
        return Path(path)
    p = Path(path)
    with locked(p):
        header = read_header(p)
        new_cols: list[str] = []
        for r in rows:
            for k in r:
                if (header is None or k not in header) and k not in new_cols:
                    new_cols.append(k)

        if header is not None and not new_cols:
            # fast path: line-buffered so each row reaches the OS as a
            # unit — a kill mid-sweep can only lose the row in flight
            with p.open("a", newline="", encoding="utf-8", buffering=1) as fh:
                w = csv.DictWriter(fh, fieldnames=header, restval="")
                for r in rows:
                    w.writerow(r)
            return p

        cols = (header or []) + new_cols
        existing = _read_raw(p) if header is not None else []
        tmp = p.with_name(f"{p.name}.tmp.{os.getpid()}")
        try:
            with tmp.open("w", newline="", encoding="utf-8") as fh:
                w = csv.DictWriter(fh, fieldnames=cols, restval="")
                w.writeheader()
                for r in existing + rows:
                    w.writerow(r)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, p)
        finally:
            tmp.unlink(missing_ok=True)
    return p


def read_rows(path: str | os.PathLike) -> list[dict]:
    """Read a results CSV with typed cells."""
    p = Path(path)
    if not p.exists():
        raise PlotError(f"results file not found: {p}")
    with p.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        return [
            {k: _parse_cell(v if v is not None else "") for k, v in row.items() if k is not None}
            for row in reader
        ]


def filter_rows(rows: list[dict], **criteria: Any) -> list[dict]:
    """Rows matching every criterion (value, or list of accepted values)."""
    out = []
    for r in rows:
        ok = True
        for k, v in criteria.items():
            if v is None:
                continue
            cell = r.get(k)
            accepted = v if isinstance(v, (list, tuple, set)) else (v,)
            if cell not in accepted:
                ok = False
                break
        if ok:
            out.append(r)
    return out


def unique_values(rows: list[dict], column: str) -> list[Any]:
    """Distinct values of a column, in stable first-seen order."""
    seen: list[Any] = []
    for r in rows:
        v = r.get(column)
        if v not in seen:
            seen.append(v)
    return seen


def column_types(rows: list[dict]) -> dict[str, type]:
    """Dominant python type per column (diagnostics)."""
    out: dict[str, type] = {}
    for r in rows:
        for k, v in r.items():
            out.setdefault(k, type(v))
    return out
