"""The socket executor: a TCP rank-0-style master and pull-model workers.

Deployment is one master plus any number of workers, on any hosts::

    # on the master host (binds, prints the address, runs the sweep)
    python -m repro.expt -k mandel ... --executor socket --bind 0.0.0.0:7777

    # on each worker host (N processes per host for N cores)
    python -m repro.expt worker --connect master-host:7777

Workers *pull*: each sends ``REQUEST_JOB``, receives a ``JOB`` (the
pickled configuration, repetition index and sweep-wide run options),
executes it through the same :func:`~repro.expt.executors.base.run_point`
path every other executor uses, pushes a ``RESULT`` row and asks
again.  The master streams rows into the flock-safe csvdb as they
arrive, so the database is complete-to-date at every instant.

Robustness model (what the fault-injection tests pin down):

* every dispatched job carries a **lease** — worker death (EOF on its
  connection) or a missed lease deadline returns the job to the queue
  and another worker re-runs it;
* requeues are **bounded** (``max_requeues``): a point whose workers
  keep dying becomes a ``status=error`` row, never an endless loop;
* results are deduplicated by job id, so a revoked lease whose worker
  was merely slow cannot produce a duplicate CSV row;
* parked workers (grid temporarily empty while leases are pending)
  send ``HEARTBEAT`` frames and wait; when the grid resolves they get
  ``NO_MORE_JOBS`` and exit 0 — as does a worker connecting after the
  sweep finished (connection refused means the master is gone, which a
  worker treats as "sweep over", not an error);
* a killed master loses nothing that reached the CSV: re-running the
  sweep with ``resume=True`` (under *any* executor) finishes exactly
  the missing points.
"""

from __future__ import annotations

import queue
import select
import socket
import threading
import time
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError
from repro.expt.executors.base import (
    Executor,
    RunOptions,
    SweepJob,
    error_row,
    run_point,
    worker_identity,
)
from repro.expt.executors.protocol import (
    HEARTBEAT,
    JOB,
    MESSAGE_NAMES,
    NO_MORE_JOBS,
    REQUEST_JOB,
    RESULT,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["SocketExecutor", "run_worker", "parse_address"]


def parse_address(text: str) -> tuple[str, int]:
    """``host:port`` → (host, port); raises ConfigError on junk."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(f"expected HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ConfigError(f"bad port in {text!r}") from None


@dataclass
class _Lease:
    job_id: int
    worker_id: str
    deadline: float
    conn: socket.socket


def _shutdown(conn: socket.socket) -> None:
    """Wake any thread blocked in recv on ``conn``, then close it."""
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:  # pragma: no cover - close rarely fails
        pass


class SocketExecutor(Executor):
    """TCP master for the ``socket`` executor (see module docstring).

    Binds immediately, so :attr:`address` is known before any worker
    starts; ``port=0`` picks a free ephemeral port (tests, single-host
    use).  One thread accepts connections and one serves each worker;
    all shared state lives behind one lock + condition.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = 300.0,
        max_requeues: int = 2,
        linger: float = 5.0,
        verbose: bool = False,
    ) -> None:
        super().__init__()
        if lease_timeout <= 0:
            raise ConfigError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_requeues < 0:
            raise ConfigError(f"max_requeues must be >= 0, got {max_requeues}")
        self.lease_timeout = lease_timeout
        self.max_requeues = max_requeues
        self.linger = linger
        self.verbose = verbose

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[int] = []  # job_ids ready to dispatch (FIFO)
        self._by_id: dict[int, SweepJob] = {}
        self._leases: dict[int, _Lease] = {}  # keyed by id(conn)
        self._attempts: dict[int, int] = {}  # failed leases per job
        self._resolved: set[int] = set()
        self._results: "queue.Queue[dict]" = queue.Queue()
        self._total: int | None = None  # set once drain starts
        self._done = False
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        if self.verbose:
            print(f"socket master listening on {self.address[0]}:{self.address[1]}",
                  flush=True)

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    # -- queue + lease bookkeeping (all under self._lock) ---------------------

    def submit(self, job: SweepJob) -> None:
        super().submit(job)
        with self._cond:
            self._by_id[job.job_id] = job
            self._queue.append(job.job_id)
            self._cond.notify()

    def _checkout(self, conn: socket.socket, worker_id: str) -> SweepJob | None:
        """Next job for a requesting worker; blocks while the queue is
        empty but leases are pending; None once the grid is resolved."""
        with self._cond:
            while True:
                if self._queue:
                    job_id = self._queue.pop(0)
                    self._leases[id(conn)] = _Lease(
                        job_id, worker_id,
                        time.monotonic() + self.lease_timeout, conn,
                    )
                    self.counters["jobs_dispatched"] += 1
                    return self._by_id[job_id]
                if self._done or self._closed:
                    return None
                self._cond.wait(0.2)

    def _mark_resolved_locked(self, job_id: int) -> None:
        self._resolved.add(job_id)
        if self._total is not None and len(self._resolved) >= self._total:
            self._done = True
            self._cond.notify_all()

    def _revoke_locked(self, lease: _Lease, reason: str) -> None:
        """A lease failed (worker died / deadline passed): requeue the
        job, or give up with a status=error row after max_requeues."""
        if lease.job_id in self._resolved:
            return
        attempts = self._attempts.get(lease.job_id, 0) + 1
        self._attempts[lease.job_id] = attempts
        job = self._by_id[lease.job_id]
        if attempts > self.max_requeues:
            self._results.put(error_row(
                job.config, job.rep, self.options.machine,
                f"{reason}; gave up after {attempts} dispatch attempts",
                worker_id=lease.worker_id,
            ))
            self._mark_resolved_locked(lease.job_id)
            if self.verbose:
                print(f"socket master: job {lease.job_id} abandoned ({reason})",
                      flush=True)
        else:
            self.counters["jobs_requeued"] += 1
            self._queue.append(lease.job_id)
            self._cond.notify()
            if self.verbose:
                print(f"socket master: job {lease.job_id} requeued ({reason})",
                      flush=True)

    def _expire_leases(self) -> None:
        now = time.monotonic()
        stale: list[socket.socket] = []
        with self._cond:
            for key, lease in list(self._leases.items()):
                if lease.deadline <= now:
                    del self._leases[key]
                    self._revoke_locked(lease, "lease expired")
                    stale.append(lease.conn)
        for conn in stale:  # outside the lock: closing wakes the handler
            _shutdown(conn)

    # -- connection handling ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    _shutdown(conn)
                    return
                self._conns.add(conn)
                t = threading.Thread(target=self._serve, args=(conn,), daemon=True)
                self._threads.append(t)
            t.start()

    def _serve(self, conn: socket.socket) -> None:
        worker_id = ""
        graceful = False
        try:
            while True:
                msg = recv_message(conn)
                if msg is None:
                    return  # worker closed the connection
                mtype, payload = msg
                if mtype == HEARTBEAT:
                    continue
                if mtype == REQUEST_JOB:
                    worker_id = str((payload or {}).get("worker_id", worker_id))
                    job = self._checkout(conn, worker_id)
                    if job is None:
                        send_message(conn, NO_MORE_JOBS)
                        graceful = True
                        return
                    send_message(conn, JOB, {
                        "job_id": job.job_id,
                        "config": job.config,
                        "rep": job.rep,
                        "options": self.options,
                    })
                elif mtype == RESULT:
                    job_id = int(payload["job_id"])
                    with self._cond:
                        lease = self._leases.pop(id(conn), None)
                        if lease is not None and lease.job_id != job_id:
                            # a result for a job this conn no longer
                            # leases: keep the lease bookkeeping honest
                            self._leases[id(conn)] = lease
                        if job_id not in self._resolved:
                            self._results.put(dict(payload["row"]))
                            self._mark_resolved_locked(job_id)
                        # else: duplicate from a revoked lease — dropped
                else:
                    raise ProtocolError(
                        f"unexpected {MESSAGE_NAMES[mtype]} from worker"
                    )
        except (ProtocolError, OSError) as exc:
            if self.verbose:
                print(f"socket master: worker {worker_id or '?'} dropped: {exc}",
                      flush=True)
        finally:
            with self._cond:
                lease = self._leases.pop(id(conn), None)
                if lease is not None:
                    self._revoke_locked(lease, f"worker {worker_id or '?'} disconnected")
                if worker_id and not graceful:
                    self.counters["worker_disconnects"] += 1
                self._conns.discard(conn)
            _shutdown(conn)

    # -- the driver side -------------------------------------------------------

    def drain(self) -> Iterator[dict]:
        with self._cond:
            if self._closed:
                raise ConfigError("socket executor already closed")
            self._total = len(self.jobs)
            if self._total == len(self._resolved):
                self._done = True
                self._cond.notify_all()
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        with self._lock:
            self._threads.append(acceptor)
        acceptor.start()
        yielded = 0
        total = len(self.jobs)
        while yielded < total:
            try:
                row = self._results.get(timeout=0.2)
            except queue.Empty:
                with self._lock:
                    if self._closed:
                        return
                self._expire_leases()
                continue
            yielded += 1
            yield self._stamp(row)
        # grid resolved: let connected workers collect NO_MORE_JOBS
        with self._cond:
            self._done = True
            self._cond.notify_all()
        deadline = time.monotonic() + self.linger
        with self._lock:
            handlers = [t for t in self._threads if t is not acceptor]
        for t in handlers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))

    def close(self) -> None:
        with self._cond:
            already = self._closed
            self._closed = True
            self._done = True
            self._cond.notify_all()
            conns = list(self._conns)
            threads = list(self._threads)
        if already:
            return
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for conn in conns:
            _shutdown(conn)
        for t in threads:
            t.join(timeout=2.0)


# -- the worker side ----------------------------------------------------------

def _connect(address: tuple[str, int], wait: float) -> socket.socket | None:
    """Connect, retrying briefly (workers often start before the
    master binds); None when no master answers within ``wait``."""
    deadline = time.monotonic() + max(0.0, wait)
    while True:
        try:
            return socket.create_connection(address, timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def _recv_reply(sock: socket.socket, heartbeat: float) -> tuple[int, object] | None:
    """Wait for the master's reply, emitting HEARTBEAT frames while
    parked; None when the master is gone (EOF / reset)."""
    while True:
        ready, _, _ = select.select([sock], [], [], heartbeat)
        if not ready:
            try:
                send_message(sock, HEARTBEAT)
            except OSError:
                return None
            continue
        # readable: the frame is in flight — bound the read so a hung
        # master cannot park us forever mid-frame
        sock.settimeout(30.0)
        try:
            return recv_message(sock)
        except OSError:
            return None
        finally:
            sock.settimeout(None)


def run_worker(
    host: str,
    port: int,
    *,
    heartbeat: float = 5.0,
    connect_wait: float = 10.0,
    verbose: bool = False,
) -> int:
    """The ``python -m repro.expt worker --connect host:port`` loop.

    Exit status: 0 when the sweep is over (NO_MORE_JOBS received, or no
    master is reachable — a late worker after shutdown is normal, not
    an error); 3 on a protocol violation.
    """
    sock = _connect((host, port), connect_wait)
    wid = worker_identity()
    if sock is None:
        print(f"worker {wid}: no master at {host}:{port} "
              "(sweep finished or not started); exiting", flush=True)
        return 0
    caches: dict[tuple, object] = {}
    done = 0
    try:
        with sock:
            while True:
                try:
                    send_message(sock, REQUEST_JOB, {"worker_id": wid})
                except OSError:
                    break  # master gone mid-request: sweep over
                msg = _recv_reply(sock, heartbeat)
                if msg is None:
                    break  # master gone: rows it recorded are safe
                mtype, payload = msg
                if mtype == NO_MORE_JOBS:
                    break
                if mtype != JOB:
                    raise ProtocolError(
                        f"unexpected {MESSAGE_NAMES[mtype]} from master"
                    )
                assert isinstance(payload, dict)
                options: RunOptions = payload["options"]
                job = SweepJob(int(payload["job_id"]), payload["config"],
                               int(payload["rep"]))
                cache_key = (options.reuse_work, options.cache_dir)
                if cache_key not in caches:
                    caches[cache_key] = options.make_cache()
                row = run_point(job, options, caches[cache_key])
                done += 1
                if verbose:
                    print(f"worker {wid}: job {job.job_id} -> {row['status']}",
                          flush=True)
                try:
                    send_message(sock, RESULT, {"job_id": job.job_id, "row": row})
                except OSError:
                    break  # master gone; the master will requeue on resume
    except ProtocolError as exc:
        print(f"worker {wid}: protocol error: {exc}", flush=True)
        return 3
    if verbose:
        print(f"worker {wid}: done ({done} jobs)", flush=True)
    return 0
