"""The executor contract: how a sweep's (configuration, repetition)
grid gets turned into CSV rows.

An :class:`Executor` owns *where* sweep points run — inline, on a
local process pool, or on remote workers across a cluster — while
``exptools.execute`` owns *what* runs (the grid, resume filtering) and
*how results persist* (streaming appends to the flock-safe csvdb).
The interface is deliberately tiny:

* :meth:`Executor.configure` receives the sweep-wide
  :class:`RunOptions` once, before any job;
* :meth:`Executor.submit` enqueues one :class:`SweepJob`;
* :meth:`Executor.drain` yields one result row per submitted job, in
  completion order, and returns only when every job is resolved —
  either with a measured ``status=ok`` row or a ``status=error`` row;
* :meth:`Executor.close` releases pools/sockets (idempotent).

Every executor resolves **all** submitted jobs: a lost worker must
never silently swallow a grid point.  Rows carry provenance columns
(``executor``, ``worker_id``, ``jit_tier``, ``memo``) so a merged
database records where — and through which execution tier / cache —
each measurement ran; the *resume identity* (``RunConfig.csv_row()`` +
the ``run`` index) deliberately excludes them, so a sweep started
under one executor resumes under any other.

:func:`run_point` — one (configuration, repetition) to one row, with
per-point timeout/retries — is the single execution path shared by all
executors, including remote socket workers.
"""

from __future__ import annotations

import os
import signal
import socket as _socket
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.config import RunConfig
from repro.core.engine import run
from repro.expt.replay import WorkProfileCache

__all__ = [
    "Executor",
    "RunOptions",
    "SweepJob",
    "SweepTimeout",
    "run_point",
    "error_row",
    "worker_identity",
]


class SweepTimeout(Exception):
    """A single sweep point exceeded its ``timeout=`` budget."""


@dataclass(frozen=True)
class SweepJob:
    """One grid point: a configuration plus its repetition index.

    ``job_id`` is the point's position in this invocation's job list —
    a dispatch handle only (lease tracking, requeue bookkeeping); the
    durable identity that survives crashes and executor changes is
    ``config.csv_row()`` + ``rep``.
    """

    job_id: int
    config: RunConfig
    rep: int


@dataclass(frozen=True)
class RunOptions:
    """Sweep-wide execution options, shipped to every worker once per
    job (they are tiny) so remote workers need no out-of-band setup."""

    machine: str = "virtual"
    timeout: float | None = None
    retries: int = 0
    reuse_work: bool = False
    cache_dir: str | None = None

    def make_cache(self) -> WorkProfileCache | None:
        return WorkProfileCache(cache_dir=self.cache_dir) if self.reuse_work else None


def worker_identity() -> str:
    """Provenance label of the executing process (``host-pid``)."""
    return f"{_socket.gethostname()}-{os.getpid()}"


# -- running one point --------------------------------------------------------

@contextmanager
def _time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`SweepTimeout` after ``seconds`` of wall time.

    Implemented with ``SIGALRM``, so it is enforced only on POSIX main
    threads (pool workers and socket workers both run points on their
    main thread); elsewhere it degrades to a no-op rather than failing
    the sweep.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise SweepTimeout(f"run exceeded {seconds}s")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _base_row(config: RunConfig, rep: int, machine: str) -> dict:
    row = dict(config.csv_row())
    row["machine"] = machine
    row["run"] = rep
    return row


def error_row(config: RunConfig, rep: int, machine: str, message: str,
              worker_id: str = "") -> dict:
    """The ``status=error`` row shape shared by point execution (a
    point that kept failing) and the socket master (a point whose
    workers kept dying)."""
    row = _base_row(config, rep, machine)
    row["time_us"] = ""
    row["completed"] = 0
    row["steals"] = ""
    row["dropped_events"] = ""
    row["jit_tier"] = ""
    row["memo"] = ""
    row["status"] = "error"
    row["error"] = message[:200]
    row["worker_id"] = worker_id or worker_identity()
    return row


def run_point(
    job: SweepJob,
    options: RunOptions,
    cache: WorkProfileCache | None = None,
) -> dict:
    """One (configuration, repetition): a CSV row, never an exception.

    Failures and timeouts are retried up to ``options.retries`` times,
    then recorded as a ``status=error`` row so the rest of the sweep
    (and ``easyplot`` over its output) keeps working.
    """
    config, rep = job.config, job.rep
    rep_cfg = config.with_(run_index=rep)
    last_error = ""
    for _attempt in range(max(0, options.retries) + 1):
        try:
            with _time_limit(options.timeout):
                if cache is not None:
                    elapsed = cache.simulate(rep_cfg)
                    completed = rep_cfg.iterations
                    counters: dict = {}
                    jit_tier = WorkProfileCache.tier_of(rep_cfg)
                    memo = cache.last_memo
                else:
                    result = run(rep_cfg)
                    elapsed = result.elapsed
                    completed = result.completed_iterations
                    counters = result.counters
                    jit_tier = result.jit_tier
                    memo = ""
        except SweepTimeout as exc:
            last_error = str(exc)
            continue
        except Exception as exc:
            last_error = f"{type(exc).__name__}: {exc}"
            continue
        row = _base_row(config, rep, options.machine)
        row["time_us"] = round(elapsed * 1e6, 3)
        row["completed"] = completed
        # telemetry-bus counters: scheduling + channel health per point
        row["steals"] = int(counters.get("steals", 0))
        row["dropped_events"] = int(counters.get("dropped_events", 0))
        # provenance: the resolved execution tier and whether the
        # schedule-result memo served this point ("" = measured live)
        row["jit_tier"] = jit_tier
        row["memo"] = memo
        row["status"] = "ok"
        row["error"] = ""
        row["worker_id"] = worker_identity()
        return row
    return error_row(config, rep, options.machine, last_error)


# -- the interface ------------------------------------------------------------

class Executor:
    """Pluggable sweep-point execution backend (see module docstring).

    Subclasses set :attr:`name` (the ``executor`` provenance cell) and
    implement :meth:`drain`; :attr:`counters` accumulates fabric
    health: ``jobs_dispatched`` (JOB handed to a worker, including
    re-dispatches), ``jobs_requeued`` (leases returned to the queue
    after a worker died or timed out) and ``worker_disconnects``.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.options = RunOptions()
        self.jobs: list[SweepJob] = []
        self.counters: dict[str, int] = {
            "jobs_dispatched": 0,
            "jobs_requeued": 0,
            "worker_disconnects": 0,
            "memo_hits": 0,
            "memo_misses": 0,
        }

    def configure(self, options: RunOptions) -> None:
        """Receive the sweep-wide run options (before any submit)."""
        self.options = options

    def submit(self, job: SweepJob) -> None:
        """Enqueue one grid point (does not start execution)."""
        self.jobs.append(job)

    def drain(self) -> Iterator[dict]:
        """Yield one provenance-stamped row per submitted job; return
        only when every job is resolved (ok or error)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; idempotent, safe after a failed drain."""

    def _stamp(self, row: dict) -> dict:
        row["executor"] = self.name
        return row

    # executors are context managers so ad-hoc users cannot leak pools
    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
