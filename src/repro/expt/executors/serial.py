"""The serial executor: run every point inline, in submit order.

The reference implementation of the interface — no pools, no sockets,
no reordering — and the baseline the cross-executor equivalence tests
compare the parallel fabrics against.
"""

from __future__ import annotations

from typing import Iterator

from repro.expt.executors.base import Executor, run_point

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    name = "serial"

    def drain(self) -> Iterator[dict]:
        cache = self.options.make_cache()
        for job in self.jobs:
            self.counters["jobs_dispatched"] += 1
            yield self._stamp(run_point(job, self.options, cache))
