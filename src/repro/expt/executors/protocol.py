"""The socket executor's wire protocol: typed, length-prefixed frames.

One frame is a 5-byte header — payload length as a big-endian ``u32``
plus a 1-byte message type — followed by a pickled payload::

    +----------------+------+------------------------+
    | length (u32 BE)| type | payload (pickle, length|
    |                | (u8) | bytes)                 |
    +----------------+------+------------------------+

The message types mirror the Yoda/Droid rank-0-master pattern: a
worker pulls with ``REQUEST_JOB``, the master answers ``JOB`` or
``NO_MORE_JOBS``, the worker pushes ``RESULT`` and idles with
``HEARTBEAT``.  Every deviation — truncated frame, oversized frame,
unknown type byte, an unpicklable payload — raises
:class:`ProtocolError` instead of hanging or guessing, so a confused
peer fails fast and the master's lease machinery (not the protocol)
decides what happens to the in-flight job.

Payloads are pickled (configurations are plain dataclasses), which
assumes the usual cluster trust model: the master and its workers run
the same code as the same user on hosts they already control — the
fabric is a fan-out mechanism, not an authentication boundary.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.errors import EasypapError

__all__ = [
    "ProtocolError",
    "REQUEST_JOB",
    "JOB",
    "RESULT",
    "NO_MORE_JOBS",
    "HEARTBEAT",
    "MESSAGE_NAMES",
    "MAX_FRAME",
    "send_message",
    "recv_message",
]

#: refuse frames beyond this payload size: a length prefix of garbage
#: (a peer speaking a different protocol, a corrupted stream) must not
#: make the receiver allocate gigabytes before noticing
MAX_FRAME = 16 * 2**20

_HEADER = struct.Struct(">IB")

REQUEST_JOB = 1  # worker -> master: {"worker_id": str}
JOB = 2          # master -> worker: {"job_id", "config", "rep", "options"}
RESULT = 3       # worker -> master: {"job_id": int, "row": dict}
NO_MORE_JOBS = 4  # master -> worker: None (grid resolved; disconnect)
HEARTBEAT = 5    # worker -> master: None (idle liveness while parked)

MESSAGE_NAMES = {
    REQUEST_JOB: "REQUEST_JOB",
    JOB: "JOB",
    RESULT: "RESULT",
    NO_MORE_JOBS: "NO_MORE_JOBS",
    HEARTBEAT: "HEARTBEAT",
}


class ProtocolError(EasypapError):
    """The peer sent something that is not a valid protocol frame."""


def send_message(sock: socket.socket, mtype: int, payload: Any = None) -> None:
    """Send one typed frame (blocking, whole frame or exception)."""
    if mtype not in MESSAGE_NAMES:
        raise ProtocolError(f"refusing to send unknown message type {mtype}")
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"{MESSAGE_NAMES[mtype]} payload of {len(body)} bytes exceeds "
            f"the {MAX_FRAME}-byte frame limit"
        )
    sock.sendall(_HEADER.pack(len(body), mtype) + body)


def _recv_exactly(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes.  A connection closed cleanly *between*
    frames (``at_boundary``) returns None; closed mid-frame raises."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes received)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[int, Any] | None:
    """Receive one typed frame; None when the peer closed cleanly
    between frames.

    Raises :class:`ProtocolError` on truncated or oversized frames,
    unknown message types and undecodable payloads — never blocks
    forever on garbage (socket timeouts propagate as ``TimeoutError``
    for the caller's heartbeat logic).
    """
    head = _recv_exactly(sock, _HEADER.size, at_boundary=True)
    if head is None:
        return None
    length, mtype = _HEADER.unpack(head)
    if mtype not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message type {mtype} (frame length {length})")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"{MESSAGE_NAMES[mtype]} frame of {length} bytes exceeds "
            f"the {MAX_FRAME}-byte limit"
        )
    body = _recv_exactly(sock, length, at_boundary=False)
    assert body is not None  # at_boundary=False never returns None
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(
            f"undecodable {MESSAGE_NAMES[mtype]} payload: {exc}"
        ) from exc
    return mtype, payload
