"""The local-procs executor: today's multiprocessing fan-out,
re-expressed behind the executor interface.

One ``multiprocessing`` pool per drain; results stream back through
``imap_unordered`` as they finish, so the driver appends each row to
the CSV the moment it exists — a killed sweep keeps every completed
point.  With ``reuse_work`` the job list is sorted so each workload's
points are contiguous and one worker captures the profile the rest
replay from memory.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Iterator

from repro.expt.executors.base import Executor, RunOptions, SweepJob, run_point
from repro.expt.replay import WorkProfileCache

__all__ = ["LocalProcsExecutor", "pool_chunksize"]


def pool_chunksize(n_jobs: int, workers: int) -> int:
    """Batch size for ``imap_unordered`` on profile-replay sweeps.

    Small grids dispatch single jobs: batching ``n_jobs`` into chunks
    when there are fewer than ``workers * 4`` of them concentrates the
    work on the first few workers and starves the rest, which is worse
    than paying per-job IPC.  Large grids keep roughly four batches
    per worker so the tail stays balanced.
    """
    if n_jobs < workers * 4:
        return 1
    return max(1, n_jobs // (workers * 4))


# initialized once per pool worker; tasks then only pickle the job
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(options: RunOptions) -> None:
    _WORKER_STATE["options"] = options
    _WORKER_STATE["cache"] = options.make_cache()


def _pool_point(job: SweepJob) -> dict:
    return run_point(job, _WORKER_STATE["options"], _WORKER_STATE["cache"])


def _pool_context():
    """Fork where available (cheap, shares the kernel registry); spawn
    otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class LocalProcsExecutor(Executor):
    name = "local-procs"

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.workers = max(1, workers)
        self._pool = None

    def drain(self) -> Iterator[dict]:
        jobs = list(self.jobs)
        if len(jobs) <= 1 or self.workers == 1:
            # pool overhead buys nothing; run inline
            cache = self.options.make_cache()
            for job in jobs:
                self.counters["jobs_dispatched"] += 1
                yield self._stamp(run_point(job, self.options, cache))
            return
        if self.options.reuse_work:
            # keep each workload's points contiguous so one worker
            # captures the profile and replays the rest from memory
            jobs.sort(key=lambda j: (WorkProfileCache.workload_key(j.config), j.rep))
            chunksize = pool_chunksize(len(jobs), self.workers)
        else:
            chunksize = 1
        ctx = _pool_context()
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.options,),
        )
        try:
            for row in self._pool.imap_unordered(_pool_point, jobs, chunksize=chunksize):
                self.counters["jobs_dispatched"] += 1
                yield self._stamp(row)
        finally:
            self.close()

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
