"""Pluggable sweep executors: serial, local-procs, socket.

``exptools.execute`` drives any of these through the same four calls
(``configure`` / ``submit`` / ``drain`` / ``close``); see
:mod:`repro.expt.executors.base` for the contract and
``docs/exptools.md`` for the deployment recipes.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.expt.executors.base import (
    Executor,
    RunOptions,
    SweepJob,
    SweepTimeout,
    error_row,
    run_point,
    worker_identity,
)
from repro.expt.executors.localprocs import LocalProcsExecutor, pool_chunksize
from repro.expt.executors.serial import SerialExecutor
from repro.expt.executors.socketexec import SocketExecutor, parse_address, run_worker

__all__ = [
    "Executor",
    "RunOptions",
    "SweepJob",
    "SweepTimeout",
    "error_row",
    "run_point",
    "worker_identity",
    "SerialExecutor",
    "LocalProcsExecutor",
    "pool_chunksize",
    "SocketExecutor",
    "run_worker",
    "parse_address",
    "EXECUTOR_NAMES",
    "make_executor",
]

#: the executor names, in documentation order; drives CLI choices and
#: ``make_executor`` validation
EXECUTOR_NAMES = ("serial", "local-procs", "socket")


def make_executor(
    name: str,
    *,
    workers: int = 1,
    bind: str | None = None,
    lease_timeout: float = 300.0,
    max_requeues: int = 2,
    verbose: bool = False,
) -> Executor:
    """Build an executor from its CLI name.

    ``workers`` sizes the local-procs pool; ``bind`` ("host:port") is
    the socket master's listen address (default ``127.0.0.1:0``, an
    ephemeral port printed when ``verbose``).
    """
    if name == "serial":
        return SerialExecutor()
    if name == "local-procs":
        return LocalProcsExecutor(workers)
    if name == "socket":
        host, port = parse_address(bind) if bind else ("127.0.0.1", 0)
        return SocketExecutor(
            host, port,
            lease_timeout=lease_timeout,
            max_requeues=max_requeues,
            verbose=verbose,
        )
    raise ConfigError(
        f"unknown executor {name!r} (valid: {', '.join(EXECUTOR_NAMES)})"
    )
