"""easyplot: turn performance CSVs into speedup graphs (paper Fig. 6).

The key feature (paper §II-C): *the legend is automatically generated
from the data*.  After filtering, columns holding a single value are
put aside (listed above the graph), and plot-line names are built from
the remaining varying columns — so experiments run under different
conditions can never be silently merged into one curve.

``build_plot`` produces a :class:`PlotSpec` (facet grid + series with
mean/std over runs); the text/SVG renderers live in
:mod:`repro.expt.plotting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Any

from repro.errors import PlotError
from repro.expt.csvdb import filter_rows, unique_values

__all__ = ["PlotSeries", "PlotFacet", "PlotSpec", "build_plot"]

#: per-run measurement/bookkeeping columns — never part of legends or titles
AGG_COLUMNS = {"run", "time_us", "completed", "status", "error"}


@dataclass
class PlotSeries:
    """One plot line: label + aggregated points."""

    label: str
    xs: list = field(default_factory=list)
    ys: list[float] = field(default_factory=list)
    yerr: list[float] = field(default_factory=list)

    def point(self, x) -> float | None:
        try:
            return self.ys[self.xs.index(x)]
        except ValueError:
            return None


@dataclass
class PlotFacet:
    """One sub-graph (e.g. ``grain = 16``)."""

    title: str
    series: list[PlotSeries] = field(default_factory=list)


@dataclass
class PlotSpec:
    """A complete figure: facets, axis names, constant parameters."""

    x: str
    ylabel: str
    facets: list[PlotFacet] = field(default_factory=list)
    const_params: dict[str, Any] = field(default_factory=dict)
    ref_time_us: float | None = None

    def header(self) -> str:
        """The "Parameters:" line above the graph (paper Fig. 6)."""
        parts = [f"{k}={v}" for k, v in self.const_params.items()]
        if self.ref_time_us is not None:
            parts.append(f"refTime={self.ref_time_us:.0f}")
        return "Parameters : " + " ".join(parts)


def _auto_ref_time(all_rows: list[dict], filtered: list[dict]) -> float:
    """Reference time for speedups: mean of 'seq' rows matching the
    filtered kernel/dim, else mean of 1-thread rows of the filtered set."""
    kernels = unique_values(filtered, "kernel")
    dims = unique_values(filtered, "dim")
    seq = [
        r
        for r in all_rows
        if r.get("variant") == "seq"
        and r.get("kernel") in kernels
        and r.get("dim") in dims
        and isinstance(r.get("time_us"), (int, float))
    ]
    if seq:
        return mean(r["time_us"] for r in seq)
    ones = [r for r in filtered if r.get("threads") == 1]
    if ones:
        return mean(r["time_us"] for r in ones)
    raise PlotError(
        "cannot infer a reference time for --speedup: provide ref_time_us, "
        "or include a 'seq' run (or 1-thread rows) in the data"
    )


def build_plot(
    rows: list[dict],
    *,
    x: str = "threads",
    y: str = "time_us",
    col: str | None = None,
    speedup: bool = False,
    ref_time_us: float | None = None,
    **filters: Any,
) -> PlotSpec:
    """Aggregate rows into a faceted plot with an automatic legend.

    Parameters mirror the ``easyplot`` command: ``col`` facets the graph
    by a column (``--col grain``), ``speedup`` converts times to
    speedups against ``ref_time_us`` (``--speedup``), and keyword
    filters restrict the data (``kernel="mandel"``).
    """
    # failed sweep points (exptools timeout/retries exhausted) carry no
    # measurement — keep them out of curves and reference times
    rows = [r for r in rows if r.get("status", "ok") != "error"]
    filtered = filter_rows(rows, **filters)
    if not filtered:
        raise PlotError(f"no rows match filters {filters!r}")
    if any(y not in r for r in filtered):
        raise PlotError(f"column {y!r} missing from some rows")
    if any(x not in r for r in filtered):
        raise PlotError(f"column {x!r} missing from some rows")

    if speedup and ref_time_us is None:
        ref_time_us = _auto_ref_time(rows, filtered)

    # classify columns: constant -> title; varying (except x/col/agg) -> legend
    columns = [c for c in filtered[0] if c not in AGG_COLUMNS]
    const_params: dict[str, Any] = {}
    legend_cols: list[str] = []
    for c in columns:
        values = unique_values(filtered, c)
        if c in (x, col):
            continue
        if len(values) == 1:
            const_params[c] = values[0]
        else:
            legend_cols.append(c)

    col_values = unique_values(filtered, col) if col else [None]

    # columns perfectly correlated with the facet column (e.g. tile_h when
    # faceting by tile_w after a --grain sweep) belong to the facet, not
    # the legend
    if col is not None:
        implied: list[str] = []
        for c in legend_cols:
            determined = True
            for cv in col_values:
                vals = unique_values(
                    [r for r in filtered if r.get(col) == cv], c
                )
                if len(vals) > 1:
                    determined = False
                    break
            if determined:
                implied.append(c)
        legend_cols = [c for c in legend_cols if c not in implied]

    ylabel = "speedup" if speedup else y
    spec = PlotSpec(x=x, ylabel=ylabel, const_params=const_params, ref_time_us=ref_time_us)

    for cv in col_values:
        facet_rows = filtered if cv is None else [r for r in filtered if r.get(col) == cv]
        facet = PlotFacet(title="" if cv is None else f"{col} = {cv}")
        # group rows by legend signature
        groups: dict[tuple, list[dict]] = {}
        for r in facet_rows:
            key = tuple(r.get(c) for c in legend_cols)
            groups.setdefault(key, []).append(r)
        for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
            label = " ".join(f"{c}={v}" for c, v in zip(legend_cols, key)) or "all"
            series = PlotSeries(label=label)
            grows = groups[key]
            for xv in sorted(set(r[x] for r in grows), key=lambda v: (str(type(v)), v)):
                ys = [r[y] for r in grows if r[x] == xv and isinstance(r[y], (int, float))]
                if not ys:
                    continue
                if speedup:
                    vals = [ref_time_us / v for v in ys if v > 0]
                else:
                    vals = ys
                series.xs.append(xv)
                series.ys.append(mean(vals))
                series.yerr.append(pstdev(vals) if len(vals) > 1 else 0.0)
            facet.series.append(series)
        spec.facets.append(facet)
    return spec
