"""Work-profile capture & replay: fast parameter sweeps.

A kernel's per-tile *work* is deterministic and independent of thread
count and schedule (iteration-independence is precisely what a
worksharing loop requires).  So a sweep over (threads x schedule) only
needs the kernel to run **once** per workload: the captured sequence of
parallel regions (with their work vectors and task graphs) is then
re-simulated under each configuration.

Replayed times are identical to full runs — the simulator sees the
same costs either way — which makes paper-Fig. 6-sized sweeps (dozens
of configurations x 10 repetitions) run in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.kernel import get_kernel
from repro.errors import ConfigError
from repro.sched.costmodel import CostModel
from repro.sched.dag_sim import simulate_dag
from repro.sched.simulator import simulate
from repro.sched.taskgraph import TaskGraph

__all__ = ["RegionLog", "WorkProfileCache", "replay_log"]


#: log entry kinds (first tuple element)
PAR, SEQ, MASTER, DAG = "par", "seq", "master", "dag"

RegionLog = list  # list of ("par", works) / ("seq", works) / ("master", w) / ("dag", works, preds)


def capture_log(config: RunConfig) -> tuple[RegionLog, CostModel]:
    """Run ``config`` once, recording every region's work profile."""
    from repro.core.engine import run

    if config.mpi_np:
        raise ConfigError("work-profile replay does not support MPI runs")
    capture_cfg = config.with_(monitoring=False, trace=False)
    log: RegionLog = []
    kernel = get_kernel(capture_cfg.kernel)
    compute = kernel.compute_fn(capture_cfg.variant)
    ctx = ExecutionContext(capture_cfg)
    ctx.region_log = log
    kernel.init(ctx)
    kernel.draw(ctx)
    compute(ctx, capture_cfg.iterations)
    kernel.finalize(ctx)
    return log, ctx.model


def replay_log(
    log: RegionLog,
    *,
    nthreads: int,
    policy,
    model: CostModel,
    jitter: float = 0.0,
    jitter_rng=None,
) -> float:
    """Virtual elapsed time of the captured run under a new configuration.

    When ``jitter > 0``, ``jitter_rng`` must be the stream a full run
    would use (:func:`repro.util.rng.make_jitter_rng`); noise is drawn
    region by region in the same order, so replayed times equal full-run
    times exactly, noise included.
    """
    from repro.sched.costmodel import perturb

    def noisy(costs: list[float]) -> list[float]:
        if jitter <= 0.0:
            return costs
        return perturb(costs, jitter_rng, jitter)

    vclock = 0.0
    for entry in log:
        kind = entry[0]
        if kind == PAR:
            costs = noisy(model.times_of(entry[1]))
            res = simulate(costs, policy, nthreads, model=model, start_time=vclock)
            vclock = max(res.timeline.makespan, vclock) + model.fork_join_overhead
        elif kind == SEQ:
            vclock += sum(noisy(model.times_of(entry[1])))
        elif kind == MASTER:
            vclock += model.time_of(entry[1])
        elif kind == DAG:
            works, preds = entry[1], entry[2]
            costs = noisy(model.times_of(works))
            graph = TaskGraph()
            for i, c in enumerate(costs):
                graph.add_task(None, c, depends_on=preds[i])
            tl = simulate_dag(graph, nthreads, model=model, start_time=vclock)
            vclock = max(tl.makespan, vclock) + model.fork_join_overhead
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown region log entry {kind!r}")
    return vclock


@dataclass
class WorkProfileCache:
    """Memoizes work profiles by workload key; replays per configuration."""

    _cache: dict[tuple, tuple[RegionLog, CostModel]] = field(default_factory=dict)

    @staticmethod
    def workload_key(config: RunConfig) -> tuple:
        """Everything the work profile depends on (NOT threads/schedule)."""
        return (
            config.kernel,
            config.variant,
            config.dim,
            config.tile_w,
            config.tile_h,
            config.iterations,
            config.arg,
            config.seed,
            config.time_scale,
            config.backend,
        )

    def profile(self, config: RunConfig) -> tuple[RegionLog, CostModel]:
        key = self.workload_key(config)
        if key not in self._cache:
            self._cache[key] = capture_log(config)
        return self._cache[key]

    def simulate(self, config: RunConfig) -> float:
        """Elapsed virtual seconds of ``config`` (captures on first use)."""
        from repro.util.rng import make_jitter_rng

        log, model = self.profile(config)
        return replay_log(
            log,
            nthreads=config.nthreads,
            policy=config.policy(),
            model=model,
            jitter=config.jitter,
            jitter_rng=make_jitter_rng(config.seed, config.run_index),
        )
