"""Work-profile capture & replay: fast parameter sweeps.

A kernel's per-tile *work* is deterministic and independent of thread
count and schedule (iteration-independence is precisely what a
worksharing loop requires).  So a sweep over (threads x schedule) only
needs the kernel to run **once** per workload: the captured sequence of
parallel regions (with their work vectors and task graphs) is then
re-simulated under each configuration.

Replayed times are identical to full runs — the simulator sees the
same costs either way — which makes paper-Fig. 6-sized sweeps (dozens
of configurations x 10 repetitions) run in seconds.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import jit
from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.kernel import get_kernel
from repro.errors import ConfigError
from repro.sched.costmodel import CostModel
from repro.sched.dag_sim import dag_policy_makespan, simulate_dag
from repro.sched.simulator import simulate
from repro.sched.taskgraph import TaskGraph

__all__ = ["RegionLog", "WorkProfileCache", "replay_log"]


#: log entry kinds (first tuple element); "dag" is a FIFO task region
#: (``task_region``), "dagp" a policy-scheduled dependency-carrying
#: worksharing region (wavefront domains)
PAR, SEQ, MASTER, DAG, DAGP = "par", "seq", "master", "dag", "dagp"

RegionLog = list  # list of ("par", works) / ("seq", works) / ("master", w)
#                   / ("dag", works, preds) / ("dagp", works, preds)


def capture_log(config: RunConfig) -> tuple[RegionLog, CostModel]:
    """Run ``config`` once, recording every region's work profile."""
    from repro.core.engine import run

    if config.mpi_np:
        raise ConfigError("work-profile replay does not support MPI runs")
    capture_cfg = config.with_(monitoring=False, trace=False)
    log: RegionLog = []
    kernel = get_kernel(capture_cfg.kernel)
    compute = kernel.compute_fn(capture_cfg.variant)
    want = kernel.domain_for(capture_cfg.variant)
    if want != "grid" and capture_cfg.domain == "grid":
        # mirror engine.run: kernels with a non-grid iteration space
        # get their declared domain unless one was forced explicitly
        capture_cfg = capture_cfg.with_(domain=want)
    ctx = ExecutionContext(capture_cfg)
    ctx.region_log = log
    kernel.init(ctx)
    kernel.draw(ctx)
    compute(ctx, capture_cfg.iterations)
    kernel.finalize(ctx)
    return log, ctx.model


def replay_log(
    log: RegionLog,
    *,
    nthreads: int,
    policy,
    model: CostModel,
    jitter: float = 0.0,
    jitter_rng=None,
) -> float:
    """Virtual elapsed time of the captured run under a new configuration.

    When ``jitter > 0``, ``jitter_rng`` must be the stream a full run
    would use (:func:`repro.util.rng.make_jitter_rng`); noise is drawn
    region by region in the same order, so replayed times equal full-run
    times exactly, noise included.
    """
    from repro.sched.costmodel import perturb

    def noisy(costs: list[float]) -> list[float]:
        if jitter <= 0.0:
            return costs
        return perturb(costs, jitter_rng, jitter)

    vclock = 0.0
    for entry in log:
        kind = entry[0]
        if kind == PAR:
            costs = noisy(model.times_of(entry[1]))
            res = simulate(costs, policy, nthreads, model=model, start_time=vclock)
            vclock = max(res.timeline.makespan, vclock) + model.fork_join_overhead
        elif kind == SEQ:
            vclock += sum(noisy(model.times_of(entry[1])))
        elif kind == MASTER:
            vclock += model.time_of(entry[1])
        elif kind == DAG:
            works, preds = entry[1], entry[2]
            costs = noisy(model.times_of(works))
            graph = TaskGraph()
            for i, c in enumerate(costs):
                graph.add_task(None, c, depends_on=preds[i])
            tl = simulate_dag(graph, nthreads, model=model, start_time=vclock)
            vclock = max(tl.makespan, vclock) + model.fork_join_overhead
        elif kind == DAGP:
            works, preds = entry[1], entry[2]
            costs = noisy(model.times_of(works))
            end = dag_policy_makespan(
                costs, preds, policy, nthreads, model=model, start_time=vclock
            )
            vclock = max(end, vclock) + model.fork_join_overhead
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown region log entry {kind!r}")
    return vclock


#: bump when the persisted profile layout changes; older files are
#: silently ignored (and re-captured), never misread.
#: 2: the execution tier joined the workload key and schedule-result
#: memo files appeared alongside the profiles
#: 3: work domains — the workload key grew (domain, dim_y, dim_z) and
#: region logs may carry "dagp" entries
CACHE_FORMAT = 3


@dataclass
class WorkProfileCache:
    """Memoizes work profiles by workload key; replays per configuration.

    With ``cache_dir`` set, profiles are also persisted to disk,
    content-addressed by the workload key — concurrent sweep workers
    and *later invocations* share captures instead of redoing them.
    Files are written atomically (tmp + ``os.replace``) and verified
    against their key on load, so a corrupt or stale cache entry can
    only ever cause a re-capture, never a wrong result.

    On top of the profiles sits the **schedule-result memo**: the
    replayed elapsed time of each fully-specified point — workload key
    plus ``(threads, schedule, jitter, run_index)`` — is remembered (and
    disk-persisted next to the profiles as ``memo-*.pkl``), so repeated
    sweep points, resumed sweeps and identical requests skip even the
    replay simulation.  A memo hit returns the exact float a fresh
    replay would produce — the replay is deterministic, that is the
    whole premise of this module — and the hit/miss tally is exposed in
    :attr:`counters` (surfaced as sweep telemetry) with the last
    outcome in :attr:`last_memo` (the ``memo`` CSV column).
    """

    cache_dir: str | os.PathLike | None = None
    #: schedule-result memoization on/off (tests of the raw replay path
    #: and A/B measurements switch it off)
    memoize: bool = True
    _cache: dict[tuple, tuple[RegionLog, CostModel]] = field(default_factory=dict)
    #: workload key -> {(threads, schedule, jitter, run_index): elapsed}
    _memo: dict[tuple, dict[tuple, float]] = field(default_factory=dict)
    counters: dict[str, int] = field(
        default_factory=lambda: {"memo_hits": 0, "memo_misses": 0}
    )
    #: outcome of the most recent :meth:`simulate` call: "hit", "miss",
    #: or "" (memoization disabled)
    last_memo: str = ""

    @staticmethod
    def workload_key(config: RunConfig) -> tuple:
        """Everything the work profile depends on (NOT threads/schedule).

        Includes the execution tier (fastpath/jit/interpreted): the
        tiers are bit-identical by construction, but the cache must not
        *assume* its own correctness proof — a profile captured under a
        compiled tile body never collides with an interpreted one, so a
        tier-selection change between sweep resumes can only re-capture,
        never serve a profile from a different code path.
        """
        return (
            config.kernel,
            config.variant,
            config.dim,
            config.tile_w,
            config.tile_h,
            config.iterations,
            config.arg,
            config.seed,
            config.time_scale,
            config.backend,
            WorkProfileCache.tier_of(config),
            config.domain,
            config.dim_y,
            config.dim_z,
        )

    @staticmethod
    def tier_of(config: RunConfig) -> str:
        """The execution tier a capture of ``config`` resolves to (the
        capture always runs uninstrumented, like :func:`capture_log`)."""
        return jit.select_tier(config.with_(monitoring=False, trace=False))[0]

    def _disk_path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr((CACHE_FORMAT, key)).encode()).hexdigest()
        return Path(self.cache_dir) / f"profile-{digest[:40]}.pkl"

    def _load_disk(self, path: Path, key: tuple):
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
                return None
            return payload["log"], payload["model"]
        except Exception:
            return None

    def _store_disk(self, path: Path, key: tuple, profile) -> None:
        log, model = profile
        payload = {"format": CACHE_FORMAT, "key": key, "log": log, "model": model}
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, path)
        except OSError:  # the cache is an optimization, never fatal
            tmp.unlink(missing_ok=True)

    def profile(self, config: RunConfig) -> tuple[RegionLog, CostModel]:
        key = self.workload_key(config)
        if key in self._cache:
            return self._cache[key]
        if self.cache_dir is not None:
            path = self._disk_path(key)
            cached = self._load_disk(path, key)
            if cached is not None:
                self._cache[key] = cached
                return cached
        profile = capture_log(config)
        self._cache[key] = profile
        if self.cache_dir is not None:
            self._store_disk(self._disk_path(key), key, profile)
        return profile

    # -- schedule-result memo ------------------------------------------------
    def _memo_path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr((CACHE_FORMAT, key)).encode()).hexdigest()
        return Path(self.cache_dir) / f"memo-{digest[:40]}.pkl"

    def _load_memo_disk(self, key: tuple) -> dict[tuple, float]:
        try:
            with self._memo_path(key).open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
                return {}
            return dict(payload["memo"])
        except Exception:
            return {}

    def _store_memo_disk(self, key: tuple, memo: dict[tuple, float]) -> None:
        """Merge-and-replace the on-disk memo for ``key``.

        Concurrent writers merge with what is on disk at write time;
        a lost update between racing workers costs one extra replay
        later, never a wrong value (all writers compute the same
        deterministic floats).
        """
        merged = self._load_memo_disk(key)
        merged.update(memo)
        path = self._memo_path(key)
        payload = {"format": CACHE_FORMAT, "key": key, "memo": merged}
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, path)
        except OSError:  # the memo is an optimization, never fatal
            tmp.unlink(missing_ok=True)

    def _replay(self, config: RunConfig) -> float:
        from repro.util.rng import make_jitter_rng

        log, model = self.profile(config)
        return replay_log(
            log,
            nthreads=config.nthreads,
            policy=config.policy(),
            model=model,
            jitter=config.jitter,
            jitter_rng=make_jitter_rng(config.seed, config.run_index),
        )

    def simulate(self, config: RunConfig) -> float:
        """Elapsed virtual seconds of ``config`` (captures on first use).

        With :attr:`memoize` on (the default), the result is served from
        the schedule-result memo when the identical point was replayed
        before — by this instance, another worker sharing ``cache_dir``,
        or an earlier invocation.
        """
        if not self.memoize:
            self.last_memo = ""
            return self._replay(config)
        key = self.workload_key(config)
        subkey = (config.nthreads, config.schedule, config.jitter, config.run_index)
        memo = self._memo.get(key)
        if memo is None:
            memo = self._load_memo_disk(key) if self.cache_dir is not None else {}
            self._memo[key] = memo
        if subkey in memo:
            self.counters["memo_hits"] += 1
            self.last_memo = "hit"
            return memo[subkey]
        elapsed = self._replay(config)
        memo[subkey] = elapsed
        self.counters["memo_misses"] += 1
        self.last_memo = "miss"
        if self.cache_dir is not None:
            self._store_memo_disk(key, memo)
        return elapsed
