"""Core framework: images, tiling, kernels, configuration, engine."""

from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.engine import RunResult, run
from repro.core.image import Img2D, rgb, rgba
from repro.core.kernel import Kernel, get_kernel, list_kernels, register_kernel, variant
from repro.core.tiling import Tile, TileGrid

__all__ = [
    "RunConfig",
    "ExecutionContext",
    "RunResult",
    "run",
    "Img2D",
    "rgb",
    "rgba",
    "Kernel",
    "get_kernel",
    "list_kernels",
    "register_kernel",
    "variant",
    "Tile",
    "TileGrid",
]
