"""Double-buffered 2D images.

EASYPAP kernels operate on square images whose pixels are 32-bit RGBA
values, accessed through the ``cur_img(y, x)`` / ``next_img(y, x)``
macros; stencil kernels write into the *next* image and swap buffers
between iterations.  :class:`Img2D` reproduces that model on top of
NumPy ``uint32`` arrays (vectorized access is the idiomatic fast path;
the scalar accessors exist for the "naive student code" variants).
"""

from __future__ import annotations

import numpy as np

from repro.core import access
from repro.errors import ConfigError

__all__ = ["Img2D", "rgba", "rgb", "red_of", "green_of", "blue_of", "alpha_of"]


def rgba(r: int, g: int, b: int, a: int = 255) -> int:
    """Pack four 8-bit channels into an EASYPAP pixel value (0xRRGGBBAA)."""
    return ((r & 0xFF) << 24) | ((g & 0xFF) << 16) | ((b & 0xFF) << 8) | (a & 0xFF)


def rgb(r: int, g: int, b: int) -> int:
    """Pack an opaque color (alpha = 255)."""
    return rgba(r, g, b, 255)


def red_of(pixel) -> int:
    return int(pixel) >> 24 & 0xFF


def green_of(pixel) -> int:
    return int(pixel) >> 16 & 0xFF


def blue_of(pixel) -> int:
    return int(pixel) >> 8 & 0xFF


def alpha_of(pixel) -> int:
    return int(pixel) & 0xFF


class Img2D:
    """A pair of rectangular ``uint32`` images with O(1) buffer swap.

    Attributes
    ----------
    dim:
        Width in pixels (the legacy name: EASYPAP images are usually
        square, so ``dim`` doubled as both sides).  ``dim_x`` is an
        explicit alias; ``dim_y`` is the height and defaults to ``dim``.
    cur, nxt:
        The current and next NumPy buffers, shape ``(dim_y, dim_x)``.
    """

    __slots__ = ("dim", "dim_x", "dim_y", "cur", "nxt", "swaps")

    def __init__(self, dim: int, fill: int = 0, *, dim_y: int | None = None):
        if dim_y is None:
            dim_y = dim
        if dim <= 0 or dim_y <= 0:
            raise ConfigError(
                f"image dimensions must be positive, got {dim}x{dim_y}"
            )
        self.dim = int(dim)
        self.dim_x = int(dim)
        self.dim_y = int(dim_y)
        self.cur = np.full((dim_y, dim), fill, dtype=np.uint32)
        self.nxt = np.full((dim_y, dim), fill, dtype=np.uint32)
        self.swaps = 0

    @classmethod
    def from_buffers(cls, cur: np.ndarray, nxt: np.ndarray) -> "Img2D":
        """Wrap caller-owned buffers (e.g. shared-memory blocks of the
        ``procs`` backend) instead of allocating — same API, so kernels
        and the engine never see the difference.  Both buffers must be
        congruent 2D ``uint32`` arrays."""
        if cur.shape != nxt.shape or cur.ndim != 2:
            raise ConfigError(
                f"image buffers must be 2D and congruent, got "
                f"{cur.shape} / {nxt.shape}"
            )
        if cur.dtype != np.uint32 or nxt.dtype != np.uint32:
            raise ConfigError("image buffers must be uint32")
        img = cls.__new__(cls)
        img.dim = int(cur.shape[1])
        img.dim_x = int(cur.shape[1])
        img.dim_y = int(cur.shape[0])
        img.cur = cur
        img.nxt = nxt
        img.swaps = 0
        return img

    # -- scalar accessors (the cur_img()/next_img() macros) ---------------
    def cur_img(self, y: int, x: int) -> int:
        """Read one pixel of the current image (EASYPAP ``cur_img(i, j)``)."""
        access.note_read("cur", x, y)
        return int(self.cur[y, x])

    def set_cur(self, y: int, x: int, value: int) -> None:
        access.note_write("cur", x, y)
        self.cur[y, x] = value

    def next_img(self, y: int, x: int) -> int:
        access.note_read("next", x, y)
        return int(self.nxt[y, x])

    def set_next(self, y: int, x: int, value: int) -> None:
        access.note_write("next", x, y)
        self.nxt[y, x] = value

    # -- bulk access -------------------------------------------------------
    def cur_view(self, y: int, x: int, h: int, w: int, mode: str = "rw") -> np.ndarray:
        """A writable view of a rectangle of the current image.

        ``mode`` ("r", "w" or "rw") declares how the view will be used;
        it only matters to footprint collection (``--check-races``),
        where an honest mode tightens race reports.
        """
        self._check_rect(y, x, h, w)
        self._note("cur", x, y, w, h, mode)
        return self.cur[y : y + h, x : x + w]

    def next_view(self, y: int, x: int, h: int, w: int, mode: str = "rw") -> np.ndarray:
        self._check_rect(y, x, h, w)
        self._note("next", x, y, w, h, mode)
        return self.nxt[y : y + h, x : x + w]

    @staticmethod
    def _note(buf: str, x: int, y: int, w: int, h: int, mode: str) -> None:
        if "r" in mode:
            access.note_read(buf, x, y, w, h)
        if "w" in mode:
            access.note_write(buf, x, y, w, h)

    def _check_rect(self, y: int, x: int, h: int, w: int) -> None:
        if y < 0 or x < 0 or h < 0 or w < 0 or y + h > self.dim_y or x + w > self.dim_x:
            raise ConfigError(
                f"rectangle (x={x}, y={y}, w={w}, h={h}) out of bounds "
                f"for a {self.dim_x}x{self.dim_y} image"
            )

    # -- lifecycle ----------------------------------------------------------
    def swap(self) -> None:
        """Exchange current and next buffers (between stencil iterations)."""
        self.cur, self.nxt = self.nxt, self.cur
        self.swaps += 1

    def fill(self, value: int, *, both: bool = True) -> None:
        self.cur[:] = value
        if both:
            self.nxt[:] = value

    def copy_cur(self) -> np.ndarray:
        """A snapshot of the current image (used by tests and thumbnails)."""
        return self.cur.copy()

    def load(self, array: np.ndarray) -> None:
        """Load pixel data into the current image (shape must match)."""
        if array.shape != (self.dim_y, self.dim_x):
            raise ConfigError(
                f"array shape {array.shape} does not match image dims "
                f"{self.dim_x}x{self.dim_y}"
            )
        self.cur[:] = array.astype(np.uint32, copy=False)

    # -- channel planes ------------------------------------------------------
    def channels(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split the current image into (r, g, b, a) uint8 planes."""
        c = self.cur
        return (
            (c >> 24 & 0xFF).astype(np.uint8),
            (c >> 16 & 0xFF).astype(np.uint8),
            (c >> 8 & 0xFF).astype(np.uint8),
            (c & 0xFF).astype(np.uint8),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Img2D(dim={self.dim}, swaps={self.swaps})"
