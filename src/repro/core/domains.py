"""Pluggable work domains: what the scheduler actually iterates over.

EASYPAP's pedagogy is about *which worker computes which piece of work
when*.  Nine PRs in, every piece of work used to be a tile of a square
2D :class:`~repro.core.tiling.TileGrid`; a :class:`WorkDomain`
generalizes that so regular grids, LU-style wavefront DAGs,
center-refined quadtrees and 3D stencil slabs all flow through the same
scheduling, telemetry, analysis and sweep machinery.

The protocol (duck-typed; :class:`TileGrid` is the first implementation
and registers as a virtual subclass):

* a sized, indexable, iterable container of *items* — each item is a
  :class:`~repro.core.tiling.Tile` (or subclass) whose ``index`` is its
  stable identity in enumeration order and whose ``(x, y, w, h)`` rect
  is its pixel/voxel footprint projected onto the trace plane;
* ``dependencies()`` — per-item predecessor index lists, or ``None``
  for dependency-free domains.  Enumeration order is always a valid
  topological order (edges only point backwards), the same contract
  OpenMP ``depend`` clauses satisfy;
* ``projection()`` — a render hint for monitors/easyview: ``"plane"``
  (items tile the image plane), ``"wave"`` (items are DAG blocks with
  a wavefront structure), ``"depth"`` (items are z-slabs drawn in the
  x/z plane);
* ``kind`` / ``dim_x`` / ``dim_y`` / ``dim_z`` / ``rows`` / ``cols`` —
  identity and projection-grid geometry;
* ``coverage_ok()`` — the partition invariant tests lean on.

Adding a workload shape to the whole stack is now a ``WorkDomain``
subclass plus a kernel file, nothing more (see ``docs/workloads.md``).
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Iterator

from repro.core.tiling import Tile, TileGrid
from repro.errors import ConfigError

__all__ = [
    "WorkDomain",
    "WaveTask",
    "Slab",
    "WavefrontDomain",
    "QuadtreeDomain",
    "Slab3DDomain",
    "DOMAINS",
    "make_domain",
]

#: the built-in domain kinds, in documentation order; drives both
#: ``RunConfig`` validation and the ``--domain`` CLI choices
DOMAINS = ("grid", "wavefront", "quadtree", "slab3d")


@dataclass(frozen=True)
class WaveTask(Tile):
    """One block operation of a wavefront factorization.

    ``row``/``col`` are the block coordinates ``(i, j)`` the task
    writes, ``(x, y, w, h)`` the corresponding pixel rectangle.  ``op``
    names the operation (``diag``/``row``/``col``/``trail``), ``step``
    the elimination step it belongs to, and ``wave`` the topological
    wavefront index (the Gantt-chart color).
    """

    op: str = "diag"
    step: int = 0
    wave: int = 0


@dataclass(frozen=True)
class Slab(Tile):
    """One z-slab of a 3D stencil.

    ``z0``/``d`` are the voxel depth range; the inherited tile rect is
    the slab's projection onto the x/z plane (``x=0, y=z0, w=dim_x,
    h=d``), so slab traces render as horizontal bands and the partition
    lint sees an exact 2D cover.
    """

    z0: int = 0
    d: int = 1


class WorkDomain(ABC):
    """Base class of the non-grid domains (see the module docstring).

    Concrete subclasses populate ``_items`` (topological enumeration
    order) and ``_deps`` (``None`` for dependency-free domains).
    """

    kind: str = "?"
    dim_x: int = 0
    dim_y: int = 0
    dim_z: int = 1
    rows: int = 0
    cols: int = 0

    _items: list
    _deps: list | None = None

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __getitem__(self, index: int):
        return self._items[index]

    # -- protocol ------------------------------------------------------------
    def dependencies(self) -> list | None:
        """Per-item predecessor index lists (aligned with enumeration
        order), or ``None`` when every item may run concurrently."""
        return self._deps

    def projection(self) -> str:
        return "plane"

    def coverage_ok(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self._items)} items)"


# TileGrid predates the protocol and already satisfies it structurally
# (kind/dim_x/dim_y/dim_z/rows/cols/dependencies/projection/coverage_ok):
# register it so ``isinstance(domain, WorkDomain)`` holds for all kinds.
WorkDomain.register(TileGrid)


class WavefrontDomain(WorkDomain):
    """Blocked right-looking LU elimination as a task DAG.

    The ``dim x dim`` matrix is cut into ``nb x nb`` blocks of side
    ``block`` (edge blocks clipped).  Each elimination step ``k`` emits
    the classic four-op wave — ``diag(k,k)``, ``row(k,j)``/``col(i,k)``
    panel solves, ``trail(i,j)`` updates — with reader-after-writer and
    writer-after-writer edges inferred from the blocks each op touches.

    This is the workload where ``static`` scheduling *visibly loses*:
    a statically assigned CPU idles whenever its next task's
    predecessors are still running elsewhere, while dynamic dispatch
    keeps pulling whatever became ready.
    """

    kind = "wavefront"

    def __init__(self, dim: int, block: int):
        if dim <= 0:
            raise ConfigError(f"dim must be positive, got {dim}")
        if block <= 0 or block > dim:
            raise ConfigError(
                f"wavefront block {block} invalid for a {dim}px matrix"
            )
        self.dim_x = self.dim_y = dim
        self.dim_z = 1
        self.block = block
        nb = -(-dim // block)
        self.nb = nb
        self.rows = self.cols = nb
        self._items: list[WaveTask] = []
        self._deps: list[list[int]] = []
        last_writer: dict[tuple[int, int], int] = {}

        def rect(i: int, j: int) -> tuple[int, int, int, int]:
            x, y = j * block, i * block
            return (x, y, min(block, dim - x), min(block, dim - y))

        def add(op: str, k: int, i: int, j: int, reads: list, wave: int) -> int:
            idx = len(self._items)
            x, y, w, h = rect(i, j)
            self._items.append(WaveTask(
                x=x, y=y, w=w, h=h, row=i, col=j, index=idx,
                op=op, step=k, wave=wave,
            ))
            preds = set()
            for key in [*reads, (i, j)]:  # RAW on reads + WAW on the target
                t = last_writer.get(key)
                if t is not None:
                    preds.add(t)
            self._deps.append(sorted(preds))
            last_writer[(i, j)] = idx
            return idx

        for k in range(nb):
            add("diag", k, k, k, [], 3 * k)
            for j in range(k + 1, nb):
                add("row", k, k, j, [(k, k)], 3 * k + 1)
            for i in range(k + 1, nb):
                add("col", k, i, k, [(k, k)], 3 * k + 1)
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    add("trail", k, i, j, [(i, k), (k, j)], 3 * k + 2)

    def projection(self) -> str:
        return "wave"

    @property
    def waves(self) -> int:
        """Number of topological waves (``3 * nb - 2``)."""
        return max((t.wave for t in self._items), default=-1) + 1

    def block_rect(self, i: int, j: int) -> tuple[int, int, int, int]:
        """Pixel rectangle of block ``(i, j)`` (clipped at the edges)."""
        x, y = j * self.block, i * self.block
        return (x, y, min(self.block, self.dim_x - x),
                min(self.block, self.dim_y - y))

    def coverage_ok(self) -> bool:
        written = {(t.row, t.col) for t in self._items}
        return written == {(i, j) for i in range(self.nb) for j in range(self.nb)}


class QuadtreeDomain(WorkDomain):
    """A center-refined adaptive tiling.

    Starts from the regular ``tile_w x tile_h`` grid and recursively
    splits every tile that intersects the central disc (radius
    ``min(dim) / 4``) into quadrants, down to ``max_depth`` levels.
    This matches the center-heavy datasets (sandpile ``center``, heat
    sources): small tiles where the work is, big tiles where nothing
    happens — the sparse/adaptive tiling the scheduler literature calls
    for, while remaining an exact partition of the image.

    Items are plain :class:`Tile` s with varied sizes; ``row``/``col``
    are the coordinates of the coarse parent tile (the monitor's
    projection grid).  There are no ordering edges.
    """

    kind = "quadtree"

    def __init__(
        self, dim: int, tile_w: int, tile_h: int | None = None,
        *, dim_y: int | None = None, max_depth: int = 2,
    ):
        if max_depth < 0:
            raise ConfigError(f"max_depth must be >= 0, got {max_depth}")
        base = TileGrid(dim, tile_w, tile_h, dim_y=dim_y)
        self.dim_x = base.dim_x
        self.dim_y = base.dim_y
        self.dim_z = 1
        self.tile_w = base.tile_w
        self.tile_h = base.tile_h
        self.rows = base.rows
        self.cols = base.cols
        self.max_depth = max_depth
        cx, cy = self.dim_x / 2.0, self.dim_y / 2.0
        radius = min(self.dim_x, self.dim_y) / 4.0

        def hot(x: int, y: int, w: int, h: int) -> bool:
            # closest point of the rect to the image center within the disc?
            px = min(max(cx, x), x + w)
            py = min(max(cy, y), y + h)
            return (px - cx) ** 2 + (py - cy) ** 2 < radius * radius

        self._items: list[Tile] = []
        self._deps = None

        def emit(x, y, w, h, row, col, depth):
            if depth < max_depth and w >= 2 and h >= 2 and hot(x, y, w, h):
                w2, h2 = w // 2, h // 2
                emit(x, y, w2, h2, row, col, depth + 1)
                emit(x + w2, y, w - w2, h2, row, col, depth + 1)
                emit(x, y + h2, w2, h - h2, row, col, depth + 1)
                emit(x + w2, y + h2, w - w2, h - h2, row, col, depth + 1)
            else:
                self._items.append(Tile(
                    x=x, y=y, w=w, h=h, row=row, col=col,
                    index=len(self._items),
                ))

        for t in base:
            emit(t.x, t.y, t.w, t.h, t.row, t.col, 0)

    def coverage_ok(self) -> bool:
        return sum(t.area for t in self._items) == self.dim_x * self.dim_y


class Slab3DDomain(WorkDomain):
    """Slab decomposition of a 3D ``dim_x x dim_y x dim_z`` volume.

    Items are z-slabs of thickness ``slab_d`` (the last one clipped);
    slab ``s`` covers voxel planes ``[s * slab_d, ...)``.  Slabs are
    dependency-free within one Jacobi sweep (read ``temp``, write
    ``next``), so they flow through the ordinary worksharing path —
    the point is exercising schedulers and N-d footprints on work
    items that are *not* image tiles.
    """

    kind = "slab3d"

    def __init__(self, dim_x: int, dim_y: int, dim_z: int, slab_d: int):
        if dim_x <= 0 or dim_y <= 0 or dim_z <= 0:
            raise ConfigError(
                f"volume dims must be positive, got {dim_x}x{dim_y}x{dim_z}"
            )
        if slab_d <= 0 or slab_d > dim_z:
            raise ConfigError(
                f"slab depth {slab_d} invalid for a {dim_z}-deep volume"
            )
        self.dim_x = dim_x
        self.dim_y = dim_y
        self.dim_z = dim_z
        self.slab_d = slab_d
        nslabs = -(-dim_z // slab_d)
        self.rows = nslabs
        self.cols = 1
        self._items = []
        self._deps = None
        for s in range(nslabs):
            z0 = s * slab_d
            d = min(slab_d, dim_z - z0)
            # the tile rect is the x/z projection: slabs draw as bands
            self._items.append(Slab(
                x=0, y=z0, w=dim_x, h=d, row=s, col=0, index=s, z0=z0, d=d,
            ))

    def projection(self) -> str:
        return "depth"

    def coverage_ok(self) -> bool:
        return sum(t.d for t in self._items) == self.dim_z


def make_domain(config) -> WorkDomain:
    """Build the :class:`WorkDomain` a :class:`RunConfig` selects.

    The grid geometry knobs are reused across kinds: ``tile_w`` is the
    wavefront block side, ``tile_h`` the slab depth, ``dim_y``/``dim_z``
    the non-square/3D extents (0 = same as ``dim``).
    """
    kind = getattr(config, "domain", "grid")
    dim_y = config.dim_y or config.dim
    if kind == "grid":
        return TileGrid(config.dim, config.tile_w, config.tile_h, dim_y=dim_y)
    if kind == "wavefront":
        return WavefrontDomain(config.dim, config.tile_w)
    if kind == "quadtree":
        return QuadtreeDomain(
            config.dim, config.tile_w, config.tile_h, dim_y=dim_y,
        )
    if kind == "slab3d":
        return Slab3DDomain(
            config.dim, dim_y, config.dim_z or config.dim, config.tile_h,
        )
    raise ConfigError(
        f"unknown work domain {kind!r} (valid: {', '.join(DOMAINS)})"
    )
