"""The engine: EASYPAP's hidden main loop.

``run(config)`` instantiates the kernel, builds the execution context,
drives the requested iterations through the chosen variant, and collects
everything the surrounding tools need: virtual/wall times, the final
image, monitoring records and the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import RunConfig
from repro.core.context import ExecutionContext
from repro.core.kernel import Kernel, get_kernel
from repro.monitor.activity import Monitor
from repro.sched.costmodel import CostModel
from repro.trace.events import Trace
from repro.util.timing import Stopwatch, format_duration

__all__ = ["run", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one kernel run."""

    config: RunConfig
    completed_iterations: int
    virtual_time: float  # simulated seconds (sim backend)
    wall_time: float  # real seconds spent executing the variant
    image: np.ndarray  # final current image (snapshot)
    monitor: Monitor | None = None
    trace: Trace | None = None
    early_stop: int = 0  # iteration at which the kernel stabilized (0 = never)
    context: ExecutionContext | None = None
    rank_results: list["RunResult"] = field(default_factory=list)  # MPI runs
    fastpath_regions: int = 0  # regions executed by the whole-frame fast path
    #: aggregated telemetry counters (regions, steals, dropped_events, ...)
    counters: dict = field(default_factory=dict)
    #: telemetry events lost to ring-buffer overflow (0 for in-process
    #: channels; bounded drop-oldest behaviour of the procs ring)
    dropped_events: int = 0
    #: execution tier the run resolved to — "fastpath", "jit" or
    #: "interpreted" ("" for aggregate MPI results; per-rank results
    #: carry their own).  Provenance, not identity: sweeps record it
    #: but exclude it from resume/equality comparisons.
    jit_tier: str = ""

    @property
    def elapsed(self) -> float:
        """The time performance mode reports: virtual for the simulator
        backend, wall-clock for the real backends (threads, procs)."""
        return self.virtual_time if self.config.backend == "sim" else self.wall_time

    def summary(self) -> str:
        """EASYPAP's performance-mode output line."""
        return (
            f"{self.completed_iterations} iterations completed in "
            f"{format_duration(self.elapsed)}"
        )

    def speedup_vs(self, reference: "RunResult | float") -> float:
        ref = reference.elapsed if isinstance(reference, RunResult) else float(reference)
        return ref / self.elapsed if self.elapsed > 0 else float("inf")


def run(
    config: RunConfig,
    *,
    model: CostModel | None = None,
    frame_hook: Callable[[ExecutionContext, int], None] | None = None,
    kernel: Kernel | None = None,
) -> RunResult:
    """Execute one configuration and return its :class:`RunResult`.

    ``frame_hook(ctx, iteration)`` is invoked at each iteration boundary
    (the replacement for SDL frame refresh: dump images, animate, ...).
    MPI configurations (``mpi_np > 0``) are dispatched to the launcher,
    which picks the rank substrate from ``config.mpi_backend``: real
    processes over shared-memory lanes (``procs``, the default) or
    threads in this interpreter (``inproc``).
    """
    if config.mpi_np > 0:
        from repro.mpi.launcher import mpi_run

        return mpi_run(config, model=model, frame_hook=frame_hook)

    kernel = kernel if kernel is not None else get_kernel(config.kernel)
    compute = kernel.compute_fn(config.variant)
    want = kernel.domain_for(config.variant)
    if want != "grid" and config.domain == "grid":
        # the kernel's iteration space is not the tile grid; honor its
        # declared domain unless the user forced one explicitly
        config = config.with_(domain=want)
    ctx = ExecutionContext(config, model=model)
    try:
        ctx.frame_hook = frame_hook
        kernel.init(ctx)
        kernel.draw(ctx)
        if config.display:
            kernel.refresh_img(ctx)

        sw = Stopwatch().start()
        v0 = ctx.vclock
        early = int(compute(ctx, config.iterations) or 0)
        wall = sw.stop()

        kernel.refresh_img(ctx)
        kernel.finalize(ctx)
    finally:
        # unlink any shared-memory blocks (procs backend) even when the
        # kernel raises or the run is interrupted; already-handed-out
        # views (ctx.img, ctx.data arrays) stay readable
        ctx.close()
    dropped = ctx.bus.dropped_events
    if dropped and ctx.tracer is not None:
        # make loss visible in the artifact itself, not only RunResult;
        # in-process channels never drop, so sim traces (and the golden
        # fixtures) are untouched
        ctx.bus.annotate(dropped_events=dropped)
    return RunResult(
        config=config,
        completed_iterations=ctx.completed_iterations,
        virtual_time=ctx.vclock - v0,
        wall_time=wall,
        image=ctx.img.copy_cur(),
        monitor=ctx.monitor,
        trace=ctx.tracer.to_trace() if ctx.tracer else None,
        early_stop=early,
        context=ctx,
        fastpath_regions=ctx.fastpath_regions,
        counters=dict(ctx.bus.counters),
        dropped_events=dropped,
        jit_tier=ctx.execution_tier(),
    )
