"""Tile grids and iteration orders.

EASYPAP decomposes the image into rectangular *tiles*; parallel variants
distribute tiles to threads.  A :class:`TileGrid` enumerates the tiles of
a ``dim x dim`` image for a given tile width/height, in the linearized
order produced by ``#pragma omp for collapse(2)`` (row-major over the
(tile_row, tile_col) space), which is the order every loop-scheduling
policy chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

__all__ = ["Tile", "TileGrid"]


@dataclass(frozen=True)
class Tile:
    """One rectangular tile: pixel rectangle + grid coordinates.

    ``index`` is the tile's position in collapse(2) row-major order, the
    canonical identity used by schedulers, monitors and traces.
    """

    x: int
    y: int
    w: int
    h: int
    row: int
    col: int
    index: int

    @property
    def area(self) -> int:
        return self.w * self.h

    def contains(self, y: int, x: int) -> bool:
        return self.y <= y < self.y + self.h and self.x <= x < self.x + self.w

    def as_rect(self) -> tuple[int, int, int, int]:
        """(x, y, w, h) — the signature of EASYPAP's ``do_tile``."""
        return (self.x, self.y, self.w, self.h)


class TileGrid:
    """All tiles of a rectangular image for a given tile size.

    Tile sizes need not divide the image sides: edge tiles are clipped,
    exactly like EASYPAP handles ``--tile-size`` values that do not
    divide ``--size``.  ``dim_y`` defaults to ``dim`` (square images,
    the EASYPAP norm); a different height yields a ``dim x dim_y``
    image with independent row/column tile counts.

    A :class:`TileGrid` is also the canonical (dependency-free)
    :class:`~repro.core.domains.WorkDomain`: items are tiles in
    collapse(2) order, there are no ordering edges, and the render
    projection is the image plane itself.
    """

    #: WorkDomain protocol: the domain kind this class implements
    kind = "grid"
    #: WorkDomain protocol: grids are 2D (one voxel deep)
    dim_z = 1

    def __init__(
        self, dim: int, tile_w: int, tile_h: int | None = None,
        *, dim_y: int | None = None,
    ):
        if tile_h is None:
            tile_h = tile_w
        if dim_y is None:
            dim_y = dim
        if dim <= 0 or dim_y <= 0:
            raise ConfigError(f"dim must be positive, got {dim}x{dim_y}")
        if tile_w <= 0 or tile_h <= 0:
            raise ConfigError(f"tile size must be positive, got {tile_w}x{tile_h}")
        if tile_w > dim or tile_h > dim_y:
            raise ConfigError(
                f"tile size {tile_w}x{tile_h} larger than image dim {dim}"
                + (f"x{dim_y}" if dim_y != dim else "")
            )
        self.dim = dim  # x side (legacy name: EASYPAP images are square)
        self.dim_x = dim
        self.dim_y = dim_y
        self.tile_w = tile_w
        self.tile_h = tile_h
        self.cols = -(-dim // tile_w)  # ceil division
        self.rows = -(-dim_y // tile_h)
        self._tiles: list[Tile] = []
        idx = 0
        for r in range(self.rows):
            y = r * tile_h
            h = min(tile_h, dim_y - y)
            for c in range(self.cols):
                x = c * tile_w
                w = min(tile_w, dim - x)
                self._tiles.append(Tile(x=x, y=y, w=w, h=h, row=r, col=c, index=idx))
                idx += 1

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._tiles)

    def __iter__(self) -> Iterator[Tile]:
        """Tiles in collapse(2) row-major order."""
        return iter(self._tiles)

    def __getitem__(self, index: int) -> Tile:
        return self._tiles[index]

    # -- lookups ---------------------------------------------------------------
    def at(self, row: int, col: int) -> Tile:
        """Tile at grid coordinates (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigError(
                f"tile ({row}, {col}) out of a {self.rows}x{self.cols} grid"
            )
        return self._tiles[row * self.cols + col]

    def tile_of_pixel(self, y: int, x: int) -> Tile:
        """The tile containing pixel (y, x)."""
        if not (0 <= y < self.dim_y and 0 <= x < self.dim_x):
            raise ConfigError(f"pixel ({y}, {x}) outside a {self.dim}px image")
        return self.at(y // self.tile_h, x // self.tile_w)

    # -- WorkDomain protocol ---------------------------------------------------
    def dependencies(self) -> None:
        """Grids are dependency-free: every tile of a region may run
        concurrently (``None`` = no ordering edges)."""
        return None

    def projection(self) -> str:
        """Render hint: tiles live directly in the image plane."""
        return "plane"

    # -- iteration orders ------------------------------------------------------
    def by_rows(self) -> Iterator[list[Tile]]:
        """Tiles grouped per tile-row (the non-collapsed ``omp for`` order)."""
        for r in range(self.rows):
            yield self._tiles[r * self.cols : (r + 1) * self.cols]

    def border_tiles(self) -> list[Tile]:
        """Tiles touching the image border (the blur 'outer tiles')."""
        return [
            t
            for t in self._tiles
            if t.row in (0, self.rows - 1) or t.col in (0, self.cols - 1)
        ]

    def inner_tiles(self) -> list[Tile]:
        """Tiles with a full 1-pixel neighbourhood inside the image."""
        return [
            t
            for t in self._tiles
            if 0 < t.row < self.rows - 1 and 0 < t.col < self.cols - 1
        ]

    def neighbours(self, tile: Tile, diagonal: bool = False) -> list[Tile]:
        """Adjacent tiles in the grid (4- or 8-connectivity)."""
        out = []
        deltas = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            deltas += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        for dr, dc in deltas:
            r, c = tile.row + dr, tile.col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                out.append(self.at(r, c))
        return out

    def tile_reduce(self, array: np.ndarray, op: np.ufunc = np.add) -> np.ndarray:
        """Per-tile reduction of a ``(dim_y, dim_x)`` array → ``(rows, cols)``.

        The workhorse of the whole-frame fast path: per-tile work and
        change profiles are recovered from a full-frame array with two
        ``reduceat`` passes instead of one NumPy call per tile.  Integer
        and boolean reductions are exact, so the recovered values equal
        the per-tile computations bit for bit.
        """
        if array.shape[:2] != (self.dim_y, self.dim_x):
            raise ConfigError(
                f"tile_reduce expects a ({self.dim_y}, {self.dim_x}) array, "
                f"got {array.shape}"
            )
        row_starts = np.arange(self.rows) * self.tile_h
        col_starts = np.arange(self.cols) * self.tile_w
        return op.reduceat(op.reduceat(array, row_starts, axis=0), col_starts, axis=1)

    def tile_index_array(self, tiles) -> np.ndarray:
        """Collapse(2) indices of ``tiles`` as an array (fast-path gather)."""
        return np.fromiter((t.index for t in tiles), dtype=np.intp, count=len(tiles))

    def coverage_ok(self) -> bool:
        """True iff tiles exactly partition the image (used as an invariant)."""
        covered = 0
        for t in self._tiles:
            covered += t.area
        return covered == self.dim_x * self.dim_y

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TileGrid(dim={self.dim}, tile={self.tile_w}x{self.tile_h}, "
            f"{self.rows}x{self.cols} tiles)"
        )
