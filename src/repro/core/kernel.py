"""Kernel and variant registry.

EASYPAP kernels are C functions found by naming convention
(``mandel_compute_omp_tiled``).  Here a kernel is a class with methods
marked by the :func:`variant` decorator; the registry maps
``--kernel``/``--variant`` names to them.

A variant has signature ``variant(self, ctx, nb_iter) -> int``: it
performs ``nb_iter`` iterations (using ``for it in ctx.iterations(nb_iter)``)
and returns 0, or — like EASYPAP kernels that detect stabilization
(Game of Life) — the iteration number at which the computation reached
a steady state.
"""

from __future__ import annotations

import importlib.util
import os
import re
import sys
from typing import Callable, Type

from repro.errors import KernelError, UnknownKernelError, UnknownVariantError

__all__ = [
    "Kernel",
    "variant",
    "register_kernel",
    "get_kernel",
    "list_kernels",
    "load_kernel_module",
    "loaded_kernel_files",
]

_KERNELS: dict[str, Type["Kernel"]] = {}

#: absolute paths given to ``load_kernel_module``, in load order — the
#: ``procs`` backend replays them in pool workers so ``--load``-ed
#: kernels resolve across the process boundary
_LOADED_KERNEL_FILES: list[str] = []


def variant(name: str) -> Callable:
    """Mark a kernel method as the compute function of variant ``name``."""

    def deco(fn: Callable) -> Callable:
        fn._variant_name = name
        return fn

    return deco


class Kernel:
    """Base class for kernels.

    Lifecycle (driven by the engine)::

        init(ctx)      -- allocate kernel data (EASYPAP *_init)
        draw(ctx)      -- fill the initial image (EASYPAP *_draw)
        <variant>(ctx, nb_iter)
        refresh_img(ctx) -- sync the image from internal data structures
        finalize(ctx)

    Whole-frame fast path (``compute_frame``)
    -----------------------------------------
    A kernel may additionally register whole-frame batch implementations
    by passing ``frame=self.compute_frame`` (any method name works; the
    built-in kernels use ``compute_frame*``) to ``ctx.parallel_for`` /
    ``ctx.parallel_reduce`` / ``ctx.sequential_for``.  The contract:

    * ``frame(ctx, items) -> works`` performs **all** side effects the
      per-item bodies would (image/data writes, change flags) in one
      vectorized call and returns the per-item work vector, aligned
      with ``items`` and bit-identical to the per-item returns.  For
      ``parallel_reduce`` it returns ``(works, value)`` where ``value``
      is the reduction over all items.
    * Returning ``None`` declines the batch (e.g. an item subset the
      frame cannot prove equivalent) and falls back to per-item bodies.
    * The engine only calls the frame when monitoring, tracing and
      footprint collection are all off (``ctx.fastpath_active()``), so
      per-task instrumentation never silently disappears.
    """

    #: registry name; subclasses must set it
    name: str = "?"

    #: variants that legitimately skip tiles (lazy evaluation, MPI
    #: bands...) — the analyze lint exempts them from the
    #: partition-completeness check
    lazy_variants: frozenset[str] = frozenset()

    #: the work domain this kernel needs when the user leaves
    #: ``--domain`` at its default ("grid"); kernels whose iteration
    #: space is not the tile grid (wavefront factorizations, 3D
    #: stencils) set it so plain ``easypap -k <kernel>`` just works.
    #: An explicit non-grid ``--domain`` always wins.
    default_domain: str = "grid"

    #: per-variant overrides of ``default_domain`` (e.g. a quadtree
    #: variant of an otherwise grid kernel)
    variant_domains: dict[str, str] = {}

    @classmethod
    def domain_for(cls, variant_name: str) -> str:
        """The domain kind this kernel/variant pair wants by default."""
        return cls.variant_domains.get(variant_name, cls.default_domain)

    #: variant name -> unbound method, filled by ``__init_subclass__``
    variants: dict[str, Callable]

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        found: dict[str, Callable] = {}
        for klass in reversed(cls.__mro__):
            for attr in vars(klass).values():
                vname = getattr(attr, "_variant_name", None)
                if vname is not None:
                    found[vname] = attr
        cls.variants = found

    # -- lifecycle hooks (default no-ops) -----------------------------------
    def init(self, ctx) -> None:
        """Allocate kernel-specific data in ``ctx.data``."""

    def draw(self, ctx) -> None:
        """Fill the initial image."""

    def refresh_img(self, ctx) -> None:
        """Update ``ctx.img`` from internal data structures (display)."""

    def finalize(self, ctx) -> None:
        """Release resources / final checks."""

    # -- variant lookup ----------------------------------------------------------
    @classmethod
    def variant_names(cls) -> list[str]:
        return sorted(cls.variants)

    def compute_fn(self, variant_name: str) -> Callable:
        try:
            fn = self.variants[variant_name]
        except KeyError:
            raise UnknownVariantError(
                self.name, variant_name, list(self.variants)
            ) from None
        return fn.__get__(self, type(self))


def register_kernel(cls: Type[Kernel]) -> Type[Kernel]:
    """Class decorator adding a kernel to the registry."""
    if not issubclass(cls, Kernel):
        raise KernelError(f"{cls!r} is not a Kernel subclass")
    if cls.name in (None, "?", ""):
        raise KernelError(f"kernel class {cls.__name__} must set a name")
    if cls.name in _KERNELS and _KERNELS[cls.name] is not cls:
        raise KernelError(f"kernel {cls.name!r} already registered")
    _KERNELS[cls.name] = cls
    return cls


def get_kernel(name: str) -> Kernel:
    """Instantiate a registered kernel (kernels are stateless between runs:
    per-run state lives in ``ctx.data``)."""
    _ensure_builtin_kernels()
    try:
        cls = _KERNELS[name]
    except KeyError:
        raise UnknownKernelError(name, list(_KERNELS)) from None
    return cls()


def list_kernels() -> list[str]:
    _ensure_builtin_kernels()
    return sorted(_KERNELS)


def _ensure_builtin_kernels() -> None:
    """Import the built-in kernel package once (registers via decorator)."""
    import repro.kernels  # noqa: F401  (import side effect)


def load_kernel_module(path: str):
    """Execute a Python file that registers extra kernels (``--load``).

    The module is cached in ``sys.modules`` under a name derived from its
    absolute path, so loading the same file twice (e.g. several CLI runs
    in one process, or tests) does not re-register its kernels.
    """
    _ensure_builtin_kernels()
    path = os.path.abspath(path)
    if not os.path.isfile(path):
        raise KernelError(f"kernel file not found: {path}")
    modname = "easypap_ext_" + re.sub(r"\W", "_", path)
    if modname in sys.modules:
        if path not in _LOADED_KERNEL_FILES:
            _LOADED_KERNEL_FILES.append(path)
        return sys.modules[modname]
    spec = importlib.util.spec_from_file_location(modname, path)
    if spec is None or spec.loader is None:
        raise KernelError(f"cannot load kernel file {path!r}")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[modname] = mod
    try:
        spec.loader.exec_module(mod)
    except Exception:
        del sys.modules[modname]
        raise
    _LOADED_KERNEL_FILES.append(path)
    return mod


def loaded_kernel_files() -> list[str]:
    """The kernel files loaded so far (replayed in procs pool workers)."""
    return list(_LOADED_KERNEL_FILES)
