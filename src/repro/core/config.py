"""Run configuration.

A :class:`RunConfig` captures everything an ``easypap`` invocation
specifies (kernel, variant, size, tile geometry, iterations, thread
count, schedule, monitoring/trace flags...).  It is the single source
of truth shared by the CLI, the experiment driver and the engine, and
it round-trips into the performance-mode CSV rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError
from repro.omp.icv import DEFAULT_NUM_THREADS
from repro.sched.policies import SchedulePolicy, parse_schedule

__all__ = [
    "RunConfig", "BACKENDS", "MPI_BACKENDS", "DOMAINS",
    "DEFAULT_DIM", "DEFAULT_TILE",
]

DEFAULT_DIM = 256
DEFAULT_TILE = 32

#: the execution backends, in documentation order: ``sim`` replays the
#: loop through the virtual-time scheduler, ``threads`` runs a real
#: thread team (wall clock; parallel only for GIL-releasing bodies),
#: ``procs`` runs a persistent shared-memory process pool (wall clock,
#: true parallelism for pure-Python tile bodies).  This single tuple
#: drives both validation and the ``--backend`` CLI choices.
BACKENDS = ("sim", "threads", "procs")

#: the MPI rank substrates: ``procs`` runs each rank as a real process
#: from the persistent forkserver/spawn pool, communicating over
#: shared-memory lanes (GIL-free, wall-clock honest); ``inproc`` runs
#: ranks as threads of one interpreter (deterministic, cheap — the
#: substrate the test suite pins itself to).
MPI_BACKENDS = ("procs", "inproc")

#: the work-domain kinds (see :mod:`repro.core.domains`): ``grid`` is
#: the classic EASYPAP tile grid, ``wavefront`` a blocked-LU task DAG,
#: ``quadtree`` a center-refined adaptive tiling, ``slab3d`` a
#: z-slab decomposition of a 3D volume.  Re-exported here so config
#: validation and the ``--domain`` CLI choices share one tuple.
DOMAINS = ("grid", "wavefront", "quadtree", "slab3d")


@dataclass
class RunConfig:
    """Parameters of one kernel run."""

    kernel: str = "none"
    variant: str = "seq"
    dim: int = DEFAULT_DIM
    tile_w: int = DEFAULT_TILE
    tile_h: int = DEFAULT_TILE
    iterations: int = 1
    nthreads: int = DEFAULT_NUM_THREADS
    schedule: str = "dynamic"
    backend: str = "sim"  # one of BACKENDS: sim / threads / procs
    monitoring: bool = False
    trace: bool = False
    trace_label: str = "cur"
    footprints: bool = False  # record per-task read/write footprints (--check-races)
    display: bool = False
    arg: str | None = None  # kernel-specific parameter (EASYPAP --arg)
    seed: int | None = None
    mpi_np: int = 0  # 0 = no MPI; N = --mpirun "-np N"
    mpi_backend: str = "procs"  # one of MPI_BACKENDS: procs / inproc
    debug: str = ""  # EASYPAP-style debug flag letters (e.g. "M")
    time_scale: float = 1.0  # cost-model scaling (tests use tiny scales)
    jitter: float = 0.0  # relative sigma of simulated system noise
    run_index: int = 0  # repetition number (seeds the jitter stream)
    fastpath: str = "auto"  # "auto": whole-frame perf path when possible; "off": reference
    jit: str = "auto"  # "auto": compiled tile bodies when numba allows; "off": reference
    domain: str = "grid"  # work domain kind, one of DOMAINS
    dim_y: int = 0  # image height; 0 = square (dim x dim)
    dim_z: int = 0  # volume depth (slab3d only); 0 = dim
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.validate()

    # -- validation -----------------------------------------------------------
    def validate(self) -> None:
        if self.dim <= 0:
            raise ConfigError(f"--size must be positive, got {self.dim}")
        if self.tile_w <= 0 or self.tile_h <= 0:
            raise ConfigError(
                f"tile size must be positive, got {self.tile_w}x{self.tile_h}"
            )
        if self.dim_y < 0:
            raise ConfigError(f"--size-y must be >= 0, got {self.dim_y}")
        if self.dim_z < 0:
            raise ConfigError(f"--depth must be >= 0, got {self.dim_z}")
        if self.domain not in DOMAINS:
            raise ConfigError(
                f"unknown work domain {self.domain!r} "
                f"(valid: {', '.join(DOMAINS)})"
            )
        height = self.dim_y or self.dim
        if self.tile_w > self.dim:
            raise ConfigError(
                f"tile {self.tile_w}x{self.tile_h} larger than image "
                f"({self.dim}x{height})"
            )
        # under slab3d, tile_h is the slab depth (checked against dim_z below)
        if self.domain != "slab3d" and self.tile_h > height:
            raise ConfigError(
                f"tile {self.tile_w}x{self.tile_h} larger than image "
                f"({self.dim}x{height})"
            )
        if self.domain == "wavefront":
            if self.dim_y not in (0, self.dim):
                raise ConfigError(
                    "domain 'wavefront' factorizes a square matrix; "
                    f"--size-y {self.dim_y} != --size {self.dim}"
                )
            if self.tile_w != self.tile_h:
                raise ConfigError(
                    "domain 'wavefront' uses square blocks; got tile "
                    f"{self.tile_w}x{self.tile_h}"
                )
        if self.domain == "slab3d":
            depth = self.dim_z or self.dim
            if self.tile_h > depth:
                raise ConfigError(
                    f"slab depth {self.tile_h} larger than volume depth {depth}"
                )
        elif self.dim_z:
            raise ConfigError(
                f"--depth only applies to domain 'slab3d', not {self.domain!r}"
            )
        if self.iterations < 1:
            raise ConfigError(f"--iterations must be >= 1, got {self.iterations}")
        if self.nthreads < 1:
            raise ConfigError(f"thread count must be >= 1, got {self.nthreads}")
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r} (valid: {', '.join(BACKENDS)})"
            )
        if self.mpi_np < 0:
            raise ConfigError(f"-np must be >= 0, got {self.mpi_np}")
        if self.backend == "procs" and self.mpi_np:
            raise ConfigError("backend 'procs' cannot be combined with --mpirun")
        if self.mpi_backend not in MPI_BACKENDS:
            raise ConfigError(
                f"unknown mpi backend {self.mpi_backend!r} "
                f"(valid: {', '.join(MPI_BACKENDS)})"
            )
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")
        if self.run_index < 0:
            raise ConfigError(f"run_index must be >= 0, got {self.run_index}")
        if self.fastpath not in ("auto", "off"):
            raise ConfigError(
                f"fastpath must be 'auto' or 'off', got {self.fastpath!r}"
            )
        if self.jit not in ("auto", "off"):
            raise ConfigError(f"jit must be 'auto' or 'off', got {self.jit!r}")
        # raises ScheduleError on bad specs:
        self.policy()

    # -- derived values ----------------------------------------------------------
    def policy(self) -> SchedulePolicy:
        return parse_schedule(self.schedule)

    @property
    def grain(self) -> int:
        """EASYPAP's ``--grain`` alias: square tile side."""
        return self.tile_w

    def with_(self, **kwargs) -> "RunConfig":
        """A modified copy (used heavily by sweeps and tests)."""
        return replace(self, **kwargs)

    # -- CSV round-trip --------------------------------------------------------------
    def csv_row(self) -> dict[str, Any]:
        """The configuration columns of a performance-mode CSV row."""
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "dim": self.dim,
            "tile_w": self.tile_w,
            "tile_h": self.tile_h,
            "iterations": self.iterations,
            "threads": self.nthreads,
            "schedule": self.schedule,
            "backend": self.backend,
            "arg": self.arg or "",
            "np": self.mpi_np,
            "domain": self.domain,
        }

    def label(self) -> str:
        """Human-readable one-liner (trace metadata, logs)."""
        parts = [
            f"kernel={self.kernel}",
            f"variant={self.variant}",
            f"dim={self.dim}",
            f"tile={self.tile_w}x{self.tile_h}",
            f"threads={self.nthreads}",
            f"schedule={self.schedule}",
        ]
        if self.domain != "grid":
            parts.insert(2, f"domain={self.domain}")
        if self.mpi_np:
            parts.append(f"np={self.mpi_np}")
        return " ".join(parts)
