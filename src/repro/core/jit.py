"""Optional JIT compilation tier for per-tile kernel bodies.

The engine runs each kernel through one of three execution tiers:

* **fastpath** — whole-frame batch kernels (``compute_frame``), the
  vectorized perf-mode path of :mod:`repro.omp.parallel`;
* **jit** — per-tile bodies compiled with ``numba.njit(nogil=True,
  cache=True)`` from the :data:`JIT_BODIES` registry below;
* **interpreted** — the reference numpy/pure-Python tile bodies.

numba is strictly optional.  :func:`probe` detects it once per process;
when it is absent, compilation fails, ``--no-jit`` was passed, or
``$REPRO_NO_JIT`` is set, :func:`resolve` returns ``None`` and kernels
fall back to their existing bodies — **bit-identically**: every core in
the registry reproduces the reference arithmetic operation for
operation (same association, same rounding), which the differential
suite enforces by executing the cores *interpreted* against the numpy
references (no numba required) and, where numba exists, by the jit-on
vs jit-off image comparison.

``nogil=True`` is the point of the tier for real backends: a compiled
tile body releases the GIL, so ``backend="threads"`` (and the procs
pool, which compiles per worker and shares the on-disk numba cache via
``cache=True``) finally scale on GIL-bound workloads.

The registry is deliberately self-contained: each core is a plain
Python function written in nopython-compilable style with **no calls to
helpers outside the function body**, so ``njit`` can compile it in one
shot and the interpreted execution used by the test suite exercises the
exact code numba would compile.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "JIT_BODIES",
    "JitCapability",
    "JitEntry",
    "NO_JIT_ENV",
    "compiled_body",
    "jit_enabled",
    "probe",
    "reset",
    "resolve",
    "select_tier",
]

#: environment kill-switch (any non-empty value disables the tier)
NO_JIT_ENV = "REPRO_NO_JIT"


@dataclass(frozen=True)
class JitCapability:
    """Result of the numba capability probe."""

    available: bool
    reason: str
    version: str = ""


_PROBE: JitCapability | None = None

#: per-process compile results: kernel name -> (callable | None, reason)
_COMPILED: dict[str, tuple[Callable | None, str]] = {}


def probe(refresh: bool = False) -> JitCapability:
    """Detect numba once per process (``refresh=True`` re-probes)."""
    global _PROBE
    if _PROBE is None or refresh:
        try:
            import numba

            _PROBE = JitCapability(
                True, "ok", str(getattr(numba, "__version__", "unknown"))
            )
        except Exception as exc:  # ModuleNotFoundError or a broken install
            _PROBE = JitCapability(
                False, f"numba unavailable ({type(exc).__name__}: {exc})"
            )
    return _PROBE


def reset() -> None:
    """Drop the probe and compile caches (tests that fake the toolchain)."""
    global _PROBE
    _PROBE = None
    _COMPILED.clear()


def _compile(core: Callable) -> Callable:
    """Wrap one registry core with numba.  Isolated so tests can
    substitute a fake compiler (e.g. the identity) to exercise the
    whole jit dispatch path without numba installed."""
    import numba

    return numba.njit(nogil=True, cache=True)(core)


def compiled_body(kernel_name: str) -> tuple[Callable | None, str]:
    """The compiled core for ``kernel_name`` — compiled (and smoke-
    checked) once per process — or ``(None, reason)``.

    A compile or smoke failure is cached too: the run falls back to the
    interpreted body instead of retrying the compiler on every tile.
    """
    cached = _COMPILED.get(kernel_name)
    if cached is not None:
        return cached
    cap = probe()
    if not cap.available:
        out: tuple[Callable | None, str] = (None, cap.reason)
    elif kernel_name not in JIT_BODIES:
        out = (None, f"no JIT body registered for kernel {kernel_name!r}")
    else:
        entry = JIT_BODIES[kernel_name]
        try:
            fn = _compile(entry.core)
            entry.smoke(fn)  # forces compilation; raises on a miscompile
            out = (fn, f"numba {cap.version} nogil tile body")
        except Exception as exc:
            out = (None, f"compile failed: {type(exc).__name__}: {exc}")
    _COMPILED[kernel_name] = out
    return out


def jit_enabled(config) -> tuple[bool, str]:
    """Whether the configuration (and environment) allow the jit tier."""
    if getattr(config, "jit", "auto") == "off":
        return False, "disabled (--no-jit)"
    if os.environ.get(NO_JIT_ENV):
        return False, f"disabled (${NO_JIT_ENV})"
    return True, "ok"


def resolve(config) -> tuple[Callable | None, str]:
    """The compiled tile core a run should use, or ``(None, why-not)``.

    This is what :class:`~repro.core.context.ExecutionContext` calls at
    construction — including the contexts procs workers rebuild from
    the shipped config, so every worker process compiles (or cleanly
    declines) on its own; ``cache=True`` shares the compiled artifacts
    on disk between them.
    """
    enabled, reason = jit_enabled(config)
    if not enabled:
        return None, reason
    return compiled_body(config.kernel)


def select_tier(config) -> tuple[str, str]:
    """Config-level execution-tier prediction: ``(tier, reason)``.

    Mirrors ``ExecutionContext.execution_tier()`` for code that has no
    context (the work-profile cache key, sweep provenance for replayed
    rows).  The one thing a config cannot see is an externally attached
    telemetry consumer demanding timelines; those exist only in tests.

    Tier precedence: **fastpath** (whole-frame batch kernels — already
    the fastest path where it engages) over **jit** over
    **interpreted**.  The jit bodies still serve the per-tile path of a
    fastpath-tier run whenever a frame declines a region (e.g. the lazy
    Life variant scheduling a non-frame tile subset).
    """
    if (
        config.backend == "sim"
        and config.fastpath != "off"
        and not (config.monitoring or config.trace or config.footprints)
    ):
        return "fastpath", "whole-frame batch path (sim backend, uninstrumented)"
    core, reason = resolve(config)
    if core is not None:
        return "jit", reason
    return "interpreted", reason


# --------------------------------------------------------------------------
# The nopython tile cores
# --------------------------------------------------------------------------
#
# Every core reproduces its kernel's reference arithmetic bit for bit:
#
# * mandel — the scalar escape loop evaluates ``zr2 + zi2 > 4.0`` on
#   freshly squared terms and updates ``zi`` before ``zr``, exactly the
#   elementwise order of ``mandel_counts``; per-pixel work is
#   ``count + 1`` loop trips for escapees (the reference charges the
#   escaping iteration too) and ``max_iter`` otherwise, and the float
#   work accumulator sums integers well below 2**53, so the total is
#   exact regardless of summation order.
# * blur — channel sums are integers (<= 9 * 255), so the float64
#   division ``sum / n`` sees the identical operands as the vectorized
#   ``acc / cnt``; rounding is inlined half-to-even, the definition of
#   ``np.rint`` used by ``merge_channels`` (the clip to [0, 255] is a
#   no-op on an average of bytes and therefore omitted).
# * life / sandpile — pure integer rules; equality is structural.
# * heat — neighbour replication reads ``temp[max(i-1, 0), j]`` etc.,
#   matching the edge-replicated pad, and the update keeps the numpy
#   association ``0.25 * (((up + down) + left) + right)``; the running
#   max of |update| equals the vectorized max (no NaNs survive the
#   source substitution).


def _mandel_core(crs, cis, cjr, cji, julia, max_iter, counts):
    """Escape counts for the rectangle crs x cis; returns total work.

    ``crs``/``cis`` are the 1-D real/imaginary coordinate axes,
    ``counts`` the preallocated (h, w) int32 output.  With ``julia``
    set, z starts at the pixel and (cjr, cji) is the fixed parameter.
    """
    work = 0.0
    h = cis.shape[0]
    w = crs.shape[0]
    for i in range(h):
        for j in range(w):
            if julia:
                zr = crs[j]
                zi = cis[i]
                cr = cjr
                ci = cji
            else:
                zr = 0.0
                zi = 0.0
                cr = crs[j]
                ci = cis[i]
            cnt = max_iter
            for it in range(max_iter):
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > 4.0:
                    cnt = it
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
            counts[i, j] = cnt
            work += cnt + 1 if cnt < max_iter else max_iter
    return work


def _blur_core(src, dst, x, y, w, h):
    """3x3 mean filter on packed-RGBA uint32, border-clipped.

    Signature-compatible with ``blur_rect_vectorized`` so kernels can
    swap one for the other."""
    H = src.shape[0]
    W = src.shape[1]
    sums = np.zeros(4, dtype=np.int64)
    for i in range(y, y + h):
        for j in range(x, x + w):
            for ch in range(4):
                sums[ch] = 0
            n = 0
            for di in range(-1, 2):
                yy = i + di
                if yy < 0 or yy >= H:
                    continue
                for dj in range(-1, 2):
                    xx = j + dj
                    if xx < 0 or xx >= W:
                        continue
                    p = np.int64(src[yy, xx])
                    sums[0] += (p >> 24) & 0xFF
                    sums[1] += (p >> 16) & 0xFF
                    sums[2] += (p >> 8) & 0xFF
                    sums[3] += p & 0xFF
                    n += 1
            out = np.uint32(0)
            for ch in range(4):
                q = sums[ch] / n
                f = math.floor(q)
                d = q - f
                if d > 0.5:
                    r = f + 1
                elif d < 0.5:
                    r = f
                elif f % 2 == 0:  # exact tie: round half to even (np.rint)
                    r = f
                else:
                    r = f + 1
                out = (out << np.uint32(8)) | np.uint32(r)
            dst[i, j] = out
    return None


def _life_core(cells, nxt, y, x, h, w):
    """One Life step on a rectangle; returns the number of changed cells.

    Signature-compatible with ``life_step_rect``; out-of-grid cells are
    dead."""
    H = cells.shape[0]
    W = cells.shape[1]
    changed = 0
    for i in range(y, y + h):
        for j in range(x, x + w):
            n = 0
            for di in range(-1, 2):
                yy = i + di
                if yy < 0 or yy >= H:
                    continue
                for dj in range(-1, 2):
                    if di == 0 and dj == 0:
                        continue
                    xx = j + dj
                    if xx < 0 or xx >= W:
                        continue
                    n += cells[yy, xx]
            cur = cells[i, j]
            alive = 1 if (n == 3 or (cur == 1 and n == 2)) else 0
            if alive != cur:
                changed += 1
            nxt[i, j] = alive
    return changed


def _heat_core(temp, nxt, sources, y, x, h, w):
    """One Jacobi step on a rectangle; returns the max absolute update.

    Signature-compatible with ``jacobi_step_rect``; borders replicate
    their edge neighbour (insulation), source cells stay fixed."""
    H = temp.shape[0]
    W = temp.shape[1]
    delta = 0.0
    for i in range(y, y + h):
        for j in range(x, x + w):
            up = temp[i - 1, j] if i > 0 else temp[0, j]
            dn = temp[i + 1, j] if i < H - 1 else temp[H - 1, j]
            lf = temp[i, j - 1] if j > 0 else temp[i, 0]
            rt = temp[i, j + 1] if j < W - 1 else temp[i, W - 1]
            new = 0.25 * (up + dn + lf + rt)
            s = sources[i, j]
            if not np.isnan(s):
                new = s
            nxt[i, j] = new
            d = abs(new - temp[i, j])
            if d > delta:
                delta = d
    return delta


def _sandpile_core(grains, nxt, y, x, h, w):
    """One synchronous toppling step; returns the number of changed cells.

    Signature-compatible with ``sandpile_step_rect``; the border is a
    sink."""
    H = grains.shape[0]
    W = grains.shape[1]
    changed = 0
    for i in range(y, y + h):
        for j in range(x, x + w):
            inflow = 0
            if i > 0:
                inflow += grains[i - 1, j] // 4
            if i < H - 1:
                inflow += grains[i + 1, j] // 4
            if j > 0:
                inflow += grains[i, j - 1] // 4
            if j < W - 1:
                inflow += grains[i, j + 1] // 4
            cur = grains[i, j]
            new = cur % 4 + inflow
            if new != cur:
                changed += 1
            nxt[i, j] = new
    return changed


# --------------------------------------------------------------------------
# Smoke checks: compiled-vs-interpreted on tiny inputs
# --------------------------------------------------------------------------
#
# Each smoke runs the *compiled* function and the interpreted core on
# the same small arrays and requires identical results.  It forces
# compilation eagerly (so a failure downgrades the whole run to the
# interpreted tier up front, instead of exploding mid-region) and
# catches gross miscompiles; full bit-identity against the numpy
# reference bodies is enforced by tests/test_jit_tier.py.


def _smoke_mandel(fn: Callable) -> None:
    crs = np.array([-0.6, 0.4, 2.0])
    cis = np.array([0.3, -1.1])
    a = np.empty((2, 3), dtype=np.int32)
    b = np.empty((2, 3), dtype=np.int32)
    wa = fn(crs, cis, 0.0, 0.0, False, 24, a)
    wb = _mandel_core(crs, cis, 0.0, 0.0, False, 24, b)
    if wa != wb or not np.array_equal(a, b):
        raise RuntimeError("mandel jit smoke mismatch")


def _smoke_blur(fn: Callable) -> None:
    rng = np.random.default_rng(7)
    src = rng.integers(0, 2**32, size=(5, 5), dtype=np.uint32)
    a = np.zeros_like(src)
    b = np.zeros_like(src)
    fn(src, a, 0, 0, 5, 5)
    _blur_core(src, b, 0, 0, 5, 5)
    if not np.array_equal(a, b):
        raise RuntimeError("blur jit smoke mismatch")


def _smoke_life(fn: Callable) -> None:
    cells = np.zeros((6, 6), dtype=np.uint8)
    cells[2, 1:4] = 1  # a blinker
    a = np.zeros_like(cells)
    b = np.zeros_like(cells)
    ca = fn(cells, a, 0, 0, 6, 6)
    cb = _life_core(cells, b, 0, 0, 6, 6)
    if ca != cb or not np.array_equal(a, b):
        raise RuntimeError("life jit smoke mismatch")


def _smoke_heat(fn: Callable) -> None:
    temp = np.linspace(0.0, 1.0, 25).reshape(5, 5)
    sources = np.full((5, 5), np.nan)
    sources[0, 0] = 1.0
    a = np.zeros_like(temp)
    b = np.zeros_like(temp)
    da = fn(temp, a, sources, 0, 0, 5, 5)
    db = _heat_core(temp, b, sources, 0, 0, 5, 5)
    if da != db or not np.array_equal(a, b):
        raise RuntimeError("heat jit smoke mismatch")


def _smoke_sandpile(fn: Callable) -> None:
    grains = np.full((5, 5), 5, dtype=np.int64)
    a = np.zeros_like(grains)
    b = np.zeros_like(grains)
    ca = fn(grains, a, 0, 0, 5, 5)
    cb = _sandpile_core(grains, b, 0, 0, 5, 5)
    if ca != cb or not np.array_equal(a, b):
        raise RuntimeError("sandpile jit smoke mismatch")


@dataclass(frozen=True)
class JitEntry:
    """One registry entry: the nopython core and its smoke check."""

    core: Callable
    smoke: Callable


#: kernel name -> compiled tile body source.  Kernels consult the
#: resolved callable through ``ctx.jit_core`` (see ExecutionContext);
#: kernels absent from this registry simply never leave the
#: numpy/pure-python path.
JIT_BODIES: dict[str, JitEntry] = {
    "mandel": JitEntry(_mandel_core, _smoke_mandel),
    "blur": JitEntry(_blur_core, _smoke_blur),
    "life": JitEntry(_life_core, _smoke_life),
    "heat": JitEntry(_heat_core, _smoke_heat),
    "sandpile": JitEntry(_sandpile_core, _smoke_sandpile),
}
