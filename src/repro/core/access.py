"""Memory-access footprint collection.

The ``repro.analyze`` race detector needs to know, for every task, which
rectangles of which buffers it read and wrote.  This module is the
recording side: a process-global collector that the :class:`Img2D`
accessors (and kernels, through ``ctx.declare_access``) report into
while a task body runs.

Collection is off by default and costs one ``is None`` test per access.
The parallel runtime activates it per task body; the ``sim`` backend
executes the bodies of one context sequentially, but MPI ranks run as
concurrent threads each with their own context, so the active-collector
slot is *thread-local* — one slot per rank thread.

A footprint region is the 5-tuple ``(buf, x, y, w, h)``: a named buffer
(``"cur"``, ``"next"``, or any kernel-chosen name) and a pixel
rectangle.  :class:`Footprint` bundles the read and write regions of one
task and is what ends up attached to trace events.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Region",
    "Footprint",
    "FootprintCollector",
    "collect",
    "collecting",
    "note_read",
    "note_write",
]

#: a footprint region: (buffer name, x, y, w, h)
Region = tuple[str, int, int, int, int]


def regions_overlap(a: Region, b: Region) -> tuple[int, int, int, int] | None:
    """Intersection rectangle of two regions of the same buffer, or None."""
    if a[0] != b[0]:
        return None
    ax, ay, aw, ah = a[1:]
    bx, by, bw, bh = b[1:]
    x0, y0 = max(ax, bx), max(ay, by)
    x1, y1 = min(ax + aw, bx + bw), min(ay + ah, by + bh)
    if x0 >= x1 or y0 >= y1:
        return None
    return (x0, y0, x1 - x0, y1 - y0)


@dataclass(frozen=True)
class Footprint:
    """The read and write regions of one task execution."""

    reads: tuple[Region, ...] = ()
    writes: tuple[Region, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.reads or self.writes)

    def buffers(self) -> set[str]:
        return {r[0] for r in self.reads} | {r[0] for r in self.writes}

    @classmethod
    def from_lists(
        cls, reads: Iterable[Sequence] = (), writes: Iterable[Sequence] = ()
    ) -> "Footprint":
        """Build from JSON-ish lists (``[buf, x, y, w, h]`` entries)."""

        def norm(rs):
            return tuple((str(r[0]), int(r[1]), int(r[2]), int(r[3]), int(r[4])) for r in rs)

        return cls(reads=norm(reads), writes=norm(writes))


class FootprintCollector:
    """Accumulates the regions touched while it is the active collector.

    Regions are deduplicated (scalar accessors called in a loop would
    otherwise produce one region per pixel) but not coalesced: the
    race detector works on rectangle overlaps, so a list of 1x1 regions
    is correct, just larger.
    """

    __slots__ = ("_reads", "_writes")

    def __init__(self):
        self._reads: dict[Region, None] = {}
        self._writes: dict[Region, None] = {}

    def read(self, buf: str, x: int, y: int, w: int = 1, h: int = 1) -> None:
        if w > 0 and h > 0:
            self._reads[(buf, int(x), int(y), int(w), int(h))] = None

    def write(self, buf: str, x: int, y: int, w: int = 1, h: int = 1) -> None:
        if w > 0 and h > 0:
            self._writes[(buf, int(x), int(y), int(w), int(h))] = None

    def freeze(self) -> Footprint:
        return Footprint(reads=tuple(self._reads), writes=tuple(self._writes))


#: per-thread active collector (``.current``), None when collection is off
_ACTIVE = threading.local()


def _current() -> FootprintCollector | None:
    return getattr(_ACTIVE, "current", None)


def collecting() -> bool:
    return _current() is not None


def note_read(buf: str, x: int, y: int, w: int = 1, h: int = 1) -> None:
    col = _current()
    if col is not None:
        col.read(buf, x, y, w, h)


def note_write(buf: str, x: int, y: int, w: int = 1, h: int = 1) -> None:
    col = _current()
    if col is not None:
        col.write(buf, x, y, w, h)


@contextmanager
def collect() -> Iterator[FootprintCollector]:
    """Make a fresh collector active (on this thread) for the block."""
    prev = _current()
    col = FootprintCollector()
    _ACTIVE.current = col
    try:
        yield col
    finally:
        _ACTIVE.current = prev
