"""Memory-access footprint collection.

The ``repro.analyze`` race detector needs to know, for every task, which
rectangles of which buffers it read and wrote.  This module is the
recording side: a process-global collector that the :class:`Img2D`
accessors (and kernels, through ``ctx.declare_access``) report into
while a task body runs.

Collection is off by default and costs one ``is None`` test per access.
The parallel runtime activates it per task body; the ``sim`` backend
executes the bodies of one context sequentially, but MPI ranks run as
concurrent threads each with their own context, so the active-collector
slot is *thread-local* — one slot per rank thread.

A footprint region is the 5-tuple ``(buf, x, y, w, h)``: a named buffer
(``"cur"``, ``"next"``, or any kernel-chosen name) and a pixel
rectangle.  3D workloads (slab-decomposed stencils) extend it to the
7-tuple ``(buf, x, y, w, h, z, d)`` with a voxel depth range; plain 2D
regions are implicitly depth ``(0, 1)``.  :class:`Footprint` bundles the
read and write regions of one task and is what ends up attached to
trace events.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Region",
    "region_depth",
    "regions_overlap",
    "Footprint",
    "FootprintCollector",
    "collect",
    "collecting",
    "note_read",
    "note_write",
]

#: a footprint region: (buffer name, x, y, w, h) — optionally extended
#: with a depth extent (buffer name, x, y, w, h, z, d)
Region = tuple


def region_depth(r: Region) -> tuple[int, int]:
    """The (z, d) depth extent of a region (2D regions are depth 0..1)."""
    return (r[5], r[6]) if len(r) >= 7 else (0, 1)


def regions_overlap(a: Region, b: Region) -> tuple[int, int, int, int] | None:
    """Intersection rectangle of two regions of the same buffer, or None.

    Depth-aware: two 3D regions whose z ranges are disjoint do not
    overlap; when only one side carries a depth extent the comparison is
    conservative (the 2D region is taken to span every plane).
    """
    if a[0] != b[0]:
        return None
    if len(a) >= 7 and len(b) >= 7:
        az, ad = a[5], a[6]
        bz, bd = b[5], b[6]
        if min(az + ad, bz + bd) <= max(az, bz):
            return None
    ax, ay, aw, ah = a[1:5]
    bx, by, bw, bh = b[1:5]
    x0, y0 = max(ax, bx), max(ay, by)
    x1, y1 = min(ax + aw, bx + bw), min(ay + ah, by + bh)
    if x0 >= x1 or y0 >= y1:
        return None
    return (x0, y0, x1 - x0, y1 - y0)


@dataclass(frozen=True)
class Footprint:
    """The read and write regions of one task execution."""

    reads: tuple[Region, ...] = ()
    writes: tuple[Region, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.reads or self.writes)

    def buffers(self) -> set[str]:
        return {r[0] for r in self.reads} | {r[0] for r in self.writes}

    @classmethod
    def from_lists(
        cls, reads: Iterable[Sequence] = (), writes: Iterable[Sequence] = ()
    ) -> "Footprint":
        """Build from JSON-ish lists (``[buf, x, y, w, h]`` entries,
        optionally with a trailing ``z, d`` depth extent)."""

        def norm(rs):
            return tuple(
                (str(r[0]),) + tuple(int(v) for v in r[1:7]) for r in rs
            )

        return cls(reads=norm(reads), writes=norm(writes))


class FootprintCollector:
    """Accumulates the regions touched while it is the active collector.

    Regions are deduplicated (scalar accessors called in a loop would
    otherwise produce one region per pixel) but not coalesced: the
    race detector works on rectangle overlaps, so a list of 1x1 regions
    is correct, just larger.
    """

    __slots__ = ("_reads", "_writes")

    def __init__(self):
        self._reads: dict[Region, None] = {}
        self._writes: dict[Region, None] = {}

    def read(
        self, buf: str, x: int, y: int, w: int = 1, h: int = 1,
        z: int = 0, d: int = 1,
    ) -> None:
        if w > 0 and h > 0 and d > 0:
            key = (buf, int(x), int(y), int(w), int(h))
            if (z, d) != (0, 1):
                key += (int(z), int(d))
            self._reads[key] = None

    def write(
        self, buf: str, x: int, y: int, w: int = 1, h: int = 1,
        z: int = 0, d: int = 1,
    ) -> None:
        if w > 0 and h > 0 and d > 0:
            key = (buf, int(x), int(y), int(w), int(h))
            if (z, d) != (0, 1):
                key += (int(z), int(d))
            self._writes[key] = None

    def freeze(self) -> Footprint:
        return Footprint(reads=tuple(self._reads), writes=tuple(self._writes))


#: per-thread active collector (``.current``), None when collection is off
_ACTIVE = threading.local()


def _current() -> FootprintCollector | None:
    return getattr(_ACTIVE, "current", None)


def collecting() -> bool:
    return _current() is not None


def note_read(
    buf: str, x: int, y: int, w: int = 1, h: int = 1, z: int = 0, d: int = 1
) -> None:
    col = _current()
    if col is not None:
        col.read(buf, x, y, w, h, z, d)


def note_write(
    buf: str, x: int, y: int, w: int = 1, h: int = 1, z: int = 0, d: int = 1
) -> None:
    col = _current()
    if col is not None:
        col.write(buf, x, y, w, h, z, d)


@contextmanager
def collect() -> Iterator[FootprintCollector]:
    """Make a fresh collector active (on this thread) for the block."""
    prev = _current()
    col = FootprintCollector()
    _ACTIVE.current = col
    try:
        yield col
    finally:
        _ACTIVE.current = prev
