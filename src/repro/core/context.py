"""The execution context handed to every kernel variant.

A :class:`ExecutionContext` bundles the image, the tile grid, the
parallel runtime (virtual-CPU team + schedule policy + cost model), the
telemetry bus with its consumers (monitor, trace recorder), and the
virtual clock.  Kernels see the EASYPAP surface — ``cur_img``/
``next_img``, ``swap_images``, ``DIM``, ``TILE_W``... — plus the
parallel constructs (``parallel_for``, ``task_region``) documented in
:mod:`repro.omp`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence, TYPE_CHECKING

import numpy as np

from repro.core import access
from repro.core import jit as _jit
from repro.core.config import RunConfig
from repro.core.domains import make_domain
from repro.core.image import Img2D
from repro.core.tiling import Tile, TileGrid
from repro.monitor.activity import Monitor
from repro.sched.costmodel import DEFAULT_COST_MODEL, CostModel, perturb
from repro.sched.policies import SchedulePolicy
from repro.sched.timeline import TaskExec, Timeline
from repro.telemetry.bus import TelemetryBus
from repro.trace.events import TraceMeta
from repro.trace.recorder import TraceRecorder
from repro.util.rng import make_jitter_rng, make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.proc import MpiProcessContext

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """Everything a kernel variant needs to run.

    The context owns the *virtual clock*: every parallel region advances
    it by the simulated makespan of that region (plus fork/join
    overhead), so at the end of a run ``ctx.vclock`` is the virtual
    wall-clock time performance mode reports.
    """

    def __init__(self, config: RunConfig, *, model: CostModel | None = None):
        self.config = config
        self.dim = config.dim
        self.dim_x = config.dim
        self.dim_y = config.dim_y or config.dim
        self.dim_z = config.dim_z or config.dim if config.domain == "slab3d" else 1
        #: shared-memory state of the ``procs`` backend (None elsewhere)
        self.arena = None
        self.img_blocks: tuple[str, str] | None = None
        self.procs_session = 0
        if config.backend == "procs":
            from repro.omp import procs as _procs

            self.arena = _procs.SharedArena()
            name_cur, cur = self.arena.alloc((self.dim_y, self.dim_x), np.uint32)
            name_nxt, nxt = self.arena.alloc((self.dim_y, self.dim_x), np.uint32)
            self.img = Img2D.from_buffers(cur, nxt)
            self.img_blocks = (name_cur, name_nxt)
            self.procs_session = _procs.new_session_id()
        else:
            self.img = Img2D(config.dim, dim_y=self.dim_y)
        #: the work domain scheduled regions iterate by default; the
        #: classic tile grid is just its ``kind == "grid"`` case
        self.domain = make_domain(config)
        #: a plane tile grid is always available (thumbnails, monitors,
        #: whole-frame fast path); for grid domains it *is* the domain
        if isinstance(self.domain, TileGrid):
            self.grid = self.domain
        else:
            self.grid = TileGrid(
                config.dim, config.tile_w,
                min(config.tile_h, self.dim_y), dim_y=self.dim_y,
            )
        self.nthreads = config.nthreads
        self.policy: SchedulePolicy = config.policy()
        base_model = model if model is not None else DEFAULT_COST_MODEL
        self.model = (
            base_model.scaled(config.time_scale)
            if config.time_scale != 1.0
            else base_model
        )
        self.backend = config.backend
        #: the compiled (numba) tile core for this kernel, or None with
        #: the fallback reason.  Resolved here — once per context, in
        #: every process that builds one (incl. procs pool workers) —
        #: so kernels just test ``ctx.jit_core``.
        self.jit_core, self.jit_reason = _jit.resolve(config)
        self.rng = make_rng(config.seed)
        self.jitter_rng = make_jitter_rng(config.seed, config.run_index)
        self.arg = config.arg
        #: free-form kernel state (life grids, mandel viewport, ...);
        #: under ``procs`` every NumPy array is mirrored into shared
        #: memory so pool workers see the same bytes
        if self.arena is not None:
            from repro.omp.procs import SharedData

            self.data: dict[str, Any] = SharedData(self.arena)
        else:
            self.data = {}
        self.vclock = 0.0
        self.iteration = 0
        self.completed_iterations = 0
        #: the telemetry bus: producers publish here, consumers (monitor,
        #: trace recorder, analyzer feeds) are attached lazily on first
        #: use — nothing is constructed when instrumentation is off
        self._bus = TelemetryBus()
        self._consumers_attached = False
        self._monitor: Monitor | None = None
        self._tracer: TraceRecorder | None = None
        #: set by the MPI launcher when running under ``--mpirun``
        self.mpi: "MpiProcessContext | None" = None
        #: per-iteration hook used by display mode / tests
        self.frame_hook: Callable[[ExecutionContext, int], None] | None = None
        #: when set (a list), every region appends its work profile here —
        #: the capture side of :mod:`repro.expt.replay`
        self.region_log: list | None = None
        #: record per-task read/write footprints (the input of repro.analyze)
        self.collect_footprints = config.footprints
        #: monotonically increasing id of the next parallel/sequential region
        self.region_seq = 0
        #: number of regions the whole-frame fast path executed this run
        self.fastpath_regions = 0

    # -- telemetry ------------------------------------------------------------
    def _ensure_consumers(self) -> None:
        """Attach the config-selected telemetry consumers, once.

        Called from every instrumentation touchpoint instead of
        ``__init__``: contexts whose config disables monitoring and
        tracing never construct a :class:`Monitor` or
        :class:`TraceRecorder` at all, which is what keeps the
        perf-mode fast path honest (see :meth:`fastpath_active`).
        """
        if self._consumers_attached:
            return
        self._consumers_attached = True
        config = self.config
        if config.monitoring:
            self._monitor = self._bus.attach(Monitor(config.nthreads, self.domain))
        if config.trace:
            self._tracer = self._bus.attach(
                TraceRecorder(
                    TraceMeta(
                        kernel=config.kernel,
                        variant=config.variant,
                        dim=config.dim,
                        tile_w=config.tile_w,
                        tile_h=config.tile_h,
                        ncpus=config.nthreads,
                        schedule=config.schedule,
                        iterations=config.iterations,
                        label=config.trace_label,
                    )
                )
            )
            if config.backend != "sim":
                # real backends record measured times; flag it in the
                # trace so EASYVIEW labels the x-axis honestly (sim
                # traces stay byte-identical to the golden fixtures)
                self._bus.annotate(clock="wall", backend=config.backend)
            if config.domain != "grid":
                # non-default domains stamp their kind and projection so
                # EASYVIEW picks the right rendering (Gantt waves, depth
                # bands); grid traces carry no extra keys, keeping the
                # golden fixtures byte-identical
                self._bus.annotate(
                    domain=config.domain, projection=self.domain.projection(),
                )
            if self.dim_y != config.dim:
                self._bus.annotate(dim_y=self.dim_y)

    @property
    def bus(self) -> TelemetryBus:
        self._ensure_consumers()
        return self._bus

    @property
    def monitor(self) -> Monitor | None:
        if self.config.monitoring:
            self._ensure_consumers()
        return self._monitor

    @property
    def tracer(self) -> TraceRecorder | None:
        if self.config.trace:
            self._ensure_consumers()
        return self._tracer

    def instrumented(self) -> bool:
        """The one place that decides whether per-task timelines must be
        produced: any config-selected consumer, footprint collection, or
        an externally attached bus consumer that observes executions."""
        return (
            self.config.monitoring
            or self.config.trace
            or self.collect_footprints
            or self._bus.wants_timelines
        )

    # -- EASYPAP image macros -------------------------------------------------
    @property
    def DIM(self) -> int:
        return self.dim

    @property
    def TILE_W(self) -> int:
        return self.config.tile_w

    @property
    def TILE_H(self) -> int:
        return self.config.tile_h

    def cur_img(self, y: int, x: int) -> int:
        return self.img.cur_img(y, x)

    def set_cur(self, y: int, x: int, value: int) -> None:
        self.img.set_cur(y, x, value)

    def next_img(self, y: int, x: int) -> int:
        return self.img.next_img(y, x)

    def set_next(self, y: int, x: int, value: int) -> None:
        self.img.set_next(y, x, value)

    def swap_images(self) -> None:
        self.img.swap()

    # -- iteration bookkeeping ----------------------------------------------------
    def iterations(self, nb_iter: int) -> Iterator[int]:
        """Iterate ``nb_iter`` times with monitoring/trace bookkeeping.

        Kernels write their outer loop as
        ``for it in ctx.iterations(nb_iter): ...`` — the equivalent of
        EASYPAP driving one monitored frame per iteration.

        Early-terminating kernels (Game of Life returning the iteration
        at which it stabilized) ``return`` from inside the loop; the
        in-flight iteration is still accounted for when the generator is
        closed.
        """
        for _ in range(nb_iter):
            self.iteration += 1
            try:
                yield self.iteration
            except GeneratorExit:
                # consumer returned mid-iteration: close the books first
                self.end_iteration()
                raise
            self.end_iteration()

    def end_iteration(self) -> None:
        self.completed_iterations += 1
        if self.instrumented():
            self.bus.iteration_mark(self.iteration, self.vclock)
        if self.frame_hook is not None:
            self.frame_hook(self, self.iteration)

    # -- resource lifecycle -----------------------------------------------------
    def body(self, method: Callable) -> Callable:
        """Wrap a bound kernel tile method as a backend-portable body.

        ``ctx.parallel_for(ctx.body(self.do_tile))`` behaves exactly like
        ``lambda t: self.do_tile(ctx, t)`` on the sim/threads backends,
        but — unlike a closure — it can also cross the process boundary
        of ``backend="procs"`` (workers re-resolve the kernel method by
        name).  Kernels should prefer it for every tile body.
        """
        from repro.omp.procs import TileBody

        return TileBody(self, method)

    def close(self) -> None:
        """Release backend resources (the shared-memory blocks of
        ``procs``).  Idempotent; NumPy views already handed out
        (``RunResult.image``, kernel state) stay readable after the
        blocks are unlinked, only the ``/dev/shm`` names disappear."""
        if self.arena is not None:
            self.arena.release()

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- clock and recording ----------------------------------------------------------
    def advance_clock(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot move the clock backwards ({dt})")
        self.vclock += dt

    def record_timeline(self, timeline: Timeline, *, footprints=None) -> None:
        """Publish one executed region to the telemetry bus."""
        self.bus.publish_region(timeline, footprints=footprints)

    def next_region(self) -> int:
        """Allocate the id of a new parallel/sequential region."""
        rid = self.region_seq
        self.region_seq += 1
        return rid

    def declare_access(self, reads: Iterable = (), writes: Iterable = ()) -> None:
        """Declare the running task's footprint explicitly.

        For kernels that bypass the :class:`Img2D` accessors (raw NumPy
        slicing, private ``ctx.data`` arrays): each entry is a
        ``(buf, x, y, w, h)`` region, optionally extended with a depth
        extent ``(buf, x, y, w, h, z, d)`` for 3D volumes.  A no-op
        unless footprint collection is active, so hot paths pay one
        branch.
        """
        if not access.collecting():
            return
        for r in reads:
            access.note_read(*r)
        for r in writes:
            access.note_write(*r)

    def perturb_costs(self, costs: list[float]) -> list[float]:
        """Apply the run's system-noise model to per-item costs (no-op
        unless ``config.jitter > 0``)."""
        return perturb(costs, self.jitter_rng, self.config.jitter)

    def fastpath_active(self) -> bool:
        """True when the whole-frame perf-mode fast path may replace the
        per-tile reference path.

        The fast path is observably identical to the reference (same
        images, same virtual clock, same region log) *except* that it
        produces no per-task timeline — so it only engages when nothing
        consumes timelines (:meth:`instrumented` is False), on the sim
        backend, and not disabled via ``config.fastpath == "off"``.
        """
        return (
            self.backend == "sim"
            and self.config.fastpath != "off"
            and not self.instrumented()
        )

    def execution_tier(self) -> str:
        """The execution tier this run reports: ``"fastpath"`` when the
        whole-frame batch path may engage, else ``"jit"`` when a
        compiled tile core resolved, else ``"interpreted"``.

        The tiers are a precedence, not a partition — a fastpath-tier
        run still uses ``ctx.jit_core`` on any region the frame
        declines, and a jit-tier run falls back per-kernel when a body
        isn't registered.  ``jit_reason`` carries the why-not string
        surfaced by the CLI and sweep provenance.
        """
        if self.fastpath_active():
            return "fastpath"
        if self.jit_core is not None:
            return "jit"
        return "interpreted"

    def frame_costs(self, works: np.ndarray, log_kind: str) -> np.ndarray:
        """Convert a frame's work vector to per-item costs, feeding the
        region log exactly as the reference measurement loop would."""
        if self.region_log is not None:
            self.region_log.append((log_kind, [float(w) for w in works]))
        if self.config.jitter > 0:
            # same list-based path (and RNG draws) as the reference
            return np.asarray(
                self.perturb_costs(self.model.times_of(list(works))), dtype=np.float64
            )
        return works * self.model.seconds_per_unit

    # -- parallel constructs (thin wrappers over repro.omp) -----------------------------
    def parallel_for(
        self,
        body: Callable[[Tile], float],
        items: Sequence[Any] | None = None,
        *,
        schedule: SchedulePolicy | str | None = None,
        kind: str = "tile",
        frame: Callable | None = None,
    ):
        from repro.omp.parallel import parallel_for

        return parallel_for(self, body, items, schedule=schedule, kind=kind, frame=frame)

    def parallel_reduce(
        self,
        body,
        items: Sequence[Any] | None = None,
        *,
        combine,
        init,
        schedule: SchedulePolicy | str | None = None,
        kind: str = "tile",
        frame: Callable | None = None,
    ):
        from repro.omp.parallel import parallel_reduce

        return parallel_reduce(
            self, body, items, combine=combine, init=init,
            schedule=schedule, kind=kind, frame=frame,
        )

    def task_region(self, *, kind: str = "task"):
        from repro.omp.tasks import TaskRegion

        return TaskRegion(self, kind=kind)

    def sequential_for(
        self,
        body: Callable[[Any], float],
        items: Iterable[Any] | None = None,
        *,
        kind: str = "tile",
        frame: Callable | None = None,
    ) -> float:
        """Run ``body`` over items on virtual CPU 0, back-to-back.

        This is what ``seq``/``tiled`` (single-thread) variants use; it
        still feeds monitoring and traces, so heat maps work in
        sequential mode too.  When a whole-frame ``frame`` callable is
        given and :meth:`fastpath_active` holds, the per-item bodies are
        replaced by one batch call (see :mod:`repro.omp.parallel`).
        """
        items = list(self.domain) if items is None else list(items)
        if frame is not None and self.fastpath_active():
            works = frame(self, items)
            if works is not None:
                costs = self.frame_costs(np.asarray(works, dtype=np.float64), "seq")
                self.next_region()
                self.fastpath_regions += 1
                seg = np.empty(len(costs) + 1)
                seg[0] = self.vclock
                seg[1:] = costs
                self.vclock = float(np.add.accumulate(seg)[-1])
                return self.vclock
        footprints = None
        if self.collect_footprints:
            footprints = []
            works = []
            for item in items:
                with access.collect() as col:
                    works.append(float(body(item) or 0.0))
                footprints.append(col.freeze())
        else:
            works = [float(body(item) or 0.0) for item in items]
        if self.region_log is not None:
            self.region_log.append(("seq", works))
        costs = self.perturb_costs(self.model.times_of(works))
        region = self.next_region()
        timeline = Timeline(ncpus=self.nthreads)
        t = self.vclock
        for i, (item, cost) in enumerate(zip(items, costs)):
            meta = {
                "iteration": self.iteration,
                "kind": kind,
                "index": i,
                "region": region,
                "rmode": "seq",
            }
            timeline.append(TaskExec(item, 0, t, t + cost, meta))
            t += cost
        self.vclock = t
        self.record_timeline(timeline, footprints=footprints)
        return t

    def run_on_master(self, fn: Callable[[], Any], work: float = 0.0) -> Any:
        """Run a sequential section (the ``#pragma omp single`` zoom() call)."""
        result = fn()
        if work:
            self.advance_clock(self.model.time_of(work))
        if self.region_log is not None:
            self.region_log.append(("master", float(work)))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionContext({self.config.label()})"
