"""The ``easyview`` command: off-line trace exploration (paper §II-D).

Single-trace mode prints run metadata, per-CPU statistics, an ASCII
Gantt chart and (with ``--svg``) writes the interactive SVG Gantt whose
hover bubbles show task durations and tile coordinates — the Fig. 7
experience, minus the mouse.

Two traces (``easyview a.evt b.evt``) enter comparison mode (Fig. 10):
stacked charts on a shared time scale plus the per-tile speedup
distribution.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EasypapError
from repro.trace.compare import TraceComparison
from repro.trace.coverage import locality_score, mean_spread
from repro.trace.format import load_trace
from repro.trace.gantt import GanttChart
from repro.trace.stats import duration_stats, iteration_spans, per_cpu_busy

__all__ = ["main"]


def _load(path: str):
    """Load a trace in either native ``.evt`` or Chrome ``.json`` form,
    so an exported trace can come back through every easyview view."""
    if str(path).endswith(".json"):
        from repro.trace.chrome import load_chrome_trace

        return load_chrome_trace(path)
    return load_trace(path)


def _show_trace(path: str, first_it: int | None, last_it: int | None, width: int) -> None:
    trace = _load(path)
    m = trace.meta
    print(f"trace: {path}")
    print(
        f"  kernel={m.kernel} variant={m.variant} dim={m.dim} "
        f"tile={m.tile_w}x{m.tile_h} threads={m.ncpus} schedule={m.schedule}"
    )
    print(f"  {len(trace)} events over {len(trace.iterations)} iterations, "
          f"span {trace.duration * 1e3:.3f} ms")
    stats = duration_stats(trace, kind=None)
    print(
        f"  task durations: mean {stats.mean * 1e6:.1f} us, "
        f"median {stats.median * 1e6:.1f} us, p90 {stats.p90 * 1e6:.1f} us, "
        f"max {stats.vmax * 1e6:.1f} us"
    )
    busy = per_cpu_busy(trace)
    for cpu, b in enumerate(busy):
        spread = mean_spread(trace, cpu)
        print(f"  CPU {cpu:2d}: busy {b * 1e3:8.3f} ms, coverage spread {spread:.3f}")
    print(f"  locality score: {locality_score(trace):.3f} (lower = more local)")
    print("\nper-iteration spans (ms):")
    for it, span in iteration_spans(trace).items():
        print(f"  iteration {it:3d}: {span * 1e3:.3f}")
    chart = GanttChart(trace, first_it, last_it)
    print("\nGantt chart:")
    print(chart.to_ascii(width))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="easyview", description="EASYVIEW: explore easypap execution traces."
    )
    p.add_argument("traces", nargs="+", help="one trace to explore, or two to compare")
    p.add_argument("--iteration-range", "-r", default=None, metavar="LO:HI")
    p.add_argument("--width", type=int, default=100, help="ASCII Gantt width")
    p.add_argument("--svg", default=None, metavar="PATH", help="write an SVG Gantt")
    p.add_argument("--tiling-map", default=None, metavar="PATH",
                   help="write the tiling/coverage map drawn from actual task "
                   "rectangles (renders irregular domains: quadtree, slabs)")
    p.add_argument("--wave-gantt", default=None, metavar="PATH",
                   help="write the wavefront Gantt (tasks colored by "
                   "topological wave, from recorded dependency edges)")
    p.add_argument("--divergence-map", default=None, metavar="PATH",
                   help="write the SIMT divergence heat-map of a GPU trace "
                   "(per-work-group lockstep counters)")
    p.add_argument("--coverage", type=int, default=None, metavar="CPU",
                   help="print the coverage map of one CPU (horizontal mouse mode)")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="export to Chrome/Perfetto trace-event JSON")
    p.add_argument("--analysis", action="store_true",
                   help="print the per-iteration efficiency breakdown")
    p.add_argument("--races", action="store_true",
                   help="run the happens-before race analysis on the trace "
                   "(needs footprints: record with easypap --check-races -t)")
    p.add_argument("--halos", action="store_true",
                   help="annotate the trace with the statically inferred "
                   "per-tile halos of its kernel/variant and cross-validate "
                   "the recorded footprints against the static envelope")
    p.add_argument("--load", action="append", default=[], metavar="FILE",
                   help="Python file registering extra kernels, so --halos "
                   "can resolve a trace of a --load'ed kernel (repeatable)")
    args = p.parse_args(argv)

    try:
        for path in args.load:
            from repro.core.kernel import load_kernel_module

            load_kernel_module(path)
    except EasypapError as exc:
        print(f"easyview: {exc}", file=sys.stderr)
        return 2

    first_it = last_it = None
    if args.iteration_range:
        try:
            lo, _, hi = args.iteration_range.partition(":")
            first_it, last_it = int(lo), int(hi)
        except ValueError:
            print(f"easyview: bad --iteration-range {args.iteration_range!r}", file=sys.stderr)
            return 2

    try:
        if len(args.traces) == 1:
            _show_trace(args.traces[0], first_it, last_it, args.width)
            trace = _load(args.traces[0])
            if args.coverage is not None:
                from repro.trace.coverage import coverage_mask

                dim = trace.meta.dim or 1
                mask = coverage_mask(trace, args.coverage, dim, first_it, last_it)
                tw = max(trace.meta.tile_w, 1)
                th = max(trace.meta.tile_h, 1)
                tiles = mask[::th, ::tw]
                print(f"\ncoverage map of CPU {args.coverage} "
                      f"('#' = computed at least once):")
                print("\n".join(
                    "".join("#" if v else "." for v in row) for row in tiles
                ))
            if args.svg:
                chart = GanttChart(trace, first_it, last_it)
                out = chart.to_svg().save(args.svg)
                print(f"\nSVG Gantt written to {out}")
            if args.tiling_map:
                from repro.view.domains import tiling_map_svg

                out = tiling_map_svg(trace, first_it).save(args.tiling_map)
                print(f"tiling map written to {out}")
            if args.wave_gantt:
                from repro.view.domains import wavefront_gantt_svg

                out = wavefront_gantt_svg(trace, first_it).save(args.wave_gantt)
                print(f"wavefront Gantt written to {out}")
            if args.divergence_map:
                from repro.view.domains import divergence_map_svg

                out = divergence_map_svg(trace, first_it).save(args.divergence_map)
                print(f"divergence map written to {out}")
            if args.chrome:
                from repro.trace.chrome import save_chrome_trace

                out = save_chrome_trace(trace, args.chrome)
                print(f"Chrome trace written to {out}")
            if args.analysis:
                from repro.trace.analysis import bottleneck_report

                print("\nbottleneck analysis:")
                print(bottleneck_report(trace))
            if args.races:
                from repro.analyze import check_races
                from repro.analyze.footprint import has_footprints

                print("\nrace analysis:")
                if not has_footprints(trace):
                    print("  trace carries no footprints — record it with "
                          "easypap --check-races -t (or footprints enabled)")
                rr = check_races(trace)
                print(rr.describe())
                if not rr.clean:
                    return 1
            if args.halos:
                from repro.core.kernel import get_kernel, list_kernels
                from repro.staticcheck import check_variant, cross_validate

                print("\nstatic halos:")
                m = trace.meta
                if m.kernel not in list_kernels():
                    print(f"  kernel {m.kernel!r} is not registered — "
                          "pass its module with --load")
                    return 2
                vr = check_variant(get_kernel(m.kernel), m.variant)
                print(f"  {vr.describe()}")
                for line in vr.footprint_lines():
                    print(f"  {line}")
                cv = cross_validate(vr, trace)
                print(f"  {cv.describe()}")
                if not cv.ok:
                    return 1
        elif len(args.traces) == 2:
            before = _load(args.traces[0])
            after = _load(args.traces[1])
            cmp_ = TraceComparison(before, after)
            print(cmp_.report())
            print("\nbefore:")
            print(GanttChart(before, first_it, last_it).to_ascii(args.width))
            print("\nafter:")
            print(GanttChart(after, first_it, last_it).to_ascii(args.width))
            if args.svg:
                out = cmp_.to_svg().save(args.svg)
                print(f"\nSVG comparison written to {out}")
        else:
            print("easyview: give one trace, or two to compare", file=sys.stderr)
            return 2
    except EasypapError as exc:
        print(f"easyview: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
