"""Exception hierarchy for the EASYPAP reproduction.

Every error raised by the framework derives from :class:`EasypapError`,
so applications embedding the library can catch a single base class.
"""

from __future__ import annotations


class EasypapError(Exception):
    """Base class for all framework errors."""


class ConfigError(EasypapError):
    """Invalid run configuration (bad flag combination, bad sizes...)."""


class KernelError(EasypapError):
    """Problem with a kernel definition or lookup."""


class UnknownKernelError(KernelError):
    """Requested kernel name is not registered."""

    def __init__(self, name: str, known: list[str] | None = None):
        self.name = name
        self.known = sorted(known or [])
        hint = f" (known kernels: {', '.join(self.known)})" if self.known else ""
        super().__init__(f"unknown kernel {name!r}{hint}")


class UnknownVariantError(KernelError):
    """Requested variant name does not exist for the kernel."""

    def __init__(self, kernel: str, variant: str, known: list[str] | None = None):
        self.kernel = kernel
        self.variant = variant
        self.known = sorted(known or [])
        hint = f" (known variants: {', '.join(self.known)})" if self.known else ""
        super().__init__(f"kernel {kernel!r} has no variant {variant!r}{hint}")


class ScheduleError(EasypapError):
    """Invalid OpenMP-style schedule specification."""


class SimulationError(EasypapError):
    """Internal inconsistency detected by the scheduling simulator."""


class DependencyError(EasypapError):
    """Invalid task dependency graph (cycle, unknown task...)."""


class MpiError(EasypapError):
    """Error in the message-passing substrate."""


class RankMismatchError(MpiError):
    """Collective called with inconsistent arguments across ranks."""


class DeadlockError(MpiError):
    """Provable message-passing deadlock (blocked-rank cycle, wait on a
    terminated peer...) found by the wait-for-graph analyzer
    (:mod:`repro.analyze.deadlock`).  ``report`` carries the structured
    :class:`~repro.analyze.deadlock.DeadlockReport`."""

    def __init__(self, report):
        self.report = report
        describe = getattr(report, "describe", None)
        super().__init__(describe() if callable(describe) else str(report))


class ExecutionError(EasypapError):
    """A real-parallel backend failed at runtime (a ``procs`` pool worker
    died or raised, a tile body could not cross the process boundary...)."""


class TraceError(EasypapError):
    """Malformed trace file or recorder misuse."""


class PlotError(EasypapError):
    """easyplot could not build the requested graph."""
