"""Conway's Game of Life (paper §III-D): lazy evaluation + MPI.

The advanced assignment: an efficient Game of Life that

* uses its own low-memory data structure (a ``uint8`` cell grid, not
  the image — the image is only refreshed for display),
* *lazily* skips tiles whose neighbourhood was steady at the previous
  iteration (the tiling window shows untouched areas, Fig. 13),
* distributes row bands over MPI ranks, exchanging ghost rows **and**
  tile-state metadata so laziness works across rank boundaries.

Datasets (selected with ``--arg``): ``random``, ``diag`` (gliders
travelling along the diagonals — the sparse dataset of Fig. 13),
``gun`` (a Gosper glider gun) and ``blinkers``.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import halo_region, tile_works
from repro.util.rng import make_rng

__all__ = ["LifeKernel", "life_step_rect", "make_dataset", "GLIDER"]

#: work units charged per cell update (branch-free rule evaluation)
CELL_WORK = 4.0

ALIVE_COLOR = np.uint32(0xFFFF00FF)  # EASYPAP-style yellow
DEAD_COLOR = np.uint32(0x000000FF)

# Glider travelling towards +y,+x (down-right)
GLIDER = [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)]


def life_step_rect(
    cells: np.ndarray, nxt: np.ndarray, y: int, x: int, h: int, w: int
) -> int:
    """Apply one Life step to the rectangle (y, x, h, w) of ``cells``
    into ``nxt``; cells outside the array count as dead.

    Returns the number of cells whose state changed.
    """
    H, W = cells.shape
    # pad[1 + i, 1 + j] == cells[y + i, x + j] for in-bounds cells, else 0,
    # so every target cell sees a full 3x3 window
    pad = np.zeros((h + 2, w + 2), dtype=np.int16)
    ys0, ys1 = max(y - 1, 0), min(y + h + 1, H)
    xs0, xs1 = max(x - 1, 0), min(x + w + 1, W)
    pad[ys0 - y + 1 : ys1 - y + 1, xs0 - x + 1 : xs1 - x + 1] = cells[ys0:ys1, xs0:xs1]
    neigh = (
        pad[0:-2, 0:-2] + pad[0:-2, 1:-1] + pad[0:-2, 2:]
        + pad[1:-1, 0:-2] + pad[1:-1, 2:]
        + pad[2:, 0:-2] + pad[2:, 1:-1] + pad[2:, 2:]
    )
    cur = pad[1:-1, 1:-1]
    alive = ((neigh == 3) | ((cur == 1) & (neigh == 2))).astype(np.uint8)
    changed = int((alive != cur).sum())
    nxt[y : y + h, x : x + w] = alive
    return changed


# --------------------------------------------------------------------------
# Datasets
# --------------------------------------------------------------------------


def _place(cells: np.ndarray, pattern, y: int, x: int, flip_x: bool = False) -> None:
    H, W = cells.shape
    for dy, dx in pattern:
        yy = y + dy
        xx = x + (2 - dx if flip_x else dx)
        if 0 <= yy < H and 0 <= xx < W:
            cells[yy, xx] = 1


GUN = [
    (4, 0), (5, 0), (4, 1), (5, 1),
    (2, 12), (2, 13), (3, 11), (4, 10), (5, 10), (6, 10), (7, 11), (8, 12), (8, 13),
    (5, 14), (3, 15), (7, 15), (4, 16), (5, 16), (6, 16), (5, 17),
    (2, 20), (3, 20), (4, 20), (2, 21), (3, 21), (4, 21), (1, 22), (5, 22),
    (0, 24), (1, 24), (5, 24), (6, 24),
    (2, 34), (3, 34), (2, 35), (3, 35),
]


def make_dataset(name: str, dim: int, seed: int | None = None) -> np.ndarray:
    """Build a ``(dim, dim)`` uint8 cell grid for a named dataset."""
    cells = np.zeros((dim, dim), dtype=np.uint8)
    name = (name or "diag").lower()
    if name == "random":
        rng = make_rng(seed)
        cells[:] = (rng.random((dim, dim)) < 0.25).astype(np.uint8)
    elif name == "diag":
        # gliders along both diagonals, moving away along them (sparse!)
        step = max(dim // 8, 16)
        for k in range(4, dim - 8, step):
            _place(cells, GLIDER, k, k)  # main diagonal, heading down-right
            _place(cells, GLIDER, k, dim - 8 - k, flip_x=True)  # anti-diagonal
    elif name == "gun":
        _place(cells, GUN, 2, 2)
    elif name == "blinkers":
        for y in range(2, dim - 2, 8):
            for x in range(2, dim - 3, 8):
                cells[y, x : x + 3] = 1
    else:
        raise ValueError(f"unknown life dataset {name!r}")
    return cells


# --------------------------------------------------------------------------
# Kernel
# --------------------------------------------------------------------------


@register_kernel
class LifeKernel(Kernel):
    """Kernel ``life`` with seq / tiled / omp_tiled / lazy / mpi_omp variants."""

    name = "life"

    # lazy skips steady tiles; mpi_omp additionally computes one band per rank
    lazy_variants = frozenset({"lazy", "mpi_omp"})

    def init(self, ctx) -> None:
        if ctx.mpi is not None:
            self._init_mpi(ctx)
            return
        cells = make_dataset(ctx.arg or "diag", ctx.dim, ctx.config.seed)
        ctx.data["cells"] = cells
        ctx.data["next"] = np.zeros_like(cells)
        # per-tile "changed at previous iteration" flags; initially all True
        ctx.data["dirty"] = np.ones((ctx.grid.rows, ctx.grid.cols), dtype=bool)

    def refresh_img(self, ctx) -> None:
        if ctx.mpi is not None:
            self._refresh_mpi(ctx)
            return
        cells = ctx.data.get("cells")
        if cells is not None:
            ctx.img.cur[:] = np.where(cells == 1, ALIVE_COLOR, DEAD_COLOR)

    # -- tile body -----------------------------------------------------------
    def do_tile(self, ctx, tile: Tile) -> float:
        ctx.declare_access(
            reads=[halo_region("cells", tile.x, tile.y, tile.w, tile.h, ctx.dim)],
            writes=[("next", tile.x, tile.y, tile.w, tile.h)],
        )
        step = ctx.jit_core or life_step_rect
        changed = step(
            ctx.data["cells"], ctx.data["next"], tile.y, tile.x, tile.h, tile.w
        )
        ctx.data["changes"][tile.row, tile.col] = changed > 0
        return tile.area * CELL_WORK

    # -- whole-frame fast path (perf mode) ----------------------------------
    def compute_frame(self, ctx, tiles) -> np.ndarray | None:
        """Whole-frame step; per-tile change flags recovered by a
        vectorized ``logical_or`` reduction.

        Accepts the full grid, or exactly the dirty-tile subset the
        ``lazy`` variant schedules: a non-dirty tile's neighbourhood was
        steady, so recomputing it reproduces its current cells — the
        invariant laziness itself relies on — which makes the whole-frame
        step write the same bytes as computing only the subset, and
        leaves those tiles' change flags False either way.
        """
        if ctx.mpi is not None:
            return None
        if len(tiles) != len(ctx.grid):
            dirty = ctx.data.get("dirty")
            if dirty is None:
                return None
            mask = np.zeros(len(ctx.grid), dtype=bool)
            mask[ctx.grid.tile_index_array(tiles)] = True
            if not np.array_equal(mask, dirty.ravel()):
                return None
        cells, nxt = ctx.data["cells"], ctx.data["next"]
        life_step_rect(cells, nxt, 0, 0, ctx.dim, ctx.dim)
        ctx.data["changes"] = ctx.grid.tile_reduce(nxt != cells, np.logical_or)
        return tile_works(tiles, CELL_WORK)

    def _begin_iter(self, ctx) -> None:
        ctx.data["changes"] = np.zeros((ctx.grid.rows, ctx.grid.cols), dtype=bool)

    def _end_iter(self, ctx) -> bool:
        """Swap grids, update dirtiness; True if anything changed."""
        ctx.data["cells"], ctx.data["next"] = ctx.data["next"], ctx.data["cells"]
        changes = ctx.data["changes"]
        # a tile must be recomputed if it or any 8-neighbour changed
        dirty = changes.copy()
        dirty[1:, :] |= changes[:-1, :]
        dirty[:-1, :] |= changes[1:, :]
        dirty[:, 1:] |= changes[:, :-1]
        dirty[:, :-1] |= changes[:, 1:]
        dirty[1:, 1:] |= changes[:-1, :-1]
        dirty[1:, :-1] |= changes[:-1, 1:]
        dirty[:-1, 1:] |= changes[1:, :-1]
        dirty[:-1, :-1] |= changes[1:, 1:]
        ctx.data["dirty"] = dirty
        return bool(changes.any())

    # -- variants ----------------------------------------------------------------
    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            self._begin_iter(ctx)
            ctx.sequential_for(lambda t: self.do_tile(ctx, t), frame=self.compute_frame)
            if not self._end_iter(ctx):
                return it
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """Eager parallel version: every tile, every iteration."""
        for it in ctx.iterations(nb_iter):
            self._begin_iter(ctx)
            ctx.parallel_for(ctx.body(self.do_tile), frame=self.compute_frame)
            stable = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if stable:
                return it
        return 0

    @variant("lazy")
    def compute_lazy(self, ctx, nb_iter: int) -> int:
        """Lazy evaluation: skip tiles whose neighbourhood was steady.

        Skipped tiles still need their *next* buffer refreshed (cheap
        copy), since buffers swap every iteration.
        """
        for it in ctx.iterations(nb_iter):
            self._begin_iter(ctx)
            dirty = ctx.data["dirty"]
            todo = [t for t in ctx.grid if dirty[t.row, t.col]]
            # steady tiles: carry their cells over to the next buffer
            cells, nxt = ctx.data["cells"], ctx.data["next"]
            for t in ctx.grid:
                if not dirty[t.row, t.col]:
                    nxt[t.y : t.y + t.h, t.x : t.x + t.w] = cells[
                        t.y : t.y + t.h, t.x : t.x + t.w
                    ]
            if todo:
                ctx.parallel_for(ctx.body(self.do_tile), todo, frame=self.compute_frame)
            stable = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if stable:
                return it
        return 0

    # -- MPI ------------------------------------------------------------------------
    def _init_mpi(self, ctx) -> None:
        from repro.mpi.decomposition import band_of

        mpi = ctx.mpi
        y0, h = band_of(mpi.rank, mpi.size, ctx.dim)
        if y0 % ctx.grid.tile_h or (y0 + h) % ctx.grid.tile_h and (y0 + h) != ctx.dim:
            from repro.errors import ConfigError

            raise ConfigError(
                "life/mpi_omp requires rank bands aligned to tile rows "
                f"(dim={ctx.dim}, np={mpi.size}, tile_h={ctx.grid.tile_h})"
            )
        # root-only dataset construction: rank 0 builds the grid once and
        # shares it as a zero-copy window (shared memory under the procs
        # substrate, a read-only view inproc); every rank then carves out
        # just its band instead of redundantly materializing the world
        full = mpi.comm.shared_window(
            make_dataset(ctx.arg or "diag", ctx.dim, ctx.config.seed)
            if mpi.rank == 0 else None,
            root=0,
        )
        # local band with one ghost row above and below
        local = np.zeros((h + 2, ctx.dim), dtype=np.uint8)
        local[1 : h + 1] = full[y0 : y0 + h]
        ctx.data.update(
            band_y0=y0,
            band_h=h,
            cells=local,
            next=np.zeros_like(local),
        )
        tiles = [t for t in ctx.grid if y0 <= t.y < y0 + h]
        ctx.data["tiles"] = tiles
        ctx.data["dirty"] = np.ones((ctx.grid.rows, ctx.grid.cols), dtype=bool)

    def _refresh_mpi(self, ctx) -> None:
        mpi = ctx.mpi
        y0, h = ctx.data["band_y0"], ctx.data["band_h"]
        band = ctx.data["cells"][1 : h + 1]
        pixels = np.where(band == 1, ALIVE_COLOR, DEAD_COLOR)
        ctx.img.cur[y0 : y0 + h] = pixels
        # master composes the full picture for display/result
        gathered = mpi.comm.gather((y0, pixels), root=0)
        if mpi.rank == 0 and gathered:
            for gy0, gpix in gathered:
                ctx.img.cur[gy0 : gy0 + gpix.shape[0]] = gpix

    def _exchange_ghosts(self, ctx) -> None:
        """Swap boundary rows and border tile-states with the neighbours."""
        mpi = ctx.mpi
        comm = mpi.comm
        h = ctx.data["band_h"]
        cells = ctx.data["cells"]
        grid = ctx.grid
        changes = ctx.data.get("prev_changes")
        up, down = mpi.rank - 1, mpi.rank + 1
        y0 = ctx.data["band_y0"]
        top_trow = min(y0 // grid.tile_h, grid.rows - 1)
        bot_trow = min((y0 + h - 1) // grid.tile_h, grid.rows - 1)
        top_state = changes[top_trow] if changes is not None else None
        bot_state = changes[bot_trow] if changes is not None else None
        if up >= 0:
            # neighbour's bottom boundary row + its tile-change flags
            got = comm.sendrecv((cells[1].copy(), top_state), dest=up, source=up)
            cells[0] = got[0]
            if got[1] is not None:
                ctx.data["dirty"][top_trow] |= got[1]
        else:
            cells[0] = 0
        if down < mpi.size:
            got = comm.sendrecv((cells[h].copy(), bot_state), dest=down, source=down)
            cells[h + 1] = got[0]
            if got[1] is not None:
                ctx.data["dirty"][bot_trow] |= got[1]
        else:
            cells[h + 1] = 0

    def _do_tile_mpi(self, ctx, tile: Tile) -> float:
        """Tile body in band-local coordinates (ghost row offset +1)."""
        y0 = ctx.data["band_y0"]
        # footprint in global coordinates (ghost rows map to the
        # neighbour's boundary rows)
        ctx.declare_access(
            reads=[halo_region("cells", tile.x, tile.y, tile.w, tile.h, ctx.dim)],
            writes=[("next", tile.x, tile.y, tile.w, tile.h)],
        )
        step = ctx.jit_core or life_step_rect
        changed = step(
            ctx.data["cells"], ctx.data["next"], tile.y - y0 + 1, tile.x, tile.h, tile.w
        )
        ctx.data["changes"][tile.row, tile.col] = changed > 0
        return tile.area * CELL_WORK

    @variant("mpi_omp")
    def compute_mpi_omp(self, ctx, nb_iter: int) -> int:
        """MPI band decomposition + lazy OpenMP tiles within each rank."""
        if ctx.mpi is None:
            raise RuntimeError("variant mpi_omp requires --mpirun (mpi_np > 0)")
        mpi = ctx.mpi
        h = ctx.data["band_h"]
        for it in ctx.iterations(nb_iter):
            self._begin_iter(ctx)
            self._exchange_ghosts(ctx)
            dirty = ctx.data["dirty"]
            todo = [t for t in ctx.data["tiles"] if dirty[t.row, t.col]]
            cells, nxt = ctx.data["cells"], ctx.data["next"]
            y0 = ctx.data["band_y0"]
            for t in ctx.data["tiles"]:
                if not dirty[t.row, t.col]:
                    ly = t.y - y0 + 1
                    nxt[ly : ly + t.h, t.x : t.x + t.w] = cells[
                        ly : ly + t.h, t.x : t.x + t.w
                    ]
            if todo:
                ctx.parallel_for(ctx.body(self._do_tile_mpi), todo)
            ctx.data["prev_changes"] = ctx.data["changes"].copy()
            local_changed = bool(ctx.data["changes"].any())
            ctx.data["cells"], ctx.data["next"] = ctx.data["next"], ctx.data["cells"]
            # ghost rows of the swapped-in buffer are stale; refreshed next iter
            changes = ctx.data["changes"]
            dirty = changes.copy()
            dirty[1:, :] |= changes[:-1, :]
            dirty[:-1, :] |= changes[1:, :]
            dirty[:, 1:] |= changes[:, :-1]
            dirty[:, :-1] |= changes[:, 1:]
            dirty[1:, 1:] |= changes[:-1, :-1]
            dirty[1:, :-1] |= changes[:-1, 1:]
            dirty[:-1, 1:] |= changes[1:, :-1]
            dirty[:-1, :-1] |= changes[1:, 1:]
            ctx.data["dirty"] = dirty
            any_changed = mpi.comm.allreduce(local_changed, op=lambda a, b: a or b)
            if not any_changed:
                return it
        return 0
