"""Built-in kernels.

Importing this package registers every predefined kernel (the EASYPAP
distribution model: kernels are discovered at build time; here, at
import time).  Use :func:`repro.core.kernel.list_kernels` to enumerate
them and :func:`repro.core.kernel.get_kernel` to instantiate one.
"""

from repro.kernels import (  # noqa: F401  (import side effect: registration)
    blur,
    connected,
    heat,
    heat3d,
    life,
    lu_wavefront,
    mandel,
    sandpile,
    scrollup,
    simple,
    spin,
)
from repro.kernels.blur import BlurKernel
from repro.kernels.connected import ConnectedKernel
from repro.kernels.heat import HeatKernel
from repro.kernels.heat3d import Heat3DKernel
from repro.kernels.life import LifeKernel
from repro.kernels.lu_wavefront import LuWavefrontKernel
from repro.kernels.mandel import MandelKernel
from repro.kernels.sandpile import SandpileKernel
from repro.kernels.scrollup import ScrollupKernel
from repro.kernels.simple import (
    InvertKernel,
    NoneKernel,
    PixelizeKernel,
    TransposeKernel,
)
from repro.kernels.spin import SpinKernel

__all__ = [
    "BlurKernel",
    "ConnectedKernel",
    "HeatKernel",
    "Heat3DKernel",
    "LuWavefrontKernel",
    "ScrollupKernel",
    "SpinKernel",
    "LifeKernel",
    "MandelKernel",
    "SandpileKernel",
    "InvertKernel",
    "NoneKernel",
    "PixelizeKernel",
    "TransposeKernel",
]
