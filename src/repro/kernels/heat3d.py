"""3D heat diffusion: a slab-decomposed volumetric Jacobi stencil.

The :class:`~repro.core.domains.Slab3DDomain` workload: a
``dim_x x dim_y x dim_z`` temperature volume relaxes under the 7-point
Jacobi operator with fixed-temperature sources; each work item is a
z-slab of ``tile_h`` planes.  Slabs are independent within one sweep
(read ``temp3``, write ``next3``), so they flow through the ordinary
worksharing machinery — what changes is that footprints carry a depth
extent (the 7-tuple regions of :mod:`repro.core.access`) and traces
render slabs as x/z bands.

Datasets (``--arg``): ``core`` (a hot cube in the volume center, the
default), ``plate`` (a hot z=0 face).
"""

from __future__ import annotations

import numpy as np

from repro.core.domains import Slab
from repro.core.kernel import Kernel, register_kernel, variant

__all__ = ["Heat3DKernel", "jacobi3d_slab"]

CELL_WORK = 10.0
TOLERANCE = 1e-4


def jacobi3d_slab(
    temp: np.ndarray,
    nxt: np.ndarray,
    sources: np.ndarray,
    z0: int,
    d: int,
) -> float:
    """One Jacobi sweep over planes ``[z0, z0+d)``; returns max |update|.

    Borders replicate their boundary neighbour (insulated volume);
    source voxels keep their fixed temperature.  The neighbour sum is a
    single left-to-right expression, so per-slab results equal a
    whole-volume sweep bit for bit regardless of slab decomposition.
    """
    Z = temp.shape[0]
    zs = np.arange(z0, z0 + d)
    cur = temp[z0 : z0 + d]
    zm = temp[np.maximum(zs - 1, 0)]
    zp = temp[np.minimum(zs + 1, Z - 1)]
    ym = cur[:, np.maximum(np.arange(cur.shape[1]) - 1, 0), :]
    yp = cur[:, np.minimum(np.arange(cur.shape[1]) + 1, cur.shape[1] - 1), :]
    xm = cur[:, :, np.maximum(np.arange(cur.shape[2]) - 1, 0)]
    xp = cur[:, :, np.minimum(np.arange(cur.shape[2]) + 1, cur.shape[2] - 1)]
    new = (zm + zp + ym + yp + xm + xp) / 6.0
    src = sources[z0 : z0 + d]
    new = np.where(np.isnan(src), new, src)
    nxt[z0 : z0 + d] = new
    return float(np.abs(new - cur).max()) if new.size else 0.0


def _make_volume(
    name: str, dim_x: int, dim_y: int, dim_z: int
) -> tuple[np.ndarray, np.ndarray]:
    """Initial temperatures + source map (NaN = free voxel)."""
    temp = np.zeros((dim_z, dim_y, dim_x), dtype=np.float64)
    sources = np.full((dim_z, dim_y, dim_x), np.nan)
    name = (name or "core").lower()
    if name == "core":
        kx = max(dim_x // 8, 1)
        ky = max(dim_y // 8, 1)
        kz = max(dim_z // 8, 1)
        x0, y0, z0 = (dim_x - kx) // 2, (dim_y - ky) // 2, (dim_z - kz) // 2
        sources[z0 : z0 + kz, y0 : y0 + ky, x0 : x0 + kx] = 1.0
    elif name == "plate":
        sources[0, :, :] = 1.0
    else:
        raise ValueError(f"unknown heat3d dataset {name!r}")
    temp[~np.isnan(sources)] = sources[~np.isnan(sources)]
    return temp, sources


@register_kernel
class Heat3DKernel(Kernel):
    """Kernel ``heat3d`` with variants seq / omp_tiled."""

    name = "heat3d"
    default_domain = "slab3d"

    def init(self, ctx) -> None:
        temp, sources = _make_volume(
            ctx.arg or "core", ctx.dim_x, ctx.dim_y, ctx.dim_z
        )
        ctx.data["temp3"] = temp
        ctx.data["next3"] = temp.copy()
        ctx.data["sources3"] = sources

    def refresh_img(self, ctx) -> None:
        """Render the mid-depth plane (the standard volume inspection cut)."""
        temp = ctx.data.get("temp3")
        if temp is None:
            return
        t = np.clip(temp[temp.shape[0] // 2], 0.0, 1.0)
        r = (255 * t).astype(np.uint32)
        b = (255 * (1.0 - t)).astype(np.uint32)
        ctx.img.cur[:] = (r << 24) | (b << 8) | np.uint32(0xFF)

    def do_slab(self, ctx, slab: Slab) -> tuple[float, float]:
        """Slab body in reduction style: returns (work, local max delta)."""
        Z = ctx.dim_z
        hz0 = max(slab.z0 - 1, 0)
        hd = min(slab.z0 + slab.d + 1, Z) - hz0
        ctx.declare_access(
            reads=[
                ("temp3", 0, 0, ctx.dim_x, ctx.dim_y, hz0, hd),
                ("sources3", 0, 0, ctx.dim_x, ctx.dim_y, slab.z0, slab.d),
            ],
            writes=[("next3", 0, 0, ctx.dim_x, ctx.dim_y, slab.z0, slab.d)],
        )
        delta = jacobi3d_slab(
            ctx.data["temp3"], ctx.data["next3"], ctx.data["sources3"],
            slab.z0, slab.d,
        )
        return slab.d * ctx.dim_y * ctx.dim_x * CELL_WORK, delta

    def do_slab_fold(self, ctx, slab: Slab) -> float:
        work, delta = self.do_slab(ctx, slab)
        ctx.data["max_delta"] = max(ctx.data["max_delta"], delta)
        return work

    def _end_iter(self, ctx) -> bool:
        ctx.data["temp3"], ctx.data["next3"] = ctx.data["next3"], ctx.data["temp3"]
        return ctx.data["max_delta"] > TOLERANCE

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            ctx.data["max_delta"] = 0.0
            ctx.sequential_for(ctx.body(self.do_slab_fold))
            if not self._end_iter(ctx):
                return it
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """Parallel sweep over slabs, convergence as a max-reduction."""
        for it in ctx.iterations(nb_iter):
            _, max_delta = ctx.parallel_reduce(
                ctx.body(self.do_slab), combine=max, init=0.0,
            )
            ctx.data["max_delta"] = max_delta
            converged = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if converged:
                return it
        return 0
