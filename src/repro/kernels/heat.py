"""Heat diffusion: a floating-point Jacobi stencil with convergence.

A second stencil besides blur, closer to the "simulations involving
stencil computations" the paper's §III-B motivates: a temperature field
relaxes under the 5-point Jacobi operator with fixed-temperature
sources, and the kernel stops when the largest update falls below a
tolerance — so students see early termination driven by a *numeric*
criterion rather than a boolean one.

Datasets (``--arg``): ``corners`` (hot corners / cold center, default),
``bar`` (a hot horizontal bar).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import halo_region, tile_works

__all__ = ["HeatKernel", "jacobi_step_rect"]

CELL_WORK = 8.0
TOLERANCE = 1e-4


def jacobi_step_rect(
    temp: np.ndarray,
    nxt: np.ndarray,
    sources: np.ndarray,
    y: int,
    x: int,
    h: int,
    w: int,
) -> float:
    """One Jacobi step on a rectangle; returns the max absolute update.

    Cells outside the grid mirror their boundary neighbour (insulated
    borders); source cells keep their fixed temperature.
    """
    H, W = temp.shape
    ys0, ys1 = max(y - 1, 0), min(y + h + 1, H)
    xs0, xs1 = max(x - 1, 0), min(x + w + 1, W)
    pad = np.empty((h + 2, w + 2), dtype=temp.dtype)
    # fill with edge replication (insulation), then paste the real halo
    pad[:] = 0.0
    inner = temp[ys0:ys1, xs0:xs1]
    pad[ys0 - y + 1 : ys1 - y + 1, xs0 - x + 1 : xs1 - x + 1] = inner
    if y == 0:
        pad[0, 1 : w + 1] = temp[0, x : x + w]
    if y + h == H:
        pad[-1, 1 : w + 1] = temp[H - 1, x : x + w]
    if x == 0:
        pad[1 : h + 1, 0] = temp[y : y + h, 0]
    if x + w == W:
        pad[1 : h + 1, -1] = temp[y : y + h, W - 1]
    new = 0.25 * (pad[0:-2, 1:-1] + pad[2:, 1:-1] + pad[1:-1, 0:-2] + pad[1:-1, 2:])
    src = sources[y : y + h, x : x + w]
    cur = temp[y : y + h, x : x + w]
    new = np.where(np.isnan(src), new, src)
    nxt[y : y + h, x : x + w] = new
    delta = float(np.abs(new - cur).max()) if new.size else 0.0
    return delta


def _make_field(name: str, dim: int) -> tuple[np.ndarray, np.ndarray]:
    """Initial temperatures + source map (NaN = free cell)."""
    temp = np.zeros((dim, dim), dtype=np.float64)
    sources = np.full((dim, dim), np.nan)
    name = (name or "corners").lower()
    if name == "corners":
        k = max(dim // 16, 1)
        for sy, sx in [(0, 0), (0, dim - k), (dim - k, 0), (dim - k, dim - k)]:
            sources[sy : sy + k, sx : sx + k] = 1.0
    elif name == "bar":
        sources[dim // 2 - 1 : dim // 2 + 1, dim // 8 : -dim // 8 or None] = 1.0
    else:
        raise ValueError(f"unknown heat dataset {name!r}")
    temp[~np.isnan(sources)] = sources[~np.isnan(sources)]
    return temp, sources


@register_kernel
class HeatKernel(Kernel):
    """Kernel ``heat`` with variants seq / omp_tiled."""

    name = "heat"

    def init(self, ctx) -> None:
        temp, sources = _make_field(ctx.arg or "corners", ctx.dim)
        ctx.data["temp"] = temp
        ctx.data["next"] = temp.copy()
        ctx.data["sources"] = sources

    def refresh_img(self, ctx) -> None:
        temp = ctx.data.get("temp")
        if temp is None:
            return
        t = np.clip(temp, 0.0, 1.0)
        r = (255 * t).astype(np.uint32)
        b = (255 * (1.0 - t)).astype(np.uint32)
        ctx.img.cur[:] = (r << 24) | (b << 8) | np.uint32(0xFF)

    def do_tile_delta(self, ctx, tile: Tile) -> tuple[float, float]:
        """Tile body in reduction style: returns (work, local max delta)."""
        ctx.declare_access(
            reads=[
                halo_region("temp", tile.x, tile.y, tile.w, tile.h, ctx.dim),
                ("sources", tile.x, tile.y, tile.w, tile.h),
            ],
            writes=[("next", tile.x, tile.y, tile.w, tile.h)],
        )
        step = ctx.jit_core or jacobi_step_rect
        delta = step(
            ctx.data["temp"], ctx.data["next"], ctx.data["sources"],
            tile.y, tile.x, tile.h, tile.w,
        )
        return tile.area * CELL_WORK, delta

    def do_tile(self, ctx, tile: Tile) -> float:
        work, delta = self.do_tile_delta(ctx, tile)
        ctx.data["max_delta"] = max(ctx.data["max_delta"], delta)
        return work

    # -- whole-frame fast path (perf mode) ----------------------------------
    def compute_frame_delta(self, ctx, tiles):
        """One whole-frame Jacobi step; returns ``(works, max delta)``.

        The rectangle (0, 0, dim, dim) triggers all four border
        replication branches, exactly as the border tiles would, and the
        interior update keeps the same operand association — new values
        are bit-identical to the per-tile path.  The global max |update|
        equals the fold of per-tile maxima (max is order-independent).
        """
        if len(tiles) != len(ctx.grid):
            return None
        delta = jacobi_step_rect(
            ctx.data["temp"], ctx.data["next"], ctx.data["sources"],
            0, 0, ctx.dim, ctx.dim,
        )
        return tile_works(tiles, CELL_WORK), delta

    def compute_frame(self, ctx, tiles) -> np.ndarray | None:
        """Sequential-loop flavour: folds the delta into ``max_delta``
        like the chain of ``do_tile`` calls would."""
        out = self.compute_frame_delta(ctx, tiles)
        if out is None:
            return None
        works, delta = out
        ctx.data["max_delta"] = max(ctx.data["max_delta"], delta)
        return works

    def _end_iter(self, ctx) -> bool:
        ctx.data["temp"], ctx.data["next"] = ctx.data["next"], ctx.data["temp"]
        return ctx.data["max_delta"] > TOLERANCE

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            ctx.data["max_delta"] = 0.0
            ctx.sequential_for(lambda t: self.do_tile(ctx, t), frame=self.compute_frame)
            if not self._end_iter(ctx):
                return it
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """Parallel Jacobi with the convergence test as a *reduction* —
        the race-free OpenMP idiom (``reduction(max: delta)``) rather
        than tile bodies mutating shared state."""
        for it in ctx.iterations(nb_iter):
            _, max_delta = ctx.parallel_reduce(
                ctx.body(self.do_tile_delta), combine=max, init=0.0,
                frame=self.compute_frame_delta,
            )
            ctx.data["max_delta"] = max_delta
            converged = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if converged:
                return it
        return 0

    # -- MPI: 2D block decomposition with non-blocking ghost exchange --------
    @variant("mpi_2d")
    def compute_mpi_2d(self, ctx, nb_iter: int) -> int:
        """Advanced distribution: the process grid is 2D (``grid_shape``),
        each rank owns a block and exchanges its four boundary edges with
        non-blocking ``isend``/``irecv`` — all four receives are posted
        first, then waited, the canonical halo-exchange idiom.
        """
        if ctx.mpi is None:
            raise RuntimeError("variant mpi_2d requires --mpirun (mpi_np > 0)")
        from repro.errors import ConfigError
        from repro.mpi.decomposition import block_of, grid_shape

        mpi = ctx.mpi
        comm = mpi.comm
        rows, cols = grid_shape(mpi.size)
        pr, pc = divmod(mpi.rank, cols)
        y0, x0, h, w = block_of(mpi.rank, mpi.size, ctx.dim)
        if (y0 % ctx.grid.tile_h or x0 % ctx.grid.tile_w
                or ((y0 + h) % ctx.grid.tile_h and y0 + h != ctx.dim)
                or ((x0 + w) % ctx.grid.tile_w and x0 + w != ctx.dim)):
            raise ConfigError(
                "heat/mpi_2d requires blocks aligned to tiles "
                f"(dim={ctx.dim}, np={mpi.size}, tile={ctx.grid.tile_w}x"
                f"{ctx.grid.tile_h})"
            )
        tiles = [t for t in ctx.grid
                 if y0 <= t.y < y0 + h and x0 <= t.x < x0 + w]

        def rank_of(r: int, c: int) -> int | None:
            if 0 <= r < rows and 0 <= c < cols:
                return r * cols + c
            return None

        neighbours = {
            "up": (rank_of(pr - 1, pc), 10, 11),
            "down": (rank_of(pr + 1, pc), 11, 10),
            "left": (rank_of(pr, pc - 1), 12, 13),
            "right": (rank_of(pr, pc + 1), 13, 12),
        }
        temp = ctx.data["temp"]
        for it in ctx.iterations(nb_iter):
            # post all four receives, then send our edges, then wait
            reqs = {}
            for side, (peer, _, rtag) in neighbours.items():
                if peer is not None:
                    reqs[side] = comm.irecv(source=peer, tag=rtag)
            edges = {
                "up": temp[y0, x0 : x0 + w].copy(),
                "down": temp[y0 + h - 1, x0 : x0 + w].copy(),
                "left": temp[y0 : y0 + h, x0].copy(),
                "right": temp[y0 : y0 + h, x0 + w - 1].copy(),
            }
            for side, (peer, stag, _) in neighbours.items():
                if peer is not None:
                    comm.isend(edges[side], dest=peer, tag=stag)
            for side, req in reqs.items():
                ghost = req.wait()
                if side == "up":
                    temp[y0 - 1, x0 : x0 + w] = ghost
                elif side == "down":
                    temp[y0 + h, x0 : x0 + w] = ghost
                elif side == "left":
                    temp[y0 : y0 + h, x0 - 1] = ghost
                else:
                    temp[y0 : y0 + h, x0 + w] = ghost
            ctx.data["max_delta"] = 0.0
            ctx.parallel_for(ctx.body(self.do_tile), tiles)
            ctx.data["temp"], ctx.data["next"] = ctx.data["next"], ctx.data["temp"]
            temp = ctx.data["temp"]
            global_delta = comm.allreduce(ctx.data["max_delta"], op=max)
            if global_delta <= TOLERANCE:
                self._gather_blocks(ctx, y0, x0, h, w)
                return it
        self._gather_blocks(ctx, y0, x0, h, w)
        return 0

    def _gather_blocks(self, ctx, y0: int, x0: int, h: int, w: int) -> None:
        """Compose the full field on the master at the end of the run."""
        comm = ctx.mpi.comm
        block = ctx.data["temp"][y0 : y0 + h, x0 : x0 + w].copy()
        gathered = comm.gather((y0, x0, block), root=0)
        if ctx.mpi.rank == 0 and gathered:
            for gy, gx, b in gathered:
                ctx.data["temp"][gy : gy + b.shape[0], gx : gx + b.shape[1]] = b
