"""The spin kernel: a rotating color wheel.

One of EASYPAP's classic first-session kernels: every pixel's color is
a pure function of its polar angle plus a per-iteration phase, so the
animation spins.  Costs are perfectly uniform — the control experiment
against mandel's imbalance (a static schedule is optimal here, which
students discover by comparing the two kernels' monitoring windows).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile

__all__ = ["SpinKernel"]

PIXEL_WORK = 6.0  # a few transcendental ops per pixel, uniform

ROTATION_PER_ITERATION = np.pi / 24.0


def _colorize(angle: np.ndarray) -> np.ndarray:
    """Map angles (radians) to a packed RGBA color wheel."""
    t = np.mod(angle, 2.0 * np.pi) / (2.0 * np.pi)
    r = (255.0 * np.abs(np.sin(np.pi * (t + 0.00)))).astype(np.uint32)
    g = (255.0 * np.abs(np.sin(np.pi * (t + 1.0 / 3.0)))).astype(np.uint32)
    b = (255.0 * np.abs(np.sin(np.pi * (t + 2.0 / 3.0)))).astype(np.uint32)
    return (r << 24) | (g << 16) | (b << 8) | np.uint32(0xFF)


@register_kernel
class SpinKernel(Kernel):
    """Kernel ``spin`` with variants seq / omp_tiled."""

    name = "spin"

    def init(self, ctx) -> None:
        ctx.data["phase"] = 0.0

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        c = (ctx.dim - 1) / 2.0
        yy = y + np.arange(h)[:, np.newaxis] - c
        xx = x + np.arange(w)[np.newaxis, :] - c
        angle = np.arctan2(yy, xx) + ctx.data["phase"]
        ctx.img.cur_view(y, x, h, w, mode="w")[:] = _colorize(angle)
        return tile.area * PIXEL_WORK

    def _rotate(self, ctx) -> None:
        ctx.data["phase"] += ROTATION_PER_ITERATION

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            self._rotate(ctx)
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile))
            ctx.run_on_master(lambda: self._rotate(ctx))
        return 0
