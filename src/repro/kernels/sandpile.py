"""The Abelian sandpile kernel (one of EASYPAP's predefined kernels).

Synchronous toppling: a cell holding 4+ grains gives one grain to each
4-neighbour; grains falling off the border are lost.  The update
``next = cur % 4 + inflow`` is applied simultaneously everywhere, so
tiles are independent within an iteration (double buffering), and the
kernel stabilizes — giving a second early-termination kernel besides
Life, with beautifully fractal stable states.

Datasets (``--arg``): ``uniform5`` (every cell starts with 5 grains,
the default), ``center`` (a large central pile).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import halo_region, tile_works

__all__ = ["SandpileKernel", "sandpile_step_rect"]

GRAIN_WORK = 6.0

#: colors for 0..3 grains (stable), and a hot color for unstable cells
PALETTE = np.array(
    [0x000000FF, 0x203080FF, 0x4060C0FF, 0x80A0FFFF, 0xFF4000FF], dtype=np.uint32
)


def sandpile_step_rect(
    grains: np.ndarray, nxt: np.ndarray, y: int, x: int, h: int, w: int
) -> int:
    """Synchronous toppling step on a rectangle; returns #changed cells.

    Cells outside the array are sinks (grains vanish at the border).
    """
    H, W = grains.shape
    pad = np.zeros((h + 2, w + 2), dtype=grains.dtype)
    ys0, ys1 = max(y - 1, 0), min(y + h + 1, H)
    xs0, xs1 = max(x - 1, 0), min(x + w + 1, W)
    pad[ys0 - y + 1 : ys1 - y + 1, xs0 - x + 1 : xs1 - x + 1] = grains[ys0:ys1, xs0:xs1]
    inflow = (
        (pad[0:-2, 1:-1] // 4)
        + (pad[2:, 1:-1] // 4)
        + (pad[1:-1, 0:-2] // 4)
        + (pad[1:-1, 2:] // 4)
    )
    cur = pad[1:-1, 1:-1]
    new = cur % 4 + inflow
    changed = int((new != cur).sum())
    nxt[y : y + h, x : x + w] = new
    return changed


@register_kernel
class SandpileKernel(Kernel):
    """Kernel ``sandpile`` with variants seq / omp_tiled."""

    name = "sandpile"
    #: the quadtree variant iterates a center-refined adaptive tiling
    #: (small tiles over the active center pile, big tiles elsewhere)
    variant_domains = {"omp_quadtree": "quadtree"}

    def init(self, ctx) -> None:
        dataset = (ctx.arg or "uniform5").lower()
        grains = np.zeros((ctx.dim, ctx.dim), dtype=np.int64)
        if dataset == "uniform5":
            grains[1:-1, 1:-1] = 5
        elif dataset == "center":
            grains[ctx.dim // 2, ctx.dim // 2] = 16 * ctx.dim
        else:
            raise ValueError(f"unknown sandpile dataset {dataset!r}")
        ctx.data["grains"] = grains
        ctx.data["next"] = np.zeros_like(grains)

    def refresh_img(self, ctx) -> None:
        grains = ctx.data.get("grains")
        if grains is not None:
            ctx.img.cur[:] = PALETTE[np.minimum(grains, 4)]

    def do_tile(self, ctx, tile: Tile) -> float:
        ctx.declare_access(
            reads=[halo_region("grains", tile.x, tile.y, tile.w, tile.h, ctx.dim)],
            writes=[("next", tile.x, tile.y, tile.w, tile.h)],
        )
        step = ctx.jit_core or sandpile_step_rect
        changed = step(
            ctx.data["grains"], ctx.data["next"], tile.y, tile.x, tile.h, tile.w
        )
        if changed:
            ctx.data["changed"] = True
        return tile.area * GRAIN_WORK

    # -- whole-frame fast path (perf mode) ----------------------------------
    def compute_frame(self, ctx, tiles) -> np.ndarray | None:
        """Whole-frame toppling step (integer ops — trivially exact)."""
        if len(tiles) != len(ctx.grid):
            return None
        changed = sandpile_step_rect(
            ctx.data["grains"], ctx.data["next"], 0, 0, ctx.dim, ctx.dim
        )
        if changed:
            ctx.data["changed"] = True
        return tile_works(tiles, GRAIN_WORK)

    def _end_iter(self, ctx) -> bool:
        ctx.data["grains"], ctx.data["next"] = ctx.data["next"], ctx.data["grains"]
        return bool(ctx.data["changed"])

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            ctx.sequential_for(lambda t: self.do_tile(ctx, t), frame=self.compute_frame)
            if not self._end_iter(ctx):
                return it
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            ctx.parallel_for(ctx.body(self.do_tile), frame=self.compute_frame)
            stable = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if stable:
                return it
        return 0

    @variant("omp_quadtree")
    def compute_omp_quadtree(self, ctx, nb_iter: int) -> int:
        """Same toppling bodies over the adaptive quadtree tiling: the
        default item list *is* the refined domain, and because the tiles
        still partition the image exactly, the result is bit-identical
        to ``omp_tiled`` — only the schedule's load profile changes
        (finer grains where the dataset is active)."""
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            ctx.parallel_for(ctx.body(self.do_tile))
            stable = not ctx.run_on_master(lambda: self._end_iter(ctx))
            if stable:
                return it
        return 0
