"""Simple predefined kernels: none, invert, transpose, pixelize.

These are the "very simple kernels" of the first hands-on session
(paper §III): enough structure to learn the tiling/variant workflow and
to calibrate monitoring, with trivially verifiable semantics.  ``none``
does no per-pixel work at all — EASYPAP ships the same kernel; it is
the probe we use to measure pure scheduling overhead (bench ABL1).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import synthetic_picture

__all__ = ["NoneKernel", "InvertKernel", "TransposeKernel", "PixelizeKernel"]

PIXEL_WORK = 2.0  # work units per pixel for these memory-bound kernels


class _PictureKernel(Kernel):
    """Shared base: draw a synthetic picture, loop tiles each iteration."""

    def draw(self, ctx) -> None:
        ctx.img.load(synthetic_picture(ctx.dim, ctx.rng))

    def do_tile(self, ctx, tile: Tile) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            self.end_of_iteration(ctx)
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile))
            ctx.run_on_master(lambda: self.end_of_iteration(ctx))
        return 0

    def end_of_iteration(self, ctx) -> None:
        """Hook between iterations (buffer swap for out-of-place kernels)."""


@register_kernel
class NoneKernel(_PictureKernel):
    """Kernel ``none``: tiles cost (almost) nothing — overhead probe."""

    name = "none"

    def do_tile(self, ctx, tile: Tile) -> float:
        return 1.0  # one unit per tile: all that remains is runtime overhead


@register_kernel
class InvertKernel(_PictureKernel):
    """Kernel ``invert``: flip every RGB bit, keep alpha."""

    name = "invert"

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        view = ctx.img.cur_view(y, x, h, w)
        view[:] = view ^ np.uint32(0xFFFFFF00)
        return tile.area * PIXEL_WORK


@register_kernel
class TransposeKernel(_PictureKernel):
    """Kernel ``transpose``: mirror the image across its main diagonal.

    Tile (r, c) writes block (c, r) of the next image — the classic
    blocked transpose whose strided reads make the cache-model extension
    (bench EXT1) interesting.
    """

    name = "transpose"

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        block = ctx.img.cur_view(y, x, h, w, mode="r")
        ctx.img.next_view(x, y, w, h, mode="w")[:] = block.T
        return tile.area * PIXEL_WORK

    def end_of_iteration(self, ctx) -> None:
        ctx.swap_images()


@register_kernel
class PixelizeKernel(_PictureKernel):
    """Kernel ``pixelize``: replace each tile by its average color."""

    name = "pixelize"

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        view = ctx.img.cur_view(y, x, h, w)
        mean = (
            (np.uint32((view >> 24 & 0xFF).mean()) << 24)
            | (np.uint32((view >> 16 & 0xFF).mean()) << 16)
            | (np.uint32((view >> 8 & 0xFF).mean()) << 8)
            | np.uint32((view & 0xFF).mean())
        )
        view[:] = mean
        return tile.area * PIXEL_WORK
