"""Connected-components detection (paper §III-C, Figs. 11–12).

Each connected component (4-connectivity, separated by transparent
pixels) must end up in a unique color.  The algorithm first reassigns
every foreground pixel a unique label, then alternates two propagation
phases per iteration until a steady state:

* **down-right**: scan-order pass where each pixel takes the max of
  itself, its up and its left foreground neighbours;
* **up-left**: the symmetric reverse pass.

The challenge is parallelizing *without extra iterations*: a tile may
only run once its left+upper (resp. right+lower) neighbours completed.
``omp_task`` expresses exactly the OpenMP task dependencies of Fig. 11;
EASYVIEW then shows the diagonal wave of tasks (Fig. 12).

Labels are stored directly in the image: background is 0, foreground
pixels carry ``((y * dim + x + 1) << 8) | 0xFF`` so the alpha byte stays
opaque and every label is unique.  After convergence, each component is
uniformly colored by its maximum label.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.util.rng import make_rng

__all__ = ["ConnectedKernel", "draw_shapes", "draw_snake", "draw_spiral"]

#: work units per pixel of a propagation pass (scalar-ish scanning code)
CC_PIXEL_WORK = 12.0


def _seg_cummax_inplace(a: np.ndarray) -> bool:
    """Running max within each nonzero segment of ``a`` (zeros reset).

    Returns True if any value changed.  Segments are processed as
    vectorized slices, so cost is O(n) + O(#segments) Python overhead.
    """
    fg = a != 0
    if not fg.any():
        return False
    d = np.diff(fg.astype(np.int8))
    starts = np.flatnonzero(d == 1) + 1
    ends = np.flatnonzero(d == -1) + 1
    if fg[0]:
        starts = np.concatenate(([0], starts))
    if fg[-1]:
        ends = np.concatenate((ends, [a.size]))
    changed = False
    for s, e in zip(starts, ends):
        seg = a[s:e]
        m = np.maximum.accumulate(seg)
        if m[-1] != seg[-1] or not np.array_equal(m, seg):
            a[s:e] = m
            changed = True
    return changed


def pass_down_right(img: np.ndarray, x: int, y: int, w: int, h: int) -> bool:
    """One scan-order down-right pass over the rectangle, reading the
    final values of the row above / column left of the rectangle
    (which the dependency order guarantees are complete)."""
    changed = False
    for i in range(y, y + h):
        row = img[i, x : x + w]
        fg = row != 0
        if i > 0:
            up = img[i - 1, x : x + w]
            merged = np.where(fg & (up != 0), np.maximum(row, up), row)
            if not np.array_equal(merged, row):
                changed = True
                row[:] = merged
        if x > 0 and row[0] != 0:
            left = img[i, x - 1]
            if left != 0 and left > row[0]:
                row[0] = left
                changed = True
        if _seg_cummax_inplace(row):
            changed = True
    return changed


def pass_up_left(img: np.ndarray, x: int, y: int, w: int, h: int) -> bool:
    """The symmetric reverse pass (bottom-up, right-to-left)."""
    dim_y, dim_x = img.shape
    changed = False
    for i in range(y + h - 1, y - 1, -1):
        row = img[i, x : x + w]
        fg = row != 0
        if i + 1 < dim_y:
            down = img[i + 1, x : x + w]
            merged = np.where(fg & (down != 0), np.maximum(row, down), row)
            if not np.array_equal(merged, row):
                changed = True
                row[:] = merged
        if x + w < dim_x and row[-1] != 0:
            right = img[i, x + w]
            if right != 0 and right > row[-1]:
                row[-1] = right
                changed = True
        rev = row[::-1]
        if _seg_cummax_inplace(rev):
            changed = True
    return changed


# --------------------------------------------------------------------------
# Datasets
# --------------------------------------------------------------------------


def draw_shapes(dim: int, seed: int | None = None, nshapes: int = 12) -> np.ndarray:
    """Random discs and rectangles of arbitrary colors on transparency."""
    rng = make_rng(seed)
    img = np.zeros((dim, dim), dtype=np.uint32)
    yy, xx = np.mgrid[0:dim, 0:dim]
    for _ in range(nshapes):
        color = np.uint32(int(rng.integers(1, 2**24)) << 8 | 0xFF)
        if rng.random() < 0.5:
            cy, cx = rng.integers(0, dim, size=2)
            rad = int(rng.integers(max(dim // 20, 2), max(dim // 6, 3)))
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= rad * rad
        else:
            y0, x0 = rng.integers(0, max(dim - 4, 1), size=2)
            hh, ww = rng.integers(3, max(dim // 5, 4), size=2)
            mask = (yy >= y0) & (yy < y0 + hh) & (xx >= x0) & (xx < x0 + ww)
        img[mask] = color
    return img


def draw_snake(dim: int, seed: int | None = None) -> np.ndarray:
    """A single serpentine path: the worst case for max propagation.

    One connected component shaped like a boustrophedon snake — the
    maximum label must crawl through every direction reversal, so the
    number of down-right/up-left rounds grows with the image size
    (students discover why "one pass is not enough").
    """
    img = np.zeros((dim, dim), dtype=np.uint32)
    color = np.uint32(0x00AACCFF)
    prev_row = None
    for row in range(1, dim - 1, 2):
        img[row, 1 : dim - 1] = color
        if prev_row is not None:
            # connector alternates between the right and left ends
            side = dim - 2 if ((row - 1) // 2) % 2 == 1 else 1
            img[prev_row : row + 1, side] = color
        prev_row = row
    return img


#: backwards-compatible alias (the dataset is selected as --arg snake)
draw_spiral = draw_snake


# --------------------------------------------------------------------------
# Kernel
# --------------------------------------------------------------------------


@register_kernel
class ConnectedKernel(Kernel):
    """Kernel ``cc`` with variants seq / tiled / omp_task."""

    name = "cc"

    def draw(self, ctx) -> None:
        dataset = (ctx.arg or "shapes").lower()
        if dataset in ("snake", "spiral"):
            ctx.img.load(draw_snake(ctx.dim, ctx.config.seed))
        else:
            ctx.img.load(draw_shapes(ctx.dim, ctx.config.seed))

    def init(self, ctx) -> None:
        ctx.data["labelled"] = False

    def _assign_labels(self, ctx) -> None:
        """Reassign each foreground pixel a unique label (first phase)."""
        img = ctx.img.cur
        dim = ctx.dim
        yy, xx = np.mgrid[0:dim, 0:dim]
        labels = (((yy * dim + xx + 1) << 8) | 0xFF).astype(np.uint32)
        img[:] = np.where(img != 0, labels, 0)
        ctx.data["labelled"] = True

    # -- tile bodies ---------------------------------------------------------
    def _tile_dr(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        reads = [("cur", x, y, w, h)]
        if y > 0:
            reads.append(("cur", x, y - 1, w, 1))  # final row of the tile above
        if x > 0:
            reads.append(("cur", x - 1, y, 1, h))  # final column of the left tile
        ctx.declare_access(reads=reads, writes=[("cur", x, y, w, h)])
        changed = pass_down_right(ctx.img.cur, x, y, w, h)
        if changed:
            ctx.data["changed"] = True
        return tile.area * CC_PIXEL_WORK

    def _tile_ul(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        reads = [("cur", x, y, w, h)]
        if y + h < ctx.dim:
            reads.append(("cur", x, y + h, w, 1))  # first row of the tile below
        if x + w < ctx.dim:
            reads.append(("cur", x + w, y, 1, h))  # first column of the right tile
        ctx.declare_access(reads=reads, writes=[("cur", x, y, w, h)])
        changed = pass_up_left(ctx.img.cur, x, y, w, h)
        if changed:
            ctx.data["changed"] = True
        return tile.area * CC_PIXEL_WORK

    # -- variants ----------------------------------------------------------------
    def _full_pass(self, ctx, pass_fn) -> None:
        """Run a whole-image pass as a single monitored phase."""

        def body(_):
            if pass_fn(ctx.img.cur, 0, 0, ctx.dim, ctx.dim):
                ctx.data["changed"] = True
            return ctx.dim * ctx.dim * CC_PIXEL_WORK

        ctx.sequential_for(body, items=[0], kind="phase")

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        if not ctx.data["labelled"]:
            ctx.run_on_master(lambda: self._assign_labels(ctx), work=ctx.dim * ctx.dim)
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            self._full_pass(ctx, pass_down_right)
            self._full_pass(ctx, pass_up_left)
            if not ctx.data["changed"]:
                return it
        return 0

    @variant("tiled")
    def compute_tiled(self, ctx, nb_iter: int) -> int:
        """Sequential tiles, processed in dependency-compatible order —
        produces exactly the same image as ``seq`` at every iteration."""
        if not ctx.data["labelled"]:
            ctx.run_on_master(lambda: self._assign_labels(ctx), work=ctx.dim * ctx.dim)
        tiles = list(ctx.grid)
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            ctx.sequential_for(lambda t: self._tile_dr(ctx, t), tiles)
            ctx.sequential_for(lambda t: self._tile_ul(ctx, t), list(reversed(tiles)))
            if not ctx.data["changed"]:
                return it
        return 0

    @variant("omp_task")
    def compute_omp_task(self, ctx, nb_iter: int) -> int:
        """OpenMP tasks with dependencies (Fig. 11): during the
        down-right phase a tile waits for its left and upper neighbours;
        the up-left phase mirrors it."""
        if not ctx.data["labelled"]:
            ctx.run_on_master(lambda: self._assign_labels(ctx), work=ctx.dim * ctx.dim)
        for it in ctx.iterations(nb_iter):
            ctx.data["changed"] = False
            with ctx.task_region(kind="task_dr") as tr:
                for t in ctx.grid:
                    tr.task(
                        lambda t=t: self._tile_dr(ctx, t),
                        item=t,
                        reads=[(t.row - 1, t.col), (t.row, t.col - 1)],
                        writes=[(t.row, t.col)],
                    )
            with ctx.task_region(kind="task_ul") as tr:
                for t in reversed(list(ctx.grid)):
                    tr.task(
                        lambda t=t: self._tile_ul(ctx, t),
                        item=t,
                        reads=[(t.row + 1, t.col), (t.row, t.col + 1)],
                        writes=[(t.row, t.col)],
                    )
            if not ctx.data["changed"]:
                return it
        return 0
