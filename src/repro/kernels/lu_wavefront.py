"""Blocked LU factorization: the wavefront-DAG workload.

The first kernel whose iteration space is *not* the tile grid: a
``dim x dim`` matrix is factorized in place by blocked right-looking
LU elimination (unpivoted — the matrix is made strictly diagonally
dominant, so every pivot is safe), and each block operation is one
item of a :class:`~repro.core.domains.WavefrontDomain` whose edges
encode the data flow between elimination steps.

This is the workload ROADMAP's "scenario diversity" item asks for:
dependency waves make ``static`` scheduling *visibly* lose — a
statically assigned CPU idles whenever its next block's predecessors
are still in flight, while ``dynamic``/stealing keep pulling whatever
became ready.  Compare::

    easypap -k lu_wavefront -v omp_tiled --schedule static -t
    easypap -k lu_wavefront -v omp_tiled --schedule dynamic -t

Block bodies run through plain NumPy loops over pivots — identical
float operations in identical order on every backend, so sim, threads
and procs produce bit-identical factors.
"""

from __future__ import annotations

import numpy as np

from repro.core.domains import WaveTask
from repro.core.kernel import Kernel, register_kernel, variant

__all__ = ["LuWavefrontKernel", "lu_diag", "trsm_row", "trsm_col", "gemm_trail"]


def lu_diag(a: np.ndarray) -> None:
    """Unpivoted in-place LU of a square block: L (unit lower) and U
    share the storage, multipliers below the diagonal."""
    n = a.shape[0]
    for p in range(n - 1):
        a[p + 1 :, p] /= a[p, p]
        a[p + 1 :, p + 1 :] -= np.outer(a[p + 1 :, p], a[p, p + 1 :])


def trsm_row(lkk: np.ndarray, b: np.ndarray) -> None:
    """Solve ``L_kk X = B`` in place (unit lower triangular forward
    substitution) — the row-panel update ``U_kj``."""
    n = lkk.shape[0]
    for p in range(n - 1):
        b[p + 1 :, :] -= np.outer(lkk[p + 1 :, p], b[p, :])


def trsm_col(ukk: np.ndarray, b: np.ndarray) -> None:
    """Solve ``X U_kk = B`` in place (upper triangular back
    substitution on columns) — the column-panel update ``L_ik``."""
    n = ukk.shape[0]
    for p in range(n):
        b[:, p] /= ukk[p, p]
        if p + 1 < n:
            b[:, p + 1 :] -= np.outer(b[:, p], ukk[p, p + 1 :])


def gemm_trail(aik: np.ndarray, akj: np.ndarray, aij: np.ndarray) -> None:
    """Trailing update ``A_ij -= A_ik @ A_kj``."""
    aij -= aik @ akj


@register_kernel
class LuWavefrontKernel(Kernel):
    """Kernel ``lu_wavefront`` with variants seq / omp_tiled."""

    name = "lu_wavefront"
    default_domain = "wavefront"

    def init(self, ctx) -> None:
        rng = ctx.rng
        n = ctx.dim
        mat = rng.standard_normal((n, n))
        # strict diagonal dominance: unpivoted elimination stays stable
        mat[np.arange(n), np.arange(n)] = np.abs(mat).sum(axis=1) + 1.0
        ctx.data["mat"] = mat
        ctx.data["mat0"] = mat.copy()

    def refresh_img(self, ctx) -> None:
        mat = ctx.data.get("mat")
        if mat is None:
            return
        mag = np.log1p(np.abs(mat))
        top = float(mag.max()) or 1.0
        v = (255.0 * mag / top).astype(np.uint32)
        ctx.img.cur[:] = (v << 24) | (v << 16) | (v << 8) | np.uint32(0xFF)

    def _reset(self, ctx) -> None:
        ctx.data["mat"][:] = ctx.data["mat0"]

    def do_block(self, ctx, task: WaveTask) -> float:
        """One block operation; returns its flop count as work units.

        The heterogeneous costs (cubic diag, quadratic panels, gemm
        trail) are what give the wavefront its characteristic Gantt
        shape — waves thin out as the trailing matrix shrinks.
        """
        mat = ctx.data["mat"]
        dom = ctx.domain
        k = task.step
        kx, ky, kw, kh = dom.block_rect(k, k)
        x, y, w, h = task.x, task.y, task.w, task.h
        blk = mat[y : y + h, x : x + w]
        if task.op == "diag":
            ctx.declare_access(
                reads=[("mat", x, y, w, h)], writes=[("mat", x, y, w, h)]
            )
            lu_diag(blk)
            return (h * h * h) / 3.0
        diag = mat[ky : ky + kh, kx : kx + kw]
        if task.op == "row":
            ctx.declare_access(
                reads=[("mat", kx, ky, kw, kh), ("mat", x, y, w, h)],
                writes=[("mat", x, y, w, h)],
            )
            trsm_row(diag, blk)
            return float(h * h * w)
        if task.op == "col":
            ctx.declare_access(
                reads=[("mat", kx, ky, kw, kh), ("mat", x, y, w, h)],
                writes=[("mat", x, y, w, h)],
            )
            trsm_col(diag, blk)
            return float(h * w * w)
        # trail: A_ij -= A_ik @ A_kj
        ix, iy, iw, ih = dom.block_rect(task.row, k)
        jx, jy, jw, jh = dom.block_rect(k, task.col)
        ctx.declare_access(
            reads=[
                ("mat", ix, iy, iw, ih),
                ("mat", jx, jy, jw, jh),
                ("mat", x, y, w, h),
            ],
            writes=[("mat", x, y, w, h)],
        )
        gemm_trail(mat[iy : iy + ih, ix : ix + iw], mat[jy : jy + jh, jx : jx + jw], blk)
        return float(2 * h * w * iw)

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.run_on_master(lambda: self._reset(ctx))
            ctx.sequential_for(ctx.body(self.do_block))
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """Worksharing over the wavefront domain: ``parallel_for`` sees
        the dependency edges and schedules the region as a policy-aware
        DAG (see :func:`repro.omp.parallel._dag_for`)."""
        for _ in ctx.iterations(nb_iter):
            ctx.run_on_master(lambda: self._reset(ctx))
            ctx.parallel_for(ctx.body(self.do_block))
        return 0

    def finalize(self, ctx) -> None:
        # cheap internal consistency check: L @ U must reconstruct the
        # original matrix (dominance keeps the residual tiny)
        mat = ctx.data.get("mat")
        if mat is None or ctx.dim > 512:
            return
        lower = np.tril(mat, -1) + np.eye(ctx.dim)
        upper = np.triu(mat)
        residual = np.abs(lower @ upper - ctx.data["mat0"]).max()
        scale = np.abs(ctx.data["mat0"]).max()
        if residual > 1e-8 * max(scale, 1.0):
            raise AssertionError(
                f"LU factorization residual {residual:.3e} too large"
            )
