"""The Mandelbrot kernel (paper §II-A, §III-A).

The flagship EASYPAP assignment: trivially parallel, heavily imbalanced
— pixels inside the set cost ``max_iter`` escape-loop iterations while
far-away pixels escape immediately, so static tile distribution starves
some threads (Fig. 3) and dynamic policies shine (Figs. 4, 6, 8).

The per-tile *work* is the exact number of escape-loop iterations
executed — deterministic, so simulated timelines are reproducible
bit-for-bit across machines.

Each animation iteration applies ``zoom()``, slightly shrinking the
viewport around a fixed point, exactly like the original kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile

__all__ = ["MandelKernel", "mandel_counts", "mandel_counts_frame", "DEFAULT_MAX_ITER"]

DEFAULT_MAX_ITER = 256

# Initial viewport (covers the whole set, with the heavy region off-center
# so static distributions are visibly imbalanced, as in paper Fig. 3).
LEFT, RIGHT = -2.5, 1.5
TOP, BOTTOM = 1.5, -2.5  # heavy black area towards the bottom of the image

# Zoom target: a classic deep-zoom point on the set's boundary.
ZOOM_X, ZOOM_Y = -0.743643887037151, 0.13182590420533
ZOOM_FACTOR = 0.96


def mandel_counts(
    cr: np.ndarray,
    ci: np.ndarray,
    max_iter: int,
    *,
    julia_c: tuple[float, float] | None = None,
) -> tuple[np.ndarray, float]:
    """Escape-iteration counts for a grid of complex points.

    Returns ``(counts, work)`` where ``counts[i, j]`` is the iteration
    at which the point escaped (``max_iter`` if it never did) and
    ``work`` is the total number of inner-loop iterations executed —
    the deterministic cost the simulator charges.

    With ``julia_c`` set, iterates the Julia dynamics instead: z starts
    at the pixel's coordinates and c is the fixed parameter.
    """
    shape = np.broadcast_shapes(cr.shape, ci.shape)
    if julia_c is not None:
        zr = np.broadcast_to(cr, shape).astype(np.float64).copy()
        zi = np.broadcast_to(ci, shape).astype(np.float64).copy()
        cr = np.float64(julia_c[0])
        ci = np.float64(julia_c[1])
    else:
        zr = np.zeros(shape)
        zi = np.zeros(shape)
    counts = np.full(shape, max_iter, dtype=np.int32)
    active = np.ones(shape, dtype=bool)
    work = 0.0
    # dead lanes keep being updated (and may overflow to inf/nan) but are
    # never read again and cost nothing in the work model
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(max_iter):
            nactive = int(active.sum())
            if nactive == 0:
                break
            work += nactive
            zr2 = zr * zr
            zi2 = zi * zi
            escaped = active & (zr2 + zi2 > 4.0)
            counts[escaped] = it
            active &= ~escaped
            zi = 2.0 * zr * zi + ci
            zr = zr2 - zi2 + cr
    return counts, work


def _interior_mask(cr: np.ndarray, ci: np.ndarray) -> np.ndarray:
    """Exact membership test for the main cardioid and the period-2 bulb.

    Points inside either region are mathematically guaranteed never to
    escape: the orbit converges to an attracting fixed point (resp.
    2-cycle) whose basin contains the orbit, and the contraction damps
    float64 rounding noise, so the iterated loop would also run all
    ``max_iter`` iterations and leave ``counts`` at ``max_iter``.  Both
    inequalities are strict, so boundary pixels (neutral dynamics) fall
    through to the honest iteration.
    """
    x = cr - 0.25
    y2 = ci * ci
    q = x * x + y2
    cardioid = q * (q + x) < 0.25 * y2
    bulb = (cr + 1.0) * (cr + 1.0) + y2 < 0.0625
    return cardioid | bulb


def mandel_counts_frame(
    cr: np.ndarray,
    ci: np.ndarray,
    max_iter: int,
    *,
    julia_c: tuple[float, float] | None = None,
) -> np.ndarray:
    """Escape counts for a whole frame, optimized for perf mode.

    Bit-identical to :func:`mandel_counts` (the differential suite and
    ``tests/test_fastpath_diff.py`` enforce this), but structured for
    throughput on large grids:

    * interior pixels (main cardioid / period-2 bulb) are settled to
      ``max_iter`` without iterating — see :func:`_interior_mask`;
    * lanes whose float64 state exactly repeats an earlier state (Brent
      cycle detection) are deterministically periodic, hence can never
      escape — they are settled to ``max_iter`` without running out the
      clock;
    * escaped lanes are physically compacted away, so the loop only
      touches live pixels (the reference loop masks but still updates
      every lane);
    * elementwise steps reuse preallocated buffers (``out=``), in an
      order that reproduces the reference arithmetic bit for bit
      (``2.0 * zr`` is an exact power-of-two scaling).

    Returns ``counts`` only; per-pixel work is ``counts + (counts <
    max_iter)`` — escape at iteration ``c`` means ``c + 1`` loop trips.
    """
    shape = np.broadcast_shapes(cr.shape, ci.shape)
    n = int(np.prod(shape))
    counts = np.full(n, max_iter, dtype=np.int32)
    if julia_c is not None:
        zr = np.broadcast_to(cr, shape).astype(np.float64).reshape(-1).copy()
        zi = np.broadcast_to(ci, shape).astype(np.float64).reshape(-1).copy()
        crv: np.ndarray | np.float64 = np.float64(julia_c[0])
        civ: np.ndarray | np.float64 = np.float64(julia_c[1])
        idx = np.arange(n, dtype=np.intp)
    else:
        # _interior_mask broadcasts the (1, w) row against the (h, 1)
        # column directly; exterior lane coordinates are then gathered
        # from the 1-D axes without materializing the full grids
        idx = np.nonzero(~_interior_mask(cr, ci).reshape(-1))[0]
        crf = np.asarray(cr, dtype=np.float64).reshape(-1)
        cif = np.asarray(ci, dtype=np.float64).reshape(-1)
        w = shape[1] if len(shape) == 2 else 1
        if len(shape) == 2 and cr.shape == (1, w) and ci.shape == (shape[0], 1):
            crv = crf[idx % w]
            civ = cif[idx // w]
        else:
            crv = np.ascontiguousarray(
                np.broadcast_to(cr, shape), dtype=np.float64
            ).reshape(-1)[idx]
            civ = np.ascontiguousarray(
                np.broadcast_to(ci, shape), dtype=np.float64
            ).reshape(-1)[idx]
        zr = np.zeros(idx.size)
        zi = np.zeros(idx.size)
    # Cache blocking: iterating a block of lanes to completion keeps its
    # whole working set (~75 bytes/lane across state + scratch arrays)
    # L2-resident across all max_iter passes, instead of streaming
    # multi-megabyte arrays through DRAM once per elementwise op.  Lanes
    # are independent, so the split cannot change any count; blocks over
    # quick-escape regions also retire after a handful of iterations.
    for start in range(0, idx.size, _FRAME_BLOCK):
        sl = slice(start, start + _FRAME_BLOCK)
        _iterate_lanes(
            zr[sl], zi[sl],
            crv if np.isscalar(crv) or crv.ndim == 0 else crv[sl],
            civ if np.isscalar(civ) or civ.ndim == 0 else civ[sl],
            idx[sl], counts, max_iter,
        )
    return counts.reshape(shape)


#: lanes per block — large enough that numpy per-call overhead is
#: negligible, small enough that quick-escape regions retire early
#: (measured optimum on 512^2 frames; the exact value is not critical)
_FRAME_BLOCK = 1 << 16


def _iterate_lanes(zr, zi, crv, civ, idx, counts, max_iter):
    """Run the escape loop for one block of lanes, writing ``counts[idx]``.

    ``crv``/``civ`` may be scalars (julia mode) or per-lane arrays.

    Retired lanes are *NaN-poisoned* instead of masked: writing NaN into
    ``zr2`` makes the next update drive ``zr`` (and every later ``zr2``,
    ``|z|^2`` and Brent comparison) to NaN, and NaN compares False, so
    a retired lane can never re-trigger the escape or cycle tests.  That
    removes the per-iteration ``active``-mask traffic entirely; live
    lanes are recovered exactly at compaction time via ``isnan`` (live
    orbits are bounded by the escape test, hence always finite).
    """
    m = idx.size
    zr2, zi2, tmp = np.empty(m), np.empty(m), np.empty(m)
    esc, cyc = np.empty(m, dtype=bool), np.empty(m, dtype=bool)
    # Brent: checkpoint orbit state at powers of two; an exact (zr, zi)
    # match against the checkpoint proves the float orbit is periodic
    sr, si = zr.copy(), zi.copy()
    next_ckpt = 1
    nactive = m
    per_lane_c = not (np.isscalar(crv) or crv.ndim == 0)
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(max_iter):
            if nactive == 0:
                break
            if nactive * 2 < idx.size:
                live = ~np.isnan(zr)
                zr, zi, sr, si, idx = zr[live], zi[live], sr[live], si[live], idx[live]
                if per_lane_c:
                    crv, civ = crv[live], civ[live]
                m = nactive
                zr2, zi2, tmp = np.empty(m), np.empty(m), np.empty(m)
                esc, cyc = np.empty(m, dtype=bool), np.empty(m, dtype=bool)
            np.multiply(zr, zr, out=zr2)
            np.multiply(zi, zi, out=zi2)
            np.add(zr2, zi2, out=tmp)
            np.greater(tmp, 4.0, out=esc)  # NaN > 4.0 is False: dead stay dead
            nesc = int(np.count_nonzero(esc))
            if nesc:
                counts[idx[esc]] = it
                zr2[esc] = np.nan  # poison: the update below spreads it to zr
                nactive -= nesc
            np.multiply(zr, 2.0, out=tmp)
            np.multiply(tmp, zi, out=zi)
            np.add(zi, civ, out=zi)
            np.subtract(zr2, zi2, out=zr)
            np.add(zr, crv, out=zr)
            if it >= 16 and (it & 3) == 0:
                # orbits need a few iterations to settle onto their
                # attracting cycle, and a *delayed* detection is free of
                # consequence (the lane just iterates longer toward the
                # same max_iter count) — so test every 4th iteration only
                np.equal(zr, sr, out=cyc)
                np.equal(zi, si, out=esc)
                cyc &= esc
                ncyc = int(np.count_nonzero(cyc))
                if ncyc:  # periodic lanes keep counts == max_iter
                    zr[cyc] = np.nan
                    nactive -= ncyc
            if it + 1 == next_ckpt:
                np.copyto(sr, zr)
                np.copyto(si, zi)
                next_ckpt *= 2


def _ramp(counts: np.ndarray, max_iter: int) -> np.ndarray:
    """Map escape counts to packed RGBA (set members are black)."""
    t = counts.astype(np.float64) / max_iter
    inside = counts >= max_iter
    r = np.where(inside, 0, 255.0 * np.abs(np.sin(3.0 + 7.0 * t)))
    g = np.where(inside, 0, 255.0 * np.abs(np.sin(1.0 + 11.0 * t)))
    b = np.where(inside, 0, 255.0 * np.abs(np.sin(4.0 + 5.0 * t)))
    return (
        (r.astype(np.uint32) << 24)
        | (g.astype(np.uint32) << 16)
        | (b.astype(np.uint32) << 8)
        | np.uint32(0xFF)
    )


@register_kernel
class MandelKernel(Kernel):
    """Kernel ``mandel`` with variants seq / tiled / omp / omp_tiled."""

    name = "mandel"

    def init(self, ctx) -> None:
        """Parse ``--arg``: an integer sets max_iter; the form
        ``julia[:cr:ci[:max_iter]]`` switches to the Julia set of c
        (default c = -0.8 + 0.156i, a classic dendrite)."""
        max_iter = DEFAULT_MAX_ITER
        julia_c = None
        arg = (ctx.arg or "").strip()
        if arg.lower().startswith("julia"):
            parts = arg.split(":")
            cr_, ci_ = -0.8, 0.156
            if len(parts) >= 3:
                cr_, ci_ = float(parts[1]), float(parts[2])
            if len(parts) >= 4:
                max_iter = int(parts[3])
            julia_c = (cr_, ci_)
        elif arg:
            try:
                max_iter = int(arg)
            except ValueError:
                pass
        ctx.data["max_iter"] = max_iter
        ctx.data["julia_c"] = julia_c
        if julia_c is not None:
            # Julia sets live in the unit-ish disk; center the view
            ctx.data["view"] = [-1.8, 1.8, 1.8, -1.8]
        else:
            ctx.data["view"] = [LEFT, RIGHT, TOP, BOTTOM]

    # -- coordinate helpers ----------------------------------------------------
    @staticmethod
    def _coords(ctx, x: int, y: int, w: int, h: int) -> tuple[np.ndarray, np.ndarray]:
        left, right, top, bottom = ctx.data["view"]
        dim = ctx.dim
        xstep = (right - left) / dim
        ystep = (top - bottom) / dim
        cr = left + (x + np.arange(w)) * xstep
        ci = top - (y + np.arange(h)) * ystep
        return cr[np.newaxis, :], ci[:, np.newaxis]

    def _rect_counts(self, ctx, x: int, y: int, w: int, h: int):
        """Escape counts + work for a rectangle, through the compiled
        tile core when the jit tier resolved, else the numpy reference.
        Both paths are bit-identical (per-pixel work is an integer sum
        below 2**53, so the accumulation order cannot matter)."""
        cr, ci = self._coords(ctx, x, y, w, h)
        julia_c = ctx.data.get("julia_c")
        if ctx.jit_core is not None:
            counts = np.empty((h, w), dtype=np.int32)
            if julia_c is not None:
                work = ctx.jit_core(
                    cr.ravel(), ci.ravel(), float(julia_c[0]), float(julia_c[1]),
                    True, ctx.data["max_iter"], counts,
                )
            else:
                work = ctx.jit_core(
                    cr.ravel(), ci.ravel(), 0.0, 0.0,
                    False, ctx.data["max_iter"], counts,
                )
            return counts, work
        return mandel_counts(cr, ci, ctx.data["max_iter"], julia_c=julia_c)

    def do_tile(self, ctx, tile: Tile) -> float:
        """Compute one tile; returns its work (escape iterations executed)."""
        x, y, w, h = tile.as_rect()
        counts, work = self._rect_counts(ctx, x, y, w, h)
        ctx.img.cur_view(y, x, h, w, mode="w")[:] = _ramp(counts, ctx.data["max_iter"])
        return work

    # -- whole-frame fast path (perf mode) -----------------------------------
    def _frame_contrib(self, ctx) -> np.ndarray:
        """Compute the full frame in one batch; return each pixel's
        escape-loop iteration count (its contribution to *work*).

        Pixel coordinates are ``left + j * xstep`` whether computed per
        tile or whole-frame (the integer offset addition is exact), and
        every escape-loop operation is elementwise — so counts, image
        and per-pixel work are bit-identical to the tiled path.
        A pixel that escapes at iteration ``c`` was active for ``c + 1``
        loop iterations; a pixel that never escapes for ``max_iter``.
        """
        max_iter = ctx.data["max_iter"]
        cr, ci = self._coords(ctx, 0, 0, ctx.dim, ctx.dim_y)
        counts = mandel_counts_frame(cr, ci, max_iter, julia_c=ctx.data.get("julia_c"))
        if max_iter <= 1 << 16:
            # counts take at most max_iter + 1 distinct values: render the
            # color ramp once per value and gather — _ramp itself builds
            # the table, so every pixel gets the exact per-tile color
            ramp = _ramp(np.arange(max_iter + 1), max_iter)[counts]
        else:
            ramp = _ramp(counts, max_iter)
        ctx.img.cur_view(0, 0, ctx.dim_y, ctx.dim, mode="w")[:] = ramp
        return counts.astype(np.int64) + (counts < max_iter)

    def compute_frame(self, ctx, tiles) -> np.ndarray | None:
        """Whole-frame batch execution over tiles (perf-mode fast path)."""
        if len(tiles) != len(ctx.grid):
            return None
        per_tile = ctx.grid.tile_reduce(self._frame_contrib(ctx))
        return per_tile.ravel()[ctx.grid.tile_index_array(tiles)].astype(np.float64)

    def compute_frame_rows(self, ctx, rows) -> np.ndarray | None:
        """Whole-frame batch execution over pixel rows (seq/omp variants)."""
        if len(rows) != ctx.dim_y:
            return None
        per_row = self._frame_contrib(ctx).sum(axis=1)
        return per_row[np.asarray(rows, dtype=np.intp)].astype(np.float64)

    def zoom(self, ctx) -> None:
        """Shrink the viewport around the zoom point (one animation step)."""
        left, right, top, bottom = ctx.data["view"]
        zx, zy = (0.0, 0.0) if ctx.data.get("julia_c") else (ZOOM_X, ZOOM_Y)
        f = ZOOM_FACTOR
        ctx.data["view"] = [
            zx + (left - zx) * f,
            zx + (right - zx) * f,
            zy + (top - zy) * f,
            zy + (bottom - zy) * f,
        ]

    # -- variants ---------------------------------------------------------------
    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        """Whole-image scan, one virtual task per pixel row (Fig. 1)."""
        rows = list(range(ctx.dim_y))
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(
                lambda row: self._do_row(ctx, row), rows, kind="row",
                frame=self.compute_frame_rows,
            )
            self.zoom(ctx)
        return 0

    def _do_row(self, ctx, row: int) -> float:
        counts, work = self._rect_counts(ctx, 0, row, ctx.dim, 1)
        ctx.img.cur_view(row, 0, 1, ctx.dim, mode="w")[:] = _ramp(
            counts, ctx.data["max_iter"]
        )
        return work

    @variant("tiled")
    def compute_tiled(self, ctx, nb_iter: int) -> int:
        """Sequential, tile by tile (the instrumented single-thread code)."""
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile(ctx, t), frame=self.compute_frame)
            self.zoom(ctx)
        return 0

    @variant("omp")
    def compute_omp(self, ctx, nb_iter: int) -> int:
        """``#pragma omp parallel for`` over image lines (§II-A)."""
        rows = list(range(ctx.dim_y))
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(
                ctx.body(self._do_row), rows, kind="row",
                frame=self.compute_frame_rows,
            )
            self.zoom(ctx)
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """``collapse(2)`` tile loop under the configured schedule (Fig. 2)."""
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile), frame=self.compute_frame)
            ctx.run_on_master(lambda: self.zoom(ctx))
        return 0

    @variant("ocl")
    def compute_ocl(self, ctx, nb_iter: int) -> int:
        """OpenCL-style execution on the SIMT device simulator: one
        work-group per tile, lockstep lanes — with profiling events,
        the extension the paper lists as future work (§V)."""
        from repro.gpu.device import DeviceSpec, GpuDevice

        if ctx.dim % ctx.grid.tile_w or ctx.dim % ctx.grid.tile_h:
            raise ValueError("ocl variant needs tile sizes dividing the image")
        device = GpuDevice(DeviceSpec(num_cus=ctx.nthreads), model=ctx.model)
        max_iter = ctx.data["max_iter"]
        for _ in ctx.iterations(nb_iter):
            cr, ci = self._coords(ctx, 0, 0, ctx.dim, ctx.dim)
            counts, _ = mandel_counts(
                cr, ci, max_iter, julia_c=ctx.data.get("julia_c")
            )
            ctx.img.cur[:] = _ramp(counts, max_iter)
            launch = device.launch(
                counts.astype(np.float64),
                group_w=ctx.grid.tile_w,
                group_h=ctx.grid.tile_h,
                items=list(ctx.grid),
                start_time=ctx.vclock,
                meta={"iteration": ctx.iteration, "kind": "ocl"},
                transfer_out_bytes=ctx.dim * ctx.dim * 4,  # the frame back
            )
            ctx.data["transfer_fraction"] = launch.transfer_fraction
            ctx.data["divergence"] = launch.divergence_penalty
            ctx.bus.counter("gpu_lane_work", launch.total_lane_work)
            ctx.bus.counter("gpu_lockstep_work", launch.total_lockstep_work)
            ctx.vclock = max(launch.makespan, ctx.vclock) + ctx.model.fork_join_overhead
            ctx.record_timeline(launch.timeline)
            self.zoom(ctx)
        return 0
