"""The Mandelbrot kernel (paper §II-A, §III-A).

The flagship EASYPAP assignment: trivially parallel, heavily imbalanced
— pixels inside the set cost ``max_iter`` escape-loop iterations while
far-away pixels escape immediately, so static tile distribution starves
some threads (Fig. 3) and dynamic policies shine (Figs. 4, 6, 8).

The per-tile *work* is the exact number of escape-loop iterations
executed — deterministic, so simulated timelines are reproducible
bit-for-bit across machines.

Each animation iteration applies ``zoom()``, slightly shrinking the
viewport around a fixed point, exactly like the original kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile

__all__ = ["MandelKernel", "mandel_counts", "DEFAULT_MAX_ITER"]

DEFAULT_MAX_ITER = 256

# Initial viewport (covers the whole set, with the heavy region off-center
# so static distributions are visibly imbalanced, as in paper Fig. 3).
LEFT, RIGHT = -2.5, 1.5
TOP, BOTTOM = 1.5, -2.5  # heavy black area towards the bottom of the image

# Zoom target: a classic deep-zoom point on the set's boundary.
ZOOM_X, ZOOM_Y = -0.743643887037151, 0.13182590420533
ZOOM_FACTOR = 0.96


def mandel_counts(
    cr: np.ndarray,
    ci: np.ndarray,
    max_iter: int,
    *,
    julia_c: tuple[float, float] | None = None,
) -> tuple[np.ndarray, float]:
    """Escape-iteration counts for a grid of complex points.

    Returns ``(counts, work)`` where ``counts[i, j]`` is the iteration
    at which the point escaped (``max_iter`` if it never did) and
    ``work`` is the total number of inner-loop iterations executed —
    the deterministic cost the simulator charges.

    With ``julia_c`` set, iterates the Julia dynamics instead: z starts
    at the pixel's coordinates and c is the fixed parameter.
    """
    shape = np.broadcast_shapes(cr.shape, ci.shape)
    if julia_c is not None:
        zr = np.broadcast_to(cr, shape).astype(np.float64).copy()
        zi = np.broadcast_to(ci, shape).astype(np.float64).copy()
        cr = np.float64(julia_c[0])
        ci = np.float64(julia_c[1])
    else:
        zr = np.zeros(shape)
        zi = np.zeros(shape)
    counts = np.full(shape, max_iter, dtype=np.int32)
    active = np.ones(shape, dtype=bool)
    work = 0.0
    # dead lanes keep being updated (and may overflow to inf/nan) but are
    # never read again and cost nothing in the work model
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(max_iter):
            nactive = int(active.sum())
            if nactive == 0:
                break
            work += nactive
            zr2 = zr * zr
            zi2 = zi * zi
            escaped = active & (zr2 + zi2 > 4.0)
            counts[escaped] = it
            active &= ~escaped
            zi = 2.0 * zr * zi + ci
            zr = zr2 - zi2 + cr
    return counts, work


def _ramp(counts: np.ndarray, max_iter: int) -> np.ndarray:
    """Map escape counts to packed RGBA (set members are black)."""
    t = counts.astype(np.float64) / max_iter
    inside = counts >= max_iter
    r = np.where(inside, 0, 255.0 * np.abs(np.sin(3.0 + 7.0 * t)))
    g = np.where(inside, 0, 255.0 * np.abs(np.sin(1.0 + 11.0 * t)))
    b = np.where(inside, 0, 255.0 * np.abs(np.sin(4.0 + 5.0 * t)))
    return (
        (r.astype(np.uint32) << 24)
        | (g.astype(np.uint32) << 16)
        | (b.astype(np.uint32) << 8)
        | np.uint32(0xFF)
    )


@register_kernel
class MandelKernel(Kernel):
    """Kernel ``mandel`` with variants seq / tiled / omp / omp_tiled."""

    name = "mandel"

    def init(self, ctx) -> None:
        """Parse ``--arg``: an integer sets max_iter; the form
        ``julia[:cr:ci[:max_iter]]`` switches to the Julia set of c
        (default c = -0.8 + 0.156i, a classic dendrite)."""
        max_iter = DEFAULT_MAX_ITER
        julia_c = None
        arg = (ctx.arg or "").strip()
        if arg.lower().startswith("julia"):
            parts = arg.split(":")
            cr_, ci_ = -0.8, 0.156
            if len(parts) >= 3:
                cr_, ci_ = float(parts[1]), float(parts[2])
            if len(parts) >= 4:
                max_iter = int(parts[3])
            julia_c = (cr_, ci_)
        elif arg:
            try:
                max_iter = int(arg)
            except ValueError:
                pass
        ctx.data["max_iter"] = max_iter
        ctx.data["julia_c"] = julia_c
        if julia_c is not None:
            # Julia sets live in the unit-ish disk; center the view
            ctx.data["view"] = [-1.8, 1.8, 1.8, -1.8]
        else:
            ctx.data["view"] = [LEFT, RIGHT, TOP, BOTTOM]

    # -- coordinate helpers ----------------------------------------------------
    @staticmethod
    def _coords(ctx, x: int, y: int, w: int, h: int) -> tuple[np.ndarray, np.ndarray]:
        left, right, top, bottom = ctx.data["view"]
        dim = ctx.dim
        xstep = (right - left) / dim
        ystep = (top - bottom) / dim
        cr = left + (x + np.arange(w)) * xstep
        ci = top - (y + np.arange(h)) * ystep
        return cr[np.newaxis, :], ci[:, np.newaxis]

    def do_tile(self, ctx, tile: Tile) -> float:
        """Compute one tile; returns its work (escape iterations executed)."""
        x, y, w, h = tile.as_rect()
        cr, ci = self._coords(ctx, x, y, w, h)
        counts, work = mandel_counts(
            cr, ci, ctx.data["max_iter"], julia_c=ctx.data.get("julia_c")
        )
        ctx.img.cur_view(y, x, h, w, mode="w")[:] = _ramp(counts, ctx.data["max_iter"])
        return work

    def zoom(self, ctx) -> None:
        """Shrink the viewport around the zoom point (one animation step)."""
        left, right, top, bottom = ctx.data["view"]
        zx, zy = (0.0, 0.0) if ctx.data.get("julia_c") else (ZOOM_X, ZOOM_Y)
        f = ZOOM_FACTOR
        ctx.data["view"] = [
            zx + (left - zx) * f,
            zx + (right - zx) * f,
            zy + (top - zy) * f,
            zy + (bottom - zy) * f,
        ]

    # -- variants ---------------------------------------------------------------
    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        """Whole-image scan, one virtual task per pixel row (Fig. 1)."""
        rows = list(range(ctx.dim))
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(
                lambda row: self._do_row(ctx, row), rows, kind="row"
            )
            self.zoom(ctx)
        return 0

    def _do_row(self, ctx, row: int) -> float:
        cr, ci = self._coords(ctx, 0, row, ctx.dim, 1)
        counts, work = mandel_counts(
            cr, ci, ctx.data["max_iter"], julia_c=ctx.data.get("julia_c")
        )
        ctx.img.cur_view(row, 0, 1, ctx.dim, mode="w")[:] = _ramp(
            counts, ctx.data["max_iter"]
        )
        return work

    @variant("tiled")
    def compute_tiled(self, ctx, nb_iter: int) -> int:
        """Sequential, tile by tile (the instrumented single-thread code)."""
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            self.zoom(ctx)
        return 0

    @variant("omp")
    def compute_omp(self, ctx, nb_iter: int) -> int:
        """``#pragma omp parallel for`` over image lines (§II-A)."""
        rows = list(range(ctx.dim))
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(lambda row: self._do_row(ctx, row), rows, kind="row")
            self.zoom(ctx)
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """``collapse(2)`` tile loop under the configured schedule (Fig. 2)."""
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(lambda t: self.do_tile(ctx, t))
            ctx.run_on_master(lambda: self.zoom(ctx))
        return 0

    @variant("ocl")
    def compute_ocl(self, ctx, nb_iter: int) -> int:
        """OpenCL-style execution on the SIMT device simulator: one
        work-group per tile, lockstep lanes — with profiling events,
        the extension the paper lists as future work (§V)."""
        from repro.gpu.device import DeviceSpec, GpuDevice

        if ctx.dim % ctx.grid.tile_w or ctx.dim % ctx.grid.tile_h:
            raise ValueError("ocl variant needs tile sizes dividing the image")
        device = GpuDevice(DeviceSpec(num_cus=ctx.nthreads), model=ctx.model)
        max_iter = ctx.data["max_iter"]
        for _ in ctx.iterations(nb_iter):
            cr, ci = self._coords(ctx, 0, 0, ctx.dim, ctx.dim)
            counts, _ = mandel_counts(
                cr, ci, max_iter, julia_c=ctx.data.get("julia_c")
            )
            ctx.img.cur[:] = _ramp(counts, max_iter)
            launch = device.launch(
                counts.astype(np.float64),
                group_w=ctx.grid.tile_w,
                group_h=ctx.grid.tile_h,
                items=list(ctx.grid),
                start_time=ctx.vclock,
                meta={"iteration": ctx.iteration, "kind": "ocl"},
                transfer_out_bytes=ctx.dim * ctx.dim * 4,  # the frame back
            )
            ctx.data["transfer_fraction"] = launch.transfer_fraction
            ctx.data["divergence"] = launch.divergence_penalty
            ctx.vclock = max(launch.makespan, ctx.vclock) + ctx.model.fork_join_overhead
            ctx.record_timeline(launch.timeline)
            self.zoom(ctx)
        return 0
