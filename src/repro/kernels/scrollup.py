"""The scrollup kernel: cyclically shift the image up each iteration.

A pure data-movement kernel (EASYPAP ships one too): zero arithmetic,
all bandwidth.  Useful to contrast with compute-bound kernels in the
cache-counter extension, and to show that some loops are so cheap the
parallel version *loses* to sequential at small sizes (fork/join and
dispatch overheads dominate) — a classic early lesson.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import synthetic_picture

__all__ = ["ScrollupKernel"]

PIXEL_WORK = 1.0  # one copy per pixel


@register_kernel
class ScrollupKernel(Kernel):
    """Kernel ``scrollup`` with variants seq / omp_tiled."""

    name = "scrollup"

    def draw(self, ctx) -> None:
        ctx.img.load(synthetic_picture(ctx.dim, ctx.rng))

    def do_tile(self, ctx, tile: Tile) -> float:
        x, y, w, h = tile.as_rect()
        dim = ctx.dim
        # source rows wrap at the bottom edge: declare the footprint in
        # (up to) two unwrapped spans
        src0 = y + 1
        reads = [("cur", x, src0, w, min(h, dim - src0))]
        if src0 + h > dim:
            reads.append(("cur", x, 0, w, src0 + h - dim))
        ctx.declare_access(reads=reads, writes=[("next", x, y, w, h)])
        src_rows = (np.arange(y, y + h) + 1) % dim
        ctx.img.nxt[y : y + h, x : x + w] = ctx.img.cur[src_rows, x : x + w]
        return tile.area * PIXEL_WORK

    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            ctx.swap_images()
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile))
            ctx.run_on_master(ctx.swap_images)
        return 0
