"""Shared kernel helpers: channel math, halos, synthetic pictures.

EASYPAP ships with image assets; being self-contained, we synthesize
deterministic pictures instead (:func:`synthetic_picture`): the blur and
pixelize assignments only need "a picture with structure".

Backend-portable tile bodies
----------------------------
Kernels should pass worksharing bodies as ``ctx.body(self.do_tile)``
rather than ``lambda t: self.do_tile(ctx, t)``.  Both behave
identically on the ``sim`` and ``threads`` backends, but only the
former can cross the process boundary of ``backend="procs"`` (workers
re-resolve the kernel method by name; closures cannot be pickled).
Auxiliary NumPy arrays kept in ``ctx.data`` are automatically mirrored
into shared memory under ``procs`` — plain in-place writes from tile
bodies (``ctx.data["changes"][row, col] = True``) are visible to the
master; *scalar* assignments made inside tile bodies are merged back
after the region and must therefore be idempotent (convergence flags),
or better, expressed as a ``ctx.parallel_reduce``.
"""

from __future__ import annotations

import numpy as np


__all__ = [
    "split_channels",
    "merge_channels",
    "clipped_halo",
    "halo_region",
    "synthetic_picture",
    "tile_works",
    "SCALAR_PIXEL_WORK",
    "VECTOR_PIXEL_WORK",
]

#: work units charged per pixel computed through a scalar, branchy code
#: path (the student's conditional-laden stencil loop).
SCALAR_PIXEL_WORK = 40.0

#: work units per pixel through a branch-free, auto-vectorized path —
#: the x8 AVX2 factor the paper measures on inner blur tiles (§III-B).
VECTOR_PIXEL_WORK = SCALAR_PIXEL_WORK / 8.0


def tile_works(tiles, per_pixel_work: float) -> np.ndarray:
    """Work vector of area-proportional tiles (whole-frame fast path).

    ``tile.area * per_pixel_work`` for each tile, as a float64 array —
    bit-identical to the per-tile bodies' returns (int→float conversion
    and the product are both exact IEEE operations).
    """
    areas = np.fromiter((t.area for t in tiles), dtype=np.float64, count=len(tiles))
    return areas * per_pixel_work


def split_channels(pixels: np.ndarray) -> np.ndarray:
    """``(h, w)`` uint32 -> ``(4, h, w)`` float64 channel planes (r, g, b, a)."""
    return np.stack(
        [
            (pixels >> 24 & 0xFF),
            (pixels >> 16 & 0xFF),
            (pixels >> 8 & 0xFF),
            (pixels & 0xFF),
        ]
    ).astype(np.float64)


def merge_channels(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_channels` (values are clipped to [0, 255])."""
    p = np.clip(np.rint(planes), 0, 255).astype(np.uint32)
    return (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3]


def clipped_halo(
    img: np.ndarray, x: int, y: int, w: int, h: int, halo: int = 1
) -> tuple[np.ndarray, int, int]:
    """A view of the tile plus up to ``halo`` pixels around it, clipped
    to the image; returns ``(region, oy, ox)`` where (oy, ox) locate the
    tile's origin inside the region."""
    dim_y, dim_x = img.shape
    y0 = max(y - halo, 0)
    x0 = max(x - halo, 0)
    y1 = min(y + h + halo, dim_y)
    x1 = min(x + w + halo, dim_x)
    return img[y0:y1, x0:x1], y - y0, x - x0


def halo_region(
    buf: str, x: int, y: int, w: int, h: int, dim: int, halo: int = 1
) -> tuple[str, int, int, int, int]:
    """The footprint region of a tile plus its halo, clipped to the image.

    The declaration counterpart of :func:`clipped_halo`, for stencil
    kernels that read raw arrays and describe their reads through
    ``ctx.declare_access`` (see :mod:`repro.core.access`).
    """
    x0, y0 = max(x - halo, 0), max(y - halo, 0)
    x1, y1 = min(x + w + halo, dim), min(y + h + halo, dim)
    return (buf, x0, y0, x1 - x0, y1 - y0)


def synthetic_picture(dim: int, rng: np.random.Generator) -> np.ndarray:
    """A deterministic colorful test picture (gradient + discs + noise).

    Plays the role of EASYPAP's sample images for blur/pixelize: it has
    smooth areas, hard edges and texture, so filtering is visible.
    """
    yy, xx = np.mgrid[0:dim, 0:dim]
    r = (255.0 * xx / max(dim - 1, 1)).astype(np.int64)
    g = (255.0 * yy / max(dim - 1, 1)).astype(np.int64)
    b = (128.0 + 127.0 * np.sin(2.0 * np.pi * (xx + yy) / max(dim / 4.0, 1.0))).astype(
        np.int64
    )
    # hard-edged discs of saturated colors
    for _ in range(8):
        cy, cx = rng.integers(0, dim, size=2)
        rad = int(rng.integers(max(dim // 16, 2), max(dim // 4, 3)))
        color = rng.integers(0, 256, size=3)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= rad * rad
        r[mask], g[mask], b[mask] = color
    noise = rng.integers(-10, 11, size=(dim, dim))
    r = np.clip(r + noise, 0, 255)
    g = np.clip(g + noise, 0, 255)
    b = np.clip(b + noise, 0, 255)
    return (
        (r.astype(np.uint32) << 24)
        | (g.astype(np.uint32) << 16)
        | (b.astype(np.uint32) << 8)
        | np.uint32(0xFF)
    )
