"""Picture blurring: the 2D stencil assignment (paper §III-B).

At each iteration every pixel of the next image receives the average of
the up-to-3x3 neighbourhood read from the current image; buffers swap
between iterations.

Two parallel tiled variants reproduce the Fig. 10 experiment:

* ``omp_tiled`` — the *basic* version: every tile runs the
  conditional-laden code path (per-pixel boundary tests), which does not
  vectorize.  Work model: :data:`SCALAR_PIXEL_WORK` per pixel.
* ``omp_tiled_opt`` — the optimized version: tiles that touch the image
  border keep the branchy path, *inner* tiles run the branch-free bulk
  path which auto-vectorizes (x8 in the paper on AVX2).  Work model:
  :data:`VECTOR_PIXEL_WORK` per inner-tile pixel.

Both compute bit-identical images; only their costs differ — exactly
the paper's story, where the x10 observed task speedup is "mostly
imputable to compiler auto-vectorization".

The pure-Python ``seq`` variant *is* the scalar code (loops and ifs);
it is the correctness oracle for the vectorized paths (tests compare
them on small images).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile
from repro.kernels.api import (
    SCALAR_PIXEL_WORK,
    VECTOR_PIXEL_WORK,
    halo_region,
    merge_channels,
    split_channels,
    synthetic_picture,
    tile_works,
)

__all__ = ["BlurKernel", "blur_rect_vectorized", "blur_rect_scalar"]


def blur_rect_vectorized(src: np.ndarray, dst: np.ndarray, x: int, y: int, w: int, h: int) -> None:
    """Blur the rectangle (x, y, w, h) of ``src`` into ``dst``.

    Handles image borders by averaging over the neighbours that exist
    (variable divisor), entirely with NumPy shifts — the "compiled
    bulk code" stand-in.
    """
    dim_y, dim_x = src.shape
    planes = split_channels(src)
    acc = np.zeros((4, h, w))
    cnt = np.zeros((h, w))
    for dy in (-1, 0, 1):
        sy0 = y + dy
        for dx in (-1, 0, 1):
            sx0 = x + dx
            # clip the shifted window to the image
            ty0 = max(0, -sy0)
            tx0 = max(0, -sx0)
            ty1 = h - max(0, sy0 + h - dim_y)
            tx1 = w - max(0, sx0 + w - dim_x)
            if ty0 >= ty1 or tx0 >= tx1:
                continue
            acc[:, ty0:ty1, tx0:tx1] += planes[
                :, sy0 + ty0 : sy0 + ty1, sx0 + tx0 : sx0 + tx1
            ]
            cnt[ty0:ty1, tx0:tx1] += 1.0
    dst[y : y + h, x : x + w] = merge_channels(acc / cnt)


def blur_rect_scalar(src: np.ndarray, dst: np.ndarray, x: int, y: int, w: int, h: int) -> None:
    """The student's naive per-pixel loop with boundary conditionals.

    Deliberately scalar Python — the slow, branchy code path whose real
    cost ratio against :func:`blur_rect_vectorized` is measured by the
    Fig. 10 benchmark.
    """
    dim = src.shape[0]
    for i in range(y, y + h):
        for j in range(x, x + w):
            r = g = b = a = 0
            n = 0
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    yy = i + di
                    xx = j + dj
                    if 0 <= yy < dim and 0 <= xx < dim:
                        p = int(src[yy, xx])
                        r += p >> 24 & 0xFF
                        g += p >> 16 & 0xFF
                        b += p >> 8 & 0xFF
                        a += p & 0xFF
                        n += 1
            dst[i, j] = (
                (round(r / n) << 24)
                | (round(g / n) << 16)
                | (round(b / n) << 8)
                | round(a / n)
            )


@register_kernel
class BlurKernel(Kernel):
    """Kernel ``blur`` with variants seq / tiled / omp_tiled / omp_tiled_opt."""

    name = "blur"

    def draw(self, ctx) -> None:
        ctx.img.load(synthetic_picture(ctx.dim, ctx.rng))

    # -- tile bodies --------------------------------------------------------------
    def _declare_tile_access(self, ctx, x: int, y: int, w: int, h: int) -> None:
        """Stencil footprint: reads the tile + halo of ``cur``, writes the
        tile of ``next`` (the blur helpers slice raw arrays, so the Img2D
        accessors never see these accesses)."""
        ctx.declare_access(
            reads=[halo_region("cur", x, y, w, h, ctx.dim)],
            writes=[("next", x, y, w, h)],
        )

    @staticmethod
    def _stencil(ctx):
        """The tile stencil implementation: the compiled (numba) core
        when the jit tier resolved, else the numpy reference.  Both are
        signature-compatible and bit-identical (integer channel sums,
        identical division operands, half-to-even rounding)."""
        return ctx.jit_core or blur_rect_vectorized

    def do_tile_basic(self, ctx, tile: Tile) -> float:
        """Branchy path everywhere (students' first tiled version)."""
        x, y, w, h = tile.as_rect()
        self._declare_tile_access(ctx, x, y, w, h)
        self._stencil(ctx)(ctx.img.cur, ctx.img.nxt, x, y, w, h)
        return tile.area * SCALAR_PIXEL_WORK

    def do_tile_opt(self, ctx, tile: Tile) -> float:
        """Branch-free bulk path for inner tiles, branchy for border ones."""
        x, y, w, h = tile.as_rect()
        self._declare_tile_access(ctx, x, y, w, h)
        self._stencil(ctx)(ctx.img.cur, ctx.img.nxt, x, y, w, h)
        is_border = (
            tile.row == 0
            or tile.col == 0
            or tile.row == ctx.grid.rows - 1
            or tile.col == ctx.grid.cols - 1
        )
        return tile.area * (SCALAR_PIXEL_WORK if is_border else VECTOR_PIXEL_WORK)

    def do_tile_scalar(self, ctx, tile: Tile) -> float:
        """Actually scalar Python (used by ``seq`` and the Fig. 10 bench)."""
        x, y, w, h = tile.as_rect()
        self._declare_tile_access(ctx, x, y, w, h)
        blur_rect_scalar(ctx.img.cur, ctx.img.nxt, x, y, w, h)
        return tile.area * SCALAR_PIXEL_WORK

    # -- whole-frame fast path (perf mode) ----------------------------------
    def _frame_blur(self, ctx, tiles) -> bool:
        """One whole-frame blur; True if it covered the request.

        Neighbourhood clipping in :func:`blur_rect_vectorized` is to the
        *image* borders (never to tile borders) and accumulation runs in
        a fixed (dy, dx) order, so the full-frame call writes exactly
        the bytes the per-tile calls would.
        """
        if len(tiles) != len(ctx.grid):
            return False
        blur_rect_vectorized(ctx.img.cur, ctx.img.nxt, 0, 0, ctx.dim, ctx.dim)
        return True

    def compute_frame_basic(self, ctx, tiles) -> np.ndarray | None:
        if not self._frame_blur(ctx, tiles):
            return None
        return tile_works(tiles, SCALAR_PIXEL_WORK)

    def compute_frame_opt(self, ctx, tiles) -> np.ndarray | None:
        if not self._frame_blur(ctx, tiles):
            return None
        last_r, last_c = ctx.grid.rows - 1, ctx.grid.cols - 1
        border = np.fromiter(
            (
                t.row == 0 or t.col == 0 or t.row == last_r or t.col == last_c
                for t in tiles
            ),
            dtype=bool,
            count=len(tiles),
        )
        areas = np.fromiter((t.area for t in tiles), dtype=np.float64, count=len(tiles))
        return areas * np.where(border, SCALAR_PIXEL_WORK, VECTOR_PIXEL_WORK)

    # -- variants -------------------------------------------------------------------
    @variant("seq")
    def compute_seq(self, ctx, nb_iter: int) -> int:
        """Reference: per-pixel scalar loops over the whole image."""
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: self.do_tile_scalar(ctx, t))
            ctx.swap_images()
        return 0

    @variant("tiled")
    def compute_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.sequential_for(
                lambda t: self.do_tile_basic(ctx, t), frame=self.compute_frame_basic
            )
            ctx.swap_images()
        return 0

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        """Basic parallel tiled version (bottom trace of Fig. 10)."""
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile_basic), frame=self.compute_frame_basic)
            ctx.run_on_master(ctx.swap_images)
        return 0

    @variant("omp_tiled_opt")
    def compute_omp_tiled_opt(self, ctx, nb_iter: int) -> int:
        """Optimized version: no conditionals in inner tiles (top trace)."""
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile_opt), frame=self.compute_frame_opt)
            ctx.run_on_master(ctx.swap_images)
        return 0

    @variant("ocl")
    def compute_ocl(self, ctx, nb_iter: int) -> int:
        """OpenCL-style execution: uniform branch-free lanes, but the
        whole frame crosses the bus twice per iteration — blur on a GPU
        is *transfer-bound*, the mirror lesson of mandel's compute-bound
        ``ocl`` variant (``ctx.data['transfer_fraction']`` tells which)."""
        from repro.errors import ConfigError
        from repro.gpu.device import DeviceSpec, GpuDevice
        from repro.kernels.api import VECTOR_PIXEL_WORK

        if ctx.dim % ctx.grid.tile_w or ctx.dim % ctx.grid.tile_h:
            raise ConfigError("ocl variant needs tile sizes dividing the image")
        device = GpuDevice(DeviceSpec(num_cus=ctx.nthreads), model=ctx.model)
        lane = np.full((ctx.dim, ctx.dim), VECTOR_PIXEL_WORK)
        nbytes = ctx.dim * ctx.dim * 4
        for _ in ctx.iterations(nb_iter):
            blur_rect_vectorized(ctx.img.cur, ctx.img.nxt, 0, 0, ctx.dim, ctx.dim)
            launch = device.launch(
                lane,
                group_w=ctx.grid.tile_w,
                group_h=ctx.grid.tile_h,
                items=list(ctx.grid),
                start_time=ctx.vclock,
                meta={"iteration": ctx.iteration, "kind": "ocl"},
                transfer_in_bytes=nbytes,
                transfer_out_bytes=nbytes,
            )
            ctx.data["transfer_fraction"] = launch.transfer_fraction
            ctx.bus.counter("gpu_lane_work", launch.total_lane_work)
            ctx.bus.counter("gpu_lockstep_work", launch.total_lockstep_work)
            ctx.vclock = max(launch.makespan, ctx.vclock) + ctx.model.fork_join_overhead
            ctx.record_timeline(launch.timeline)
            ctx.swap_images()
        return 0

    # -- MPI: band decomposition with ghost-row exchange ----------------------
    @variant("mpi_omp")
    def compute_mpi_omp(self, ctx, nb_iter: int) -> int:
        """Distributed stencil: each rank owns a row band of the image;
        boundary rows are exchanged with the neighbours before every
        iteration (the ghost-cell pattern students learn in §III-D),
        tiles inside the band run under the OpenMP schedule.
        """
        if ctx.mpi is None:
            raise RuntimeError("variant mpi_omp requires --mpirun (mpi_np > 0)")
        from repro.errors import ConfigError
        from repro.mpi.decomposition import band_of

        mpi = ctx.mpi
        y0, h = band_of(mpi.rank, mpi.size, ctx.dim)
        if y0 % ctx.grid.tile_h or ((y0 + h) % ctx.grid.tile_h and (y0 + h) != ctx.dim):
            raise ConfigError(
                "blur/mpi_omp requires rank bands aligned to tile rows "
                f"(dim={ctx.dim}, np={mpi.size}, tile_h={ctx.grid.tile_h})"
            )
        tiles = [t for t in ctx.grid if y0 <= t.y < y0 + h]
        comm = mpi.comm
        up, down = mpi.rank - 1, mpi.rank + 1
        for _ in ctx.iterations(nb_iter):
            # ghost-row exchange: receive the neighbour's boundary row of
            # the *current* image into our halo row
            if up >= 0:
                ctx.img.cur[y0 - 1] = comm.sendrecv(
                    ctx.img.cur[y0].copy(), dest=up, source=up
                )
            if down < mpi.size:
                ctx.img.cur[y0 + h] = comm.sendrecv(
                    ctx.img.cur[y0 + h - 1].copy(), dest=down, source=down
                )
            ctx.parallel_for(ctx.body(self.do_tile_opt), tiles)
            ctx.run_on_master(ctx.swap_images)
        # compose the final picture on the master for display/result
        gathered = comm.gather((y0, ctx.img.cur[y0 : y0 + h].copy()), root=0)
        if mpi.rank == 0 and gathered:
            for gy0, band in gathered:
                ctx.img.cur[gy0 : gy0 + band.shape[0]] = band
        return 0
