#!/usr/bin/env python3
"""Grade a kernel variant against the rubric.

Usage:
    python tools/grade.py --kernel mandel --variant omp_tiled
    python tools/grade.py -k blur -v omp_tiled_opt --min-speedup 0.4

Exit status 0 iff every rubric check passed.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import EasypapError
from repro.expt.grading import grade_variant


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("-k", "--kernel", required=True)
    p.add_argument("-v", "--variant", required=True)
    p.add_argument("-a", "--arg", default=None)
    p.add_argument("--tile", type=int, default=8)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--min-speedup", type=float, default=0.5,
                   help="required speedup per thread (efficiency floor)")
    args = p.parse_args(argv)
    try:
        report = grade_variant(
            args.kernel,
            args.variant,
            tile=args.tile,
            iterations=args.iterations,
            min_speedup_per_thread=args.min_speedup,
            arg=args.arg,
        )
    except EasypapError as exc:
        print(f"grade: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
