#!/usr/bin/env python3
"""Reproduce every paper artifact in one command.

Runs the full benchmark suite (each benchmark regenerates one figure of
the paper and asserts its shape claims), then assembles the per-figure
reports from ``benchmarks/out/`` into a single markdown document.

Usage:
    python tools/reproduce_all.py [-o REPORT.md]

Exit status is pytest's: non-zero when any reproduction claim failed.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "benchmarks" / "out"

#: presentation order: paper figures first, then ablations/extensions
SECTIONS = [
    ("FIG3 — monitoring windows (static imbalance)", "fig03_monitoring"),
    ("FIG4 — scheduling policies in the tiling window", "fig04_schedules"),
    ("PERF — performance mode", "perfmode"),
    ("FIG5 — expTools sweep", "fig05_exptools"),
    ("FIG6 — speedup graphs", "fig06_speedup"),
    ("FIG7 — EASYVIEW exploration", "fig07_easyview"),
    ("FIG8 — dynamic patterns", "fig08_patterns"),
    ("FIG9 — heat maps", "fig09_heatmap"),
    ("FIG10 — blur trace comparison", "fig10_blur_compare"),
    ("FIG11/12 — task-dependency wave", "fig12_taskwave"),
    ("FIG13 — MPI lazy Game of Life", "fig13_mpi_life"),
    ("ABL1 — dispatch overhead vs granularity", "abl_overhead"),
    ("ABL2 — stealing granularity", "abl_stealing"),
    ("EXT1 — per-task cache counters", "ext_cache"),
    ("EXT2 — OpenCL-style device profiling", "ext_gpu"),
]


def run_benchmarks() -> int:
    cmd = [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"]
    print("$", " ".join(cmd))
    return subprocess.call(cmd, cwd=ROOT)


def assemble_report(path: Path, status: int) -> None:
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    lines = [
        "# EASYPAP reproduction report",
        "",
        f"Generated {stamp} by `tools/reproduce_all.py`; benchmark suite "
        f"exit status: {status} ({'all claims held' if status == 0 else 'FAILURES'}).",
        "",
        "Paper: *EASYPAP: a Framework for Learning Parallel Programming* "
        "(Lasserre, Namyst, Wacrenier, 2020).  See EXPERIMENTS.md for the "
        "claim-by-claim record; raw artifacts (SVG figures, PPM images) "
        "live in `benchmarks/out/`.",
        "",
    ]
    for title, stem in SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        report = OUT / f"{stem}.txt"
        if report.exists():
            lines.append("```")
            lines.append(report.read_text().rstrip())
            lines.append("```")
        else:
            lines.append("*(no output recorded — did the benchmark run?)*")
        lines.append("")
    path.write_text("\n".join(lines), encoding="utf-8")
    print(f"report written to {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=str(OUT / "REPORT.md"))
    parser.add_argument("--skip-run", action="store_true",
                        help="only assemble the report from existing outputs")
    args = parser.parse_args()
    status = 0 if args.skip_run else run_benchmarks()
    assemble_report(Path(args.output), status)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
