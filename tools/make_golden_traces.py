"""Regenerate the golden ``.evt`` fixtures under ``tests/fixtures/``.

Run from the repository root::

    PYTHONPATH=src python tools/make_golden_traces.py

The fixtures pin the byte-exact trace output of fully deterministic
runs: scheduler event times come from the event-loop simulator over
integer-valued work units, so the files must be identical on every
machine and Python version.  ``tests/test_golden_traces.py`` regenerates
each trace in-process and byte-compares it against the committed file —
any engine change that moves an event, reorders ties or perturbs a
float shows up as a fixture diff that has to be reviewed (and, when
intended, re-committed by re-running this script).

Kernels are chosen so work values avoid libm entirely (escape-loop
counts, area constants): bit-reproducibility then rests only on IEEE
float arithmetic and CPython's shortest-roundtrip float repr.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.config import RunConfig
from repro.core.engine import run
from repro.trace.format import save_trace

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "tests" / "fixtures"

#: name -> fully pinned configuration (every field that affects the trace)
GOLDEN_CONFIGS: dict[str, dict] = {
    "mandel_dynamic": dict(
        kernel="mandel", variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
        iterations=2, nthreads=3, schedule="dynamic,2", trace=True,
    ),
    "mandel_static": dict(
        kernel="mandel", variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
        iterations=2, nthreads=4, schedule="static", trace=True,
    ),
    "life_guided": dict(
        kernel="life", variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
        iterations=3, nthreads=4, schedule="guided", arg="diag", trace=True,
    ),
    "blur_stealing": dict(
        kernel="blur", variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
        iterations=2, nthreads=3, schedule="nonmonotonic:dynamic", trace=True,
    ),
    # the wavefront-DAG region: pins the policy-aware DAG simulator's
    # event times and the recorded dependency metadata (tid/preds)
    "lu_wavefront_dynamic": dict(
        kernel="lu_wavefront", variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
        iterations=1, nthreads=3, schedule="dynamic", trace=True,
    ),
}


def golden_trace(name: str):
    """Produce the Trace object for one golden configuration."""
    return run(RunConfig(**GOLDEN_CONFIGS[name])).trace


def write_all(directory: Path = FIXTURE_DIR) -> list[Path]:
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in GOLDEN_CONFIGS:
        path = directory / f"{name}.evt"
        save_trace(golden_trace(name), path)
        written.append(path)
        print(f"wrote {path}")
    return written


if __name__ == "__main__":
    sys.exit(0 if write_all() else 1)
