"""Tests for the OpenMP schedule policies and their parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.sched.policies import (
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    StaticSchedule,
    parse_schedule,
)


class TestParse:
    @pytest.mark.parametrize(
        "spec,cls,chunk",
        [
            ("static", StaticSchedule, None),
            ("static,4", StaticSchedule, 4),
            ("dynamic", DynamicSchedule, 1),
            ("dynamic,2", DynamicSchedule, 2),
            ("guided", GuidedSchedule, 1),
            ("guided,8", GuidedSchedule, 8),
            ("nonmonotonic:dynamic", NonMonotonicDynamic, 1),
            ("nonmonotonic:dynamic,2", NonMonotonicDynamic, 2),
            ("monotonic:dynamic", DynamicSchedule, 1),
            ("  DYNAMIC , 3 ", DynamicSchedule, 3),
        ],
    )
    def test_valid_specs(self, spec, cls, chunk):
        policy = parse_schedule(spec)
        assert isinstance(policy, cls)
        assert policy.chunk == chunk

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus", "dynamic,x", "dynamic,0", "weird:dynamic", "nonmonotonic:static",
         "nonmonotonic:guided", "nonmonotonic:guided,2"],
    )
    def test_invalid_specs(self, spec):
        with pytest.raises(ScheduleError):
            parse_schedule(spec)

    def test_spec_roundtrip(self):
        for s in ["static", "static,4", "dynamic", "dynamic,2", "guided",
                  "guided,2", "nonmonotonic:dynamic", "nonmonotonic:dynamic,4"]:
            assert parse_schedule(parse_schedule(s).spec()).spec() == parse_schedule(s).spec()


class TestStatic:
    def test_plain_static_contiguous_blocks(self):
        a = StaticSchedule().assignment(10, 3)
        spans = [[(c.lo, c.hi) for c in chunks] for chunks in a]
        assert spans == [[(0, 4)], [(4, 7)], [(7, 10)]]

    def test_plain_static_block_sizes_differ_by_at_most_one(self):
        a = StaticSchedule().assignment(11, 4)
        sizes = [sum(len(c) for c in chunks) for chunks in a]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 11

    def test_static_chunked_round_robin(self):
        a = StaticSchedule(2).assignment(10, 2)
        assert [(c.lo, c.hi) for c in a[0]] == [(0, 2), (4, 6), (8, 10)]
        assert [(c.lo, c.hi) for c in a[1]] == [(2, 4), (6, 8)]

    def test_empty_iteration_space(self):
        a = StaticSchedule().assignment(0, 4)
        assert all(chunks == [] for chunks in a)

    def test_more_cpus_than_iterations(self):
        a = StaticSchedule().assignment(2, 5)
        sizes = [sum(len(c) for c in chunks) for chunks in a]
        assert sizes == [1, 1, 0, 0, 0]

    def test_bad_ncpus(self):
        with pytest.raises(ScheduleError):
            StaticSchedule().assignment(4, 0)


class TestDynamic:
    def test_chunk_queue_covers_space(self):
        q = DynamicSchedule(3).chunk_queue(10)
        assert [(c.lo, c.hi) for c in q] == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_default_chunk_is_one(self):
        q = DynamicSchedule().chunk_queue(4)
        assert all(len(c) == 1 for c in q)


class TestGuided:
    def test_sizes_non_increasing(self):
        q = GuidedSchedule(1).chunk_queue(100, 4)
        sizes = [len(c) for c in q]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sum(sizes) == 100

    def test_min_chunk_respected(self):
        q = GuidedSchedule(5).chunk_queue(100, 4)
        sizes = [len(c) for c in q]
        # every chunk except possibly the final one honors the minimum
        assert all(s >= 5 for s in sizes[:-1])

    def test_first_chunk_is_remaining_over_2p(self):
        # LLVM-style guided: ceil(remaining / (2 * ncpus))
        q = GuidedSchedule(1).chunk_queue(100, 4)
        assert len(q[0]) == 13


class TestNonMonotonic:
    def test_initial_blocks_are_contiguous_partition(self):
        blocks = NonMonotonicDynamic(1).initial_blocks(10, 3)
        assert [(b.lo, b.hi) for b in blocks] == [(0, 4), (4, 7), (7, 10)]

    def test_flags(self):
        p = NonMonotonicDynamic(2)
        assert p.uses_stealing and not p.is_static
        assert StaticSchedule().is_static
        assert not DynamicSchedule().uses_stealing


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=500),
    p=st.integers(min_value=1, max_value=16),
    chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
)
def test_static_assignment_partitions(n, p, chunk):
    """Property: static assignments cover [0, n) exactly once."""
    a = StaticSchedule(chunk).assignment(n, p)
    seen = sorted(i for chunks in a for c in chunks for i in c.indices())
    assert seen == list(range(n))


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=500),
    p=st.integers(min_value=1, max_value=16),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_guided_queue_partitions(n, p, chunk):
    """Property: guided chunk queues cover [0, n) exactly once, ordered."""
    q = GuidedSchedule(chunk).chunk_queue(n, p)
    seen = [i for c in q for i in c.indices()]
    assert seen == list(range(n))
