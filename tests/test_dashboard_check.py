"""Tests for the dashboard SVG views and the --check CLI mode."""

import pytest

from repro.cli import main as easypap_main
from repro.core.engine import run
from repro.view.dashboard import animated_tiling_svg, dashboard_svg
from tests.conftest import make_config


@pytest.fixture
def monitored_run():
    return run(make_config(kernel="mandel", variant="omp_tiled", dim=64,
                           tile_w=16, tile_h=16, iterations=3, nthreads=4,
                           schedule="nonmonotonic:dynamic", monitoring=True))


class TestDashboard:
    def test_contains_both_windows(self, monitored_run):
        svg = dashboard_svg(monitored_run.monitor).tostring()
        assert "Tiling window" in svg
        assert "Heat map" in svg
        assert "Activity Monitor" in svg
        assert "cumulated idleness" in svg
        # 16 tiles in each of the two maps, plus bars
        assert svg.count("<rect") >= 2 * 16 + 4

    def test_iteration_selectable(self, monitored_run):
        first = dashboard_svg(monitored_run.monitor, 0).tostring()
        assert "iteration 1" in first
        last = dashboard_svg(monitored_run.monitor, -1).tostring()
        assert "iteration 3" in last

    def test_stolen_tiles_marked(self, monitored_run):
        rec = monitored_run.monitor.records[-1]
        svg = dashboard_svg(monitored_run.monitor).tostring()
        assert svg.count("<circle") == int(rec.stolen.sum())

    def test_empty_monitor_rejected(self):
        from repro.monitor.activity import Monitor

        with pytest.raises(ValueError):
            dashboard_svg(Monitor(2))


class TestAnimatedTiling:
    def test_one_frame_group_per_iteration(self, monitored_run):
        svg = animated_tiling_svg(monitored_run.monitor).tostring()
        assert svg.count("<animate ") == 3
        assert svg.count('repeatCount="indefinite"') == 3
        assert svg.count("<rect") >= 3 * 16

    def test_cli_writes_both(self, tmp_path, capsys):
        dash = tmp_path / "dash.svg"
        anim = tmp_path / "anim.svg"
        rc = easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                           "--size", "64", "--tile-size", "16",
                           "--iterations", "2", "--monitoring",
                           "--dashboard", str(dash), "--anim", str(anim)])
        assert rc == 0
        assert dash.exists() and anim.exists()


class TestCheckMode:
    def test_check_passes_for_correct_variant(self, capsys):
        rc = easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                           "--size", "64", "--tile-size", "16",
                           "--iterations", "2", "--check"])
        assert rc == 0
        assert "check: OK" in capsys.readouterr().out

    def test_check_skipped_for_seq(self, capsys):
        rc = easypap_main(["--kernel", "mandel", "--variant", "seq",
                           "--size", "64", "--iterations", "1", "--check"])
        assert rc == 0
        assert "check" not in capsys.readouterr().out

    def test_check_fails_for_buggy_variant(self, capsys):
        """Register a deliberately wrong variant and watch --check catch it."""
        from repro.core.kernel import Kernel, _KERNELS, register_kernel, variant

        @register_kernel
        class BuggyKernel(Kernel):
            name = "buggy_check_probe"

            @variant("seq")
            def compute_seq(self, ctx, nb_iter):
                for _ in ctx.iterations(nb_iter):
                    ctx.img.cur[:] = 1
                return 0

            @variant("omp_tiled")
            def compute_par(self, ctx, nb_iter):
                for _ in ctx.iterations(nb_iter):
                    ctx.img.cur[:] = 2  # wrong!
                return 0

        try:
            rc = easypap_main(["--kernel", "buggy_check_probe", "--variant",
                               "omp_tiled", "--size", "16", "--tile-size",
                               "16", "--iterations", "1", "--check"])
            assert rc == 1
            assert "check: FAILED" in capsys.readouterr().err
        finally:
            del _KERNELS["buggy_check_probe"]
