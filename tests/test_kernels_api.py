"""Tests for the shared kernel helpers (repro.kernels.api)."""

import numpy as np
import pytest

from repro.core.image import rgba
from repro.kernels.api import (
    SCALAR_PIXEL_WORK,
    VECTOR_PIXEL_WORK,
    clipped_halo,
    merge_channels,
    split_channels,
    synthetic_picture,
)
from repro.util.rng import make_rng


class TestChannels:
    def test_split_shapes_and_values(self):
        img = np.array([[rgba(1, 2, 3, 4)]], dtype=np.uint32)
        planes = split_channels(img)
        assert planes.shape == (4, 1, 1)
        assert planes[:, 0, 0].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_merge_roundtrip(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 2**32, (6, 6), dtype=np.uint32)
        assert np.array_equal(merge_channels(split_channels(img)), img)

    def test_merge_clips_out_of_range(self):
        planes = np.array([[[300.0]], [[-5.0]], [[0.0]], [[255.0]]])
        assert int(merge_channels(planes)[0, 0]) == rgba(255, 0, 0, 255)

    def test_merge_rounds_half_to_even(self):
        # np.rint semantics, matching Python's round() in the scalar path
        planes = np.array([[[0.5]], [[1.5]], [[2.5]], [[0.0]]])
        assert int(merge_channels(planes)[0, 0]) == rgba(0, 2, 2, 0)


class TestClippedHalo:
    def test_interior_tile_full_halo(self):
        img = np.arange(64, dtype=np.uint32).reshape(8, 8)
        region, oy, ox = clipped_halo(img, x=2, y=2, w=4, h=4)
        assert region.shape == (6, 6)
        assert (oy, ox) == (1, 1)
        assert region[oy, ox] == img[2, 2]

    def test_corner_tile_clipped(self):
        img = np.zeros((8, 8), dtype=np.uint32)
        region, oy, ox = clipped_halo(img, x=0, y=0, w=4, h=4)
        assert region.shape == (5, 5)
        assert (oy, ox) == (0, 0)

    def test_halo_width(self):
        img = np.zeros((10, 10), dtype=np.uint32)
        region, oy, ox = clipped_halo(img, x=4, y=4, w=2, h=2, halo=2)
        assert region.shape == (6, 6)
        assert (oy, ox) == (2, 2)

    def test_view_not_copy(self):
        img = np.zeros((8, 8), dtype=np.uint32)
        region, oy, ox = clipped_halo(img, 2, 2, 4, 4)
        region[oy, ox] = 99
        assert img[2, 2] == 99


class TestSyntheticPicture:
    def test_deterministic_per_rng_seed(self):
        a = synthetic_picture(32, make_rng(3))
        b = synthetic_picture(32, make_rng(3))
        c = synthetic_picture(32, make_rng(4))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_opaque_and_structured(self):
        img = synthetic_picture(64, make_rng(0))
        assert ((img & 0xFF) == 0xFF).all()  # alpha
        # has real structure: many distinct colors
        assert len(np.unique(img)) > 100

    def test_tiny_image(self):
        img = synthetic_picture(2, make_rng(1))
        assert img.shape == (2, 2)


class TestWorkConstants:
    def test_vectorization_factor_is_8(self):
        assert SCALAR_PIXEL_WORK / VECTOR_PIXEL_WORK == pytest.approx(8.0)
