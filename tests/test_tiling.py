"""Tests for repro.core.tiling — incl. the partition invariant (property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import Tile, TileGrid
from repro.errors import ConfigError


class TestTileGrid:
    def test_exact_division(self):
        g = TileGrid(64, 16)
        assert g.rows == g.cols == 4
        assert len(g) == 16
        assert all(t.w == 16 and t.h == 16 for t in g)

    def test_clipped_edge_tiles(self):
        g = TileGrid(50, 16)
        assert g.cols == 4  # 16+16+16+2
        last = g.at(0, 3)
        assert last.w == 2
        bottom = g.at(3, 0)
        assert bottom.h == 2

    def test_collapse2_row_major_order(self):
        g = TileGrid(48, 16)
        indices = [(t.row, t.col) for t in g]
        assert indices == [(r, c) for r in range(3) for c in range(3)]
        assert [t.index for t in g] == list(range(9))

    def test_rectangular_tiles(self):
        g = TileGrid(64, 32, 8)
        assert g.cols == 2 and g.rows == 8
        t = g.at(1, 1)
        assert (t.w, t.h) == (32, 8)
        assert (t.x, t.y) == (32, 8)

    def test_at_bounds(self):
        g = TileGrid(32, 16)
        with pytest.raises(ConfigError):
            g.at(2, 0)
        with pytest.raises(ConfigError):
            g.at(0, -1)

    def test_tile_of_pixel(self):
        g = TileGrid(64, 16)
        t = g.tile_of_pixel(17, 40)
        assert (t.row, t.col) == (1, 2)
        assert t.contains(17, 40)
        with pytest.raises(ConfigError):
            g.tile_of_pixel(64, 0)

    def test_by_rows(self):
        g = TileGrid(48, 16)
        rows = list(g.by_rows())
        assert len(rows) == 3
        assert all(len(r) == 3 for r in rows)
        assert all(t.row == i for i, r in enumerate(rows) for t in r)

    def test_border_and_inner_partition(self):
        g = TileGrid(64, 16)
        border = {t.index for t in g.border_tiles()}
        inner = {t.index for t in g.inner_tiles()}
        assert border | inner == set(range(len(g)))
        assert not border & inner
        assert len(inner) == 4  # the 2x2 middle of a 4x4 grid

    def test_all_border_when_thin(self):
        g = TileGrid(32, 16)  # 2x2 grid: everything touches the border
        assert g.inner_tiles() == []
        assert len(g.border_tiles()) == 4

    def test_neighbours_4(self):
        g = TileGrid(48, 16)
        mid = g.at(1, 1)
        n4 = {(t.row, t.col) for t in g.neighbours(mid)}
        assert n4 == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_neighbours_8_corner(self):
        g = TileGrid(48, 16)
        corner = g.at(0, 0)
        n8 = {(t.row, t.col) for t in g.neighbours(corner, diagonal=True)}
        assert n8 == {(0, 1), (1, 0), (1, 1)}

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            TileGrid(0, 4)
        with pytest.raises(ConfigError):
            TileGrid(32, 0)
        with pytest.raises(ConfigError):
            TileGrid(16, 32)

    def test_as_rect(self):
        t = Tile(x=8, y=16, w=4, h=2, row=8, col=2, index=0)
        assert t.as_rect() == (8, 16, 4, 2)
        assert t.area == 8


@settings(max_examples=60, deadline=None)
@given(
    dim=st.integers(min_value=1, max_value=200),
    tw=st.integers(min_value=1, max_value=200),
    th=st.integers(min_value=1, max_value=200),
)
def test_tiles_partition_image(dim, tw, th):
    """Property: tiles cover every pixel exactly once, for any geometry."""
    if tw > dim or th > dim:
        with pytest.raises(ConfigError):
            TileGrid(dim, tw, th)
        return
    g = TileGrid(dim, tw, th)
    assert g.coverage_ok()
    seen = [[0] * dim for _ in range(dim)]
    for t in g:
        for y in range(t.y, t.y + t.h):
            row = seen[y]
            for x in range(t.x, t.x + t.w):
                row[x] += 1
    assert all(v == 1 for row in seen for v in row)


@settings(max_examples=60, deadline=None)
@given(
    dim=st.integers(min_value=2, max_value=128),
    tile=st.integers(min_value=1, max_value=64),
    y=st.integers(min_value=0, max_value=127),
    x=st.integers(min_value=0, max_value=127),
)
def test_tile_of_pixel_consistent(dim, tile, y, x):
    """Property: tile_of_pixel agrees with Tile.contains."""
    if tile > dim or y >= dim or x >= dim:
        return
    g = TileGrid(dim, tile)
    t = g.tile_of_pixel(y, x)
    assert t.contains(y, x)
    others = [o for o in g if o.index != t.index]
    assert not any(o.contains(y, x) for o in others)
