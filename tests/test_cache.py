"""Tests for the LRU cache model and per-task counters (EXT1)."""


from repro.core.engine import run
from repro.monitor.cache import (
    CacheSpec,
    LruCache,
    simulate_trace_cache,
    stencil_access_pattern,
    transpose_access_pattern,
)
from repro.trace.events import TraceEvent
from tests.conftest import make_config


class TestLruCache:
    def test_cold_miss_then_hit(self):
        c = LruCache(CacheSpec(size_bytes=256, line_bytes=64))
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_eviction_is_lru(self):
        c = LruCache(CacheSpec(size_bytes=128, line_bytes=64))  # 2 lines
        c.access(0)
        c.access(64)
        c.access(0)  # refresh line 0
        c.access(128)  # evicts line 1 (LRU)
        assert c.access(0)  # still cached
        assert not c.access(64)  # was evicted

    def test_access_range_counts_lines(self):
        c = LruCache(CacheSpec(size_bytes=1024, line_bytes=64))
        h, m = c.access_range(0, 256)  # 4 lines
        assert (h, m) == (0, 4)
        h, m = c.access_range(0, 256)
        assert (h, m) == (4, 0)

    def test_access_range_straddles_lines(self):
        c = LruCache(CacheSpec(size_bytes=1024, line_bytes=64))
        h, m = c.access_range(60, 8)  # bytes 60..67: lines 0 and 1
        assert m == 2

    def test_reset(self):
        c = LruCache(CacheSpec())
        c.access(0)
        c.reset()
        assert c.hits == 0 and c.misses == 0
        assert not c.access(0)


class TestPatterns:
    def test_stencil_includes_halo(self):
        e = TraceEvent(iteration=1, cpu=0, start=0, end=1, x=8, y=8, w=4, h=4)
        ranges = list(stencil_access_pattern(e, 64))
        # 6 read rows (halo) + 4 write rows
        assert len(ranges) == 10

    def test_stencil_clips_at_border(self):
        e = TraceEvent(iteration=1, cpu=0, start=0, end=1, x=0, y=0, w=4, h=4)
        ranges = list(stencil_access_pattern(e, 64))
        assert len(ranges) == 5 + 4  # rows 0..4 readable only

    def test_transpose_write_is_strided(self):
        e = TraceEvent(iteration=1, cpu=0, start=0, end=1, x=8, y=0, w=4, h=2)
        ranges = list(transpose_access_pattern(e, 64))
        reads = ranges[:2]
        writes = ranges[2:]
        assert len(writes) == 4  # one per transposed row
        assert all(n == 2 * 4 for _, n in writes)  # h pixels * 4 bytes


class TestTraceCache:
    def test_blur_halo_rereads_hit(self):
        r = run(make_config(kernel="blur", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=2, nthreads=1,
                            trace=True))
        res = simulate_trace_cache(r.trace, 32, stencil_access_pattern,
                                   CacheSpec(size_bytes=64 * 1024))
        hits = sum(c.hits for _, c in res)
        assert hits > 0  # halo rows shared between neighbouring tiles

    def test_counters_attached_to_events(self):
        r = run(make_config(kernel="transpose", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=1, nthreads=2,
                            trace=True))
        res = simulate_trace_cache(r.trace, 32, transpose_access_pattern)
        assert res
        for e, c in res:
            assert e.extra["cache"] == {"hits": c.hits, "misses": c.misses}

    def test_private_caches_per_cpu(self):
        # two CPUs touching the same data still each miss (private caches)
        es = [
            TraceEvent(iteration=1, cpu=0, start=0, end=1, x=0, y=0, w=4, h=4),
            TraceEvent(iteration=1, cpu=1, start=1, end=2, x=0, y=0, w=4, h=4),
        ]
        from repro.trace.events import Trace, TraceMeta

        tr = Trace(TraceMeta(ncpus=2), es)
        res = simulate_trace_cache(tr, 64, stencil_access_pattern)
        assert res[0][1].misses == res[1][1].misses

    def test_tiny_cache_thrashes(self):
        r = run(make_config(kernel="blur", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=2, nthreads=1,
                            trace=True))
        big = simulate_trace_cache(r.trace, 32, stencil_access_pattern,
                                   CacheSpec(size_bytes=256 * 1024))
        small = simulate_trace_cache(r.trace, 32, stencil_access_pattern,
                                     CacheSpec(size_bytes=256))
        miss_big = sum(c.misses for _, c in big)
        miss_small = sum(c.misses for _, c in small)
        assert miss_small > miss_big
