"""Tests for the mpirun launcher."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.errors import ConfigError
from repro.mpi.launcher import parse_mpirun_args
from tests.conftest import make_config


class TestParseMpirun:
    @pytest.mark.parametrize("spec,np_", [("-np 2", 2), ("-n 4", 4),
                                          ("--oversubscribe -np 3", 3),
                                          ("  -np   8  ", 8)])
    def test_valid(self, spec, np_):
        assert parse_mpirun_args(spec) == np_

    @pytest.mark.parametrize("spec", ["", "-np", "-np zero", "-np 0"])
    def test_invalid(self, spec):
        with pytest.raises(ConfigError):
            parse_mpirun_args(spec)


class TestLauncher:
    def _cfg(self, **kw):
        base = dict(kernel="life", variant="mpi_omp", dim=64, tile_w=16,
                    tile_h=16, iterations=4, arg="gun", mpi_np=2)
        base.update(kw)
        return make_config(**base)

    def test_returns_master_with_rank_results(self):
        r = run(self._cfg())
        assert len(r.rank_results) == 2
        assert r.config.mpi_np == 2

    def test_virtual_time_is_slowest_rank(self):
        r = run(self._cfg())
        assert r.virtual_time == max(rr.virtual_time for rr in r.rank_results)

    def test_monitoring_master_only_by_default(self):
        r = run(self._cfg(monitoring=True))
        assert r.rank_results[0].monitor is not None
        assert r.rank_results[1].monitor is None

    def test_debug_m_monitors_every_rank(self):
        r = run(self._cfg(monitoring=True, debug="M"))
        assert all(rr.monitor is not None for rr in r.rank_results)

    def test_traces_labelled_per_rank(self):
        r = run(self._cfg(trace=True, debug="M"))
        labels = [rr.trace.meta.label for rr in r.rank_results]
        assert labels == ["cur.0", "cur.1"]

    def test_master_composes_full_image(self):
        ref = run(make_config(kernel="life", variant="seq", dim=64, tile_w=16,
                              tile_h=16, iterations=4, arg="gun"))
        r = run(self._cfg())
        assert np.array_equal(r.image, ref.image)

    def test_np1_works(self):
        r = run(self._cfg(mpi_np=1))
        assert len(r.rank_results) == 1

    def test_failure_in_kernel_surfaces(self):
        from repro.errors import MpiError

        # band misaligned with tile rows -> per-rank ConfigError wrapped
        with pytest.raises(MpiError):
            run(self._cfg(mpi_np=3, dim=64))


class TestParseMpirunStrict:
    @pytest.mark.parametrize("spec", ["-np 2 junk", "garbage -np 2",
                                      "-np 2 3"])
    def test_trailing_junk_rejected(self, spec):
        with pytest.raises(ConfigError, match="unparsed|cannot find"):
            parse_mpirun_args(spec)

    @pytest.mark.parametrize("spec,np_", [("--oversubscribe -np 3", 3),
                                          ("-np 2 --tag-output", 2)])
    def test_known_flag_shapes_still_parse(self, spec, np_):
        assert parse_mpirun_args(spec) == np_


class TestMergedResult:
    def _cfg(self, **kw):
        base = dict(kernel="life", variant="mpi_omp", dim=64, tile_w=16,
                    tile_h=16, iterations=4, arg="gun", mpi_np=2)
        base.update(kw)
        return make_config(**base)

    def test_wall_time_is_laggard_rank(self):
        r = run(self._cfg())
        assert r.wall_time == max(rr.wall_time for rr in r.rank_results)

    def test_default_trace_label_is_mpi_not_none(self):
        r = run(self._cfg(trace=True, debug="M", trace_label=None))
        labels = [rr.trace.meta.label for rr in r.rank_results]
        assert labels == ["mpi.0", "mpi.1"]

    def test_world_comm_counters_on_master(self):
        r = run(self._cfg())
        assert r.counters["mpi_msgs_sent_world"] > 0
        assert r.counters["mpi_bytes_sent_world"] > 0
        assert r.counters["mpi_collectives_world"] > 0
