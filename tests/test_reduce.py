"""Tests for the parallel_reduce construct."""

import operator

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import run
from repro.sched.costmodel import CostModel
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def ctx_with(**kw):
    model = kw.pop("model", ZERO)
    return ExecutionContext(make_config(**kw), model=model)


class TestParallelReduce:
    def test_sum_reduction(self):
        ctx = ctx_with(nthreads=3)
        res, total = ctx.parallel_reduce(
            lambda i: (1.0, i), list(range(10)),
            combine=operator.add, init=0,
        )
        assert total == 45
        assert len(res.timeline) == 10

    def test_max_reduction(self):
        ctx = ctx_with()
        _, biggest = ctx.parallel_reduce(
            lambda i: (1.0, i * 7 % 13), list(range(13)),
            combine=max, init=-1,
        )
        assert biggest == 12

    def test_clock_advances_like_parallel_for(self):
        a = ctx_with(nthreads=2, schedule="dynamic")
        a.parallel_for(lambda i: 1.0, [0, 1, 2, 3])
        b = ctx_with(nthreads=2, schedule="dynamic")
        b.parallel_reduce(lambda i: (1.0, 0), [0, 1, 2, 3],
                          combine=operator.add, init=0)
        assert a.vclock == pytest.approx(b.vclock)

    def test_combination_order_is_item_order(self):
        ctx = ctx_with(nthreads=4, schedule="dynamic")
        _, seqs = ctx.parallel_reduce(
            lambda i: (1.0, [i]), list(range(6)),
            combine=operator.add, init=[],
        )
        assert seqs == [0, 1, 2, 3, 4, 5]  # deterministic, unlike real OpenMP

    def test_default_items_are_tiles(self):
        ctx = ctx_with(dim=64, tile_w=16, tile_h=16)
        _, count = ctx.parallel_reduce(
            lambda t: (1.0, 1), combine=operator.add, init=0
        )
        assert count == 16

    def test_region_log_captured(self):
        ctx = ctx_with()
        ctx.region_log = []
        ctx.parallel_reduce(lambda i: (float(i), i), [1, 2],
                            combine=operator.add, init=0)
        assert ctx.region_log == [("par", [1.0, 2.0])]

    @pytest.mark.slow
    def test_threads_backend(self):
        ctx = ctx_with(backend="threads", nthreads=4)
        _, total = ctx.parallel_reduce(
            lambda i: (1.0, i), list(range(100)),
            combine=operator.add, init=0,
        )
        assert total == sum(range(100))


class TestHeatUsesReduction:
    def test_omp_tiled_still_matches_seq(self):
        cfg = dict(kernel="heat", dim=32, tile_w=8, tile_h=8, iterations=25)
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="omp_tiled", nthreads=4, **cfg))
        assert np.allclose(a.context.data["temp"], b.context.data["temp"])
        assert a.early_stop == b.early_stop
