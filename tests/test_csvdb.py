"""Tests for the results CSV database."""

import pytest

from repro.errors import PlotError
from repro.expt.csvdb import append_rows, filter_rows, read_rows, unique_values


class TestAppendRead:
    def test_roundtrip_types(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"kernel": "mandel", "threads": 4, "time_us": 12.5}])
        rows = read_rows(p)
        assert rows == [{"kernel": "mandel", "threads": 4, "time_us": 12.5}]
        assert isinstance(rows[0]["threads"], int)
        assert isinstance(rows[0]["time_us"], float)

    def test_append_accumulates(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": 1}])
        append_rows(p, [{"a": 2}])
        assert [r["a"] for r in read_rows(p)] == [1, 2]

    def test_schema_evolution(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": 1}])
        append_rows(p, [{"a": 2, "b": "new"}])
        rows = read_rows(p)
        assert rows[0] == {"a": 1, "b": ""}
        assert rows[1] == {"a": 2, "b": "new"}

    def test_empty_append_is_noop(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [])
        assert not p.exists()

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(PlotError):
            read_rows(tmp_path / "nope.csv")

    def test_parent_dirs_created(self, tmp_path):
        p = append_rows(tmp_path / "sub" / "dir" / "r.csv", [{"x": 1}])
        assert p.exists()


class TestFilter:
    ROWS = [
        {"kernel": "mandel", "threads": 2, "schedule": "static"},
        {"kernel": "mandel", "threads": 4, "schedule": "dynamic"},
        {"kernel": "blur", "threads": 4, "schedule": "static"},
    ]

    def test_single_value(self):
        assert len(filter_rows(self.ROWS, kernel="mandel")) == 2

    def test_multiple_criteria(self):
        out = filter_rows(self.ROWS, kernel="mandel", threads=4)
        assert len(out) == 1 and out[0]["schedule"] == "dynamic"

    def test_list_of_accepted_values(self):
        assert len(filter_rows(self.ROWS, threads=[2, 4])) == 3

    def test_none_criteria_ignored(self):
        assert len(filter_rows(self.ROWS, kernel=None)) == 3

    def test_missing_column_never_matches(self):
        assert filter_rows(self.ROWS, nope="x") == []

    def test_unique_values_stable_order(self):
        assert unique_values(self.ROWS, "kernel") == ["mandel", "blur"]
        assert unique_values(self.ROWS, "threads") == [2, 4]
