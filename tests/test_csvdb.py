"""Tests for the results CSV database."""

import pytest

from repro.errors import PlotError
from repro.expt.csvdb import (
    _parse_cell,
    append_rows,
    filter_rows,
    read_header,
    read_rows,
    unique_values,
)


class TestAppendRead:
    def test_roundtrip_types(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"kernel": "mandel", "threads": 4, "time_us": 12.5}])
        rows = read_rows(p)
        assert rows == [{"kernel": "mandel", "threads": 4, "time_us": 12.5}]
        assert isinstance(rows[0]["threads"], int)
        assert isinstance(rows[0]["time_us"], float)

    def test_append_accumulates(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": 1}])
        append_rows(p, [{"a": 2}])
        assert [r["a"] for r in read_rows(p)] == [1, 2]

    def test_schema_evolution(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": 1}])
        append_rows(p, [{"a": 2, "b": "new"}])
        rows = read_rows(p)
        assert rows[0] == {"a": 1, "b": ""}
        assert rows[1] == {"a": 2, "b": "new"}

    def test_empty_append_is_noop(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [])
        assert not p.exists()

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(PlotError):
            read_rows(tmp_path / "nope.csv")

    def test_parent_dirs_created(self, tmp_path):
        p = append_rows(tmp_path / "sub" / "dir" / "r.csv", [{"x": 1}])
        assert p.exists()

    def test_matching_append_never_rewrites_existing_bytes(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": 1, "note": "0x10"}])
        before = p.read_text()
        append_rows(p, [{"a": 2, "note": "y"}])
        assert p.read_text().startswith(before)

    def test_schema_growth_preserves_existing_cells_verbatim(self, tmp_path):
        p = tmp_path / "r.csv"
        append_rows(p, [{"a": "007", "b": "1.50"}])
        append_rows(p, [{"a": "x", "c": 3}])  # forces the header rewrite
        lines = p.read_text().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "007,1.50,"

    def test_read_header(self, tmp_path):
        p = tmp_path / "r.csv"
        assert read_header(p) is None
        p.write_text("")
        assert read_header(p) is None
        append_rows(p, [{"a": 1, "b": 2}])
        assert read_header(p) == ["a", "b"]


class TestCellTyping:
    def test_ints_floats_strings(self):
        assert _parse_cell("4") == 4 and isinstance(_parse_cell("4"), int)
        assert _parse_cell("12.5") == 12.5
        assert _parse_cell("1e-05") == 1e-05
        assert _parse_cell("guided") == "guided"
        assert _parse_cell("") == ""

    @pytest.mark.parametrize(
        "text", ["nan", "NaN", "+nan", "-nan", "inf", "Inf", "-inf",
                 "infinity", "-Infinity"]
    )
    def test_nonfinite_spellings_stay_strings(self, text):
        assert _parse_cell(text) == text

    def test_nan_cells_do_not_poison_group_keys(self, tmp_path):
        """A kernel arg literally spelled "nan" must compare equal to
        itself (NaN floats never do, splitting easyplot groups)."""
        p = tmp_path / "r.csv"
        append_rows(p, [{"arg": "nan", "t": 1}, {"arg": "nan", "t": 2}])
        rows = read_rows(p)
        assert unique_values(rows, "arg") == ["nan"]

    def test_value_round_trip_guarantee(self, tmp_path):
        """read(write(rows)) is the identity on values, and a second
        write/read cycle is stable (no drift through retyping)."""
        originals = [{
            "i": 42, "f": 12.5, "sci": 1e-05, "s": "guided",
            "nan": "nan", "inf": "-inf", "empty": "", "exp": 100000.0,
        }]
        p1 = tmp_path / "a.csv"
        append_rows(p1, originals)
        once = read_rows(p1)
        assert once == originals
        p2 = tmp_path / "b.csv"
        append_rows(p2, once)
        assert read_rows(p2) == once


class TestFilter:
    ROWS = [
        {"kernel": "mandel", "threads": 2, "schedule": "static"},
        {"kernel": "mandel", "threads": 4, "schedule": "dynamic"},
        {"kernel": "blur", "threads": 4, "schedule": "static"},
    ]

    def test_single_value(self):
        assert len(filter_rows(self.ROWS, kernel="mandel")) == 2

    def test_multiple_criteria(self):
        out = filter_rows(self.ROWS, kernel="mandel", threads=4)
        assert len(out) == 1 and out[0]["schedule"] == "dynamic"

    def test_list_of_accepted_values(self):
        assert len(filter_rows(self.ROWS, threads=[2, 4])) == 3

    def test_none_criteria_ignored(self):
        assert len(filter_rows(self.ROWS, kernel=None)) == 3

    def test_missing_column_never_matches(self):
        assert filter_rows(self.ROWS, nope="x") == []

    def test_unique_values_stable_order(self):
        assert unique_values(self.ROWS, "kernel") == ["mandel", "blur"]
        assert unique_values(self.ROWS, "threads") == [2, 4]
