"""Tests for the PlotSpec renderers."""

from repro.expt.easyplot import PlotFacet, PlotSeries, PlotSpec
from repro.expt.plotting import render_ascii_chart, render_svg, render_text


def spec_fixture():
    s1 = PlotSeries("schedule=dynamic", xs=[2, 4], ys=[2.0, 3.9], yerr=[0.1, 0.2])
    s2 = PlotSeries("schedule=static", xs=[2, 4], ys=[1.5, 2.0], yerr=[0.0, 0.0])
    return PlotSpec(
        x="threads",
        ylabel="speedup",
        facets=[PlotFacet("grain = 16", [s1, s2]),
                PlotFacet("grain = 32", [s1, s2])],
        const_params={"kernel": "mandel", "dim": 1024},
        ref_time_us=669009.0,
    )


class TestText:
    def test_contains_header_facets_series(self):
        out = render_text(spec_fixture())
        assert "Parameters :" in out
        assert "kernel=mandel" in out
        assert "refTime=669009" in out
        assert "grain = 16" in out and "grain = 32" in out
        assert "schedule=dynamic" in out
        assert "3.900" in out

    def test_missing_point_rendered_as_dash(self):
        s = PlotSeries("a", xs=[1], ys=[1.0], yerr=[0.0])
        t = PlotSeries("b", xs=[1, 2], ys=[1.0, 2.0], yerr=[0.0, 0.0])
        spec = PlotSpec(x="x", ylabel="y", facets=[PlotFacet("", [s, t])])
        assert "-" in render_text(spec)


class TestAsciiChart:
    def test_chart_renders_points(self):
        out = render_ascii_chart(spec_fixture())
        assert "A = schedule=dynamic" in out
        assert "ymax=" in out

    def test_empty_facet(self):
        spec = PlotSpec(x="x", ylabel="y", facets=[PlotFacet("t", [])])
        assert "(no data)" in render_ascii_chart(spec)


class TestSvg:
    def test_structure(self):
        svg = render_svg(spec_fixture()).tostring()
        assert svg.count("<polyline") == 4  # 2 series x 2 facets
        assert "legend" in svg
        assert "schedule=dynamic" in svg
        assert "grain = 16" in svg
        assert "speedup" in svg

    def test_single_point_series_no_polyline(self):
        s = PlotSeries("a", xs=[1], ys=[1.0], yerr=[0.0])
        spec = PlotSpec(x="x", ylabel="y", facets=[PlotFacet("", [s])])
        svg = render_svg(spec).tostring()
        assert "<polyline" not in svg
        assert "<circle" in svg

    def test_error_bars_drawn(self):
        svg = render_svg(spec_fixture()).tostring()
        # error bars are vertical lines beyond the axes/ticks
        assert svg.count("<line") > 12
