"""Tests for the Monitor and IterationRecord."""

import numpy as np
import pytest

from repro.core.tiling import TileGrid
from repro.monitor.activity import Monitor
from repro.monitor.records import IterationRecord
from repro.sched.timeline import TaskExec, Timeline


def grid_timeline(grid, assignments, start=0.0, dur=1.0, stolen_idx=()):
    """assignments: list of (tile_index, cpu)."""
    tl = Timeline(ncpus=4)
    t = start
    for tile_i, cpu in assignments:
        meta = {"iteration": 1}
        if tile_i in stolen_idx:
            meta["stolen"] = True
        tl.append(TaskExec(grid[tile_i], cpu, t, t + dur, meta))
        t += dur
    return tl


class TestMonitor:
    def test_end_iteration_snapshot(self):
        grid = TileGrid(32, 16)
        mon = Monitor(4, grid)
        tl = grid_timeline(grid, [(0, 0), (1, 1), (2, 2), (3, 3)])
        mon.record_timeline(tl)
        rec = mon.end_iteration(1, now=4.0)
        assert rec.iteration == 1
        assert rec.span == 4.0
        assert rec.ntasks == 4
        assert rec.tiling.tolist() == [[0, 1], [2, 3]]

    def test_uncomputed_tiles_marked_minus_one(self):
        grid = TileGrid(32, 16)
        mon = Monitor(4, grid)
        mon.record_timeline(grid_timeline(grid, [(0, 0)]))
        rec = mon.end_iteration(1, now=1.0)
        assert rec.tiling[0, 0] == 0
        assert (rec.tiling == -1).sum() == 3
        assert rec.computed_fraction() == pytest.approx(0.25)

    def test_heat_accumulates_duration(self):
        grid = TileGrid(32, 16)
        mon = Monitor(4, grid)
        mon.record_timeline(grid_timeline(grid, [(0, 0)], dur=2.5))
        rec = mon.end_iteration(1, now=2.5)
        assert rec.heat[0, 0] == pytest.approx(2.5)
        assert rec.heat[1, 1] == 0.0

    def test_stolen_marked(self):
        grid = TileGrid(32, 16)
        mon = Monitor(4, grid)
        mon.record_timeline(grid_timeline(grid, [(0, 0), (1, 1)], stolen_idx={1}))
        rec = mon.end_iteration(1, now=2.0)
        assert not rec.stolen[0, 0]
        assert rec.stolen[0, 1]

    def test_idleness_history_is_cumulative(self):
        grid = TileGrid(32, 16)
        mon = Monitor(2, grid)
        mon.record_timeline(Timeline([TaskExec(grid[0], 0, 0.0, 1.0)], ncpus=2))
        mon.end_iteration(1, now=1.0)  # cpu1 idle 1.0
        mon.record_timeline(Timeline([TaskExec(grid[1], 0, 1.0, 2.0)], ncpus=2))
        mon.end_iteration(2, now=2.0)  # cpu1 idle again
        assert mon.idleness_history == pytest.approx([1.0, 2.0])
        assert mon.cumulated_idleness == pytest.approx(2.0)

    def test_spans_are_consecutive(self):
        grid = TileGrid(32, 16)
        mon = Monitor(2, grid)
        mon.end_iteration(1, now=3.0)
        rec = mon.end_iteration(2, now=5.0)
        assert rec.span == pytest.approx(2.0)

    def test_mean_load_and_imbalance(self):
        grid = TileGrid(32, 16)
        mon = Monitor(2, grid)
        tl = Timeline(
            [TaskExec(grid[0], 0, 0, 3.0), TaskExec(grid[1], 1, 0, 1.0)], ncpus=2
        )
        mon.record_timeline(tl)
        mon.end_iteration(1, now=3.0)
        assert mon.mean_load() == pytest.approx([100.0, 100.0 / 3])
        assert mon.load_imbalance() == pytest.approx(1.5)

    def test_gridless_monitor(self):
        mon = Monitor(2, grid=None)
        mon.record_timeline(Timeline([TaskExec("x", 0, 0, 1.0)], ncpus=2))
        rec = mon.end_iteration(1, now=1.0)
        assert rec.tiling.size == 0
        assert rec.busy[0] == 1.0


class TestIterationRecord:
    def _rec(self, span=2.0, busy=(2.0, 1.0)):
        return IterationRecord(
            iteration=1,
            span=span,
            busy=list(busy),
            tiling=np.array([[0, 1]]),
            heat=np.zeros((1, 2)),
            stolen=np.zeros((1, 2), dtype=bool),
        )

    def test_load_percent_capped_at_100(self):
        rec = self._rec(span=1.0, busy=(1.5, 0.5))
        assert rec.load_percent() == [100.0, 50.0]

    def test_zero_span(self):
        rec = self._rec(span=0.0)
        assert rec.load_percent() == [0.0, 0.0]

    def test_idleness(self):
        rec = self._rec(span=2.0, busy=(2.0, 1.0))
        assert rec.idleness() == pytest.approx(1.0)

    def test_cpu_tiles_mask(self):
        rec = self._rec()
        assert rec.cpu_tiles(0).tolist() == [[True, False]]
