"""Tests for the Chrome trace export and the taskloop construct."""

import json

import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import run
from repro.errors import DependencyError
from repro.sched.costmodel import CostModel
from repro.trace.chrome import save_chrome_trace, to_chrome_events
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


class TestChromeExport:
    def _trace(self):
        return run(make_config(kernel="mandel", variant="omp_tiled",
                               iterations=2, trace=True)).trace

    def test_event_structure(self):
        trace = self._trace()
        events = to_chrome_events(trace)
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == len(trace)
        assert len(metas) == trace.ncpus
        e = xs[0]
        assert e["ts"] >= 0 and e["dur"] > 0
        assert "tile" in e["name"]
        assert e["args"]["iteration"] in (1, 2)
        assert e["cat"] == "mandel"

    def test_durations_in_microseconds(self):
        trace = self._trace()
        xs = [e for e in to_chrome_events(trace) if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in xs)
        total_s = sum(ev.duration for ev in trace.events)
        assert total_us == pytest.approx(total_s * 1e6)

    def test_save_is_valid_json(self, tmp_path):
        trace = self._trace()
        p = save_chrome_trace(trace, tmp_path / "t.json")
        doc = json.loads(p.read_text())
        assert doc["otherData"]["kernel"] == "mandel"
        assert len(doc["traceEvents"]) == len(trace) + trace.ncpus

    def test_cli_chrome_export(self, tmp_path):
        from repro.cli import main as easypap_main
        from repro.easyview_cli import main as easyview_main

        evt = tmp_path / "t.evt"
        easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                      "--size", "64", "--iterations", "1", "--trace",
                      "--trace-file", str(evt)])
        out = tmp_path / "t.json"
        assert easyview_main([str(evt), "--chrome", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_cli_coverage_map(self, tmp_path, capsys):
        from repro.cli import main as easypap_main
        from repro.easyview_cli import main as easyview_main

        evt = tmp_path / "t.evt"
        easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                      "--size", "64", "--tile-size", "16", "--iterations",
                      "2", "--trace", "--trace-file", str(evt)])
        assert easyview_main([str(evt), "--coverage", "0"]) == 0
        out = capsys.readouterr().out
        assert "coverage map of CPU 0" in out
        assert "#" in out


class TestTaskloop:
    def _ctx(self):
        return ExecutionContext(make_config(nthreads=4), model=ZERO)

    def test_chunks_of_grainsize(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tids = tr.taskloop(lambda i: 1.0, list(range(10)), grainsize=3)
        assert len(tids) == 4  # 3+3+3+1
        assert len(tr.graph) == 4

    def test_work_is_summed_per_chunk(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: float(i), [1, 2, 3, 4], grainsize=2)
        costs = sorted(n.cost for n in tr.graph.nodes)
        assert costs == [3.0, 7.0]

    def test_tasks_are_independent(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: 1.0, list(range(8)), grainsize=2)
        assert tr.timeline.makespan == pytest.approx(2.0)  # 4 tasks on 4 cpus

    def test_bad_grainsize(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            with pytest.raises(DependencyError):
                tr.taskloop(lambda i: 1.0, [1], grainsize=0)

    def test_all_items_executed(self):
        ctx = self._ctx()
        seen = []
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: seen.append(i) or 1.0, list(range(13)),
                        grainsize=4)
        assert sorted(seen) == list(range(13))
