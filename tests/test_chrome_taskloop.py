"""Tests for the Chrome trace export and the taskloop construct."""

import json

import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import run
from repro.errors import DependencyError
from repro.sched.costmodel import CostModel
from repro.trace.chrome import save_chrome_trace, to_chrome_events
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


class TestChromeExport:
    def _trace(self):
        return run(make_config(kernel="mandel", variant="omp_tiled",
                               iterations=2, trace=True)).trace

    def test_event_structure(self):
        trace = self._trace()
        events = to_chrome_events(trace)
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == len(trace)
        assert len(metas) == trace.ncpus
        e = xs[0]
        assert e["ts"] >= 0 and e["dur"] > 0
        assert "tile" in e["name"]
        assert e["args"]["iteration"] in (1, 2)
        assert e["cat"] == "mandel"

    def test_durations_in_microseconds(self):
        trace = self._trace()
        xs = [e for e in to_chrome_events(trace) if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in xs)
        total_s = sum(ev.duration for ev in trace.events)
        assert total_us == pytest.approx(total_s * 1e6)

    def test_save_is_valid_json(self, tmp_path):
        trace = self._trace()
        p = save_chrome_trace(trace, tmp_path / "t.json")
        doc = json.loads(p.read_text())
        assert doc["otherData"]["kernel"] == "mandel"
        assert len(doc["traceEvents"]) == len(trace) + trace.ncpus

    def test_cli_chrome_export(self, tmp_path):
        from repro.cli import main as easypap_main
        from repro.easyview_cli import main as easyview_main

        evt = tmp_path / "t.evt"
        easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                      "--size", "64", "--iterations", "1", "--trace",
                      "--trace-file", str(evt)])
        out = tmp_path / "t.json"
        assert easyview_main([str(evt), "--chrome", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_cli_coverage_map(self, tmp_path, capsys):
        from repro.cli import main as easypap_main
        from repro.easyview_cli import main as easyview_main

        evt = tmp_path / "t.evt"
        easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                      "--size", "64", "--tile-size", "16", "--iterations",
                      "2", "--trace", "--trace-file", str(evt)])
        assert easyview_main([str(evt), "--coverage", "0"]) == 0
        out = capsys.readouterr().out
        assert "coverage map of CPU 0" in out
        assert "#" in out


class TestChromeRoundTrip:
    """ISSUE-5 satellite: load → export → reload must preserve the trace."""

    def _roundtrip(self, trace, tmp_path):
        from repro.trace.chrome import load_chrome_trace

        p = save_chrome_trace(trace, tmp_path / "rt.json")
        return load_chrome_trace(p)

    def test_events_survive_roundtrip(self, tmp_path):
        trace = run(make_config(kernel="mandel", variant="omp_tiled",
                                iterations=2, trace=True)).trace
        back = self._roundtrip(trace, tmp_path)
        assert len(back) == len(trace)
        assert back.ncpus == trace.ncpus

        def key(e):
            return (e.iteration, e.cpu, e.kind, e.x, e.y, e.w, e.h, e.extra)

        for a, b in zip(trace.sorted(), back.sorted()):
            assert key(a) == key(b)
            assert b.start == pytest.approx(a.start, abs=1e-9)
            assert b.end == pytest.approx(a.end, abs=1e-9)

    def test_meta_survives_roundtrip(self, tmp_path):
        trace = run(make_config(trace=True)).trace
        back = self._roundtrip(trace, tmp_path)
        assert back.meta.to_dict() == trace.meta.to_dict()

    def test_footprints_survive_roundtrip(self, tmp_path):
        trace = run(make_config(kernel="blur", variant="omp_tiled",
                                iterations=1, trace=True, footprints=True)).trace
        assert any(e.reads or e.writes for e in trace.events)
        back = self._roundtrip(trace, tmp_path)
        for a, b in zip(trace.sorted(), back.sorted()):
            assert b.reads == a.reads
            assert b.writes == a.writes

    def test_easyview_reads_json_traces(self, tmp_path, capsys):
        from repro.easyview_cli import main as easyview_main

        trace = run(make_config(kernel="mandel", variant="omp_tiled",
                                iterations=1, trace=True)).trace
        p = save_chrome_trace(trace, tmp_path / "t.json")
        assert easyview_main([str(p)]) == 0
        out = capsys.readouterr().out
        assert "kernel=mandel" in out
        assert f"{len(trace)} events" in out

    def test_easyview_json_race_analysis(self, tmp_path, capsys):
        """A footprinted export keeps enough fidelity for --races."""
        from repro.easyview_cli import main as easyview_main

        trace = run(make_config(kernel="blur", variant="omp_tiled",
                                iterations=1, trace=True, footprints=True)).trace
        p = save_chrome_trace(trace, tmp_path / "t.json")
        assert easyview_main([str(p), "--races"]) == 0
        assert "no data races" in capsys.readouterr().out

    def test_export_reload_export_is_stable(self, tmp_path):
        """A second export of the reloaded trace is byte-identical —
        the round-trip has a fixed point."""
        trace = run(make_config(trace=True)).trace
        back = self._roundtrip(trace, tmp_path)
        p1 = save_chrome_trace(back, tmp_path / "a.json")
        back2 = self._roundtrip(back, tmp_path)
        p2 = save_chrome_trace(back2, tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()

    def test_loader_rejects_non_chrome_json(self, tmp_path):
        from repro.errors import TraceError
        from repro.trace.chrome import load_chrome_trace

        bad = tmp_path / "bad.json"
        bad.write_text("{\"nope\": 1}")
        with pytest.raises(TraceError):
            load_chrome_trace(bad)
        bad.write_text("not json at all")
        with pytest.raises(TraceError):
            load_chrome_trace(bad)
        with pytest.raises(TraceError):
            load_chrome_trace(tmp_path / "missing.json")


class TestTaskloop:
    def _ctx(self):
        return ExecutionContext(make_config(nthreads=4), model=ZERO)

    def test_chunks_of_grainsize(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tids = tr.taskloop(lambda i: 1.0, list(range(10)), grainsize=3)
        assert len(tids) == 4  # 3+3+3+1
        assert len(tr.graph) == 4

    def test_work_is_summed_per_chunk(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: float(i), [1, 2, 3, 4], grainsize=2)
        costs = sorted(n.cost for n in tr.graph.nodes)
        assert costs == [3.0, 7.0]

    def test_tasks_are_independent(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: 1.0, list(range(8)), grainsize=2)
        assert tr.timeline.makespan == pytest.approx(2.0)  # 4 tasks on 4 cpus

    def test_bad_grainsize(self):
        ctx = self._ctx()
        with ctx.task_region() as tr:
            with pytest.raises(DependencyError):
                tr.taskloop(lambda i: 1.0, [1], grainsize=0)

    def test_all_items_executed(self):
        ctx = self._ctx()
        seen = []
        with ctx.task_region() as tr:
            tr.taskloop(lambda i: seen.append(i) or 1.0, list(range(13)),
                        grainsize=4)
        assert sorted(seen) == list(range(13))
