"""Tests for the easyview and easyplot CLIs."""

import pytest

from repro.cli import main as easypap_main
from repro.easyplot_cli import main as easyplot_main
from repro.easyview_cli import main as easyview_main


@pytest.fixture
def trace_file(tmp_path):
    p = tmp_path / "run.evt"
    easypap_main(["--kernel", "mandel", "--variant", "omp_tiled", "--size",
                  "64", "--tile-size", "16", "--iterations", "3", "--trace",
                  "--trace-file", str(p)])
    return p


@pytest.fixture
def trace_pair(tmp_path):
    a = tmp_path / "basic.evt"
    b = tmp_path / "opt.evt"
    for path, variant in [(a, "omp_tiled"), (b, "omp_tiled_opt")]:
        easypap_main(["--kernel", "blur", "--variant", variant, "--size", "64",
                      "--tile-size", "8", "--iterations", "2", "--trace",
                      "--trace-file", str(path)])
    return a, b


class TestEasyview:
    def test_single_trace_summary(self, trace_file, capsys):
        assert easyview_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "kernel=mandel" in out
        assert "Gantt chart" in out
        assert "CPU  0" in out
        assert "locality score" in out

    def test_iteration_range(self, trace_file, capsys):
        assert easyview_main([str(trace_file), "-r", "2:2"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_bad_range(self, trace_file, capsys):
        assert easyview_main([str(trace_file), "-r", "nope"]) == 2

    def test_svg_output(self, trace_file, tmp_path, capsys):
        svg = tmp_path / "g.svg"
        assert easyview_main([str(trace_file), "--svg", str(svg)]) == 0
        assert svg.exists()

    def test_compare_mode(self, trace_pair, capsys):
        a, b = trace_pair
        assert easyview_main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "overall speedup" in out
        assert "before:" in out and "after:" in out

    def test_compare_svg(self, trace_pair, tmp_path):
        a, b = trace_pair
        svg = tmp_path / "cmp.svg"
        assert easyview_main([str(a), str(b), "--svg", str(svg)]) == 0
        assert svg.exists()

    def test_missing_trace(self, tmp_path, capsys):
        assert easyview_main([str(tmp_path / "none.evt")]) == 1
        assert "easyview:" in capsys.readouterr().err

    def test_three_traces_rejected(self, trace_file, capsys):
        assert easyview_main([str(trace_file)] * 3) == 2


class TestEasyplotCli:
    @pytest.fixture
    def csv(self, tmp_path):
        from repro.expt.exptools import execute

        path = tmp_path / "perf.csv"
        execute(
            "easypap",
            {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static", "dynamic"]},
            {"--kernel ": ["mandel"], "--variant ": ["omp_tiled"],
             "--size ": [64], "--grain ": [16], "--iterations ": [2]},
            runs=1, csv_path=path, reuse_work=True,
        )
        return path

    def test_table_output(self, csv, capsys):
        assert easyplot_main(["-i", str(csv), "--kernel", "mandel"]) == 0
        out = capsys.readouterr().out
        assert "Parameters :" in out
        assert "schedule=dynamic" in out

    def test_speedup_with_ref(self, csv, capsys):
        rc = easyplot_main(["-i", str(csv), "--speedup", "--ref-time", "10000"])
        assert rc == 0
        assert "refTime=10000" in capsys.readouterr().out

    def test_col_grain_maps_to_tile_w(self, csv, capsys):
        assert easyplot_main(["-i", str(csv), "--col", "grain"]) == 0
        assert "tile_w = 16" in capsys.readouterr().out

    def test_svg_output(self, csv, tmp_path, capsys):
        out = tmp_path / "plot.svg"
        assert easyplot_main(["-i", str(csv), "-o", str(out)]) == 0
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_ascii_chart(self, csv, capsys):
        assert easyplot_main(["-i", str(csv), "--chart"]) == 0
        assert "ymax=" in capsys.readouterr().out

    def test_missing_csv(self, tmp_path, capsys):
        assert easyplot_main(["-i", str(tmp_path / "none.csv")]) == 1
        assert "easyplot:" in capsys.readouterr().err
