"""The shared-memory telemetry ring: bounded, drop-oldest, non-blocking.

Unit tests drive :class:`RingWriter`/:func:`drain_lane` on plain numpy
arrays; the end-to-end tests shrink the per-worker capacity through
``REPRO_TELEMETRY_RING_CAP`` and prove the ISSUE-5 backpressure
contract on a real procs run: overflow drops the *oldest* records, the
``dropped_events`` counter surfaces in ``RunResult`` and the trace
meta, and a full ring never blocks or deadlocks a worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run
from repro.omp import procs as procs_mod
from repro.telemetry.ring import (
    KIND_EXEC,
    RECORD_WIDTH,
    RING_CAP_ENV,
    RingWriter,
    drain_lane,
    ring_capacity,
)
from tests.conftest import make_config

NW = 2


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools_at_end():
    yield
    procs_mod.shutdown_pools()


def make_ring(nworkers: int = 1, cap: int = 4):
    header = np.zeros(nworkers, dtype=np.int64)
    payload = np.zeros((nworkers, cap, RECORD_WIDTH), dtype=np.float64)
    return header, payload


class TestRingUnit:
    def test_roundtrip_in_order(self):
        header, payload = make_ring(cap=8)
        w = RingWriter(header, payload, 0)
        for i in range(5):
            w.emit(KIND_EXEC, i, i * 10.0, i * 10.0 + 1)
        records, consumed, dropped = drain_lane(header, payload, 0, 0)
        assert dropped == 0 and consumed == 5
        assert [int(r[2]) for r in records] == [0, 1, 2, 3, 4]
        assert [int(r[1]) for r in records] == [0, 1, 2, 3, 4]  # seq

    def test_overflow_drops_oldest(self):
        header, payload = make_ring(cap=4)
        w = RingWriter(header, payload, 0)
        for i in range(10):
            w.emit(KIND_EXEC, i, 0.0, 0.0)
        records, consumed, dropped = drain_lane(header, payload, 0, 0)
        assert dropped == 6
        assert consumed == 10
        # the survivors are the *newest* four, still in sequence order
        assert [int(r[2]) for r in records] == [6, 7, 8, 9]
        assert [int(r[1]) for r in records] == [6, 7, 8, 9]

    def test_incremental_drains(self):
        header, payload = make_ring(cap=4)
        w = RingWriter(header, payload, 0)
        w.emit(KIND_EXEC, 0)
        w.emit(KIND_EXEC, 1)
        records, consumed, dropped = drain_lane(header, payload, 0, 0)
        assert ([int(r[2]) for r in records], dropped) == ([0, 1], 0)
        w.emit(KIND_EXEC, 2)
        records, consumed, dropped = drain_lane(header, payload, 0, consumed)
        assert ([int(r[2]) for r in records], dropped) == ([2], 0)
        records, consumed, dropped = drain_lane(header, payload, 0, consumed)
        assert len(records) == 0 and dropped == 0

    def test_wraparound_across_drains(self):
        header, payload = make_ring(cap=4)
        w = RingWriter(header, payload, 0)
        consumed = 0
        seen = []
        for round_ in range(5):
            for i in range(3):
                w.emit(KIND_EXEC, round_ * 3 + i)
            records, consumed, dropped = drain_lane(header, payload, 0, consumed)
            assert dropped == 0  # 3 <= cap, drained every round
            seen += [int(r[2]) for r in records]
        assert seen == list(range(15))

    def test_emit_never_blocks(self):
        # a writer outrunning the reader by any margin keeps going
        header, payload = make_ring(cap=2)
        w = RingWriter(header, payload, 0)
        for i in range(10_000):
            w.emit(KIND_EXEC, i)
        assert int(header[0]) == 10_000

    def test_lanes_are_independent(self):
        header, payload = make_ring(nworkers=3, cap=4)
        for rank in range(3):
            w = RingWriter(header, payload, rank)
            for i in range(rank + 1):
                w.emit(KIND_EXEC, 100 * rank + i)
        for rank in range(3):
            records, _, dropped = drain_lane(header, payload, rank, 0)
            assert dropped == 0
            assert [int(r[2]) for r in records] == [100 * rank + i for i in range(rank + 1)]

    def test_capacity_env_override(self, monkeypatch):
        monkeypatch.setenv(RING_CAP_ENV, "7")
        assert ring_capacity(1000, footprints=True) == 7
        monkeypatch.delenv(RING_CAP_ENV)
        assert ring_capacity(16, footprints=False) >= 1024
        assert ring_capacity(16, footprints=True) >= 16 * 65


class TestBackpressureEndToEnd:
    def run_tiny_ring(self, monkeypatch, cap: int, **kw):
        monkeypatch.setenv(RING_CAP_ENV, str(cap))
        kw.setdefault("backend", "procs")
        kw.setdefault("nthreads", NW)
        kw.setdefault("trace", True)
        return run(make_config(**kw))

    def test_overflow_surfaces_in_result_and_trace_meta(self, monkeypatch):
        res = self.run_tiny_ring(monkeypatch, cap=2, kernel="mandel")
        # 64/16 grid = 16 tiles/iteration over 2 workers: lanes overflow
        assert res.dropped_events > 0
        assert res.counters["dropped_events"] == res.dropped_events
        assert res.trace.meta.extra["dropped_events"] == res.dropped_events
        # the run itself is unharmed: every tile executed exactly once
        assert res.completed_iterations == 2

    def test_survivors_are_newest_and_well_formed(self, monkeypatch):
        res = self.run_tiny_ring(monkeypatch, cap=3, kernel="mandel", iterations=1)
        tiles = [e for e in res.trace if e.kind == "tile"]
        # at most cap events survive per worker lane
        assert 0 < len(tiles) <= NW * 3
        for e in tiles:
            assert 0.0 <= e.start <= e.end

    def test_full_ring_never_blocks_worker(self, monkeypatch):
        import time

        t0 = time.monotonic()
        res = self.run_tiny_ring(monkeypatch, cap=1, kernel="mandel")
        assert time.monotonic() - t0 < 60.0  # bounded: drop-oldest, no wait
        assert res.completed_iterations == 2
        assert res.dropped_events > 0

    def test_default_capacity_drops_nothing(self):
        res = run(make_config(backend="procs", nthreads=NW, trace=True))
        assert res.dropped_events == 0
        assert "dropped_events" not in res.trace.meta.extra
        assert len([e for e in res.trace if e.kind == "tile"]) == 16 * 2

    def test_footprint_overflow_also_counted(self, monkeypatch):
        res = self.run_tiny_ring(
            monkeypatch, cap=4, kernel="blur", variant="omp_tiled",
            iterations=1, footprints=True,
        )
        # footprints multiply the record count: drops are certain
        assert res.dropped_events > 0
        # the image is still correct — telemetry loss never corrupts work
        ref = run(make_config(kernel="blur", variant="omp_tiled", iterations=1))
        assert np.array_equal(res.image, ref.image)
