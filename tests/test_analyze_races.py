"""Tests for the happens-before data-race detector."""

from pathlib import Path

import pytest

from repro.analyze import check_races, lint_variant
from repro.analyze.__main__ import MPI_VARIANTS
from repro.analyze.footprint import has_footprints, tasks_by_region
from repro.analyze.hb import VectorClock
from repro.core.engine import run
from repro.core.kernel import get_kernel, list_kernels, load_kernel_module
from tests.conftest import make_config

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    return load_kernel_module(str(EXAMPLES / name))


def builtin_cases():
    # the seeded-buggy example kernels register under *_buggy names when
    # another test loads them; they must not enter the clean sweep
    for k in list_kernels():
        if k.endswith("_buggy"):
            continue
        for v in get_kernel(k).variant_names():
            yield k, v


class TestVectorClock:
    def test_tick_orders_successor(self):
        a = VectorClock().tick(0)
        b = a.tick(1)
        assert a <= b
        assert not (b <= a)
        assert not a.concurrent(b)

    def test_independent_clocks_concurrent(self):
        a = VectorClock().tick(0)
        b = VectorClock().tick(1)
        assert a.concurrent(b)

    def test_join_creates_order(self):
        a = VectorClock().tick(0)
        b = VectorClock().tick(1)
        c = a.join(b).tick(2)
        assert a <= c and b <= c

    def test_empty_clock_precedes_all(self):
        assert VectorClock() <= VectorClock().tick(3)


@pytest.mark.parametrize("kernel,variant", sorted(builtin_cases()))
def test_builtin_variant_is_race_free(kernel, variant):
    """The acceptance bar: zero races (and zero lint errors) on every
    built-in variant."""
    result = lint_variant(kernel, variant, mpi_np=MPI_VARIANTS.get(variant, 0))
    assert result.errors == [], result.describe()


class TestFootprintRecording:
    def test_worksharing_tasks_carry_footprints(self):
        r = run(make_config(kernel="blur", variant="omp_tiled", trace=True,
                            footprints=True))
        assert has_footprints(r.trace)
        regions = tasks_by_region(r.trace)
        assert regions and all(rt.rmode == "par" for rt in regions)
        node = regions[0].tasks[0]
        assert any(reg[0] == "cur" for reg in node.reads)
        assert any(reg[0] == "next" for reg in node.writes)

    def test_footprints_off_by_default(self):
        r = run(make_config(kernel="blur", variant="omp_tiled", trace=True))
        assert not has_footprints(r.trace)

    def test_dag_tasks_carry_preds_and_tokens(self):
        r = run(make_config(kernel="cc", variant="omp_task", trace=True,
                            footprints=True, iterations=1))
        dag = [rt for rt in tasks_by_region(r.trace) if rt.rmode == "dag"]
        assert dag
        tasks = dag[0].tasks
        assert any(t.preds for t in tasks)
        assert all(t.depend_out for t in tasks)

    def test_scalar_accessors_recorded(self):
        # spin's do_tile writes through cur_view: footprints must appear
        # without the kernel calling declare_access for the image
        r = run(make_config(kernel="spin", variant="omp_tiled", trace=True,
                            footprints=True, iterations=1))
        regions = tasks_by_region(r.trace)
        assert any(
            reg[0] == "cur" for rt in regions for t in rt.tasks for reg in t.writes
        )


class TestBuggyLifeDependClause:
    def test_race_reported_with_missing_edge(self):
        load_example("buggy_life_taskdeps.py")
        result = lint_variant("life_buggy", "omp_task")
        races = [f for f in result.findings if f.check == "race"]
        assert races, "the seeded depend-clause bug must be detected"
        text = "\n".join(f.message for f in races)
        # actionable: names the two tasks, their tiles, and the edge
        assert "task #" in text and "tile x=" in text
        assert "read-write race on buffer 'cells'" in text
        assert "missing ordering edge" in text
        assert "depend(out:" in text and "add the in-dependence" in text

    def test_vertical_neighbours_conflict(self):
        load_example("buggy_life_taskdeps.py")
        result = lint_variant("life_buggy", "omp_task", dim=64, tile=16)
        rr = result.race_results[0]
        pairs = {(r.a.event.y, r.b.event.y) for r in rr.races}
        # at least one conflict between vertically adjacent tile rows
        assert any(abs(ya - yb) == 16 for ya, yb in pairs)


class TestBuggyBlurWritesCur:
    def test_race_and_double_buffer_findings(self):
        load_example("buggy_blur_writes_cur.py")
        result = lint_variant("blur_buggy", "omp_tiled")
        races = [f for f in result.findings if f.check == "race"]
        assert races
        text = "\n".join(f.message for f in races)
        assert "read-write race on buffer 'cur'" in text
        assert "task #" in text and "tile x=" in text
        dbuf = [f for f in result.findings if f.check == "double-buffer"]
        assert len(dbuf) == 1
        assert "write into the paired buffer" in dbuf[0].message

    def test_fixed_variant_is_clean(self):
        # the built-in blur/omp_tiled is the corrected version of the bug
        assert lint_variant("blur", "omp_tiled").clean


class TestCheckRacesResult:
    def test_clean_result_describes_scope(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", trace=True,
                            footprints=True))
        rr = check_races(r.trace)
        assert rr.clean
        assert "no data races" in rr.describe()
        assert rr.tasks_checked > 0

    def test_reports_capped(self):
        load_example("buggy_blur_writes_cur.py")
        result = lint_variant("blur_buggy", "omp_tiled", dim=128, tile=16)
        rr = result.race_results[0]
        assert rr.truncated
        assert len(rr.races) == 20
        assert "truncated" in rr.describe()
